"""Interpreter tests: scalar ops, control flow, SIMT execution, cost model,
and end-to-end equivalence between the GPU oracle and the cpuified module."""

import numpy as np
import pytest

from repro.ir import Builder, F32, FunctionType, I32, INDEX, memref, verify
from repro.dialects import arith, func, gpu as gpu_d, math as math_d, memref as memref_d, scf
from repro.runtime import A64FX_CMG, Interpreter, InterpreterError, XEON_8375C, execute
from repro.transforms import PipelineOptions, cpuify

from tests.helpers import (
    build_function,
    build_parallel,
    close_parallel,
    const_index,
    finish_function,
    insert_barrier,
)


class TestScalarAndControlFlow:
    def _module_with(self, build):
        module = func.ModuleOp()
        fn = func.FuncOp("main", FunctionType((memref((16,), F32),), ()), arg_names=["buf"])
        fn.set_attr("arg_noalias", True)
        module.add_function(fn)
        builder = Builder.at_end(fn.body_block)
        build(fn, builder)
        builder.insert(func.ReturnOp())
        verify(module)
        return module

    def test_arith_and_store(self):
        def build(fn, builder):
            a = builder.insert(arith.ConstantOp(2.0, F32))
            b = builder.insert(arith.ConstantOp(3.0, F32))
            total = builder.insert(arith.MulFOp(a.result, b.result))
            builder.insert(memref_d.StoreOp(total.result, fn.arguments[0], [const_index(builder, 0)]))
        module = self._module_with(build)
        data = np.zeros(16, dtype=np.float32)
        Interpreter(module).run("main", [data])
        assert data[0] == pytest.approx(6.0)

    def test_math_ops(self):
        def build(fn, builder):
            x = builder.insert(arith.ConstantOp(4.0, F32))
            root = builder.insert(math_d.UnaryMathOp("sqrt", x.result))
            powed = builder.insert(math_d.PowFOp(root.result, x.result))
            builder.insert(memref_d.StoreOp(root.result, fn.arguments[0], [const_index(builder, 0)]))
            builder.insert(memref_d.StoreOp(powed.result, fn.arguments[0], [const_index(builder, 1)]))
        module = self._module_with(build)
        data = np.zeros(16, dtype=np.float32)
        Interpreter(module).run("main", [data])
        assert data[0] == pytest.approx(2.0)
        assert data[1] == pytest.approx(16.0)

    def test_for_loop_with_iter_args(self):
        def build(fn, builder):
            zero = const_index(builder, 0)
            ten = const_index(builder, 10)
            one = const_index(builder, 1)
            init = builder.insert(arith.ConstantOp(0.0, F32))
            loop = builder.insert(scf.ForOp(zero, ten, one, [init.result]))
            inner = Builder.at_end(loop.body)
            as_float = inner.insert(arith.SIToFPOp(
                inner.insert(arith.IndexCastOp(loop.induction_var, I32)).result, F32))
            total = inner.insert(arith.AddFOp(loop.iter_args[0], as_float.result))
            inner.insert(scf.YieldOp([total.result]))
            builder.insert(memref_d.StoreOp(loop.results[0], fn.arguments[0], [zero]))
        module = self._module_with(build)
        data = np.zeros(16, dtype=np.float32)
        Interpreter(module).run("main", [data])
        assert data[0] == pytest.approx(45.0)

    def test_if_and_select(self):
        def build(fn, builder):
            a = builder.insert(arith.ConstantOp(5, I32))
            b = builder.insert(arith.ConstantOp(3, I32))
            cond = builder.insert(arith.CmpIOp(arith.CmpPredicate.GT, a.result, b.result))
            if_op = builder.insert(scf.IfOp(cond.result, [F32]))
            then = Builder.at_end(if_op.then_block)
            then.insert(scf.YieldOp([then.insert(arith.ConstantOp(1.0, F32)).result]))
            otherwise = Builder.at_end(if_op.else_block)
            otherwise.insert(scf.YieldOp([otherwise.insert(arith.ConstantOp(-1.0, F32)).result]))
            builder.insert(memref_d.StoreOp(if_op.results[0], fn.arguments[0], [const_index(builder, 0)]))
        module = self._module_with(build)
        data = np.zeros(16, dtype=np.float32)
        Interpreter(module).run("main", [data])
        assert data[0] == pytest.approx(1.0)

    def test_while_loop(self):
        def build(fn, builder):
            counter = builder.insert(memref_d.AllocaOp(memref((), I32))).result
            init = builder.insert(arith.ConstantOp(0, I32))
            builder.insert(memref_d.StoreOp(init.result, counter, []))
            while_op = builder.insert(scf.WhileOp([]))
            before = Builder.at_end(while_op.before_block)
            current = before.insert(memref_d.LoadOp(counter, []))
            limit = before.insert(arith.ConstantOp(5, I32))
            cond = before.insert(arith.CmpIOp(arith.CmpPredicate.LT, current.result, limit.result))
            before.insert(scf.ConditionOp(cond.result))
            after = Builder.at_end(while_op.after_block)
            value = after.insert(memref_d.LoadOp(counter, []))
            one = after.insert(arith.ConstantOp(1, I32))
            incremented = after.insert(arith.AddIOp(value.result, one.result))
            after.insert(memref_d.StoreOp(incremented.result, counter, []))
            after.insert(scf.YieldOp())
            final = builder.insert(memref_d.LoadOp(counter, []))
            as_float = builder.insert(arith.SIToFPOp(final.result, F32))
            builder.insert(memref_d.StoreOp(as_float.result, fn.arguments[0], [const_index(builder, 0)]))
        module = self._module_with(build)
        data = np.zeros(16, dtype=np.float32)
        Interpreter(module).run("main", [data])
        assert data[0] == pytest.approx(5.0)

    def test_call_and_return_value(self):
        module = func.ModuleOp()
        callee = func.FuncOp("square", FunctionType((F32,), (F32,)), device=True, arg_names=["x"])
        module.add_function(callee)
        cb = Builder.at_end(callee.body_block)
        squared = cb.insert(arith.MulFOp(callee.arguments[0], callee.arguments[0]))
        cb.insert(func.ReturnOp([squared.result]))
        main = func.FuncOp("main", FunctionType((memref((4,), F32),), ()), arg_names=["buf"])
        module.add_function(main)
        mb = Builder.at_end(main.body_block)
        c = mb.insert(arith.ConstantOp(3.0, F32))
        result = mb.insert(func.CallOp("square", [c.result], [F32]))
        mb.insert(memref_d.StoreOp(result.result, main.arguments[0], [mb.insert(arith.ConstantOp(0, INDEX)).result]))
        mb.insert(func.ReturnOp())
        data = np.zeros(4, dtype=np.float32)
        Interpreter(module).run("main", [data])
        assert data[0] == pytest.approx(9.0)

    def test_error_on_unknown_function(self):
        module = func.ModuleOp()
        with pytest.raises(InterpreterError):
            Interpreter(module).run("missing", [])


class TestScopedTerminators:
    def test_stale_terminator_not_misread_as_block_yield(self):
        """A stale ``scf.yield`` inherited via the environment copy must not be
        misread as the terminator of a branch that has none (regression for
        the ``__terminator__`` scope leak)."""
        interp = Interpreter(func.ModuleOp())
        stale_value = arith.ConstantOp(123.0, F32)
        stale_yield = scf.YieldOp([stale_value.result])
        cond = arith.ConstantOp(1, I32)
        if_op = scf.IfOp(cond.result, [F32])
        # then-branch deliberately left without a terminator
        then = Builder.at_end(if_op.then_block)
        then.insert(arith.ConstantOp(0.0, F32))

        env = {id(cond.result): 1, id(stale_value.result): 123.0,
               "__terminator__": stale_yield}
        for _ in interp._exec_if(if_op, env):
            pass
        # pre-fix this bound if_op.results[0] to the stale yield's 123.0
        assert id(if_op.results[0]) not in env

    def test_child_env_clears_terminator(self):
        marker = scf.YieldOp()
        child = Interpreter._child_env({"__terminator__": marker, 1: "kept"})
        assert "__terminator__" not in child
        assert child[1] == "kept"


class TestLazyIterationSpace:
    def test_iteration_space_streams_points(self):
        """The Cartesian product is streamed lazily, not materialized."""
        from itertools import product as _product

        interp = Interpreter(func.ModuleOp())
        bounds = [arith.ConstantOp(v, INDEX) for v in (0, 0, 6, 4, 2, 1)]
        env = {id(op.result): op.value for op in bounds}
        points, count = interp._iteration_space(
            env, [bounds[0].result, bounds[1].result],
            [bounds[2].result, bounds[3].result],
            [bounds[4].result, bounds[5].result])
        assert isinstance(points, _product)
        assert count == 12
        listed = list(points)
        assert listed[0] == (0, 0)
        assert listed[-1] == (4, 3)
        assert len(listed) == 12

    def test_empty_dimension_gives_zero_points(self):
        interp = Interpreter(func.ModuleOp())
        bounds = [arith.ConstantOp(v, INDEX) for v in (0, 0, 1)]
        env = {id(op.result): op.value for op in bounds}
        points, count = interp._iteration_space(
            env, [bounds[0].result], [bounds[1].result], [bounds[2].result])
        assert count == 0
        assert list(points) == []


class TestParallelExecution:
    def test_scf_parallel_without_barrier(self):
        module, fn, builder = build_function("main", [memref((32,), F32)], ["buf"])
        loop, inner = build_parallel(builder, 32)
        tid = loop.induction_vars[0]
        as_float = inner.insert(arith.SIToFPOp(inner.insert(arith.IndexCastOp(tid, I32)).result, F32))
        inner.insert(memref_d.StoreOp(as_float.result, fn.arguments[0], [tid]))
        close_parallel(inner)
        finish_function(builder)
        data = np.zeros(32, dtype=np.float32)
        Interpreter(module).run("main", [data])
        assert np.allclose(data, np.arange(32))

    def test_scf_parallel_with_barrier_simt_phases(self):
        """reverse via shared memory: needs real barrier semantics."""
        module, fn, builder = build_function("main", [memref((16,), F32), memref((16,), F32)],
                                             ["inp", "out"], noalias=True)
        shared = builder.insert(memref_d.AllocaOp(memref((16,), F32, "shared"))).result
        loop, inner = build_parallel(builder, 16)
        tid = loop.induction_vars[0]
        val = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        inner.insert(memref_d.StoreOp(val.result, shared, [tid]))
        insert_barrier(inner, [tid])
        fifteen = const_index(inner, 15)
        mirrored = inner.insert(arith.SubIOp(fifteen, tid))
        other = inner.insert(memref_d.LoadOp(shared, [mirrored.result]))
        inner.insert(memref_d.StoreOp(other.result, fn.arguments[1], [tid]))
        close_parallel(inner)
        finish_function(builder)

        inp = np.arange(16, dtype=np.float32)
        out = np.zeros(16, dtype=np.float32)
        interp = Interpreter(module)
        interp.run("main", [inp, out])
        assert np.allclose(out, inp[::-1])
        assert interp.report.simt_phases >= 2

    def test_gpu_launch_oracle(self):
        module = func.ModuleOp()
        fn = func.FuncOp("host", FunctionType((memref((64,), F32),), ()), arg_names=["data"])
        fn.set_attr("arg_noalias", True)
        module.add_function(fn)
        builder = Builder.at_end(fn.body_block)
        two = builder.insert(arith.ConstantOp(2, INDEX)).result
        thirty_two = builder.insert(arith.ConstantOp(32, INDEX)).result
        one = builder.insert(arith.ConstantOp(1, INDEX)).result
        launch = builder.insert(gpu_d.LaunchOp([two, one, one], [thirty_two, one, one]))
        body = Builder.at_end(launch.body)
        bx = launch.block_ids[0]
        tx = launch.thread_ids[0]
        bdim = launch.block_dim_args[0]
        gid = body.insert(arith.AddIOp(body.insert(arith.MulIOp(bx, bdim)).result, tx))
        val = body.insert(memref_d.LoadOp(fn.arguments[0], [gid.result]))
        doubled = body.insert(arith.AddFOp(val.result, val.result))
        body.insert(memref_d.StoreOp(doubled.result, fn.arguments[0], [gid.result]))
        body.insert(scf.YieldOp())
        builder.insert(func.ReturnOp())

        data = np.arange(64, dtype=np.float32)
        expected = data * 2
        Interpreter(module).run("host", [data])
        assert np.allclose(data, expected)


class TestCostModel:
    def _saxpy_module(self, n=256):
        module, fn, builder = build_function("main", [memref((n,), F32), memref((n,), F32)],
                                             ["x", "y"], noalias=True)
        loop, inner = build_parallel(builder, n)
        tid = loop.induction_vars[0]
        a = inner.insert(arith.ConstantOp(2.0, F32))
        xv = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        yv = inner.insert(memref_d.LoadOp(fn.arguments[1], [tid]))
        result = inner.insert(arith.AddFOp(inner.insert(arith.MulFOp(a.result, xv.result)).result, yv.result))
        inner.insert(memref_d.StoreOp(result.result, fn.arguments[1], [tid]))
        close_parallel(inner)
        finish_function(builder)
        return module

    def test_more_threads_is_faster(self):
        results = {}
        for threads in (1, 8, 32):
            module = self._saxpy_module()
            report = execute(module, "main",
                             [np.ones(256, dtype=np.float32), np.ones(256, dtype=np.float32)],
                             engine="interp", threads=threads)
            results[threads] = report.cycles
        assert results[8] < results[1]
        assert results[32] < results[8]

    def test_cost_report_counts(self):
        module = self._saxpy_module()
        report = execute(module, "main",
                         [np.ones(256, dtype=np.float32), np.ones(256, dtype=np.float32)],
                         engine="interp")
        assert report.dynamic_ops > 256
        assert report.parallel_regions == 1
        assert report.global_bytes > 0

    def test_machines_differ(self):
        module = self._saxpy_module()
        xeon = execute(module, "main",
                       [np.ones(256, dtype=np.float32), np.ones(256, dtype=np.float32)],
                       engine="interp", machine=XEON_8375C, threads=12)
        module2 = self._saxpy_module()
        a64fx = execute(module2, "main",
                        [np.ones(256, dtype=np.float32), np.ones(256, dtype=np.float32)],
                        engine="interp", machine=A64FX_CMG, threads=12)
        # the HBM machine moves global traffic faster.
        assert a64fx.cycles != xeon.cycles


class TestEndToEndEquivalence:
    def _reduction_module(self):
        """Per-block shared-memory tree reduction (same shape as the paper's
        running example): returns (module builder fn, data size, grid, block)."""
        module = func.ModuleOp()
        n_blocks, block_size = 4, 32
        n = n_blocks * block_size
        fn = func.FuncOp("host", FunctionType((memref((n,), F32), memref((n_blocks,), F32)), ()),
                         arg_names=["data", "out"])
        fn.set_attr("arg_noalias", True)
        module.add_function(fn)
        builder = Builder.at_end(fn.body_block)
        grid = builder.insert(arith.ConstantOp(n_blocks, INDEX)).result
        block = builder.insert(arith.ConstantOp(block_size, INDEX)).result
        one = builder.insert(arith.ConstantOp(1, INDEX)).result
        launch = builder.insert(gpu_d.LaunchOp([grid, one, one], [block, one, one]))
        body = Builder.at_end(launch.body)
        bx = launch.block_ids[0]
        tx = launch.thread_ids[0]
        bdim = launch.block_dim_args[0]
        shared = body.insert(memref_d.AllocaOp(memref((block_size,), F32, "shared"))).result
        gid = body.insert(arith.AddIOp(body.insert(arith.MulIOp(bx, bdim)).result, tx))
        val = body.insert(memref_d.LoadOp(fn.arguments[0], [gid.result]))
        body.insert(memref_d.StoreOp(val.result, shared, [tx]))
        body.insert(gpu_d.BarrierOp())
        zero = body.insert(arith.ConstantOp(0, INDEX)).result
        five = body.insert(arith.ConstantOp(5, INDEX)).result
        sixteen = body.insert(arith.ConstantOp(16, INDEX)).result
        loop = body.insert(scf.ForOp(zero, five, one, iv_name="step"))
        lb = Builder.at_end(loop.body)
        stride = lb.insert(arith.ShRSIOp(sixteen, loop.induction_var))
        cond = lb.insert(arith.CmpIOp(arith.CmpPredicate.LT, tx, stride.result))
        guard = lb.insert(scf.IfOp(cond.result, with_else=False))
        then = Builder.at_end(guard.then_block)
        partner = then.insert(arith.AddIOp(tx, stride.result))
        mine = then.insert(memref_d.LoadOp(shared, [tx]))
        other = then.insert(memref_d.LoadOp(shared, [partner.result]))
        then.insert(memref_d.StoreOp(then.insert(arith.AddFOp(mine.result, other.result)).result,
                                     shared, [tx]))
        then.insert(scf.YieldOp())
        lb.insert(gpu_d.BarrierOp())
        lb.insert(scf.YieldOp())
        is_first = body.insert(arith.CmpIOp(arith.CmpPredicate.EQ, tx, zero))
        write = body.insert(scf.IfOp(is_first.result, with_else=False))
        wb = Builder.at_end(write.then_block)
        total = wb.insert(memref_d.LoadOp(shared, [zero]))
        wb.insert(memref_d.StoreOp(total.result, fn.arguments[1], [bx]))
        wb.insert(scf.YieldOp())
        body.insert(scf.YieldOp())
        builder.insert(func.ReturnOp())
        verify(module)
        return module, n, n_blocks

    @pytest.mark.parametrize("options", [
        PipelineOptions.all_optimizations(),
        PipelineOptions.all_optimizations(inner_serialize=False),
        PipelineOptions.opt_disabled(),
    ])
    def test_cpuified_module_matches_gpu_oracle(self, options):
        rng = np.random.default_rng(0)

        # oracle: run the unlowered module with SIMT semantics
        module, n, n_blocks = self._reduction_module()
        data = rng.standard_normal(n).astype(np.float32)
        oracle_out = np.zeros(n_blocks, dtype=np.float32)
        Interpreter(module).run("host", [data.copy(), oracle_out])
        expected = data.reshape(n_blocks, -1).sum(axis=1)
        assert np.allclose(oracle_out, expected, rtol=1e-5)

        # cpuified module must produce the same output
        module2, _, _ = self._reduction_module()
        cpuify(module2, options)
        cpu_out = np.zeros(n_blocks, dtype=np.float32)
        Interpreter(module2).run("host", [data.copy(), cpu_out])
        assert np.allclose(cpu_out, oracle_out, rtol=1e-5)
