"""Chaos suite: whole engines under deterministic ``REPRO_FAULTS`` injection.

``test_resilience.py`` pins the policy layer over stubs; this file reruns
*real* kernels — including the differential fuzz grammar — while each
failure class of the taxonomy is injected at its hook point, and asserts
the resilience invariant end to end: outputs and CostReports stay
bit-identical to the clean run, every recovery is recorded in the global
:class:`ResilienceLog`, no exception escapes, and removing the injection
restores the fast path.

Knobs mirror the fuzz suite: ``REPRO_CHAOS_COUNT`` (fuzz kernels per
sweep, default 6) and ``REPRO_CHAOS_SEED`` (base seed, default 0).  The
sweep draws seeds from 10000 upward so its kernels never share native
artifact cache keys with the main fuzz suite's seeds.
"""

import os

import numpy as np
import pytest

from repro.frontend import compile_cuda
from repro.runtime import (
    DispatchTimeoutError,
    Interpreter,
    MulticoreEngine,
    clear_global_cache,
    make_executor,
    multicore_available,
    native_available,
    resilience,
    shutdown_worker_pools,
)
from repro.runtime.resilience import reset_faults
from repro.transforms import PipelineOptions
from tests.helpers import generate_fuzz_kernel, report_fields, run_engine_matrix

needs_cc = pytest.mark.skipif(not native_available(),
                              reason="no working cc -fopenmp")
needs_pool = pytest.mark.skipif(not multicore_available(),
                                reason="fork/shared memory unavailable")

CHAOS_COUNT = max(1, int(os.environ.get("REPRO_CHAOS_COUNT", "6")))
CHAOS_SEED = 10_000 + int(os.environ.get("REPRO_CHAOS_SEED", "0"))
SEEDS = list(range(CHAOS_SEED, CHAOS_SEED + CHAOS_COUNT))

#: the combined sweep plan: every fault class, seeded probabilities, so a
#: run interleaves retries, in-tier fallbacks and chain degradations.
SWEEP_FAULTS = ("native.cc:0.5@seed3,cache.read:0.3@seed7,"
                "sharedmem.promote:0.4@seed1,multicore.worker_exit:0.3@seed5")

#: each test formats its own constant into the kernel so its native unit
#: key is cold — a warm artifact would skip the injected compile entirely.
CHAOS_CUDA = """
__global__ void chaos(float* out, float* in, int n) {{
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) {{
        out[gid] = in[gid] * {factor}f + 0.5f;
    }}
}}

void launch(float* out, float* in, int n) {{
    chaos<<<(n + 31) / 32, 32>>>(out, in, n);
}}
"""


def _module(factor: str):
    return compile_cuda(CHAOS_CUDA.format(factor=factor), cuda_lower=True,
                        options=PipelineOptions.all_optimizations())


def _args(n: int = 192):
    rng = np.random.default_rng(11)
    data = rng.random(n).astype(np.float32)
    return [np.zeros(n, dtype=np.float32), data, n]


def _reference(module, args):
    """Clean interpreter run: the oracle outputs and report fields."""
    interp = Interpreter(module)
    interp.run("launch", args)
    return args[0].copy(), report_fields(interp.report)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()


@pytest.fixture(autouse=True)
def _clean_resilience(monkeypatch):
    monkeypatch.setenv("REPRO_BACKOFF_S", "0")  # fault runs never sleep
    reset_faults()
    resilience.global_log().clear()
    yield
    reset_faults()
    resilience.global_log().clear()


class TestFaultMatrix:
    """One test per taxonomy class: inject, recover, stay bit-identical."""

    @needs_cc
    def test_transient_cc_failure_recovers_by_retry(self, monkeypatch):
        """``native.cc:2`` exhausts inside the default retry budget: the
        unit compiles on the third attempt and the run stays native."""
        module = _module("1.25")
        expected, fields = _reference(module, _args())
        monkeypatch.setenv("REPRO_FAULTS", "native.cc:2")
        reset_faults()
        arguments = _args()
        executor = make_executor(module, engine="native")
        executor.run("launch", arguments)
        np.testing.assert_array_equal(arguments[0], expected)
        assert report_fields(executor.report) == fields
        assert executor.engine_name == "native"
        assert executor.native_stats["units_ready"] == 1
        log = resilience.global_log()
        assert len(log.events(op="native.cc", action="inject")) == 2
        assert [e.attempt for e in log.events(op="native.cc",
                                              action="retry")] == [1, 2]

    def test_permanent_cc_failure_degrades_down_the_chain(self, monkeypatch):
        """``native.cc:*`` outlives every retry: the wrapper steps
        native -> multicore and reproduces the clean outputs."""
        module = _module("2.75")
        expected, fields = _reference(module, _args())
        monkeypatch.setenv("REPRO_FAULTS", "native.cc:*")
        reset_faults()
        arguments = _args()
        executor = make_executor(module, engine="native")
        executor.run("launch", arguments)
        np.testing.assert_array_equal(arguments[0], expected)
        assert report_fields(executor.report) == fields
        assert executor.engine_name == "multicore"
        degrades = resilience.global_log().events(op="engine.run",
                                                  action="degrade")
        assert degrades and degrades[0].error == "ToolchainError"

    def test_cache_corruption_and_full_disk_fall_back_in_tier(
            self, monkeypatch, tmp_path):
        """Injected disk-cache faults on both tiers (read corruption,
        ENOSPC on write) recompile in memory without surfacing."""
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_FAULTS", "cache.read:*,cache.write:*")
        reset_faults()
        clear_global_cache()
        module = _module("3.5")        # store attempt -> injected ENOSPC
        clear_global_cache()           # force the disk-read path next
        module = _module("3.5")        # read attempt -> injected corruption
        expected, fields = _reference(module, _args())
        arguments = _args()
        executor = make_executor(module, engine="compiled")
        executor.run("launch", arguments)
        np.testing.assert_array_equal(arguments[0], expected)
        assert report_fields(executor.report) == fields
        log = resilience.global_log()
        assert log.events(op="cache.write", action="fallback")
        assert log.events(op="cache.read", action="fallback")

    @needs_pool
    def test_shm_exhaustion_demotes_the_run_in_process(self, monkeypatch):
        module = _module("4.125")
        expected, fields = _reference(module, _args())
        monkeypatch.setenv("REPRO_FAULTS", "sharedmem.promote:*")
        reset_faults()
        arguments = _args()
        engine = MulticoreEngine(module, workers=2)
        engine.run("launch", arguments)
        np.testing.assert_array_equal(arguments[0], expected)
        assert report_fields(engine.report) == fields
        assert engine.shard_stats["dispatches"] == 0
        assert engine.shard_stats["inline_runs"] >= 1
        events = resilience.global_log().events(op="sharedmem.promote",
                                                action="degrade")
        assert events and events[0].error == "ShmExhaustedError"

    @needs_pool
    def test_worker_crash_refors_the_pool_and_redispatches(self, monkeypatch):
        """A worker killed mid-dispatch is transient: the pool is killed,
        re-forked, and the same shards re-dispatch idempotently."""
        module = _module("5.25")
        expected, fields = _reference(module, _args())
        monkeypatch.setenv("REPRO_FAULTS", "multicore.worker_exit:1")
        reset_faults()
        arguments = _args()
        engine = MulticoreEngine(module, workers=2)
        engine.run("launch", arguments)
        np.testing.assert_array_equal(arguments[0], expected)
        assert report_fields(engine.report) == fields
        assert engine.shard_stats["dispatches"] == 2  # crashed + clean retry
        log = resilience.global_log()
        retries = log.events(op="multicore.dispatch", action="retry")
        assert retries and retries[0].error == "WorkerCrashError"
        assert log.events(op="multicore.pool", action="recover")

    @needs_pool
    def test_watchdog_kills_hung_pool_and_refors(self, monkeypatch):
        """Satellite regression: a hung worker trips the ``REPRO_TIMEOUT_S``
        watchdog, the dead pool re-forks, and the engine keeps dispatching
        on later runs instead of staying demoted."""
        module = _module("6.5")
        expected, fields = _reference(module, _args())
        monkeypatch.setenv("REPRO_FAULTS", "multicore.hang:1")
        monkeypatch.setenv("REPRO_TIMEOUT_S", "2")
        reset_faults()
        arguments = _args()
        engine = MulticoreEngine(module, workers=2)
        engine.run("launch", arguments)
        np.testing.assert_array_equal(arguments[0], expected)
        assert report_fields(engine.report) == fields
        assert engine.shard_stats["dispatches"] == 2
        log = resilience.global_log()
        retries = log.events(op="multicore.dispatch", action="retry")
        assert retries and retries[0].error == "DispatchTimeoutError"
        assert log.events(op="multicore.pool", action="recover")
        # the re-forked pool is live: a second (fault-exhausted) run
        # dispatches normally through it.
        second = _args()
        engine.run("launch", second)
        np.testing.assert_array_equal(second[0], expected)
        assert engine.shard_stats["dispatches"] == 3
        pools = list(engine._program._pools.values())
        assert len(pools) == 1 and pools[0].alive()

    @needs_pool
    def test_watchdog_exhaustion_degrades_in_process(self, monkeypatch):
        """Every retry hangs: the dispatcher gives up and runs the region
        in-process with identical results."""
        module = _module("7.125")
        expected, fields = _reference(module, _args())
        monkeypatch.setenv("REPRO_FAULTS", "multicore.hang:*")
        monkeypatch.setenv("REPRO_TIMEOUT_S", "1")
        monkeypatch.setenv("REPRO_RETRIES", "1")
        reset_faults()
        arguments = _args()
        engine = MulticoreEngine(module, workers=2)
        engine.run("launch", arguments)
        np.testing.assert_array_equal(arguments[0], expected)
        assert report_fields(engine.report) == fields
        degrades = resilience.global_log().events(op="multicore.dispatch",
                                                  action="degrade")
        assert degrades and degrades[0].error == "DispatchTimeoutError"

    def test_watchdog_exhaustion_error_class(self):
        assert issubclass(DispatchTimeoutError, Exception)


class TestFuzzSweep:
    """The differential fuzz grammar under the combined fault plan."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fuzz_parity_under_combined_faults(self, seed, monkeypatch):
        kernel = generate_fuzz_kernel(seed)
        module = kernel.compile(cuda_lower=True)  # compiles before injection
        monkeypatch.setenv("REPRO_FAULTS", SWEEP_FAULTS)
        reset_faults()
        run_engine_matrix(module, kernel.entry, kernel.make_args, (2,),
                          workers=2, label="chaos " + kernel.description)


class TestCleanPathRestored:
    @needs_cc
    def test_no_faults_no_events_native_fast_path(self, monkeypatch):
        """Removing the injection restores the fast path: units compile
        natively, nothing degrades, the log stays empty."""
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        reset_faults()
        module = _module("8.25")
        arguments = _args()
        executor = make_executor(module, engine="native")
        executor.run("launch", arguments)
        assert executor.engine_name == "native"
        assert executor.native_stats["units_ready"] == 1
        assert executor.native_stats["native_dispatches"] >= 1
        assert len(resilience.global_log()) == 0
