"""Native OpenMP engine: codegen coverage, fallback, cache and registry.

The five-engine parity matrix (``test_engine_parity.py``) and the
differential fuzz suite already pin the native engine's outputs and
CostReports bit for bit; this file covers the machinery around them:

* region coverage — the kernels that must compile natively do (including
  the two formerly-fallback classes: ``scf.while`` bodies and barriers
  under uniform control flow), and the constructs the emitter still
  rejects (nested ``omp.parallel``, thread-varying guarded barriers) fall
  back per region;
* the content-addressed artifact cache — warm units skip the C compiler,
  corrupt ``.so`` files recompile instead of crashing the dlopen, and the
  disk tier evicts by access age without touching pinned artifacts;
* dispatch bail-outs — budget runs, read-only outputs and missing
  toolchains degrade to the compiled base plans with identical semantics;
* the registry's lazy-on-lookup engine imports — ``"native" in ENGINES``
  holds before anything imported an engine module, so env-selected engines
  cannot race registration.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.frontend import compile_cuda
from repro.rodinia import BENCHMARKS
from repro.runtime import (
    Interpreter,
    InterpreterError,
    NativeEngine,
    XEON_8375C,
    native_available,
)
from repro.runtime.cache import NativeArtifactCache
from repro.runtime.native import NATIVE_ENV_VAR, CC_ENV_VAR, unit_key
from repro.transforms import PipelineOptions
from tests.helpers import generate_fuzz_kernel, report_fields

HAVE_CC = native_available()
needs_cc = pytest.mark.skipif(not HAVE_CC, reason="no working cc -fopenmp")

MATMUL = BENCHMARKS["matmul"]

QUICK_CUDA = """
__global__ void scale(float* out, float* in, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) {
        out[gid] = in[gid] * 2.0f + 1.0f;
    }
}
void launch(float* out, float* in, int n) {
    scale<<<(n + 31) / 32, 32>>>(out, in, n);
}
"""


def _quick_args(n=256):
    rng = np.random.default_rng(7)
    data = rng.random(n).astype(np.float32)
    return [np.zeros(n, dtype=np.float32), data, n]


def _lowered(source):
    return compile_cuda(source, cuda_lower=True,
                        options=PipelineOptions.all_optimizations())


def _assert_native_matches_interp(module, entry, make_args, out_index):
    interp_args = make_args()
    interp = Interpreter(module)
    interp.run(entry, interp_args)
    native_args = make_args()
    engine = NativeEngine(module)
    engine.run(entry, native_args)
    np.testing.assert_array_equal(interp_args[out_index], native_args[out_index])
    assert report_fields(interp.report) == report_fields(engine.report)
    return engine


class TestRegionCoverage:
    @needs_cc
    def test_matmul_compiles_natively(self):
        module = MATMUL.compile_cuda(PipelineOptions.all_optimizations())
        engine = _assert_native_matches_interp(
            module, MATMUL.entry, lambda: MATMUL.make_inputs(1),
            MATMUL.output_indices[0])
        stats = engine.native_stats
        assert stats["native_regions"] >= 1
        assert stats["native_dispatches"] >= 1
        assert stats["compile_errors"] == 0

    @needs_cc
    def test_launch_simt_compiles_natively(self):
        """A straight-line __syncthreads oracle runs through native chunked
        phase execution (the gpu.launch path), bit-identically."""
        for seed in range(60):
            kernel = generate_fuzz_kernel(seed)
            if kernel.has_barrier and "reduce=False" in kernel.description:
                break
        else:
            pytest.skip("no straight-line barrier kernel in the seed window")
        module = kernel.compile(cuda_lower=False)
        engine = _assert_native_matches_interp(
            module, kernel.entry, kernel.make_args, 2)
        assert engine.native_stats["native_dispatches"] >= 1
        assert engine.report.simt_phases > 0

    @needs_cc
    def test_inlined_device_call_compiles_natively(self):
        """A region containing an un-inlined __device__ call with a result
        must emit valid C: call results are declared outside the inlined
        scope (regression: they used to be assigned after the closing
        brace, failing the whole unit's compile)."""
        source = """
        __device__ float total(float* data, int n) {
            float acc = 0.0f;
            for (int i = 0; i < n; i++) { acc += data[i]; }
            return acc;
        }
        __global__ void scale(float* out, float* in, int n) {
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            float t = total(in, n);
            if (gid < n) { out[gid] = in[gid] / t; }
        }
        void launch(float* out, float* in, int n) {
            scale<<<(n + 31) / 32, 32>>>(out, in, n);
        }
        """
        module = compile_cuda(source)  # un-lowered: gpu.launch + func.call
        engine = _assert_native_matches_interp(module, "launch", _quick_args, 0)
        stats = engine.native_stats
        assert stats["compile_errors"] == 0
        assert stats["native_dispatches"] >= 1

    @needs_cc
    def test_former_fallback_kernels_compile_natively(self):
        """backprop/particlefilter carry ``scf.while`` loops inside their
        cpuified spans — the region class that used to fall back to the
        compiled closures.  They must now run native, bit-identically,
        with zero per-region fallbacks (the full 13/13 gate lives in
        tests/rodinia/test_native_coverage.py)."""
        for name in ("backprop layerforward", "particlefilter"):
            bench = BENCHMARKS[name]
            module = bench.compile_cuda(PipelineOptions.all_optimizations())
            engine = _assert_native_matches_interp(
                module, bench.entry, lambda: bench.make_inputs(1),
                bench.output_indices[0])
            stats = engine.native_stats
            assert stats["fallback_regions"] == 0, name
            assert stats["native_dispatches"] >= 1, name

    def test_env_disable_degrades_to_compiled(self, monkeypatch):
        monkeypatch.setenv(NATIVE_ENV_VAR, "0")
        module = _lowered(QUICK_CUDA)
        engine = _assert_native_matches_interp(module, "launch", _quick_args, 0)
        stats = engine.native_stats
        assert stats["native_regions"] == 0
        assert stats["native_dispatches"] == 0

    def test_missing_toolchain_degrades_to_compiled(self, monkeypatch):
        monkeypatch.setenv(CC_ENV_VAR, "/nonexistent/repro-cc")
        assert not native_available()
        module = _lowered(QUICK_CUDA)
        engine = _assert_native_matches_interp(module, "launch", _quick_args, 0)
        assert engine.native_stats["units_ready"] == 0


class TestNegativeProbe:
    """A failed toolchain probe caches its diagnostics: every later strict
    run raises one clear ToolchainError carrying the probe's actual stderr
    instead of re-probing (or failing with a bare 'unavailable')."""

    def test_missing_compiler_detail_names_the_binary(self, monkeypatch):
        from repro.runtime.errors import ToolchainError
        from repro.runtime.native import probe_detail, require_toolchain

        monkeypatch.setenv(CC_ENV_VAR, "/nonexistent/repro-probe-cc")
        assert not native_available()
        assert "not found on PATH" in probe_detail()
        with pytest.raises(ToolchainError, match="nonexistent/repro-probe-cc"):
            require_toolchain()

    def test_failing_compiler_stderr_reaches_the_error(self, tmp_path,
                                                       monkeypatch):
        from repro.runtime.errors import ToolchainError
        from repro.runtime.native import probe_detail, require_toolchain

        fake_cc = tmp_path / "fake-cc"
        fake_cc.write_text("#!/bin/sh\n"
                           "echo 'fake-cc: catastrophic internal error' >&2\n"
                           "exit 1\n")
        fake_cc.chmod(0o755)
        monkeypatch.setenv(CC_ENV_VAR, str(fake_cc))
        assert not native_available()
        assert "catastrophic internal error" in probe_detail()
        with pytest.raises(ToolchainError,
                           match="catastrophic internal error") as excinfo:
            require_toolchain()
        assert excinfo.value.detail  # the stderr rides on the error object

    def test_negative_result_is_cached_not_reprobed(self, tmp_path,
                                                    monkeypatch):
        """The probe runs once per command: a flaky wrapper that would pass
        on the second invocation must still report the first failure."""
        from repro.runtime.native import probe_detail

        marker = tmp_path / "invocations"
        flaky = tmp_path / "flaky-cc"
        flaky.write_text("#!/bin/sh\n"
                         f"echo x >> {marker}\n"
                         "echo 'fails only the first time' >&2\n"
                         "exit 1\n")
        flaky.chmod(0o755)
        monkeypatch.setenv(CC_ENV_VAR, str(flaky))
        assert not native_available()
        assert not native_available()
        assert "fails only the first time" in probe_detail()
        assert marker.read_text().count("x") == 1

    @needs_cc
    def test_strict_run_raises_the_cached_error(self, monkeypatch):
        """Under the resilience wrapper a missing toolchain is a taxonomy
        failure, not a silent degrade: the strict engine raises and the
        wrapper owns the fallback (pinned end-to-end in test_chaos.py)."""
        from repro.runtime.errors import ToolchainError

        module = _lowered(QUICK_CUDA)
        engine = NativeEngine(module)
        engine._resilience_strict = True
        monkeypatch.setenv(CC_ENV_VAR, "/nonexistent/repro-strict-cc")
        with pytest.raises(ToolchainError, match="not found on PATH"):
            engine.run("launch", _quick_args())


class TestDispatchBailouts:
    @needs_cc
    def test_budget_routes_to_compiled_plans(self):
        """An active max_dynamic_ops budget uses the compiled per-block
        budget check, raising the exact engine error."""
        module = _lowered(QUICK_CUDA)
        engine = NativeEngine(module, max_dynamic_ops=10)
        with pytest.raises(InterpreterError, match="budget"):
            engine.run("launch", _quick_args())
        assert engine.native_stats["bailouts"] >= 1

    @needs_cc
    def test_read_only_output_raises_like_other_engines(self):
        module = _lowered(QUICK_CUDA)
        arguments = _quick_args()
        arguments[0].setflags(write=False)
        engine = NativeEngine(module)
        with pytest.raises(ValueError):
            engine.run("launch", arguments)
        assert engine.native_stats["bailouts"] >= 1

    @needs_cc
    def test_aliased_buffers_stay_exact(self):
        """out aliasing in forces the sequential path; results still match
        the interpreter bit for bit."""
        module = _lowered(QUICK_CUDA)
        n = 256
        rng = np.random.default_rng(3)
        shared_interp = rng.random(n).astype(np.float32)
        shared_native = shared_interp.copy()
        interp = Interpreter(module)
        interp.run("launch", [shared_interp, shared_interp, n])
        engine = NativeEngine(module)
        engine.run("launch", [shared_native, shared_native, n])
        np.testing.assert_array_equal(shared_interp, shared_native)
        assert report_fields(interp.report) == report_fields(engine.report)


class TestArtifactCache:
    @needs_cc
    def test_warm_unit_skips_the_compiler(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        first = NativeEngine(_lowered(QUICK_CUDA))
        first.run("launch", _quick_args())
        assert first.native_stats["units_ready"] == 1
        assert list((tmp_path / "native").glob("*.so"))
        second = NativeEngine(_lowered(QUICK_CUDA))
        second.run("launch", _quick_args())
        stats = second.native_stats
        assert stats["units_ready"] == 1
        assert stats["artifact_hits"] == 1

    @needs_cc
    def test_corrupt_so_recompiles_instead_of_crashing(self, tmp_path, monkeypatch):
        """A corrupted cached artifact (e.g. a partial write from another
        process) must fail the dlopen, be invalidated and recompiled — never
        crash.  The warm artifact is produced by a *separate* process: the
        same process would get its own already-mapped library back from the
        dlopen cache and never touch the corrupt bytes."""
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        warm = (
            "from repro.frontend import compile_cuda\n"
            "from repro.transforms import PipelineOptions\n"
            "from repro.runtime import NativeEngine\n"
            "import numpy as np\n"
            f"module = compile_cuda({QUICK_CUDA!r}, cuda_lower=True,\n"
            "    options=PipelineOptions.all_optimizations())\n"
            "engine = NativeEngine(module)\n"
            "engine.run('launch', [np.zeros(8, dtype=np.float32),\n"
            "    np.ones(8, dtype=np.float32), 8])\n"
            "assert engine.native_stats['units_ready'] == 1\n"
        )
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.path.join(os.getcwd(), "src")
        environment["REPRO_CACHE"] = "1"
        environment["REPRO_CACHE_DIR"] = str(tmp_path)
        completed = subprocess.run([sys.executable, "-c", warm],
                                   capture_output=True, env=environment,
                                   timeout=300)
        assert completed.returncode == 0, completed.stderr.decode()
        artifacts = list((tmp_path / "native").glob("*.so"))
        assert artifacts
        for path in artifacts:
            path.write_bytes(b"\x7fELF this is not a shared object")
        module = _lowered(QUICK_CUDA)
        engine = _assert_native_matches_interp(module, "launch", _quick_args, 0)
        stats = engine.native_stats
        assert stats["corrupt_artifacts"] == 1
        assert stats["units_ready"] == 1
        assert stats["native_dispatches"] >= 1

    def test_unit_key_covers_source_and_toolchain(self, monkeypatch):
        key = unit_key("int x;")
        assert unit_key("int x;") == key
        assert unit_key("int y;") != key
        monkeypatch.setenv(CC_ENV_VAR, "cc -O2")
        assert unit_key("int x;") != key

    def test_deterministic_source_across_programs(self):
        """Two programs over identical modules must generate identical C —
        the content-addressed key depends on it."""
        from repro.dialects import omp as omp_d
        from repro.runtime.codegen_c import RegionCodegen
        from repro.runtime.native import _NativeFunctionCompiler, _NativeProgram

        def region_source():
            module = _lowered(QUICK_CUDA)
            program = _NativeProgram(module, XEON_8375C)
            fn = module.lookup("launch")
            compiler = _NativeFunctionCompiler(program, fn, False)

            def find(block):
                for op in block.operations:
                    if isinstance(op, omp_d.OmpWsLoopOp):
                        return op
                    for region in op.regions:
                        for inner in region.blocks:
                            found = find(inner)
                            if found is not None:
                                return found
                return None

            wsloop = find(fn.body_block)
            codegen = RegionCodegen(program, wsloop, "r", compiler.slot)
            return codegen.emit_span()[0]

        assert region_source() == region_source()


class TestArtifactEviction:
    def _store_dummy(self, cache, key, age):
        path = cache.store(key, lambda temp: temp.write_bytes(b"dummy"))
        os.utime(path, (age, age))
        return path

    def test_evicts_oldest_beyond_capacity(self, tmp_path):
        cache = NativeArtifactCache(capacity=2, directory=tmp_path)
        old = self._store_dummy(cache, "a" * 8, 1_000)
        mid = self._store_dummy(cache, "b" * 8, 2_000)
        new = self._store_dummy(cache, "c" * 8, 3_000)
        cache.evict()
        assert not old.exists()
        assert mid.exists() and new.exists()

    def test_lookup_refreshes_age(self, tmp_path):
        cache = NativeArtifactCache(capacity=2, directory=tmp_path)
        kept = self._store_dummy(cache, "a" * 8, 1_000)
        self._store_dummy(cache, "b" * 8, 2_000)
        assert cache.lookup("a" * 8) is not None  # refreshes mtime
        self._store_dummy(cache, "c" * 8, 3_000)
        cache.evict()
        assert kept.exists()
        assert not cache.path_for("b" * 8).exists()

    def test_pinned_artifacts_survive_eviction(self, tmp_path):
        cache = NativeArtifactCache(capacity=1, directory=tmp_path)
        pinned = self._store_dummy(cache, "a" * 8, 1_000)
        cache.pin("a" * 8)
        self._store_dummy(cache, "b" * 8, 2_000)
        self._store_dummy(cache, "c" * 8, 3_000)
        cache.evict()
        assert pinned.exists()

    def test_invalidate_drops_artifact(self, tmp_path):
        cache = NativeArtifactCache(capacity=4, directory=tmp_path)
        path = self._store_dummy(cache, "a" * 8, 1_000)
        cache.invalidate("a" * 8)
        assert not path.exists()


class TestLazyRegistry:
    def _run(self, code, **env):
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"),
             environment.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        environment.update(env)
        return subprocess.run([sys.executable, "-c", code],
                              capture_output=True, env=environment, timeout=120)

    def test_membership_before_engine_import(self):
        """`"native" in ENGINES` must hold before any engine module loads:
        the membership test itself triggers one targeted lazy import."""
        code = (
            "import sys\n"
            "import repro.runtime as rt\n"
            "assert 'repro.runtime.native' not in sys.modules\n"
            "assert 'repro.runtime.engine' not in sys.modules\n"
            "assert 'native' in rt.ENGINES\n"
            "assert 'repro.runtime.native' in sys.modules\n"
            "assert 'repro.runtime.engine' not in sys.modules\n"
            "assert 'no-such-engine' not in rt.ENGINES\n"
        )
        completed = self._run(code)
        assert completed.returncode == 0, completed.stderr.decode()

    def test_env_selected_engine_resolves_before_registration(self):
        """REPRO_ENGINE=native validates through the factory lookup even
        when the registry is consulted before any engine import."""
        code = (
            "from repro.runtime import registry\n"
            "factory = registry.engine_factory('native')\n"
            "assert callable(factory)\n"
            "assert registry.engine_names()[:3] == "
            "('compiled', 'vectorized', 'multicore')\n"
            "import repro.runtime as rt\n"
            "assert rt.resolve_engine() == 'native'\n"
        )
        completed = self._run(code, REPRO_ENGINE="native")
        assert completed.returncode == 0, completed.stderr.decode()
