"""Resilience layer unit tests: taxonomy, fault plans, retry, fallback.

The chaos suite (``test_chaos.py``) drives whole engines under injected
faults; this file pins the policy layer itself — the failure taxonomy's
transient/permanent tagging, the deterministic ``REPRO_FAULTS`` grammar,
the env-configured :class:`RetryPolicy` with its jittered-but-repeatable
backoff, the queryable :class:`ResilienceLog`, and the
:class:`ResilientExecutor` fallback chain over stub engines and through
``make_executor``.
"""

import errno
import threading

import numpy as np
import pytest

from repro.runtime import resilience
from repro.runtime.errors import (
    CacheCorruptionError,
    DispatchTimeoutError,
    InterpreterError,
    ResilienceError,
    ShmExhaustedError,
    StreamPoisonedError,
    ToolchainError,
    WorkerCrashError,
    is_transient,
)
from repro.runtime.resilience import (
    FALLBACK_CHAIN,
    FaultPlan,
    ResilienceLog,
    ResilientExecutor,
    RetryPolicy,
    call_with_retry,
    fallback_engines,
    fault_fires,
    inject,
    maybe_resilient,
    reset_faults,
)


@pytest.fixture(autouse=True)
def _clean_resilience():
    reset_faults()
    resilience.global_log().clear()
    yield
    reset_faults()
    resilience.global_log().clear()


class TestTaxonomy:
    def test_transient_defaults(self):
        assert is_transient(WorkerCrashError("worker died"))
        assert is_transient(DispatchTimeoutError("watchdog"))
        assert is_transient(CacheCorruptionError("bad entry"))
        assert not is_transient(ToolchainError("cc exploded"))
        assert not is_transient(ShmExhaustedError("/dev/shm full"))

    def test_transient_override(self):
        assert is_transient(ToolchainError("flaky cc", transient=True))
        assert not is_transient(WorkerCrashError("poisoned", transient=False))

    def test_non_taxonomy_errors_are_permanent(self):
        assert not is_transient(ValueError("plain"))
        assert not is_transient(OSError(errno.ENOSPC, "full"))

    def test_inheritance_preserves_legacy_handlers(self):
        """Existing ``except`` clauses keep catching the new taxonomy."""
        assert isinstance(WorkerCrashError("x"), InterpreterError)
        assert isinstance(DispatchTimeoutError("x"), InterpreterError)
        assert isinstance(ToolchainError("x"), RuntimeError)
        assert isinstance(CacheCorruptionError("x"), RuntimeError)
        shm = ShmExhaustedError("no space")
        assert isinstance(shm, OSError)
        assert shm.errno == errno.ENOSPC

    def test_all_taxonomy_errors_are_resilience_errors(self):
        for cls in (ToolchainError, WorkerCrashError, ShmExhaustedError,
                    CacheCorruptionError, DispatchTimeoutError):
            assert issubclass(cls, ResilienceError)
        # stream poisoning is a caller-contract error, not a fallback trigger
        assert not issubclass(StreamPoisonedError, ResilienceError)


class TestFaultPlan:
    def test_count_spec_fires_exactly_n_times(self):
        plan = FaultPlan("native.cc:2")
        assert [plan.fires("native.cc") for _ in range(4)] == [
            True, True, False, False]

    def test_always_spec(self):
        plan = FaultPlan("cache.read:*")
        assert all(plan.fires("cache.read") for _ in range(5))

    def test_probability_spec_is_deterministic(self):
        first = FaultPlan("cache.read:0.3@seed7")
        second = FaultPlan("cache.read:0.3@seed7")
        sequence = [first.fires("cache.read") for _ in range(50)]
        assert sequence == [second.fires("cache.read") for _ in range(50)]
        assert any(sequence) and not all(sequence)

    def test_distinct_seeds_distinct_sequences(self):
        one = FaultPlan("cache.read:0.5@seed1")
        two = FaultPlan("cache.read:0.5@seed2")
        assert ([one.fires("cache.read") for _ in range(40)]
                != [two.fires("cache.read") for _ in range(40)])

    def test_multiple_sites_parse_independently(self):
        plan = FaultPlan("native.cc:1, cache.read:*")
        assert set(plan.sites()) == {"native.cc", "cache.read"}
        assert plan.fires("native.cc") and not plan.fires("native.cc")
        assert plan.fires("cache.read")
        assert not plan.fires("unknown.site")

    @pytest.mark.parametrize("text", [
        "native.cc", ":2", "native.cc:", "native.cc:abc",
        "native.cc:1.5", "native.cc:-1", "cache.read:0.3@sd7",
    ])
    def test_malformed_specs_raise(self, text):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan(text)


class TestEnvironmentPlan:
    def test_inject_raises_mapped_taxonomy_error(self, monkeypatch):
        cases = [
            ("native.cc", ToolchainError),
            ("cache.read", CacheCorruptionError),
            ("sharedmem.promote", ShmExhaustedError),
            ("shim.launch", WorkerCrashError),
        ]
        for site, error_cls in cases:
            monkeypatch.setenv("REPRO_FAULTS", f"{site}:1")
            reset_faults()
            with pytest.raises(error_cls):
                inject(site)
            inject(site)  # count exhausted: the second call is a no-op

    def test_cache_write_fault_is_enospc(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "cache.write:1")
        with pytest.raises(OSError) as excinfo:
            inject("cache.write")
        assert excinfo.value.errno == errno.ENOSPC

    def test_firing_records_inject_event(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "native.cc:1")
        assert fault_fires("native.cc")
        events = resilience.global_log().events(op="native.cc",
                                                action="inject")
        assert len(events) == 1

    def test_no_env_no_fire(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert not fault_fires("native.cc")
        assert not resilience.faults_configured()

    def test_changing_env_rearms_counters(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "native.cc:1")
        assert fault_fires("native.cc")
        assert not fault_fires("native.cc")
        # a *different* spec text installs a fresh plan with fresh counters
        monkeypatch.setenv("REPRO_FAULTS", "native.cc:1,other.site:0")
        assert fault_fires("native.cc")

    def test_reset_faults_rearms_counters(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "native.cc:1")
        assert fault_fires("native.cc")
        reset_faults()
        assert fault_fires("native.cc")


class TestRetryPolicy:
    def test_env_overrides_and_defaults(self, monkeypatch):
        for var in ("REPRO_RETRIES", "REPRO_TIMEOUT_S", "REPRO_BACKOFF_S"):
            monkeypatch.delenv(var, raising=False)
        assert RetryPolicy.from_env() == RetryPolicy()
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_TIMEOUT_S", "1.5")
        monkeypatch.setenv("REPRO_BACKOFF_S", "0")
        policy = RetryPolicy.from_env()
        assert (policy.retries, policy.timeout_s, policy.backoff_s) == (5, 1.5, 0.0)

    def test_invalid_env_falls_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "many")
        monkeypatch.setenv("REPRO_TIMEOUT_S", "soon")
        policy = RetryPolicy.from_env()
        assert policy.retries == RetryPolicy().retries
        assert policy.timeout_s == RetryPolicy().timeout_s

    def test_negative_retries_clamp_to_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "-3")
        assert RetryPolicy.from_env().retries == 0

    def test_watchdog_disabled_by_default(self, monkeypatch):
        """No REPRO_TIMEOUT_S means no dispatch deadline: a legitimate
        long dispatch must never be killed by a default wall-clock cap."""
        monkeypatch.delenv("REPRO_TIMEOUT_S", raising=False)
        assert RetryPolicy().watchdog_timeout is None
        assert RetryPolicy.from_env().watchdog_timeout is None
        monkeypatch.setenv("REPRO_TIMEOUT_S", "2.5")
        assert RetryPolicy.from_env().watchdog_timeout == 2.5

    def test_watchdog_disabled_by_nonpositive_timeout(self):
        assert RetryPolicy(timeout_s=0).watchdog_timeout is None
        assert RetryPolicy(timeout_s=-1).watchdog_timeout is None
        assert RetryPolicy(timeout_s=2.0).watchdog_timeout == 2.0

    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff_s=0.1)
        for attempt in range(4):
            delay = policy.backoff_delay("native.cc", attempt)
            assert delay == policy.backoff_delay("native.cc", attempt)
            base = 0.1 * (2 ** attempt)
            assert 0.5 * base <= delay <= base
        assert (policy.backoff_delay("native.cc", 0)
                != policy.backoff_delay("cache.read", 0))

    def test_zero_backoff_means_zero_delay(self):
        assert RetryPolicy(backoff_s=0).backoff_delay("op", 3) == 0.0


class TestCallWithRetry:
    def _flaky(self, failures, error):
        calls = {"count": 0}

        def fn():
            calls["count"] += 1
            if calls["count"] <= failures:
                raise error
            return "ok"

        return fn, calls

    def test_transient_error_retried_to_success(self):
        log = ResilienceLog()
        fn, calls = self._flaky(2, WorkerCrashError("worker died"))
        policy = RetryPolicy(retries=2, backoff_s=0)
        assert call_with_retry("op", fn, policy=policy, log=log) == "ok"
        assert calls["count"] == 3
        retries = log.events(op="op", action="retry")
        assert [event.attempt for event in retries] == [1, 2]
        assert retries[0].error == "WorkerCrashError"

    def test_permanent_error_never_retried(self):
        log = ResilienceLog()
        fn, calls = self._flaky(5, ToolchainError("cc: syntax error"))
        with pytest.raises(ToolchainError):
            call_with_retry("op", fn, policy=RetryPolicy(retries=3, backoff_s=0),
                            log=log)
        assert calls["count"] == 1
        assert len(log) == 0

    def test_exhaustion_raises_last_error(self):
        fn, calls = self._flaky(10, WorkerCrashError("still dead"))
        with pytest.raises(WorkerCrashError, match="still dead"):
            call_with_retry("op", fn, policy=RetryPolicy(retries=2, backoff_s=0),
                            log=ResilienceLog())
        assert calls["count"] == 3  # initial call + 2 retries

    def test_retryable_narrows_eligibility(self):
        fn, calls = self._flaky(5, WorkerCrashError("crash"))
        with pytest.raises(WorkerCrashError):
            call_with_retry("op", fn, policy=RetryPolicy(retries=3, backoff_s=0),
                            retryable=(CacheCorruptionError,),
                            log=ResilienceLog())
        assert calls["count"] == 1

    def test_retryable_widens_past_the_taxonomy(self):
        """``retryable`` replaces the transient test: a plain OSError
        (no transient tag) retries when its class is listed."""
        fn, calls = self._flaky(1, OSError(errno.EIO, "flaky disk"))
        assert call_with_retry(
            "op", fn, policy=RetryPolicy(retries=2, backoff_s=0),
            retryable=(OSError,), log=ResilienceLog()) == "ok"
        assert calls["count"] == 2


class TestResilienceLog:
    def test_filters_and_counts(self):
        log = ResilienceLog()
        log.record("native.cc", "retry", "ToolchainError", attempt=1)
        log.record("native.cc", "retry", "ToolchainError", attempt=2)
        log.record("engine.run", "degrade", "ToolchainError")
        log.record("cache.read", "fallback", "CacheCorruptionError")
        assert len(log) == 4
        assert len(log.events(op="native.cc")) == 2
        assert len(log.events(action="degrade")) == 1
        assert len(log.events(error="ToolchainError")) == 3
        assert len(log.events(op="native.cc", action="degrade")) == 0
        assert log.counts() == {"retry": 2, "degrade": 1, "fallback": 1}

    def test_clear_and_capacity_bound(self):
        log = ResilienceLog(capacity=4)
        for index in range(10):
            log.record("op", "retry", attempt=index)
        assert len(log) == 4
        assert [event.attempt for event in log.events()] == [6, 7, 8, 9]
        log.clear()
        assert len(log) == 0
        assert log.counts() == {}
        assert log.total_recorded == 0

    def test_counts_survive_window_rotation(self):
        """Action totals are persistent counters, not a fold over the
        bounded deque — a long-running daemon's stats must not undercount
        once old events rotate out of the window."""
        log = ResilienceLog(capacity=4)
        for _ in range(100):
            log.record("op", "retry")
        log.record("op", "degrade")
        assert len(log) == 4  # window rotated
        assert log.counts() == {"retry": 100, "degrade": 1}
        assert log.total_recorded == 101

    def test_concurrent_hammer(self):
        """Many threads recording/reading concurrently: no lost counts, no
        corrupted window, consistent totals (the per-stream worker threads
        and the service's handler threads all share ``global_log()``)."""
        log = ResilienceLog(capacity=64)
        threads = 8
        per_thread = 500
        actions = ("retry", "degrade", "fallback", "recover")
        barrier = threading.Barrier(threads + 2)

        def writer(thread_index):
            barrier.wait()
            for index in range(per_thread):
                log.record(f"op{thread_index}", actions[index % len(actions)],
                           attempt=index)

        def reader():
            barrier.wait()
            for _ in range(200):
                counts = log.counts()
                assert all(value >= 0 for value in counts.values())
                assert len(log.events()) <= 64
                len(log)

        workers = [threading.Thread(target=writer, args=(index,))
                   for index in range(threads)]
        workers += [threading.Thread(target=reader) for _ in range(2)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        counts = log.counts()
        assert sum(counts.values()) == threads * per_thread
        assert log.total_recorded == threads * per_thread
        expected_each = threads * per_thread // len(actions)
        assert counts == {action: expected_each for action in actions}
        assert len(log) == 64


class TestFallbackChain:
    def test_chain_order_matches_engine_strength(self):
        assert FALLBACK_CHAIN == ("native", "multicore", "vectorized",
                                  "compiled", "interp")

    def test_fallback_engines(self):
        assert fallback_engines("native") == ("multicore", "vectorized",
                                              "compiled", "interp")
        assert fallback_engines("compiled") == ("interp",)
        assert fallback_engines("interp") == ()
        assert fallback_engines("no-such-engine") == ()


class _StubEngine:
    """A run()-able stand-in that can fail a fixed number of times."""

    def __init__(self, name, error=None, mutate=False):
        self.name = name
        self.error = error
        self.mutate = mutate
        self.runs = 0
        self.report = f"report:{name}"
        self.workers = 3

    def run(self, function_name, arguments=()):
        self.runs += 1
        if self.mutate and len(arguments) and isinstance(arguments[0], np.ndarray):
            arguments[0][:] = -1.0  # partial progress before the failure
        if self.error is not None:
            raise self.error
        return f"ok:{self.name}"


def _stub_rebuild(plan):
    """A rebuild callable serving stubs from ``plan`` (engine name -> stub)."""
    built = []

    def rebuild(engine_name):
        stub = plan[engine_name]
        built.append(engine_name)
        return stub

    return rebuild, built


class TestResilientExecutor:
    def test_degrades_through_the_chain(self):
        log = ResilienceLog()
        plan = {
            "multicore": _StubEngine("multicore", WorkerCrashError("dead")),
            "vectorized": _StubEngine("vectorized", ShmExhaustedError("full")),
            "compiled": _StubEngine("compiled"),
        }
        rebuild, built = _stub_rebuild(plan)
        executor = ResilientExecutor(plan["multicore"], "multicore", rebuild,
                                     log=log)
        assert executor.run("main", []) == "ok:compiled"
        assert built == ["vectorized", "compiled"]
        assert executor.engine_name == "compiled"
        degrades = log.events(op="engine.run", action="degrade")
        assert [event.engine for event in degrades] == ["vectorized", "compiled"]
        assert executor.report == "report:compiled"

    def test_chain_exhaustion_reraises(self):
        plan = {name: _StubEngine(name, WorkerCrashError(name))
                for name in ("compiled", "interp")}
        rebuild, _ = _stub_rebuild(plan)
        executor = ResilientExecutor(plan["compiled"], "compiled", rebuild,
                                     log=ResilienceLog())
        with pytest.raises(WorkerCrashError, match="interp"):
            executor.run("main", [])

    def test_non_taxonomy_errors_pass_through(self):
        stub = _StubEngine("native", ValueError("user bug"))
        rebuild, built = _stub_rebuild({})
        executor = ResilientExecutor(stub, "native", rebuild,
                                     log=ResilienceLog())
        with pytest.raises(ValueError, match="user bug"):
            executor.run("main", [])
        assert built == []  # no fallback for deterministic program errors

    def test_snapshot_restores_inputs_between_attempts(self):
        """A failed attempt's partial stores must not leak into the retry:
        writable ndarrays snapshot before every wrapped run — with *no*
        fault injection configured, exactly like a real mid-run failure —
        and restore before the fallback engine reruns."""
        observed = {}

        class _Checker(_StubEngine):
            def run(self, function_name, arguments=()):
                observed["value"] = arguments[0].copy()
                return super().run(function_name, arguments)

        plan = {"interp": _Checker("interp")}
        rebuild, _ = _stub_rebuild(plan)
        broken = _StubEngine("compiled", WorkerCrashError("dead"), mutate=True)
        executor = ResilientExecutor(broken, "compiled", rebuild,
                                     log=ResilienceLog())
        data = np.arange(4, dtype=np.float32)
        assert executor.run("main", [data]) == "ok:interp"
        np.testing.assert_array_equal(observed["value"],
                                      np.arange(4, dtype=np.float32))

    def test_snapshot_copies_only_writable_ndarrays(self):
        frozen = np.zeros(3, dtype=np.float32)
        frozen.flags.writeable = False
        snapshot = ResilientExecutor._snapshot([np.zeros(4), frozen, 7])
        assert [index for index, _ in snapshot] == [0]

    def test_wrapper_is_transparent(self):
        stub = _StubEngine("native")
        rebuild, _ = _stub_rebuild({})
        executor = ResilientExecutor(stub, "native", rebuild,
                                     log=ResilienceLog())
        assert isinstance(executor, _StubEngine)  # __class__ proxy
        assert type(executor) is ResilientExecutor  # type() sees the wrapper
        assert executor.workers == 3  # __getattr__ delegation
        assert executor.inner is stub
        assert stub._resilience_strict  # wrapped engines run strict


class TestMakeExecutorIntegration:
    @pytest.fixture()
    def module(self):
        from repro.frontend import compile_cuda
        from repro.transforms import PipelineOptions

        source = """
        __global__ void scale(float* out, float* in, int n) {
            int gid = blockIdx.x * blockDim.x + threadIdx.x;
            if (gid < n) { out[gid] = in[gid] * 2.0f; }
        }
        void launch(float* out, float* in, int n) {
            scale<<<(n + 31) / 32, 32>>>(out, in, n);
        }
        """
        return compile_cuda(source, cuda_lower=True,
                            options=PipelineOptions.all_optimizations())

    def test_wrapped_by_default_bare_when_disabled(self, module, monkeypatch):
        from repro.runtime import make_executor

        executor = make_executor(module, engine="compiled")
        assert type(executor) is ResilientExecutor
        monkeypatch.setenv("REPRO_RESILIENCE", "0")
        assert type(make_executor(module, engine="compiled")) \
            is not ResilientExecutor

    def test_chain_floor_is_never_wrapped(self, module):
        from repro.runtime import Interpreter, make_executor

        executor = make_executor(module, engine="interp")
        assert type(executor) is Interpreter

    def test_permanent_toolchain_failure_degrades_bit_identically(
            self, module, monkeypatch):
        """``native.cc:*`` fails every compile attempt: the wrapper must
        step native -> multicore and produce the clean-run outputs."""
        from repro.runtime import make_executor

        n = 64
        data = np.arange(n, dtype=np.float32)
        expected = np.zeros(n, dtype=np.float32)
        make_executor(module, engine="compiled").run(
            "launch", [expected, data.copy(), n])

        monkeypatch.setenv("REPRO_FAULTS", "native.cc:*")
        monkeypatch.setenv("REPRO_BACKOFF_S", "0")
        reset_faults()
        out = np.zeros(n, dtype=np.float32)
        executor = make_executor(module, engine="native")
        executor.run("launch", [out, data.copy(), n])
        np.testing.assert_array_equal(out, expected)
        assert executor.engine_name == "multicore"
        log = resilience.global_log()
        assert log.events(op="engine.run", action="degrade")
        assert log.events(op="native.cc", action="retry")
        assert log.events(action="inject")
