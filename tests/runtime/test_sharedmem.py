"""Shared-memory MemRefStorage backing: round trips across real processes.

Covers the promises :mod:`repro.runtime.sharedmem` makes to the multicore
engine: in-place promotion (aliases keep working, data preserved),
encode/decode shipping (same bytes visible on both sides, writes land in
place), decode caching (buffer identity within a process), the freed flag
(free in either process is observed in the other), and segment lifecycle
(unlink when the owning storage is garbage collected).
"""

import gc
import multiprocessing

import numpy as np
import pytest

from repro.runtime import MemRefStorage, UseAfterFreeError, sharedmem

needs_shm = pytest.mark.skipif(
    not sharedmem.shared_memory_available()
    or "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork/shared memory unavailable on this platform")


def _fork_call(target, *args):
    """Run ``target(*args, queue)`` in a forked child; returns queued items."""
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    process = context.Process(target=target, args=(*args, queue))
    process.start()
    process.join(timeout=30)
    assert process.exitcode == 0
    items = []
    while not queue.empty():
        items.append(queue.get())
    return items


class TestPromotion:
    def test_promote_preserves_contents_and_aliases(self):
        storage = MemRefStorage.from_numpy(np.arange(12, dtype=np.float32).reshape(3, 4))
        alias = storage  # engine register slots alias the same object
        sharedmem.promote(storage)
        assert storage.shm_name is not None
        np.testing.assert_array_equal(storage.array,
                                      np.arange(12, dtype=np.float32).reshape(3, 4))
        alias.store(99.0, (1, 2))
        assert storage.load((1, 2)) == 99.0

    def test_promote_is_idempotent(self):
        storage = MemRefStorage.from_numpy(np.zeros(4, dtype=np.int64))
        sharedmem.promote(storage)
        name = storage.shm_name
        sharedmem.promote(storage)
        assert storage.shm_name == name

    def test_bulk_accessors_work_on_promoted_buffers(self):
        storage = MemRefStorage.from_numpy(np.zeros(8, dtype=np.float64))
        sharedmem.promote(storage)
        storage.store_block(np.arange(4, dtype=np.float64), (np.array([0, 2, 4, 6]),))
        np.testing.assert_array_equal(
            storage.load_block((np.array([0, 2, 4, 6]),)), np.arange(4.0))

    def test_segment_released_when_storage_collected(self):
        before = sharedmem.owned_segment_count()
        storage = MemRefStorage.from_numpy(np.zeros(16, dtype=np.float32))
        sharedmem.promote(storage)
        assert sharedmem.owned_segment_count() == before + 1
        del storage
        gc.collect()
        assert sharedmem.owned_segment_count() == before

    def test_space_preflight_raises_before_segment_creation(self):
        """tmpfs exhaustion must surface as a catchable OSError up front
        (segment creation only ftruncates sparsely — without the preflight
        a full /dev/shm shows up as SIGBUS on the first copy)."""
        with pytest.raises(OSError):
            sharedmem._check_shm_space(1 << 62)
        sharedmem._check_shm_space(1)  # plenty of room for one byte

    def test_promote_preserves_read_only_flag(self):
        data = np.arange(6, dtype=np.float32)
        data.setflags(write=False)
        storage = MemRefStorage.from_numpy(data)
        sharedmem.promote(storage)
        assert not storage.array.flags.writeable
        decoded = sharedmem.decode(sharedmem.encode(storage))
        assert not decoded.array.flags.writeable


def _child_read_write(descriptor, queue):
    sharedmem.mark_worker_process()
    storage = sharedmem.decode(descriptor)
    queue.put(float(storage.load((3,))))
    storage.store(-5.0, (0,))
    queue.put("done")


def _child_identity(descriptor_a, descriptor_b, queue):
    sharedmem.mark_worker_process()
    storage_a = sharedmem.decode(descriptor_a)
    storage_b = sharedmem.decode(descriptor_b)
    queue.put(storage_a is storage_b)


def _child_free(descriptor, queue):
    sharedmem.mark_worker_process()
    storage = sharedmem.decode(descriptor)
    storage.free()
    queue.put("freed")


def _child_use_freed(descriptor, queue):
    sharedmem.mark_worker_process()
    storage = sharedmem.decode(descriptor)
    try:
        storage.load((0,))
        queue.put("no-error")
    except UseAfterFreeError:
        queue.put("use-after-free")


@needs_shm
class TestCrossProcess:
    def test_round_trip_and_in_place_write(self):
        storage = MemRefStorage.from_numpy(np.arange(8, dtype=np.float32))
        descriptor = sharedmem.encode(storage)
        items = _fork_call(_child_read_write, descriptor)
        assert items[0] == 3.0  # child saw the parent's bytes
        assert storage.array[0] == -5.0  # parent sees the child's store

    def test_decode_caches_buffer_identity(self):
        storage = MemRefStorage.from_numpy(np.zeros(4, dtype=np.int64))
        descriptor = sharedmem.encode(storage)
        (same,) = _fork_call(_child_identity, descriptor, sharedmem.encode(storage))
        assert same  # two live-in slots aliasing one buffer stay one object

    def test_free_in_worker_observed_by_parent(self):
        storage = MemRefStorage.from_numpy(np.zeros(4, dtype=np.float32))
        descriptor = sharedmem.encode(storage)
        _fork_call(_child_free, descriptor)
        sharedmem.refresh_freed(storage)
        with pytest.raises(UseAfterFreeError):
            storage.load((0,))

    def test_free_in_parent_observed_by_worker(self):
        storage = MemRefStorage.from_numpy(np.zeros(4, dtype=np.float32))
        sharedmem.promote(storage)
        storage.free()
        descriptor = sharedmem.encode(storage)
        (result,) = _fork_call(_child_use_freed, descriptor)
        assert result == "use-after-free"
