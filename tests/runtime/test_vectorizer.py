"""Vectorized-engine unit tests: lane semantics, fallback paths, stats.

Differential parity against the interpreter over the whole suite lives in
``test_engine_parity.py``; these tests pin the vectorizer's own behaviour —
which regions vectorize, that unsupported phases fall back per phase while
staying bit-identical, the machine-level disable, engine selection, and the
bulk storage accessors it is built on.
"""

import numpy as np
import pytest

from repro.ir import Builder, F32, I32, INDEX, memref, verify
from repro.dialects import arith, func, memref as memref_d, scf
from repro.frontend import compile_cuda
from repro.rodinia import BENCHMARKS
from repro.runtime import (
    A64FX_CMG,
    CompiledEngine,
    Interpreter,
    InterpreterError,
    MemRefStorage,
    UseAfterFreeError,
    VectorizedEngine,
    XEON_8375C,
    machine_vectorizable,
    make_executor,
)
from repro.transforms import PipelineOptions

from tests.helpers import (
    build_function,
    build_parallel,
    close_parallel,
    const_index,
    finish_function,
    insert_barrier,
)

from tests.runtime.test_engine_parity import report_fields


def run_both(module, entry, make_args, machine=XEON_8375C, threads=None):
    """Run interpreter + vectorized engine; return (interp, vectorized)."""
    interp_args = make_args()
    vector_args = make_args()
    interpreter = Interpreter(module, machine=machine, threads=threads)
    interpreter.run(entry, interp_args)
    engine = VectorizedEngine(module, machine=machine, threads=threads)
    engine.run(entry, vector_args)
    return (interpreter, interp_args), (engine, vector_args)


class TestRegionSelection:
    def test_matmul_wsloop_vectorizes(self):
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        engine = VectorizedEngine(module)
        engine.run(bench.entry, bench.make_inputs(1))
        stats = engine.vector_stats
        assert stats["vectorized_regions"] >= 1
        assert stats["fallback_regions"] == 0
        assert stats["mixed_regions"] == 0

    @pytest.mark.parametrize("name", ["hotspot", "lud", "pathfinder"])
    def test_rodinia_oracle_mixed_phases(self, name):
        """Per-phase fallback on real kernels: the single-lane ``tid == 0``
        staging phase runs on compiled closures while the arithmetic phase
        vectorizes — mixed phases within one ``gpu.launch``, with outputs and
        cost reports still pinned by the parity suite."""
        bench = BENCHMARKS[name]
        module = bench.compile_cuda(cuda_lower=False)
        engine = VectorizedEngine(module)
        engine.run(bench.entry, bench.make_inputs(1))
        stats = engine.vector_stats
        assert stats["mixed_regions"] == 1
        assert stats["vectorized_phases"] >= 1
        assert stats["closure_phases"] >= 1

    def test_barrier_under_control_flow_falls_back_wholesale(self):
        bench = BENCHMARKS["backprop layerforward"]
        module = bench.compile_cuda(cuda_lower=False)
        engine = VectorizedEngine(module)
        engine.run(bench.entry, bench.make_inputs(1))
        stats = engine.vector_stats
        assert stats["fallback_regions"] >= 1

    def test_a64fx_disables_vectorization(self):
        assert machine_vectorizable(XEON_8375C)
        assert not machine_vectorizable(A64FX_CMG)
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        engine = VectorizedEngine(module, machine=A64FX_CMG, threads=12)
        engine.run(bench.entry, bench.make_inputs(1))
        assert engine.vector_stats["vectorized_regions"] == 0
        assert engine.vector_stats["vectorized_phases"] == 0


class TestFallbackParity:
    def _while_phase_module(self):
        """Barrier region: a vectorizable staging phase, then a phase holding
        an ``scf.while`` (lane-dependent trip count) the analyzer rejects."""
        module, fn, builder = build_function(
            "main", [memref((16,), F32), memref((16,), F32)], ["inp", "out"])
        shared = builder.insert(
            memref_d.AllocaOp(memref((16,), F32, "shared"))).result
        loop, inner = build_parallel(builder, 16)
        tid = loop.induction_vars[0]
        # phase 1 (vectorizable): stage inp into shared memory
        val = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        inner.insert(memref_d.StoreOp(val.result, shared, [tid]))
        insert_barrier(inner, [tid])
        # phase 2 (unsupported): count up to tid with a data-dependent while
        zero = const_index(inner, 0)
        one = const_index(inner, 1)
        while_op = inner.insert(scf.WhileOp([zero], [INDEX]))
        before = Builder.at_end(while_op.before_block)
        cond = before.insert(arith.CmpIOp(
            arith.CmpPredicate.LT, while_op.before_block.arguments[0], tid))
        before.insert(scf.ConditionOp(cond.result,
                                      [while_op.before_block.arguments[0]]))
        after = Builder.at_end(while_op.after_block)
        bumped = after.insert(arith.AddIOp(while_op.after_block.arguments[0], one))
        after.insert(scf.YieldOp([bumped.result]))
        fifteen = const_index(inner, 15)
        mirrored = inner.insert(arith.SubIOp(fifteen, tid))
        staged = inner.insert(memref_d.LoadOp(shared, [mirrored.result]))
        as_i32 = inner.insert(arith.IndexCastOp(while_op.results[0], I32))
        as_f32 = inner.insert(arith.SIToFPOp(as_i32.result, F32))
        total = inner.insert(arith.AddFOp(staged.result, as_f32.result))
        inner.insert(memref_d.StoreOp(total.result, fn.arguments[1], [tid]))
        close_parallel(inner)
        finish_function(builder)
        verify(module)
        return module

    def test_unsupported_phase_falls_back_bit_identical(self):
        module = self._while_phase_module()

        def make_args():
            rng = np.random.default_rng(3)
            return [rng.random(16).astype(np.float32),
                    np.zeros(16, dtype=np.float32)]

        (interp, interp_args), (engine, vector_args) = run_both(
            module, "main", make_args)
        np.testing.assert_array_equal(interp_args[1], vector_args[1])
        assert report_fields(interp.report) == report_fields(engine.report)
        stats = engine.vector_stats
        assert stats["mixed_regions"] == 1
        assert stats["vectorized_phases"] == 1
        assert stats["closure_phases"] == 1
        # the vectorized staging phase and the closure phase really did
        # execute as two barrier phases of one region
        assert engine.report.simt_phases == 2

    def test_budget_enforced_per_lane_block(self):
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        engine = VectorizedEngine(module, max_dynamic_ops=50)
        with pytest.raises(InterpreterError, match="budget exceeded"):
            engine.run(bench.entry, bench.make_inputs(1))


class TestVectorSemantics:
    def test_barrier_phase_vectorized_reverse(self):
        """Shared-memory reverse: both phases vectorize, 2 SIMT phases."""
        module, fn, builder = build_function(
            "main", [memref((16,), F32), memref((16,), F32)], ["inp", "out"])
        shared = builder.insert(
            memref_d.AllocaOp(memref((16,), F32, "shared"))).result
        loop, inner = build_parallel(builder, 16)
        tid = loop.induction_vars[0]
        val = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        inner.insert(memref_d.StoreOp(val.result, shared, [tid]))
        insert_barrier(inner, [tid])
        fifteen = const_index(inner, 15)
        mirrored = inner.insert(arith.SubIOp(fifteen, tid))
        other = inner.insert(memref_d.LoadOp(shared, [mirrored.result]))
        inner.insert(memref_d.StoreOp(other.result, fn.arguments[1], [tid]))
        close_parallel(inner)
        finish_function(builder)
        verify(module)

        inp = np.arange(16, dtype=np.float32)
        out = np.zeros(16, dtype=np.float32)
        engine = VectorizedEngine(module)
        engine.run("main", [inp, out])
        assert np.allclose(out, inp[::-1])
        assert engine.report.simt_phases == 2
        assert engine.vector_stats["vectorized_regions"] == 1
        assert engine.vector_stats["vectorized_phases"] == 2

    def test_broad_equality_mask_vectorizes(self):
        """The single-lane-guard heuristic keys on lane-index provenance:
        ``if (flag[tid] == 1)`` is a broad data-dependent mask and must
        vectorize, while ``if (tid == 0)`` phases fall back (pinned by the
        Rodinia mixed-phase tests)."""
        source = """
        __global__ void kernel(int* flag, float* out, float* in, int n) {
            int tid = blockIdx.x * blockDim.x + threadIdx.x;
            if (tid < n) {
                if (flag[tid] == 1) { out[tid] = in[tid] * 2.0f; }
                else { out[tid] = in[tid]; }
            }
        }
        void launch(int* flag, float* out, float* in, int n) {
            kernel<<<2, 32>>>(flag, out, in, n);
        }
        """
        module = compile_cuda(source, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())

        def make_args():
            rng = np.random.default_rng(5)
            return [rng.integers(0, 2, 64).astype(np.int64),
                    np.zeros(64, dtype=np.float32),
                    rng.random(64).astype(np.float32), 64]

        (interp, interp_args), (engine, vector_args) = run_both(
            module, "launch", make_args)
        np.testing.assert_array_equal(interp_args[1], vector_args[1])
        assert report_fields(interp.report) == report_fields(engine.report)
        assert engine.vector_stats["vectorized_regions"] == 1
        assert engine.vector_stats["closure_phases"] == 0

    def test_float_min_max_nan_parity(self):
        """Python min/max do not propagate a NaN second argument
        (``min(1.0, nan) == 1.0``); the vector lanes must match, not
        ``np.minimum``'s NaN propagation."""
        source = """
        __global__ void kernel(float* out, float* in, int n) {
            int tid = blockIdx.x * blockDim.x + threadIdx.x;
            if (tid < n) {
                out[tid] = fminf(1.0f, in[tid]) + fmaxf(-1.0f, in[tid]);
            }
        }
        void launch(float* out, float* in, int n) {
            kernel<<<1, 32>>>(out, in, n);
        }
        """
        module = compile_cuda(source, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())

        def make_args():
            data = np.linspace(-2.0, 2.0, 32, dtype=np.float32)
            data[5] = np.nan
            data[17] = np.nan
            return [np.zeros(32, dtype=np.float32), data, 32]

        (interp, interp_args), (engine, vector_args) = run_both(
            module, "launch", make_args)
        assert engine.vector_stats["vectorized_regions"] >= 1
        np.testing.assert_array_equal(interp_args[0], vector_args[0])
        assert report_fields(interp.report) == report_fields(engine.report)

    def test_masked_if_with_results_and_math(self):
        """Data-dependent scf.if with results + math.* in lanes (np.where
        merge + Python-callable map), checked against the interpreter."""
        source = """
        __global__ void kernel(float* out, float* in, int n) {
            int tid = blockIdx.x * blockDim.x + threadIdx.x;
            if (tid < n) {
                float x = in[tid];
                float y = 0.0f;
                if (x > 0.5f) {
                    y = sqrtf(x) + 1.0f;
                } else {
                    y = x * 2.0f;
                }
                out[tid] = y;
            }
        }
        void launch(float* out, float* in, int n) {
            kernel<<<(n + 31) / 32, 32>>>(out, in, n);
        }
        """
        module = compile_cuda(source, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())

        def make_args():
            rng = np.random.default_rng(11)
            return [np.zeros(64, dtype=np.float32),
                    rng.random(64).astype(np.float32), 64]

        (interp, interp_args), (engine, vector_args) = run_both(
            module, "launch", make_args)
        np.testing.assert_array_equal(interp_args[0], vector_args[0])
        assert report_fields(interp.report) == report_fields(engine.report)
        assert engine.vector_stats["vectorized_regions"] >= 1


class TestEngineSelection:
    def test_make_executor_vectorized(self):
        module = func.ModuleOp()
        assert isinstance(make_executor(module, engine="vectorized"),
                          VectorizedEngine)
        # the vectorized engine *is* a compiled engine (shared machinery)
        assert isinstance(make_executor(module, engine="vectorized"),
                          CompiledEngine)
        assert not isinstance(make_executor(module, engine="compiled"),
                              VectorizedEngine)

    def test_env_var_selects_vectorized(self, monkeypatch):
        module = func.ModuleOp()
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        assert isinstance(make_executor(module), VectorizedEngine)

    def test_programs_cached_separately(self):
        """Compiled and vectorized programs coexist on one module."""
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        compiled = CompiledEngine(module)
        vectorized = VectorizedEngine(module)
        assert compiled._program is not vectorized._program
        assert CompiledEngine(module)._program is compiled._program
        assert VectorizedEngine(module)._program is vectorized._program


class TestBulkStorage:
    def test_load_block_gathers_without_boxing(self):
        storage = MemRefStorage.from_numpy(np.arange(8, dtype=np.float32))
        gathered = storage.load_block((np.array([3, 0, 7]),))
        assert gathered.dtype == np.float32
        np.testing.assert_array_equal(gathered, [3.0, 0.0, 7.0])
        np.testing.assert_array_equal(storage.load_block(), storage.array)

    def test_store_block_last_writer_wins(self):
        storage = MemRefStorage.from_numpy(np.zeros(4, dtype=np.int64))
        storage.store_block(np.array([1, 2, 3]), (np.array([1, 1, 2]),))
        np.testing.assert_array_equal(storage.array, [0, 2, 3, 0])

    def test_use_after_free_centralized(self):
        storage = MemRefStorage.from_numpy(np.zeros(4, dtype=np.float32))
        storage.free()
        for access in (lambda: storage.load((0,)),
                       lambda: storage.store(1.0, (0,)),
                       lambda: storage.load_block((np.array([0]),)),
                       lambda: storage.store_block(1.0, (np.array([0]),)),
                       lambda: storage.free(),
                       lambda: storage.check_alive()):
            with pytest.raises(UseAfterFreeError):
                access()
        # use-after-free surfaces as an InterpreterError to every engine
        assert issubclass(UseAfterFreeError, InterpreterError)

    def test_dealloc_then_load_raises_in_all_engines(self):
        module, fn, builder = build_function("main", [memref((4,), F32)], ["buf"])
        alloc = builder.insert(memref_d.AllocOp(memref((4,), F32)))
        builder.insert(memref_d.DeallocOp(alloc.result))
        loaded = builder.insert(memref_d.LoadOp(alloc.result, [const_index(builder, 0)]))
        builder.insert(memref_d.StoreOp(loaded.result, fn.arguments[0],
                                        [const_index(builder, 0)]))
        finish_function(builder)
        verify(module)
        for engine_cls in (Interpreter, CompiledEngine, VectorizedEngine):
            with pytest.raises(InterpreterError, match="use after free"):
                engine_cls(module).run("main", [np.zeros(4, dtype=np.float32)])
