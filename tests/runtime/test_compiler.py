"""Compiled-engine unit tests: semantics, engine selection, caching, errors.

Differential parity against the interpreter is covered by
``test_engine_parity.py``; these tests pin the compiled engine's own
behaviour — correct execution of every construct family, the
``make_executor`` selection layer, the per-module compile cache and its
invalidation, and error reporting.
"""


import numpy as np
import pytest

from repro.ir import Builder, F32, FunctionType, I32, INDEX, memref, verify
from repro.dialects import arith, func, gpu as gpu_d, memref as memref_d, scf
from repro.runtime import (
    CompiledEngine,
    Interpreter,
    InterpreterError,
    XEON_8375C,
    invalidate_compiled,
    make_executor,
    resolve_engine,
)
from repro.runtime.compiler import _FunctionCompiler, program_for

from tests.helpers import (
    build_function,
    build_parallel,
    close_parallel,
    const_index,
    finish_function,
    insert_barrier,
)


def _store_result_module(build):
    module = func.ModuleOp()
    fn = func.FuncOp("main", FunctionType((memref((16,), F32),), ()), arg_names=["buf"])
    fn.set_attr("arg_noalias", True)
    module.add_function(fn)
    builder = Builder.at_end(fn.body_block)
    build(fn, builder)
    builder.insert(func.ReturnOp())
    verify(module)
    return module


class TestCompiledSemantics:
    def test_for_loop_with_iter_args(self):
        def build(fn, builder):
            zero = const_index(builder, 0)
            ten = const_index(builder, 10)
            one = const_index(builder, 1)
            init = builder.insert(arith.ConstantOp(0.0, F32))
            loop = builder.insert(scf.ForOp(zero, ten, one, [init.result]))
            inner = Builder.at_end(loop.body)
            as_float = inner.insert(arith.SIToFPOp(
                inner.insert(arith.IndexCastOp(loop.induction_var, I32)).result, F32))
            total = inner.insert(arith.AddFOp(loop.iter_args[0], as_float.result))
            inner.insert(scf.YieldOp([total.result]))
            builder.insert(memref_d.StoreOp(loop.results[0], fn.arguments[0], [zero]))
        module = _store_result_module(build)
        data = np.zeros(16, dtype=np.float32)
        CompiledEngine(module).run("main", [data])
        assert data[0] == pytest.approx(45.0)

    def test_while_loop(self):
        def build(fn, builder):
            counter = builder.insert(memref_d.AllocaOp(memref((), I32))).result
            init = builder.insert(arith.ConstantOp(0, I32))
            builder.insert(memref_d.StoreOp(init.result, counter, []))
            while_op = builder.insert(scf.WhileOp([]))
            before = Builder.at_end(while_op.before_block)
            current = before.insert(memref_d.LoadOp(counter, []))
            limit = before.insert(arith.ConstantOp(5, I32))
            cond = before.insert(arith.CmpIOp(arith.CmpPredicate.LT, current.result, limit.result))
            before.insert(scf.ConditionOp(cond.result))
            after = Builder.at_end(while_op.after_block)
            value = after.insert(memref_d.LoadOp(counter, []))
            one = after.insert(arith.ConstantOp(1, I32))
            incremented = after.insert(arith.AddIOp(value.result, one.result))
            after.insert(memref_d.StoreOp(incremented.result, counter, []))
            after.insert(scf.YieldOp())
            final = builder.insert(memref_d.LoadOp(counter, []))
            as_float = builder.insert(arith.SIToFPOp(final.result, F32))
            builder.insert(memref_d.StoreOp(as_float.result, fn.arguments[0], [const_index(builder, 0)]))
        module = _store_result_module(build)
        data = np.zeros(16, dtype=np.float32)
        CompiledEngine(module).run("main", [data])
        assert data[0] == pytest.approx(5.0)

    def test_if_with_results_and_select(self):
        def build(fn, builder):
            a = builder.insert(arith.ConstantOp(5, I32))
            b = builder.insert(arith.ConstantOp(3, I32))
            cond = builder.insert(arith.CmpIOp(arith.CmpPredicate.GT, a.result, b.result))
            if_op = builder.insert(scf.IfOp(cond.result, [F32]))
            then = Builder.at_end(if_op.then_block)
            then.insert(scf.YieldOp([then.insert(arith.ConstantOp(1.0, F32)).result]))
            otherwise = Builder.at_end(if_op.else_block)
            otherwise.insert(scf.YieldOp([otherwise.insert(arith.ConstantOp(-1.0, F32)).result]))
            picked = builder.insert(arith.SelectOp(cond.result, if_op.results[0],
                                                   if_op.results[0]))
            builder.insert(memref_d.StoreOp(picked.result, fn.arguments[0], [const_index(builder, 0)]))
        module = _store_result_module(build)
        data = np.zeros(16, dtype=np.float32)
        CompiledEngine(module).run("main", [data])
        assert data[0] == pytest.approx(1.0)

    def test_call_returns_value(self):
        module = func.ModuleOp()
        callee = func.FuncOp("square", FunctionType((F32,), (F32,)), device=True, arg_names=["x"])
        module.add_function(callee)
        cb = Builder.at_end(callee.body_block)
        squared = cb.insert(arith.MulFOp(callee.arguments[0], callee.arguments[0]))
        cb.insert(func.ReturnOp([squared.result]))
        main = func.FuncOp("main", FunctionType((memref((4,), F32),), ()), arg_names=["buf"])
        module.add_function(main)
        mb = Builder.at_end(main.body_block)
        c = mb.insert(arith.ConstantOp(3.0, F32))
        result = mb.insert(func.CallOp("square", [c.result], [F32]))
        mb.insert(memref_d.StoreOp(result.result, main.arguments[0],
                                   [mb.insert(arith.ConstantOp(0, INDEX)).result]))
        mb.insert(func.ReturnOp())
        data = np.zeros(4, dtype=np.float32)
        CompiledEngine(module).run("main", [data])
        assert data[0] == pytest.approx(9.0)

    def test_simt_barrier_phases(self):
        """Shared-memory reverse needs real barrier semantics and phase counts."""
        module, fn, builder = build_function("main", [memref((16,), F32), memref((16,), F32)],
                                             ["inp", "out"], noalias=True)
        shared = builder.insert(memref_d.AllocaOp(memref((16,), F32, "shared"))).result
        loop, inner = build_parallel(builder, 16)
        tid = loop.induction_vars[0]
        val = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        inner.insert(memref_d.StoreOp(val.result, shared, [tid]))
        insert_barrier(inner, [tid])
        fifteen = const_index(inner, 15)
        mirrored = inner.insert(arith.SubIOp(fifteen, tid))
        other = inner.insert(memref_d.LoadOp(shared, [mirrored.result]))
        inner.insert(memref_d.StoreOp(other.result, fn.arguments[1], [tid]))
        close_parallel(inner)
        finish_function(builder)

        inp = np.arange(16, dtype=np.float32)
        out = np.zeros(16, dtype=np.float32)
        engine = CompiledEngine(module)
        engine.run("main", [inp, out])
        assert np.allclose(out, inp[::-1])
        assert engine.report.simt_phases == 2  # straight-line body → 2 phase chunks

    def test_gpu_launch_shared_memory_reduction(self):
        """Barriers under a loop take the compiled-generator SIMT path."""
        module = func.ModuleOp()
        n_blocks, block_size = 2, 8
        n = n_blocks * block_size
        fn = func.FuncOp("host", FunctionType((memref((n,), F32), memref((n_blocks,), F32)), ()),
                         arg_names=["data", "out"])
        fn.set_attr("arg_noalias", True)
        module.add_function(fn)
        builder = Builder.at_end(fn.body_block)
        grid = builder.insert(arith.ConstantOp(n_blocks, INDEX)).result
        block = builder.insert(arith.ConstantOp(block_size, INDEX)).result
        one = builder.insert(arith.ConstantOp(1, INDEX)).result
        launch = builder.insert(gpu_d.LaunchOp([grid, one, one], [block, one, one]))
        body = Builder.at_end(launch.body)
        bx, tx = launch.block_ids[0], launch.thread_ids[0]
        bdim = launch.block_dim_args[0]
        shared = body.insert(memref_d.AllocaOp(memref((block_size,), F32, "shared"))).result
        gid = body.insert(arith.AddIOp(body.insert(arith.MulIOp(bx, bdim)).result, tx))
        val = body.insert(memref_d.LoadOp(fn.arguments[0], [gid.result]))
        body.insert(memref_d.StoreOp(val.result, shared, [tx]))
        body.insert(gpu_d.BarrierOp())
        zero = body.insert(arith.ConstantOp(0, INDEX)).result
        three = body.insert(arith.ConstantOp(3, INDEX)).result
        four = body.insert(arith.ConstantOp(4, INDEX)).result
        loop = body.insert(scf.ForOp(zero, three, one, iv_name="step"))
        lb = Builder.at_end(loop.body)
        stride = lb.insert(arith.ShRSIOp(four, loop.induction_var))
        cond = lb.insert(arith.CmpIOp(arith.CmpPredicate.LT, tx, stride.result))
        guard = lb.insert(scf.IfOp(cond.result, with_else=False))
        then = Builder.at_end(guard.then_block)
        partner = then.insert(arith.AddIOp(tx, stride.result))
        mine = then.insert(memref_d.LoadOp(shared, [tx]))
        other = then.insert(memref_d.LoadOp(shared, [partner.result]))
        then.insert(memref_d.StoreOp(then.insert(arith.AddFOp(mine.result, other.result)).result,
                                     shared, [tx]))
        then.insert(scf.YieldOp())
        lb.insert(gpu_d.BarrierOp())
        lb.insert(scf.YieldOp())
        is_first = body.insert(arith.CmpIOp(arith.CmpPredicate.EQ, tx, zero))
        write = body.insert(scf.IfOp(is_first.result, with_else=False))
        wb = Builder.at_end(write.then_block)
        total = wb.insert(memref_d.LoadOp(shared, [zero]))
        wb.insert(memref_d.StoreOp(total.result, fn.arguments[1], [bx]))
        wb.insert(scf.YieldOp())
        body.insert(scf.YieldOp())
        builder.insert(func.ReturnOp())
        verify(module)

        rng = np.random.default_rng(0)
        data = rng.standard_normal(n).astype(np.float32)
        out = np.zeros(n_blocks, dtype=np.float32)
        CompiledEngine(module).run("host", [data.copy(), out])
        assert np.allclose(out, data.reshape(n_blocks, -1).sum(axis=1), rtol=1e-5)


class TestInlineTemplates:
    """The inline source templates must stay in lockstep with the ops'
    ``PY_FUNC`` / ``CmpPredicate`` evaluations they shortcut."""

    BOUNDARY_PAIRS = [(0, 0), (0, 1), (1, 0), (-3, 2), (7, -2), (-5, -5),
                      (0.0, 0.0), (1.5, -2.5), (-0.75, 0.25), (3.0, 0.0)]

    @pytest.mark.parametrize("op_class", sorted(_FunctionCompiler._BINARY_EXPR,
                                                key=lambda c: c.__name__))
    def test_binary_templates_match_py_func(self, op_class):
        template = _FunctionCompiler._BINARY_EXPR[op_class]
        for a, b in self.BOUNDARY_PAIRS:
            expected = op_class.PY_FUNC(a, b)
            actual = eval(template.format(a=repr(a), b=repr(b)))
            assert actual == expected or (actual != actual and expected != expected), (
                f"{op_class.__name__}: template {template!r} diverges from "
                f"PY_FUNC on ({a}, {b}): {actual!r} != {expected!r}")

    @pytest.mark.parametrize("predicate", sorted(arith.CmpPredicate.ALL))
    def test_cmp_templates_match_predicates(self, predicate):
        cmp = _FunctionCompiler._CMP_EXPR[predicate]
        for a, b in self.BOUNDARY_PAIRS:
            expected = arith.CmpPredicate.evaluate(predicate, a, b)
            actual = eval(f"1 if {a!r} {cmp} {b!r} else 0")
            assert actual == expected

    def test_every_predicate_has_a_template(self):
        assert set(_FunctionCompiler._CMP_EXPR) == set(arith.CmpPredicate.ALL)


class TestEngineSelection:
    def test_make_executor_types(self):
        module = func.ModuleOp()
        assert isinstance(make_executor(module, engine="interp"), Interpreter)
        assert isinstance(make_executor(module, engine="compiled"), CompiledEngine)
        assert isinstance(make_executor(module), CompiledEngine)  # default

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("jit")

    def test_env_var_overrides_default(self, monkeypatch):
        module = func.ModuleOp()
        monkeypatch.setenv("REPRO_ENGINE", "interp")
        assert isinstance(make_executor(module), Interpreter)
        monkeypatch.setenv("REPRO_ENGINE", "compiled")
        assert isinstance(make_executor(module), CompiledEngine)


class TestCompileCache:
    def _constant_store_module(self):
        module, fn, builder = build_function("main", [memref((4,), F32)], ["buf"])
        constant = builder.insert(arith.ConstantOp(2.0, F32))
        builder.insert(memref_d.StoreOp(constant.result, fn.arguments[0],
                                        [const_index(builder, 0)]))
        finish_function(builder)
        return module, constant

    def test_program_cached_per_module_and_machine(self):
        module, _ = self._constant_store_module()
        assert program_for(module, XEON_8375C) is program_for(module, XEON_8375C)

    def test_invalidate_compiled_recompiles(self):
        module, constant = self._constant_store_module()
        data = np.zeros(4, dtype=np.float32)
        CompiledEngine(module).run("main", [data])
        assert data[0] == pytest.approx(2.0)

        # mutating an already-executed module requires explicit invalidation
        constant.attributes["value"] = 5.0
        CompiledEngine(module).run("main", [data])
        assert data[0] == pytest.approx(2.0)  # stale by design (documented)
        invalidate_compiled(module)
        CompiledEngine(module).run("main", [data])
        assert data[0] == pytest.approx(5.0)


class TestErrors:
    def test_unknown_function(self):
        with pytest.raises(InterpreterError, match="no function body"):
            CompiledEngine(func.ModuleOp()).run("missing", [])

    def test_argument_arity(self):
        module, fn, builder = build_function("main", [memref((4,), F32)], ["buf"])
        finish_function(builder)
        with pytest.raises(InterpreterError, match="expected 1 arguments, got 0"):
            CompiledEngine(module).run("main", [])

    def test_barrier_outside_parallel(self):
        module, fn, builder = build_function("main", [memref((4,), F32)], ["buf"])
        insert_barrier(builder, [])
        finish_function(builder)
        with pytest.raises(InterpreterError, match="outside a parallel context"):
            CompiledEngine(module).run("main", [np.zeros(4, dtype=np.float32)])

    def test_dynamic_op_budget(self):
        module, fn, builder = build_function("main", [memref((64,), F32)], ["buf"])
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        as_float = inner.insert(arith.SIToFPOp(
            inner.insert(arith.IndexCastOp(tid, I32)).result, F32))
        inner.insert(memref_d.StoreOp(as_float.result, fn.arguments[0], [tid]))
        close_parallel(inner)
        finish_function(builder)
        with pytest.raises(InterpreterError, match="budget exceeded"):
            CompiledEngine(module, max_dynamic_ops=10).run(
                "main", [np.zeros(64, dtype=np.float32)])

    def test_collect_cost_disabled(self):
        module, fn, builder = build_function("main", [memref((8,), F32)], ["buf"])
        loop, inner = build_parallel(builder, 8)
        tid = loop.induction_vars[0]
        as_float = inner.insert(arith.SIToFPOp(
            inner.insert(arith.IndexCastOp(tid, I32)).result, F32))
        inner.insert(memref_d.StoreOp(as_float.result, fn.arguments[0], [tid]))
        close_parallel(inner)
        finish_function(builder)
        engine = CompiledEngine(module, collect_cost=False)
        engine.run("main", [np.zeros(8, dtype=np.float32)])
        assert engine.report.cycles == 0.0
        assert engine.report.dynamic_ops > 0
