"""Cross-engine differential fuzzing: generated kernels, four engines.

``tests/helpers.generate_fuzz_kernel`` draws random CUDA kernels from a
grammar over arith expressions, memref loads/stores, ``scf.for`` loops,
``scf.if`` branches, optional ``__syncthreads`` (staging and tree
reductions), 1D/2D grids and guarded stores, across four pipeline
configurations.  Every kernel runs through all four engines
(``interp``/``compiled``/``vectorized``/``multicore``); outputs and
CostReports must be bit-identical — this extends
``test_engine_parity.py`` from the hand-picked Rodinia kernels to
generated coverage.

Knobs: ``REPRO_FUZZ_COUNT`` (kernel count, default 60, CI smoke uses a
reduced count) and ``REPRO_FUZZ_SEED`` (base seed, default 0).  Every
failure message carries the kernel's full description, so a divergence
reproduces from the seed alone.
"""

import os

import pytest

from repro.runtime import shutdown_worker_pools
from tests.helpers import FuzzKernel, generate_fuzz_kernel, run_engine_matrix

FUZZ_COUNT = max(1, int(os.environ.get("REPRO_FUZZ_COUNT", "60")))
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))
SEEDS = list(range(FUZZ_SEED, FUZZ_SEED + FUZZ_COUNT))

#: output buffer index in the generated launch signature (a, b, out, n).
OUT_INDEX = (2,)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()


def _check_kernel(kernel: FuzzKernel) -> None:
    module = kernel.compile(cuda_lower=True)
    run_engine_matrix(module, kernel.entry, kernel.make_args, OUT_INDEX,
                      workers=2, label=kernel.description)
    if kernel.has_barrier:
        # the un-lowered module exercises SIMT barrier-phase execution on
        # every engine (the GPU-semantics oracle path).
        oracle = kernel.compile(cuda_lower=False)
        run_engine_matrix(oracle, kernel.entry, kernel.make_args, OUT_INDEX,
                          workers=2, label=kernel.description + " [oracle]")


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_kernel_engine_parity(seed):
    _check_kernel(generate_fuzz_kernel(seed))


class TestGeneratorCoverage:
    """The grammar must actually exercise the constructs it claims to."""

    def test_determinism(self):
        first = generate_fuzz_kernel(12345)
        second = generate_fuzz_kernel(12345)
        assert first.source == second.source
        assert first.description == second.description
        import numpy as np
        for left, right in zip(first.make_args(), second.make_args()):
            np.testing.assert_array_equal(np.asarray(left), np.asarray(right))

    def test_corpus_covers_grammar(self):
        corpus = [generate_fuzz_kernel(seed) for seed in range(80)]
        assert any(k.has_barrier for k in corpus)
        assert any(not k.has_barrier for k in corpus)
        assert any(k.dims == 2 for k in corpus)
        assert any(k.guarded for k in corpus)
        assert any(k.has_while for k in corpus)
        assert any(k.barrier_loop for k in corpus)
        assert any("for (int i" in k.source for k in corpus)
        assert any("if (" in k.source for k in corpus)
        assert any("__syncthreads" in k.source for k in corpus)
        assert any("do {" in k.source for k in corpus)
        assert any("while (rounds > 0)" in k.source for k in corpus)
        assert len({k.pipeline for k in corpus}) >= 3

    def test_distinct_seeds_distinct_kernels(self):
        sources = {generate_fuzz_kernel(seed).source for seed in range(40)}
        assert len(sources) >= 30  # near-unique; collisions would weaken coverage
