"""Differential tests: compiled/vectorized/multicore/native vs. the interpreter.

Every Rodinia suite kernel (cuda-lowered, OpenMP reference and un-lowered
SIMT oracle variants) plus the quickstart example runs through **all five**
execution engines; outputs must be bit-identical and the simulated-cycle
``CostReport``s must match field for field (``cycles``, ``dynamic_ops``,
phases, traffic, ...).  This is what allows the fast engines to run
everywhere while the interpreter stays the semantic oracle — it pins the
vectorized engine's analytic cost accounting to the interpreter's
sequential accumulation bit for bit, the multicore engine's per-worker
cost folding (and shared-memory in-place stores) to the same sequential
result across two real worker processes, and the native engine's
C-accumulated counters (OpenMP ``reduction(+)`` partial sums) to the same
totals through a real compiled shared object.
"""

import numpy as np
import pytest

from repro.frontend import compile_cuda
from repro.rodinia import BENCHMARKS
from repro.runtime import (
    A64FX_CMG,
    CompiledEngine,
    Interpreter,
    MulticoreEngine,
    NativeEngine,
    VectorizedEngine,
    XEON_8375C,
    shutdown_worker_pools,
)
from repro.transforms import PipelineOptions
from tests.helpers import report_fields

ALL_NAMES = sorted(BENCHMARKS)
OMP_NAMES = sorted(n for n in BENCHMARKS if BENCHMARKS[n].omp_source is not None)
#: barrier-heavy kernels whose oracle runs exercise SIMT phase execution.
ORACLE_NAMES = ["backprop layerforward", "hotspot", "lud", "nw", "particlefilter",
                "pathfinder"]


def _multicore_two_workers(module, **kwargs):
    """Multicore engine pinned at two workers (degrades to in-process when
    fork/shared memory are unavailable — the parity contract still holds)."""
    return MulticoreEngine(module, workers=2, **kwargs)


_multicore_two_workers.__name__ = "MulticoreEngine[workers=2]"

#: the non-interpreter engines checked against the oracle.  The native
#: engine degrades to compiled plans on hosts without ``cc -fopenmp`` —
#: the parity contract holds either way.
FAST_ENGINES = [CompiledEngine, VectorizedEngine, _multicore_two_workers,
                NativeEngine]


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()

QUICKSTART_CUDA = """
__device__ float sum(float* data, int n) {
    float total = 0.0f;
    for (int i = 0; i < n; i++) {
        total += data[i];
    }
    return total;
}

__global__ void normalize(float* out, float* in, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float val = sum(in, n);
    if (tid < n) {
        out[tid] = in[tid] / val;
    }
}

void launch(float* d_out, float* d_in, int n) {
    normalize<<<(n + 31) / 32, 32>>>(d_out, d_in, n);
}
"""


def assert_engines_agree(module, entry, make_args, output_indices, *,
                         machine=XEON_8375C, threads=None):
    oracle_args = make_args()
    interpreter = Interpreter(module, machine=machine, threads=threads)
    interpreter.run(entry, oracle_args)

    for engine_factory in FAST_ENGINES:
        engine_args = make_args()
        engine = engine_factory(module, machine=machine, threads=threads)
        engine.run(entry, engine_args)
        for index in output_indices:
            np.testing.assert_array_equal(
                np.asarray(oracle_args[index]), np.asarray(engine_args[index]),
                err_msg=f"output {index} diverged between the interpreter "
                        f"and {engine_factory.__name__}")
        assert report_fields(interpreter.report) == report_fields(engine.report), (
            f"cost reports diverged for {engine_factory.__name__}:"
            f"\n  interp {report_fields(interpreter.report)}"
            f"\n  engine {report_fields(engine.report)}")


class TestRodiniaParity:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_cuda_lowered_parity(self, name):
        bench = BENCHMARKS[name]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        assert_engines_agree(module, bench.entry, lambda: bench.make_inputs(1),
                             bench.output_indices)

    @pytest.mark.parametrize("name", OMP_NAMES)
    def test_openmp_reference_parity(self, name):
        bench = BENCHMARKS[name]
        module = bench.compile_openmp()
        assert_engines_agree(module, bench.entry, lambda: bench.make_inputs(1),
                             bench.output_indices)

    @pytest.mark.parametrize("name", ORACLE_NAMES)
    def test_simt_oracle_parity(self, name):
        bench = BENCHMARKS[name]
        module = bench.compile_cuda(cuda_lower=False)
        assert_engines_agree(module, bench.entry, lambda: bench.make_inputs(1),
                             bench.output_indices)

    def test_opt_disabled_parity(self):
        bench = BENCHMARKS["backprop layerforward"]
        module = bench.compile_cuda(PipelineOptions.opt_disabled())
        assert_engines_agree(module, bench.entry, lambda: bench.make_inputs(1),
                             bench.output_indices)

    @pytest.mark.parametrize("name", ["matmul", "nw", "srad_v1"])
    def test_larger_scale_parity(self, name):
        """Scale-2 inputs: more lanes per vectorized region, same reports."""
        bench = BENCHMARKS[name]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        assert_engines_agree(module, bench.entry, lambda: bench.make_inputs(2),
                             bench.output_indices)


class TestQuickstartParity:
    def _make_args(self):
        n = 128
        rng = np.random.default_rng(0)
        data = rng.random(n).astype(np.float32) + 0.5
        return [np.zeros(n, dtype=np.float32), data, n]

    @pytest.mark.parametrize("lower", [False, True])
    def test_quickstart_parity(self, lower):
        kwargs = ({"cuda_lower": True, "options": PipelineOptions.all_optimizations()}
                  if lower else {})
        module = compile_cuda(QUICKSTART_CUDA, **kwargs)
        assert_engines_agree(module, "launch", self._make_args, (0,), threads=32)

    def test_quickstart_parity_a64fx(self):
        """Machine-model constants are baked into compiled closures per
        machine; the A64FX's non-dyadic HBM access cost additionally disables
        vectorization, so this pins the engine-level fallback too."""
        module = compile_cuda(QUICKSTART_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        assert_engines_agree(module, "launch", self._make_args, (0,),
                             machine=A64FX_CMG, threads=12)

    def test_thread_sweep_parity(self):
        """Same compiled module across thread counts (cache reuse path)."""
        module = compile_cuda(QUICKSTART_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        for threads in (1, 4, 32):
            assert_engines_agree(module, "launch", self._make_args, (0,),
                                 threads=threads)
