"""Five-engine regression suites for the two formerly-fallback region classes.

The native backend originally rejected (a) ``scf.while`` loops and (b)
barriers under control flow, falling back per region to the compiled
closures.  Both classes now compile to C — (a) as a structural loop over
the while op's before/after regions with the compiled engine's exact
per-iteration cost charge, (b) as structured-control-flow phase chunking
(uniform guards only) with min-cut-chosen phase-crossing lanes.  These
tests pin each class across all five engines — outputs and CostReports
bit-identical to the interpreter — and, where the toolchain exists, assert
the regions really execute native rather than silently falling back.
"""

import numpy as np
import pytest

from repro.frontend import compile_cuda
from repro.runtime import Interpreter, NativeEngine, native_available
from repro.transforms import PipelineOptions
from tests.helpers import report_fields, run_engine_matrix

needs_cc = pytest.mark.skipif(not native_available(),
                              reason="no working cc -fopenmp")

#: (a, b, out, n) launch signature shared by all kernels here.
OUT = (2,)

# -- class (a): scf.while ----------------------------------------------------
WHILE_SPAN_CUDA = """
__global__ void scale(float* a, float* b, float* out, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) {
        float v = a[gid] + 0.125f;
        float c = 0.0f;
        while (v < 8.0f) {
            v = v * 2.0f;
            c = c + 1.0f;
        }
        out[gid] = v + c * b[gid];
    }
}
void launch(float* a, float* b, float* out, int n) {
    scale<<<(n + 31) / 32, 32>>>(a, b, out, n);
}
"""

DO_WHILE_SPAN_CUDA = """
__global__ void scale(float* a, float* b, float* out, int n) {
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) {
        float v = a[gid];
        int k = 0;
        do {
            v = v * 0.5f + b[gid];
            k = k + 1;
        } while (k < 3);
        out[gid] = v;
    }
}
void launch(float* a, float* b, float* out, int n) {
    scale<<<(n + 31) / 32, 32>>>(a, b, out, n);
}
"""

# -- class (b): barriers under (uniform) control flow ------------------------
BARRIER_FOR_CUDA = """
__global__ void reduce(float* a, float* b, float* out, int n) {
    int tx = threadIdx.x;
    int gid = blockIdx.x * blockDim.x + tx;
    __shared__ float buf[32];
    buf[tx] = a[gid] + b[gid];
    __syncthreads();
    for (int s = 16; s > 0; s = s / 2) {
        if (tx < s) {
            buf[tx] = buf[tx] + buf[tx + s];
        }
        __syncthreads();
    }
    out[gid] = buf[0] + a[gid];
}
void launch(float* a, float* b, float* out, int n) {
    reduce<<<n / 32, 32>>>(a, b, out, n);
}
"""

BARRIER_WHILE_CUDA = """
__global__ void relax(float* a, float* b, float* out, int n) {
    int tx = threadIdx.x;
    int gid = blockIdx.x * blockDim.x + tx;
    __shared__ float buf[32];
    buf[tx] = a[gid];
    __syncthreads();
    int rounds = 3;
    while (rounds > 0) {
        float v = buf[(tx + 1) % 32];
        __syncthreads();
        buf[tx] = v * 0.5f + b[gid];
        __syncthreads();
        rounds = rounds - 1;
    }
    out[gid] = buf[tx] + buf[0] * 0.125f;
}
void launch(float* a, float* b, float* out, int n) {
    relax<<<n / 32, 32>>>(a, b, out, n);
}
"""


def _make_args(n=128, seed=3):
    rng = np.random.default_rng(seed)
    a = (rng.random(n, dtype=np.float64).astype(np.float32) + 0.1)
    b = (rng.random(n, dtype=np.float64).astype(np.float32) + 0.1)
    return [a, b, np.zeros(n, dtype=np.float32), n]


def _assert_region_native(source, *, cuda_lower):
    """Native engine vs. interpreter on one module, asserting the region
    compiled (no per-region fallback) when the toolchain is available."""
    options = PipelineOptions.all_optimizations() if cuda_lower else None
    module = compile_cuda(source, cuda_lower=cuda_lower, options=options)
    interp_args = _make_args()
    interp = Interpreter(module)
    interp.run("launch", interp_args)
    native_args = _make_args()
    engine = NativeEngine(module)
    engine.run("launch", native_args)
    np.testing.assert_array_equal(interp_args[2], native_args[2])
    assert report_fields(interp.report) == report_fields(engine.report)
    stats = engine.native_stats
    assert stats["fallback_regions"] == 0
    assert stats["native_dispatches"] >= 1
    return stats


CLASS_SOURCES = {
    "while-span": WHILE_SPAN_CUDA,
    "do-while-span": DO_WHILE_SPAN_CUDA,
    "barrier-for": BARRIER_FOR_CUDA,
    "barrier-while": BARRIER_WHILE_CUDA,
}


class TestFiveEngineParity:
    """Both region classes, cpuified and SIMT-oracle paths, five engines."""

    @pytest.mark.parametrize("name", sorted(CLASS_SOURCES))
    def test_lowered_parity(self, name):
        module = compile_cuda(CLASS_SOURCES[name], cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        run_engine_matrix(module, "launch", _make_args, OUT,
                          workers=2, label=f"{name} [lowered]")

    @pytest.mark.parametrize("name", sorted(CLASS_SOURCES))
    def test_oracle_parity(self, name):
        module = compile_cuda(CLASS_SOURCES[name], cuda_lower=False)
        run_engine_matrix(module, "launch", _make_args, OUT,
                          workers=2, label=f"{name} [oracle]")


@needs_cc
class TestNativeCompilesBothClasses:
    def test_while_span_compiles_native(self):
        _assert_region_native(WHILE_SPAN_CUDA, cuda_lower=True)

    def test_do_while_span_compiles_native(self):
        _assert_region_native(DO_WHILE_SPAN_CUDA, cuda_lower=True)

    def test_guarded_barrier_launch_compiles_native(self):
        stats = _assert_region_native(BARRIER_FOR_CUDA, cuda_lower=False)
        assert stats["native_regions"] >= 1

    def test_barrier_in_while_launch_compiles_native(self):
        stats = _assert_region_native(BARRIER_WHILE_CUDA, cuda_lower=False)
        assert stats["native_regions"] >= 1

    def test_thread_varying_guard_still_falls_back(self):
        """A barrier under a *thread-varying* branch is outside the uniform
        contract: the region must fall back, not miscompile."""
        source = """
        __global__ void k(float* a, float* b, float* out, int n) {
            int tx = threadIdx.x;
            int gid = blockIdx.x * blockDim.x + tx;
            __shared__ float buf[32];
            buf[tx] = a[gid];
            if (tx < 16) {
                __syncthreads();
            }
            out[gid] = buf[0] + b[gid];
        }
        void launch(float* a, float* b, float* out, int n) {
            k<<<n / 32, 32>>>(a, b, out, n);
        }
        """
        module = compile_cuda(source, cuda_lower=False)
        engine = NativeEngine(module)
        engine.run("launch", _make_args())
        assert engine.native_stats["fallback_regions"] >= 1


@needs_cc
class TestKnobParity:
    """The simd / phase-split knobs change the generated C, never results."""

    @pytest.mark.parametrize("simd,phase_split", [(False, True), (True, False),
                                                  (False, False)])
    def test_knob_variants_bit_identical(self, simd, phase_split):
        module = compile_cuda(BARRIER_WHILE_CUDA, cuda_lower=False)
        interp_args = _make_args()
        interp = Interpreter(module)
        interp.run("launch", interp_args)
        native_args = _make_args()
        engine = NativeEngine(module, simd=simd, phase_split=phase_split)
        engine.run("launch", native_args)
        np.testing.assert_array_equal(interp_args[2], native_args[2])
        assert report_fields(interp.report) == report_fields(engine.report)
        assert engine.native_stats["fallback_regions"] == 0
