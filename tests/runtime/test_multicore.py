"""Multicore engine unit tests: registry, shard analysis, knobs, budget.

Output/cost parity with the interpreter over the full Rodinia matrix lives
in ``test_engine_parity.py``; this file pins the engine-specific machinery:
the registration-based engine registry, the write-write-safety analysis
decisions (what shards, what must stay in-process), the worker/inner knobs
and their environment variables, budget enforcement across shards, and the
caller-visible output contract after shared-memory promotion.
"""

import numpy as np
import pytest

from repro.frontend import compile_cuda
from repro.rodinia import BENCHMARKS
from repro.runtime import (
    A64FX_CMG,
    Interpreter,
    InterpreterError,
    MulticoreEngine,
    engine_names,
    make_executor,
    multicore_available,
    register_engine,
    resolve_engine,
    shutdown_worker_pools,
)
from repro.runtime.multicore import (
    INNER_COMPILED,
    INNER_VECTORIZED,
    WORKERS_ENV_VAR,
    _split_spans,
    default_workers,
    resolve_inner,
)
from repro.transforms import PipelineOptions

needs_pool = pytest.mark.skipif(not multicore_available(),
                                reason="fork/shared memory unavailable")

#: a kernel whose only global store races on one location: every thread
#: writes ``out[0]``, so sequential thread order decides the winner and the
#: engine must refuse to shard it.
RACY_CUDA = """
__global__ void racy(float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    out[0] = 1.0f * tid;
}

void launch(float* d_out, int n) {
    racy<<<(n + 31) / 32, 32>>>(d_out, n);
}
"""

#: the canonical shardable kernel: each thread owns out[tid].
OWNED_CUDA = """
__global__ void scale(float* out, float* in, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) {
        out[tid] = in[tid] * 3.0f;
    }
}

void launch(float* d_out, float* d_in, int n) {
    scale<<<(n + 31) / 32, 32>>>(d_out, d_in, n);
}
"""

#: a racy kernel hiding behind a *two-store* stack cell: the branch is
#: always taken, so j == n - tid and every thread writes out[tid + j]
#: == out[n].  A load of a multi-store cell must classify lane-dirty —
#: treating it as uniform would make tid + j look injective.
TWO_STORE_CELL_CUDA = """
__global__ void twostore(float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    int j = 0;
    if (tid >= 0) { j = n - tid; }
    out[tid + j] = 1.0f * tid;
}

void launch(float* d_out, int n) {
    twostore<<<(n + 31) / 32, 32>>>(d_out, n);
}
"""

#: a racy kernel hiding behind a *control-dependent* single store: threads
#: with tid < n never take the branch, load the zero-initialized cell and
#: collide on out[0].  Only a store that unconditionally dominates the
#: load may hand its descriptor to the load.
COND_STORE_CELL_CUDA = """
__global__ void condstore(float* out, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    int j;
    if (tid >= n) { j = tid; }
    out[j] = 1.0f * tid;
}

void launch(float* d_out, int n) {
    condstore<<<(n + 31) / 32, 32>>>(d_out, n);
}
"""

#: two regions where only the second ships both potentially-aliased
#: buffers: sharding region one alone would already sever the aliasing.
PARTIAL_ALIAS_CUDA = """
__global__ void bump(float* a, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) { a[tid] = a[tid] + 1.0f; }
}

__global__ void combine(float* a, float* b, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid < n) { a[tid] = a[tid] + b[tid]; }
}

void launch(float* x, float* y, int n) {
    bump<<<(n + 31) / 32, 32>>>(x, n);
    combine<<<(n + 31) / 32, 32>>>(x, y, n);
}
"""


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()


class TestEngineRegistry:
    def test_builtin_engines_registered(self):
        names = engine_names()
        assert names == ("compiled", "vectorized", "multicore", "native",
                         "interp", "auto")

    def test_resolve_engine_accepts_multicore(self):
        assert resolve_engine("multicore") == "multicore"

    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("cuda")

    def test_make_executor_forwards_workers(self):
        module = compile_cuda(OWNED_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        executor = make_executor(module, engine="multicore", workers=3)
        assert isinstance(executor, MulticoreEngine)
        assert executor.workers == 3

    def test_self_registration_extends_the_registry(self):
        sentinel = object()
        register_engine("test-dummy", lambda module, **kwargs: sentinel,
                        order=99, description="test")
        try:
            assert "test-dummy" in engine_names()
            module = compile_cuda(OWNED_CUDA)
            assert make_executor(module, engine="test-dummy") is sentinel
        finally:
            from repro.runtime.registry import _DESCRIPTIONS, _FACTORIES, _ORDERS
            for table in (_FACTORIES, _DESCRIPTIONS, _ORDERS):
                table.pop("test-dummy", None)


class TestKnobs:
    def test_workers_env_default(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "7")
        assert default_workers() == 7
        module = compile_cuda(OWNED_CUDA)
        assert MulticoreEngine(module).workers == 7

    def test_workers_must_be_positive(self):
        module = compile_cuda(OWNED_CUDA)
        with pytest.raises(ValueError, match="workers must be >= 1"):
            MulticoreEngine(module, workers=0)

    def test_inner_env_and_validation(self, monkeypatch):
        assert resolve_inner(None) == INNER_COMPILED
        monkeypatch.setenv("REPRO_MULTICORE_INNER", INNER_VECTORIZED)
        assert resolve_inner(None) == INNER_VECTORIZED
        with pytest.raises(ValueError, match="unknown multicore inner engine"):
            resolve_inner("interp")

    def test_inner_selects_program_flavour(self):
        module = compile_cuda(OWNED_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        compiled_flavour = MulticoreEngine(module, workers=1, inner="compiled")
        vector_flavour = MulticoreEngine(module, workers=1, inner="vectorized")
        assert type(compiled_flavour._program) is not type(vector_flavour._program)

    def test_split_spans_contiguous_and_balanced(self):
        assert _split_spans(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert _split_spans(4, 4) == [(0, 1), (1, 2), (2, 3), (3, 4)]


class TestShardAnalysis:
    def test_owned_store_pattern_is_shardable(self):
        module = compile_cuda(OWNED_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        engine = MulticoreEngine(module, workers=2)
        n = 256
        engine.run("launch", [np.zeros(n, dtype=np.float32),
                              np.ones(n, dtype=np.float32), n])
        assert engine.shard_stats["sharded_regions"] >= 1
        assert engine.shard_stats["rejected_regions"] == 0

    def test_racy_store_never_dispatches(self):
        module = compile_cuda(RACY_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        n = 256
        reference = np.zeros(4, dtype=np.float32)
        Interpreter(module).run("launch", [reference, n])
        engine = MulticoreEngine(module, workers=2)
        output = np.zeros(4, dtype=np.float32)
        engine.run("launch", [output, n])
        # the uniform-index store covers no lane dim: the region may compile
        # as "shardable with every dim required singleton" but must never
        # dispatch over a >1-wide space — sequential order decides out[0].
        assert engine.shard_stats["dispatches"] == 0
        np.testing.assert_array_equal(output, reference)

    @pytest.mark.parametrize("source", [TWO_STORE_CELL_CUDA,
                                        COND_STORE_CELL_CUDA],
                             ids=["two-store-cell", "cond-store-cell"])
    def test_racy_stack_cell_patterns_never_dispatch(self, source):
        """Cell loads whose value is not pinned by a single dominating
        top-level store must classify lane-dirty: both kernels collide on
        one output element, so dispatching them would race."""
        module = compile_cuda(source, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        n = 256
        size = n + 32
        reference = np.zeros(size, dtype=np.float32)
        Interpreter(module).run("launch", [reference, n])
        engine = MulticoreEngine(module, workers=2)
        output = np.zeros(size, dtype=np.float32)
        engine.run("launch", [output, n])
        assert engine.shard_stats["dispatches"] == 0
        np.testing.assert_array_equal(output, reference)

    def test_non_dyadic_machine_disables_sharding(self):
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        engine = MulticoreEngine(module, machine=A64FX_CMG, workers=2)
        engine.run(bench.entry, bench.make_inputs(1))
        assert engine.shard_stats["sharded_regions"] == 0
        assert engine.shard_stats["dispatches"] == 0

    @needs_pool
    def test_matmul_wsloop_dispatches(self):
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        engine = MulticoreEngine(module, workers=2)
        engine.run(bench.entry, bench.make_inputs(1))
        assert engine.shard_stats["dispatches"] == 1
        assert engine.shard_stats["inline_runs"] == 0

    @needs_pool
    def test_oracle_launch_dispatches_with_barriers(self):
        bench = BENCHMARKS["hotspot"]
        module = bench.compile_cuda(cuda_lower=False)
        engine = MulticoreEngine(module, workers=2)
        engine.run(bench.entry, bench.make_inputs(4))
        assert engine.shard_stats["dispatches"] == 1


class TestExecution:
    def test_workers_one_stays_in_process(self):
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        engine = MulticoreEngine(module, workers=1)
        engine.run(bench.entry, bench.make_inputs(1))
        assert engine.shard_stats["dispatches"] == 0

    @needs_pool
    def test_budget_enforced_across_shards(self):
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        engine = MulticoreEngine(module, workers=2, max_dynamic_ops=100)
        with pytest.raises(InterpreterError, match="dynamic operation budget"):
            engine.run(bench.entry, bench.make_inputs(1))

    @needs_pool
    def test_caller_sees_outputs_after_promotion(self):
        module = compile_cuda(OWNED_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        n = 256
        out = np.zeros(n, dtype=np.float32)
        data = np.arange(n, dtype=np.float32)
        engine = MulticoreEngine(module, workers=2)
        engine.run("launch", [out, data, n])
        assert engine.shard_stats["dispatches"] == 1
        np.testing.assert_array_equal(out, data * 3.0)

    @needs_pool
    def test_pool_reused_across_runs(self):
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        engine = MulticoreEngine(module, workers=2)
        engine.run(bench.entry, bench.make_inputs(1))
        engine.run(bench.entry, bench.make_inputs(1))
        assert engine.shard_stats["dispatches"] == 2
        assert len(engine._program._pools) == 1

    @needs_pool
    def test_aliased_arguments_stay_in_process(self):
        """The same ndarray passed as two arguments must keep aliasing:
        promotion into two independent segments would sever it, so such
        runs fall back in-process and match the compiled engine."""
        module = compile_cuda(OWNED_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        n = 256
        shared = np.arange(n, dtype=np.float32)
        expected = shared.copy() * 3.0
        engine = MulticoreEngine(module, workers=2)
        engine.run("launch", [shared, shared, n])  # in-place out == in
        assert engine.shard_stats["dispatches"] == 0
        np.testing.assert_array_equal(shared, expected)

    @needs_pool
    def test_partial_aliasing_across_regions_stays_in_process(self):
        """Aliasing is a *run*-level property: the first region ships only
        one of the two aliased buffers, so a per-dispatch check would let
        its promotion sever the aliasing for every later region."""
        module = compile_cuda(PARTIAL_ALIAS_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        n = 256
        reference = np.arange(n, dtype=np.float32)
        Interpreter(module).run("launch", [reference, reference, n])
        shared = np.arange(n, dtype=np.float32)
        engine = MulticoreEngine(module, workers=2)
        engine.run("launch", [shared, shared, n])
        assert engine.shard_stats["dispatches"] == 0
        np.testing.assert_array_equal(shared, reference)

    @needs_pool
    def test_promotion_failure_degrades_to_in_process(self, monkeypatch):
        """/dev/shm filling up mid-run (promote raising OSError) must
        demote the run to in-process execution, not abort it."""
        from repro.runtime import sharedmem

        def full_shm(storage):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(sharedmem, "promote", full_shm)
        module = compile_cuda(OWNED_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        n = 256
        out = np.zeros(n, dtype=np.float32)
        data = np.arange(n, dtype=np.float32)
        engine = MulticoreEngine(module, workers=2)
        engine.run("launch", [out, data, n])
        assert engine.shard_stats["dispatches"] == 0
        assert engine.shard_stats["inline_runs"] >= 1
        assert engine._program._pool_broken
        assert not engine._program._pools  # idle workers released, not leaked
        np.testing.assert_array_equal(out, data * 3.0)

    @needs_pool
    def test_read_only_input_survives_promotion(self):
        """A read-only input that ships to workers is promoted; the
        end-of-run copy-back must skip it instead of raising."""
        module = compile_cuda(OWNED_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        n = 256
        out = np.zeros(n, dtype=np.float32)
        data = np.arange(n, dtype=np.float32)
        data.setflags(write=False)
        engine = MulticoreEngine(module, workers=2)
        engine.run("launch", [out, data, n])
        assert engine.shard_stats["dispatches"] == 1
        np.testing.assert_array_equal(out, np.arange(n, dtype=np.float32) * 3.0)
        assert not data.flags.writeable

    @needs_pool
    def test_write_to_read_only_buffer_raises_like_other_engines(self):
        """A kernel storing into a read-only buffer raises ValueError on
        every in-process engine; sharded workers see a read-only view of
        the promoted segment, so multicore raises too instead of silently
        writing (and then discarding) a shared copy."""
        from repro.runtime import CompiledEngine
        module = compile_cuda(OWNED_CUDA, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        n = 256
        data = np.arange(n, dtype=np.float32)
        for make in (lambda: CompiledEngine(module),
                     lambda: MulticoreEngine(module, workers=2)):
            out = np.zeros(n, dtype=np.float32)
            out.setflags(write=False)
            with pytest.raises(ValueError):
                make().run("launch", [out, data, n])

    @needs_pool
    def test_worker_segment_caches_evicted_between_runs(self):
        """Each run promotes fresh segments; workers must not pin every
        past run's mappings for the pool's lifetime."""
        from repro.runtime import sharedmem
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        engine = MulticoreEngine(module, workers=2)
        for _ in range(5):
            engine.run(bench.entry, bench.make_inputs(1))
        assert engine.shard_stats["dispatches"] == 5
        # parent-side segments die with their storages (run arguments)
        import gc
        gc.collect()
        assert sharedmem.owned_segment_count() == 0

    @needs_pool
    @pytest.mark.parametrize("inner", [INNER_COMPILED, INNER_VECTORIZED])
    def test_inner_flavours_agree_with_interpreter(self, inner):
        bench = BENCHMARKS["matmul"]
        module = bench.compile_cuda(PipelineOptions.all_optimizations())
        reference_args = bench.make_inputs(2)
        interpreter = Interpreter(module)
        interpreter.run(bench.entry, reference_args)
        engine_args = bench.make_inputs(2)
        engine = MulticoreEngine(module, workers=2, inner=inner)
        engine.run(bench.entry, engine_args)
        np.testing.assert_array_equal(np.asarray(reference_args[2]),
                                      np.asarray(engine_args[2]))
        assert engine.report.cycles == interpreter.report.cycles
        assert engine.report.dynamic_ops == interpreter.report.dynamic_ops
