"""Kernel compile-cache conformance: keying, tiers, corruption, parity.

Covers the contract of :mod:`repro.runtime.cache`:

* hit/miss keying — changing the source, the pipeline options, the lowering
  mode or the noalias assumption must miss; an identical request must hit;
* the disk tier round-trips a module whose execution is bit-identical to a
  fresh compile, across a simulated process restart (memory tier cleared);
* corrupt, truncated, foreign and stale disk entries silently fall back to
  a recompile (and are replaced);
* the Rodinia parity matrix holds with the cache on, including through the
  disk tier (``REPRO_CACHE=1``).
"""

import pickle

import numpy as np
import pytest

from repro.frontend import compile_cuda
from repro.rodinia import BENCHMARKS
from repro.runtime import shutdown_worker_pools
from repro.runtime.cache import (
    CACHE_FORMAT,
    KernelCache,
    clear_global_cache,
    global_cache,
    kernel_key,
    pipeline_fingerprint,
)
from repro.transforms import PipelineOptions
from tests.helpers import run_engine_matrix

SOURCE = BENCHMARKS["matmul"].cuda_source
ALT_SOURCE = BENCHMARKS["bfs"].cuda_source


@pytest.fixture(autouse=True)
def _fresh_global_cache(monkeypatch):
    """Isolate each test from cache state accumulated by other suites — and
    from an ambient ``REPRO_CACHE=1`` (the CI disk-tier matrix sets it
    process-wide); tests that want the disk tier use ``disk_cache``."""
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    clear_global_cache()
    yield
    clear_global_cache()


@pytest.fixture()
def disk_cache(tmp_path, monkeypatch):
    """A global cache with the disk tier active in a temp directory."""
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_global_cache()
    yield tmp_path
    clear_global_cache()


class TestKeying:
    def test_identical_request_hits(self):
        module1 = compile_cuda(SOURCE, cuda_lower=True)
        module2 = compile_cuda(SOURCE, cuda_lower=True)
        stats = global_cache().stats
        assert stats.memory_hits == 1 and stats.misses == 1
        assert module1 is not module2  # default mode hands out private copies

    def test_shared_mode_returns_canonical_object(self):
        module1 = compile_cuda(SOURCE, cuda_lower=True, cache="shared")
        module2 = compile_cuda(SOURCE, cuda_lower=True, cache="shared")
        assert module1 is module2

    def test_source_change_misses(self):
        compile_cuda(SOURCE, cuda_lower=True)
        compile_cuda(ALT_SOURCE, cuda_lower=True)
        assert global_cache().stats.misses == 2

    def test_options_change_misses(self):
        compile_cuda(SOURCE, cuda_lower=True,
                     options=PipelineOptions.all_optimizations())
        compile_cuda(SOURCE, cuda_lower=True,
                     options=PipelineOptions.opt_disabled())
        assert global_cache().stats.misses == 2

    def test_lowering_mode_misses(self):
        compile_cuda(SOURCE, cuda_lower=True)
        compile_cuda(SOURCE, cuda_lower=False)
        assert global_cache().stats.misses == 2

    def test_key_ignores_filename(self):
        assert (kernel_key(SOURCE, cuda_lower=True)
                == kernel_key(SOURCE, cuda_lower=True))
        compile_cuda(SOURCE, filename="one.cu", cuda_lower=True)
        compile_cuda(SOURCE, filename="two.cu", cuda_lower=True)
        assert global_cache().stats.memory_hits == 1

    def test_key_covers_noalias(self):
        assert (kernel_key(SOURCE, cuda_lower=True, noalias=True)
                != kernel_key(SOURCE, cuda_lower=True, noalias=False))

    def test_flag_string_and_options_key_identically(self):
        flags = "mincut,openmpopt"
        compile_cuda(SOURCE, cuda_lower=True, cpuify_options=flags)
        compile_cuda(SOURCE, cuda_lower=True,
                     options=PipelineOptions.from_flags(flags))
        stats = global_cache().stats
        assert stats.memory_hits == 1 and stats.misses == 1

    def test_pipeline_fingerprint_distinguishes_options(self):
        assert (pipeline_fingerprint(PipelineOptions.all_optimizations())
                != pipeline_fingerprint(PipelineOptions.opt_disabled()))

    def test_cache_false_bypasses(self):
        compile_cuda(SOURCE, cuda_lower=True, cache=False)
        compile_cuda(SOURCE, cuda_lower=True, cache=False)
        stats = global_cache().stats
        assert stats.hits == 0 and stats.stores == 0

    def test_copy_hits_are_independent_modules(self):
        """Mutating a cache-copy must not leak into later hits."""
        bench = BENCHMARKS["matmul"]
        module1 = compile_cuda(SOURCE, cuda_lower=True)
        function_count = len(list(module1.functions))
        module1.functions.clear()  # caller-side mutation of the private copy
        module2 = compile_cuda(SOURCE, cuda_lower=True)
        assert len(list(module2.functions)) == function_count
        args = bench.make_inputs(1)
        from repro.runtime import make_executor
        make_executor(module2).run(bench.entry, args)  # still executable


class TestLRU:
    def test_capacity_evicts_oldest(self):
        cache = KernelCache(capacity=2, disk_dir=False)
        for index, payload in enumerate(["one", "two", "three"]):
            cache.insert(f"key{index}", payload)
        assert len(cache) == 2
        assert cache.lookup("key0") is None
        assert cache.lookup("key2") == "three"

    def test_lookup_refreshes_recency(self):
        cache = KernelCache(capacity=2, disk_dir=False)
        cache.insert("key0", "one")
        cache.insert("key1", "two")
        assert cache.lookup("key0") == "one"  # key0 becomes most recent
        cache.insert("key2", "three")
        assert cache.lookup("key1") is None
        assert cache.lookup("key0") == "one"


class TestDiskTier:
    def test_round_trip_bit_identical(self, disk_cache):
        bench = BENCHMARKS["hotspot"]
        fresh = bench.compile_cuda(cache=False)
        bench.compile_cuda()  # populates both tiers
        assert global_cache().stats.disk_stores == 1
        assert list(disk_cache.glob("*.pkl"))

        # simulate a new process: memory tier gone, disk tier remains.
        global_cache().clear(disk=False)
        global_cache().reset_stats()
        restored = bench.compile_cuda()
        assert global_cache().stats.disk_hits == 1

        fresh_args = bench.make_inputs(1)
        restored_args = bench.make_inputs(1)
        from repro.runtime import make_executor
        fresh_engine = make_executor(fresh)
        restored_engine = make_executor(restored)
        fresh_engine.run(bench.entry, fresh_args)
        restored_engine.run(bench.entry, restored_args)
        for index in bench.output_indices:
            np.testing.assert_array_equal(np.asarray(fresh_args[index]),
                                          np.asarray(restored_args[index]))
        assert fresh_engine.report.cycles == restored_engine.report.cycles

    def test_corrupt_entry_falls_back_to_recompile(self, disk_cache):
        bench = BENCHMARKS["lud"]
        bench.compile_cuda()
        entry_path = next(disk_cache.glob("*.pkl"))
        entry_path.write_bytes(b"\x00garbage that is not a pickle")
        global_cache().clear(disk=False)
        global_cache().reset_stats()
        module = bench.compile_cuda()
        stats = global_cache().stats
        assert stats.disk_errors >= 1 and stats.misses == 1 and stats.stores == 1
        args = bench.make_inputs(1)
        from repro.runtime import make_executor
        make_executor(module).run(bench.entry, args)  # recompile is sound

    def test_stale_format_entry_falls_back(self, disk_cache):
        bench = BENCHMARKS["lud"]
        bench.compile_cuda()
        entry_path = next(disk_cache.glob("*.pkl"))
        payload = pickle.loads(entry_path.read_bytes())
        payload["format"] = CACHE_FORMAT + 1  # written by a "newer" build
        entry_path.write_bytes(pickle.dumps(payload))
        global_cache().clear(disk=False)
        global_cache().reset_stats()
        bench.compile_cuda()
        stats = global_cache().stats
        assert stats.disk_hits == 0 and stats.disk_errors >= 1
        # the stale file was replaced with a fresh entry.
        assert global_cache().stats.disk_stores == 1

    def test_foreign_key_entry_rejected(self, disk_cache):
        """An entry renamed onto another key (hash mismatch) is stale."""
        bench = BENCHMARKS["lud"]
        bench.compile_cuda()
        entry_path = next(disk_cache.glob("*.pkl"))
        other_key = kernel_key(ALT_SOURCE, cuda_lower=True)
        entry_path.rename(disk_cache / f"{other_key}.pkl")
        global_cache().clear(disk=False)
        global_cache().reset_stats()
        compile_cuda(ALT_SOURCE, cuda_lower=True)
        assert global_cache().stats.disk_hits == 0

    def test_disk_disabled_without_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_global_cache()
        BENCHMARKS["lud"].compile_cuda()
        assert not list(tmp_path.glob("*.pkl"))


class TestCachedParity:
    """The engine-parity contract must survive both cache tiers."""

    NAMES = ["matmul", "backprop layerforward", "bfs", "nw"]

    def teardown_class(cls):
        shutdown_worker_pools()

    @pytest.mark.parametrize("name", NAMES)
    def test_rodinia_parity_through_disk_tier(self, name, disk_cache):
        bench = BENCHMARKS[name]
        bench.compile_cuda()  # populate both tiers
        global_cache().clear(disk=False)  # force the next hit through disk
        module = bench.compile_cuda()
        assert global_cache().stats.disk_hits >= 1
        run_engine_matrix(module, bench.entry, lambda: bench.make_inputs(1),
                          bench.output_indices, workers=2,
                          label=f"{name} via disk cache")

    @pytest.mark.parametrize("name", NAMES)
    def test_rodinia_parity_memory_hit_vs_fresh(self, name):
        bench = BENCHMARKS[name]
        bench.compile_cuda()
        hit = bench.compile_cuda()
        assert global_cache().stats.memory_hits >= 1
        fresh = bench.compile_cuda(cache=False)
        for module, label in ((hit, "cache hit"), (fresh, "fresh")):
            run_engine_matrix(module, bench.entry, lambda: bench.make_inputs(1),
                              bench.output_indices, workers=2,
                              label=f"{name} {label}")


class TestConcurrentColdCompiles:
    """Crash-safe publishing under racing writers (tempfile + os.replace):
    two processes cold-compiling the same key must converge on exactly one
    valid disk entry with no torn ``.tmp-`` files left behind."""

    def test_two_processes_race_to_one_valid_entry(self, disk_cache):
        import os
        import subprocess
        import sys
        import time

        child = (
            "import os, sys, time\n"
            "ready = sys.argv[1]\n"
            "go = sys.argv[2]\n"
            "open(ready, 'w').close()\n"
            "deadline = time.monotonic() + 30\n"
            "while not os.path.exists(go):\n"
            "    if time.monotonic() > deadline:\n"
            "        sys.exit(2)\n"
            "    time.sleep(0.001)\n"
            "from repro.rodinia import BENCHMARKS\n"
            "from repro.runtime import global_cache\n"
            "BENCHMARKS['lud'].compile_cuda()\n"
            "assert global_cache().stats.disk_stores == 1\n"
        )
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.path.join(os.getcwd(), "src")
        environment["REPRO_CACHE"] = "1"
        environment["REPRO_CACHE_DIR"] = str(disk_cache)
        go = disk_cache / "go"
        processes = []
        for index in range(2):
            ready = disk_cache / f"ready-{index}"
            processes.append((ready, subprocess.Popen(
                [sys.executable, "-c", child, str(ready), str(go)],
                env=environment, stderr=subprocess.PIPE)))
        deadline = time.monotonic() + 60
        while not all(ready.exists() for ready, _ in processes):
            assert time.monotonic() < deadline, "children never became ready"
            time.sleep(0.01)
        go.touch()  # release both compiles at once
        for _, process in processes:
            _, stderr = process.communicate(timeout=300)
            assert process.returncode == 0, stderr.decode()

        entries = list(disk_cache.glob("*.pkl"))
        assert len(entries) == 1
        payload = pickle.loads(entries[0].read_bytes())
        assert payload["format"] == CACHE_FORMAT
        assert payload["key"] == entries[0].stem
        assert not list(disk_cache.glob(".tmp-*"))  # no torn temp files
        # the surviving entry is actually loadable through the disk tier.
        clear_global_cache()
        global_cache().reset_stats()
        BENCHMARKS["lud"].compile_cuda()
        assert global_cache().stats.disk_hits == 1

    def test_threads_race_native_artifact_store(self, tmp_path):
        import threading

        from repro.runtime.cache import NativeArtifactCache

        cache = NativeArtifactCache(capacity=8, directory=tmp_path)
        barrier = threading.Barrier(2)
        payloads = [b"artifact-A" * 64, b"artifact-B" * 64]
        errors = []

        def store(payload):
            def build(temp):
                barrier.wait(timeout=10)  # collide the publishes
                temp.write_bytes(payload)

            try:
                cache.store("samekey", build)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=store, args=(payload,))
                   for payload in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        artifacts = list(tmp_path.glob("*.so"))
        assert len(artifacts) == 1
        assert artifacts[0].read_bytes() in payloads  # one winner, untorn
        assert not list(tmp_path.glob(".tmp-*"))


class TestTuningCacheConcurrency:
    """The tuning tier under racing clients — the service shares one
    :class:`TuningCache` across every tenant, so two clients racing a cold
    tune of the same content key must converge on exactly one entry, in
    memory and on disk, with no torn ``.tmp-`` files."""

    @staticmethod
    def _record(tag):
        return {"config": {"engine": "native", "workers": None},
                "host": {"cpus": 4}, "seconds": 0.001, "tag": tag}

    def test_threads_race_cold_lookup_then_insert(self, tmp_path):
        import threading

        from repro.runtime.cache import TuningCache

        cache = TuningCache(disk_dir=tmp_path)
        barrier = threading.Barrier(2)
        errors = []

        def tune(tag):
            try:
                barrier.wait(timeout=10)
                if cache.lookup("samekey") is None:  # both see a cold miss
                    cache.insert("samekey", self._record(tag))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=tune, args=(tag,))
                   for tag in ("A", "B")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(cache) == 1  # one converged memory entry
        winner = cache.lookup("samekey")
        assert winner["tag"] in ("A", "B")
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1  # one converged disk entry
        assert not list(tmp_path.glob(".tmp-*"))
        # the surviving record is loadable by a fresh process (memory tier
        # empty), i.e. the publish was never torn.
        fresh = TuningCache(disk_dir=tmp_path)
        assert fresh.lookup("samekey")["tag"] == winner["tag"]
        assert fresh.stats.disk_hits == 1

    def test_threads_hammer_mixed_operations(self, tmp_path):
        import threading

        from repro.runtime.cache import TuningCache

        cache = TuningCache(disk_dir=tmp_path)
        keys = ["k0", "k1", "k2"]
        barrier = threading.Barrier(6)
        errors = []

        def worker(index):
            try:
                barrier.wait(timeout=10)
                for step in range(40):
                    key = keys[(index + step) % len(keys)]
                    if step % 7 == 3:
                        cache.invalidate(key)
                    elif step % 2:
                        cache.insert(key, self._record(f"{index}.{step}"))
                    else:
                        record = cache.lookup(key)
                        assert record is None or "config" in record
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert not list(tmp_path.glob(".tmp-*"))
        # every surviving disk record is whole and well-formed.
        import json as json_module

        from repro.runtime.cache import TUNING_FORMAT

        for path in tmp_path.glob("*.json"):
            payload = json_module.loads(path.read_text())
            assert payload["format"] == TUNING_FORMAT
            assert payload["key"] == path.stem
            assert isinstance(payload["record"], dict)
        # the generation counter saw every mutation (inserts+invalidate
        # calls: 6 threads x (20 inserts + ~6 invalidations)).
        assert cache.generation >= 6 * 20

    def test_two_processes_race_to_one_valid_record(self, tmp_path):
        import json as json_module
        import os
        import subprocess
        import sys
        import time

        child = (
            "import os, sys, time\n"
            "ready = sys.argv[1]\n"
            "go = sys.argv[2]\n"
            "open(ready, 'w').close()\n"
            "deadline = time.monotonic() + 30\n"
            "while not os.path.exists(go):\n"
            "    if time.monotonic() > deadline:\n"
            "        sys.exit(2)\n"
            "    time.sleep(0.001)\n"
            "from repro.runtime.cache import TuningCache\n"
            "cache = TuningCache(disk_dir=sys.argv[3])\n"
            "cache.insert('samekey', {'config': {'engine': 'interp',"
            " 'workers': None}, 'pid': os.getpid()})\n"
            "assert cache.stats.disk_stores == 1\n"
        )
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.path.join(os.getcwd(), "src")
        go = tmp_path / "go"
        records_dir = tmp_path / "tuning"
        processes = []
        for index in range(2):
            ready = tmp_path / f"ready-{index}"
            processes.append((ready, subprocess.Popen(
                [sys.executable, "-c", child, str(ready), str(go),
                 str(records_dir)],
                env=environment, stderr=subprocess.PIPE)))
        deadline = time.monotonic() + 60
        while not all(ready.exists() for ready, _ in processes):
            assert time.monotonic() < deadline, "children never became ready"
            time.sleep(0.01)
        go.touch()  # release both inserts at once
        for _, process in processes:
            _, stderr = process.communicate(timeout=120)
            assert process.returncode == 0, stderr.decode()

        entries = list(records_dir.glob("*.json"))
        assert len(entries) == 1
        payload = json_module.loads(entries[0].read_bytes())
        assert payload["key"] == "samekey"
        assert payload["record"]["config"]["engine"] == "interp"
        assert not list(records_dir.glob(".tmp-*"))  # no torn temp files
        # loadable through a fresh cache (disk tier hit).
        from repro.runtime.cache import TuningCache

        fresh = TuningCache(disk_dir=records_dir)
        assert fresh.lookup("samekey") is not None
        assert fresh.stats.disk_hits == 1


class TestNativeArtifactTier:
    """The native engine's ``.so`` tier shares the cache's disk placement,
    capacity knob and eviction discipline (engine-level corruption fallback
    and warm-hit behaviour live in ``tests/runtime/test_native.py``)."""

    def test_artifacts_live_under_the_disk_tier(self, disk_cache):
        from repro.runtime.cache import NativeArtifactCache

        cache = NativeArtifactCache()
        assert cache.directory() == disk_cache / "native"

    def test_temp_directory_without_disk_tier(self):
        from repro.runtime.cache import NativeArtifactCache

        cache = NativeArtifactCache()
        directory = cache.directory()
        assert directory.is_dir()
        assert "repro-native-" in directory.name

    def test_capacity_env_knob(self, monkeypatch):
        from repro.runtime.cache import CAPACITY_ENV_VAR, NativeArtifactCache

        monkeypatch.setenv(CAPACITY_ENV_VAR, "3")
        assert NativeArtifactCache().capacity == 3

    def test_store_publishes_atomically_and_evicts(self, tmp_path):
        import os

        from repro.runtime.cache import NativeArtifactCache

        cache = NativeArtifactCache(capacity=2, directory=tmp_path)
        for index, key in enumerate(["k1", "k2", "k3"]):
            path = cache.store(key, lambda temp: temp.write_bytes(b"so"))
            os.utime(path, (1000 + index, 1000 + index))
        cache.evict()
        remaining = sorted(entry.stem for entry in tmp_path.glob("*.so"))
        assert remaining == ["k2", "k3"]
        assert not list(tmp_path.glob(".tmp-*"))  # no torn temp files
