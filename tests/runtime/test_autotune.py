"""The autotuner (``engine="auto"``): search, cache tiers, dispatch.

Covers the tuning pipeline end to end: registry integration, cold-tune
parity against the interpreter reference, warm dispatch with zero
measurements (same instance, fresh instance, and a fresh *process* through
the ``REPRO_CACHE=1`` disk tier), staleness handling (corrupt records,
foreign format versions, host-fingerprint mismatches, unregistered
winners), degraded-winner invalidation under ``REPRO_FAULTS``, and
tuned-winner parity over the differential fuzzer's generated kernels
(``REPRO_FUZZ_COUNT`` scales the corpus).
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.frontend import compile_cuda
from repro.runtime import (
    XEON_8375C,
    clear_global_tuning_cache,
    engine_names,
    global_tuning_cache,
    make_executor,
    resilience,
    reset_faults,
    shutdown_worker_pools,
)
from repro.runtime import autotune
from repro.runtime.autotune import (
    AutoEngine,
    TuningConfig,
    argument_signature,
    candidate_configs,
    host_fingerprint,
    tune_module,
    tuning_key,
)
from repro.runtime.cache import TUNING_FORMAT
from tests.helpers import generate_fuzz_kernel, report_fields

SAXPY_CUDA = """
__global__ void saxpy(float* out, float* x, float* y, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        out[i] = a * x[i] + y[i];
    }
}

void launch(float* d_out, float* d_x, float* d_y, float a, int n) {
    saxpy<<<(n + 31) / 32, 32>>>(d_out, d_x, d_y, a, n);
}
"""

N = 64

FUZZ_COUNT = max(1, int(os.environ.get("REPRO_FUZZ_COUNT", "6")))
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "0"))


def make_args(n: int = N):
    rng = np.random.default_rng(7)
    x = rng.random(n).astype(np.float32)
    y = rng.random(n).astype(np.float32)
    out = np.zeros(n, dtype=np.float32)
    return [out, x, y, np.float32(2.0), n]


def compile_saxpy():
    return compile_cuda(SAXPY_CUDA, cuda_lower=True)


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()


@pytest.fixture(autouse=True)
def _fresh_tuning_state(monkeypatch):
    """Isolate every test: no ambient disk tier, fast single-repeat tuning,
    an empty tuning cache and an empty resolved-config memo."""
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_TUNE_CACHE", raising=False)
    monkeypatch.setenv("REPRO_TUNE_REPEATS", "1")
    monkeypatch.setenv("REPRO_TUNE_WARMUP", "0")
    clear_global_tuning_cache()
    autotune._RESOLVED_MEMO.clear()
    reset_faults()
    resilience.global_log().clear()
    yield
    clear_global_tuning_cache()
    autotune._RESOLVED_MEMO.clear()
    reset_faults()
    resilience.global_log().clear()


def run_interp_reference(module, entry="launch", args_factory=make_args):
    arguments = args_factory()
    reference = make_executor(module, engine="interp")
    reference.run(entry, arguments)
    return arguments, reference.report


# ---------------------------------------------------------------------------
# Registry + search space
# ---------------------------------------------------------------------------
class TestRegistration:
    def test_auto_listed_last(self):
        names = engine_names()
        assert "auto" in names
        assert names[-1] == "auto"

    def test_make_executor_accepts_auto(self):
        executor = make_executor(compile_saxpy(), engine="auto")
        assert isinstance(executor, AutoEngine)

    def test_candidates_exclude_auto_and_interp(self):
        names = {config.engine for config in candidate_configs()}
        assert "auto" not in names
        assert "interp" not in names

    def test_explicit_workers_pins_multicore_width(self):
        widths = [config.workers for config in candidate_configs(workers=2)
                  if config.engine == "multicore"]
        assert widths in ([], [2])  # empty only where fork is unavailable

    def test_config_label_and_round_trip(self):
        config = TuningConfig("multicore", workers=4)
        assert config.label == "multicore[w=4]"
        assert TuningConfig.from_dict(config.to_dict()) == config
        assert TuningConfig("native").label == "native"


class TestKeys:
    def test_signature_discriminates_shapes_and_scalars(self):
        a = argument_signature(make_args(64))
        assert a == argument_signature(make_args(64))
        assert a != argument_signature(make_args(128))
        bigger = make_args(64)
        bigger[4] = 65  # scalar n sizes the iteration space
        assert a != argument_signature(bigger)

    def test_tuning_key_tracks_module_and_params(self):
        module = compile_saxpy()
        key = tuning_key(module, "launch", make_args())
        assert key == tuning_key(module, "launch", make_args())
        assert key != tuning_key(module, "launch", make_args(128))
        assert key != tuning_key(module, "other", make_args())
        assert key != tuning_key(module, "launch", make_args(), threads=32)
        assert key != tuning_key(module, "launch", make_args(), workers=2)

    def test_host_fingerprint_fields(self):
        fingerprint = host_fingerprint()
        assert set(fingerprint) == {"cpus", "toolchain", "multicore",
                                    "python", "numpy"}


# ---------------------------------------------------------------------------
# Cold tuning
# ---------------------------------------------------------------------------
class TestColdTune:
    def test_tune_module_winner_is_bit_identical(self):
        module = compile_saxpy()
        arguments = make_args()
        result = tune_module(module, "launch", arguments)
        assert result.config.engine in engine_names()
        assert "interp" in result.measurements
        assert result.measurements[result.config.label] == result.seconds
        # tuning is invisible to the caller's buffers: every writable array
        # is restored to its pristine pre-tuning contents.
        np.testing.assert_array_equal(arguments[0],
                                      np.zeros(N, dtype=np.float32))

    def test_auto_run_matches_interp_outputs_and_report(self):
        module = compile_saxpy()
        reference_args, reference_report = run_interp_reference(module)
        arguments = make_args()
        engine = AutoEngine(module)
        engine.run("launch", arguments)
        np.testing.assert_array_equal(arguments[0], reference_args[0])
        assert report_fields(engine.report) == report_fields(reference_report)
        assert engine.auto_stats["tuned"] == 1
        assert engine.auto_stats["cache_hits"] == 0
        assert engine.auto_stats["winner"] in engine.auto_stats["measurements"]

    def test_report_accumulates_across_runs(self):
        module = compile_saxpy()
        engine = AutoEngine(module)
        engine.run("launch", make_args())
        single = report_fields(engine.report)
        engine.run("launch", make_args())
        engine.run("launch", make_args())
        assert report_fields(engine.report) == tuple(3 * field
                                                     for field in single)


# ---------------------------------------------------------------------------
# Warm dispatch
# ---------------------------------------------------------------------------
class TestWarmDispatch:
    def test_same_instance_second_run_measures_nothing(self):
        engine = AutoEngine(compile_saxpy())
        engine.run("launch", make_args())
        engine.run("launch", make_args())
        assert engine.auto_stats == {
            **engine.auto_stats, "runs": 2, "tuned": 1, "cache_hits": 1,
            "measurements": {}}

    def test_fresh_instance_hits_the_cache(self):
        module = compile_saxpy()
        cold = AutoEngine(module)
        cold.run("launch", make_args())
        warm = AutoEngine(module)
        arguments = make_args()
        warm.run("launch", arguments)
        assert warm.auto_stats["tuned"] == 0
        assert warm.auto_stats["cache_hits"] == 1
        assert warm.auto_stats["winner"] == cold.auto_stats["winner"]

    def test_new_shape_retunes(self):
        engine = AutoEngine(compile_saxpy())
        engine.run("launch", make_args(64))
        engine.run("launch", make_args(128))
        assert engine.auto_stats["tuned"] == 2

    def test_tune_cache_disabled_always_retunes(self, monkeypatch):
        monkeypatch.setenv("REPRO_TUNE_CACHE", "0")
        module = compile_saxpy()
        cold = AutoEngine(module)
        cold.run("launch", make_args())
        again = AutoEngine(module)
        again.run("launch", make_args())
        assert cold.auto_stats["tuned"] == 1
        assert again.auto_stats["tuned"] == 1


# ---------------------------------------------------------------------------
# Disk tier: persistence, corruption, staleness
# ---------------------------------------------------------------------------
@pytest.fixture
def disk_tier(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    yield tmp_path / "tuning"


class TestDiskTier:
    def _tune_once(self):
        module = compile_saxpy()
        engine = AutoEngine(module)
        engine.run("launch", make_args())
        assert engine.auto_stats["tuned"] == 1
        return module

    def _forget_in_process_state(self):
        # drop the memory tier + memo, keep the disk records: the next
        # lookup must go through the disk round trip.
        global_tuning_cache().clear(disk=False)
        autotune._RESOLVED_MEMO.clear()

    def test_records_published_crash_safe(self, disk_tier):
        self._tune_once()
        records = list(disk_tier.glob("*.json"))
        assert records
        assert not list(disk_tier.glob(".tmp-*"))
        payload = json.loads(records[0].read_text())
        assert payload["format"] == TUNING_FORMAT
        assert payload["record"]["host"] == host_fingerprint()

    def test_disk_round_trip_skips_measurement(self, disk_tier):
        module = self._tune_once()
        self._forget_in_process_state()
        warm = AutoEngine(module)
        warm.run("launch", make_args())
        assert warm.auto_stats["tuned"] == 0
        assert global_tuning_cache().stats.disk_hits >= 1

    def test_corrupt_record_retunes_and_repairs(self, disk_tier):
        module = self._tune_once()
        self._forget_in_process_state()
        record_path = next(disk_tier.glob("*.json"))
        record_path.write_text("{truncated garbage")
        engine = AutoEngine(module)
        engine.run("launch", make_args())
        assert engine.auto_stats["tuned"] == 1
        assert global_tuning_cache().stats.disk_errors >= 1
        # the re-tune rewrote a loadable record in place.
        assert json.loads(record_path.read_text())["format"] == TUNING_FORMAT

    def test_stale_format_version_retunes(self, disk_tier):
        module = self._tune_once()
        self._forget_in_process_state()
        record_path = next(disk_tier.glob("*.json"))
        payload = json.loads(record_path.read_text())
        payload["format"] = TUNING_FORMAT + 1
        record_path.write_text(json.dumps(payload))
        engine = AutoEngine(module)
        engine.run("launch", make_args())
        assert engine.auto_stats["tuned"] == 1

    def test_cross_process_round_trip(self, disk_tier, tmp_path):
        script = (
            "import json, numpy as np\n"
            "from repro.frontend import compile_cuda\n"
            "from repro.runtime.autotune import AutoEngine\n"
            f"module = compile_cuda({SAXPY_CUDA!r}, cuda_lower=True)\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.random(64).astype(np.float32)\n"
            "y = rng.random(64).astype(np.float32)\n"
            "engine = AutoEngine(module)\n"
            "engine.run('launch', [np.zeros(64, dtype=np.float32), x, y,"
            " np.float32(2.0), 64])\n"
            "print(json.dumps({'tuned': engine.auto_stats['tuned'],"
            " 'winner': engine.auto_stats['winner']}))\n"
        )
        environment = dict(os.environ)
        environment["REPRO_CACHE"] = "1"
        environment["REPRO_CACHE_DIR"] = str(tmp_path)
        environment["REPRO_TUNE_REPEATS"] = "1"
        environment["REPRO_TUNE_WARMUP"] = "0"
        environment["PYTHONPATH"] = str(Path(repro.__file__).parents[1])
        stats = []
        for _ in range(2):
            completed = subprocess.run(
                [sys.executable, "-c", script], env=environment,
                capture_output=True, text=True, timeout=300)
            assert completed.returncode == 0, completed.stderr
            stats.append(json.loads(completed.stdout.strip().splitlines()[-1]))
        assert stats[0]["tuned"] == 1   # cold process measured
        assert stats[1]["tuned"] == 0   # warm process read the disk record
        assert stats[1]["winner"] == stats[0]["winner"]


# ---------------------------------------------------------------------------
# Staleness of in-memory records
# ---------------------------------------------------------------------------
class TestStaleRecords:
    def _plant(self, module, config: TuningConfig, host=None):
        arguments = make_args()
        key = tuning_key(module, "launch", arguments)
        global_tuning_cache().insert(key, {
            "config": config.to_dict(),
            "host": host if host is not None else host_fingerprint(),
            "function": "launch",
            "signature": argument_signature(arguments),
            "seconds": 1e-6,
            "measurements": {config.label: 1e-6},
            "rejected": {},
        })
        return key

    def test_planted_record_is_dispatched(self):
        module = compile_saxpy()
        self._plant(module, TuningConfig("compiled"))
        engine = AutoEngine(module)
        engine.run("launch", make_args())
        assert engine.auto_stats["tuned"] == 0
        assert engine.auto_stats["winner"] == "compiled"

    def test_host_fingerprint_mismatch_retunes(self):
        module = compile_saxpy()
        foreign = dict(host_fingerprint(), cpus=4096)
        self._plant(module, TuningConfig("compiled"), host=foreign)
        engine = AutoEngine(module)
        engine.run("launch", make_args())
        assert engine.auto_stats["tuned"] == 1
        assert resilience.global_log().events(op="autotune.lookup",
                                              action="fallback")

    def test_unregistered_winner_retunes(self):
        module = compile_saxpy()
        self._plant(module, TuningConfig("hexagon-dsp"))
        engine = AutoEngine(module)
        engine.run("launch", make_args())
        assert engine.auto_stats["tuned"] == 1

    def test_malformed_record_retunes(self):
        module = compile_saxpy()
        key = tuning_key(module, "launch", make_args())
        global_tuning_cache().insert(key, {"host": host_fingerprint()})
        engine = AutoEngine(module)
        engine.run("launch", make_args())
        assert engine.auto_stats["tuned"] == 1


# ---------------------------------------------------------------------------
# Resilience composition
# ---------------------------------------------------------------------------
class TestDegradedWinner:
    # a private source text: the native artifact cache is content-addressed,
    # so a unique constant guarantees the cc step actually runs (and can be
    # fault-injected) instead of reusing a shared object from another test.
    DEGRADE_CUDA = SAXPY_CUDA.replace("a * x[i] + y[i]",
                                      "a * x[i] + y[i] + 0.03125f")

    def test_degraded_winner_invalidates_its_record(self, monkeypatch):
        from repro.runtime.native import native_available

        if not native_available():
            pytest.skip("needs the cc -fopenmp toolchain")
        module = compile_cuda(self.DEGRADE_CUDA, cuda_lower=True)
        arguments = make_args()
        key = tuning_key(module, "launch", arguments)
        global_tuning_cache().insert(key, {
            "config": {"engine": "native", "workers": None},
            "host": host_fingerprint(),
            "function": "launch",
            "signature": argument_signature(arguments),
            "seconds": 1e-6, "measurements": {}, "rejected": {},
        })
        expected = np.zeros(N, dtype=np.float32)
        reference_args = make_args()
        reference_args[0] = expected
        make_executor(module, engine="compiled").run("launch", reference_args)

        monkeypatch.setenv("REPRO_FAULTS", "native.cc:*")
        monkeypatch.setenv("REPRO_BACKOFF_S", "0")
        reset_faults()
        engine = AutoEngine(module)
        engine.run("launch", arguments)
        # the tuned winner degraded down the fallback chain bit-identically,
        # and its now-stale record was dropped.
        np.testing.assert_array_equal(arguments[0], expected)
        assert engine.auto_stats["invalidated"] == 1
        assert global_tuning_cache().lookup(key) is None
        assert resilience.global_log().events(op="autotune.dispatch",
                                              action="degrade")


# ---------------------------------------------------------------------------
# Generated-kernel coverage (the differential fuzzer's grammar)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(FUZZ_SEED, FUZZ_SEED + FUZZ_COUNT))
def test_fuzz_tuned_winner_parity(seed):
    kernel = generate_fuzz_kernel(seed)
    module = kernel.compile(cuda_lower=True)

    reference_args = kernel.make_args()
    reference = make_executor(module, engine="interp")
    reference.run(kernel.entry, reference_args)

    arguments = kernel.make_args()
    cold = AutoEngine(module)
    cold.run(kernel.entry, arguments)
    np.testing.assert_array_equal(
        arguments[2], reference_args[2],
        err_msg=f"{kernel.description}: auto output diverged from interp")
    assert report_fields(cold.report) == report_fields(reference.report), (
        kernel.description)
    assert cold.auto_stats["tuned"] == 1

    warm_args = kernel.make_args()
    warm = AutoEngine(module)
    warm.run(kernel.entry, warm_args)
    np.testing.assert_array_equal(warm_args[2], reference_args[2])
    assert warm.auto_stats["tuned"] == 0, kernel.description
    assert warm.auto_stats["winner"] == cold.auto_stats["winner"]
