"""Tests for barrier elimination, loop splitting, interchange, OMP lowering
and the full cpuify pipeline (structural properties)."""

import pytest

from repro.ir import Builder, F32, FunctionType, I32, INDEX, memref, verify
from repro.dialects import arith, func, gpu as gpu_d, memref as memref_d, omp as omp_d, polygeist, scf
from repro.analysis import barriers_in
from repro.transforms import (
    InterchangeError,
    LowerGPUPass,
    PipelineOptions,
    collapse_parallel_loops,
    cpuify,
    eliminate_redundant_barriers,
    first_splittable_barrier,
    fuse_parallel_regions,
    hoist_parallel_regions,
    interchange_for,
    interchange_if,
    interchange_while,
    lower_module_to_omp,
    select_values_to_cache,
    serialize_inner_parallel_loops,
    split_parallel_at_barrier,
    wrap_with_barriers,
)

from tests.helpers import (
    alloc_shared,
    build_function,
    build_parallel,
    close_parallel,
    const_index,
    finish_function,
    insert_barrier,
)


def count_ops(root, kind):
    return sum(1 for op in root.walk() if isinstance(op, kind))


class TestBarrierElimination:
    def test_removes_redundant_barrier(self):
        module, fn, builder = build_function(
            "k", [memref((64,), F32), memref((64,), F32)], ["a", "b"], noalias=True)
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        val = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        insert_barrier(inner, [tid])   # orders nothing: a/b never conflict
        inner.insert(memref_d.StoreOp(val.result, fn.arguments[1], [tid]))
        close_parallel(inner)
        finish_function(builder)
        removed = eliminate_redundant_barriers(fn, module)
        assert removed == 1
        assert not barriers_in(fn)

    def test_keeps_required_barrier(self):
        module, fn, builder = build_function("k", [memref((64,), F32)], ["out"], noalias=True)
        shared = alloc_shared(builder, (64,))
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        c = inner.insert(arith.ConstantOp(1.0, F32))
        inner.insert(memref_d.StoreOp(c.result, shared, [tid]))
        insert_barrier(inner, [tid])
        zero = const_index(inner, 0)
        first = inner.insert(memref_d.LoadOp(shared, [zero]))
        inner.insert(memref_d.StoreOp(first.result, fn.arguments[0], [tid]))
        close_parallel(inner)
        finish_function(builder)
        removed = eliminate_redundant_barriers(fn, module)
        assert removed == 0
        assert len(barriers_in(fn)) == 1


class TestLoopSplitting:
    def _kernel_with_crossing_values(self, use_mincut):
        """Fig. 6: two loads and derived values crossing the barrier."""
        module, fn, builder = build_function(
            "k", [memref((128,), F32), memref((64,), F32)], ["data", "out"], noalias=True)
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        two = const_index(inner, 2)
        tid2 = inner.insert(arith.MulIOp(tid, two))
        x = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        y = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid2.result]))
        a = inner.insert(arith.MulFOp(x.result, x.result))
        b = inner.insert(arith.MulFOp(y.result, y.result))
        c = inner.insert(arith.SubFOp(x.result, y.result))
        barrier = insert_barrier(inner, [tid])
        total = inner.insert(arith.AddFOp(a.result, b.result))
        total2 = inner.insert(arith.AddFOp(total.result, c.result))
        inner.insert(memref_d.StoreOp(total2.result, fn.arguments[1], [tid]))
        close_parallel(inner)
        finish_function(builder)
        return module, fn, loop, barrier

    def test_split_structure(self):
        module, fn, loop, barrier = self._kernel_with_crossing_values(use_mincut=True)
        first, second = split_parallel_at_barrier(loop, barrier, use_mincut=True)
        verify(module)
        assert not barriers_in(fn)
        assert count_ops(fn, scf.ParallelOp) == 2
        # the second loop stores the final result
        assert any(isinstance(op, memref_d.StoreOp) for op in second.body.operations)

    def test_mincut_caches_fewer_values(self):
        module_a, fn_a, loop_a, barrier_a = self._kernel_with_crossing_values(True)
        split_index = loop_a.body.index_of(barrier_a)
        cached_mincut, crossing = select_values_to_cache(loop_a, split_index, use_mincut=True)
        cached_all, _ = select_values_to_cache(loop_a, split_index, use_mincut=False)
        # crossing values are a, b, c (3); the min-cut caches x and y (2).
        assert len(cached_all) == 3
        assert len(cached_mincut) == 2

    def test_split_allocates_cache_buffers(self):
        module, fn, loop, barrier = self._kernel_with_crossing_values(False)
        split_parallel_at_barrier(loop, barrier, use_mincut=False)
        verify(module)
        allocs = [op for op in fn.walk() if isinstance(op, memref_d.AllocOp)
                  and not isinstance(op, memref_d.AllocaOp)]
        assert len(allocs) == 3  # one cache per crossing value (a, b, c)

    def test_split_expands_crossing_alloca(self):
        module, fn, builder = build_function("k", [memref((64,), F32)], ["out"], noalias=True)
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        local = inner.insert(memref_d.AllocaOp(memref((), F32))).result
        c = inner.insert(arith.ConstantOp(3.0, F32))
        inner.insert(memref_d.StoreOp(c.result, local, []))
        barrier = insert_barrier(inner, [tid])
        reloaded = inner.insert(memref_d.LoadOp(local, []))
        inner.insert(memref_d.StoreOp(reloaded.result, fn.arguments[0], [tid]))
        close_parallel(inner)
        finish_function(builder)
        split_parallel_at_barrier(loop, barrier, use_mincut=True)
        verify(module)
        assert not barriers_in(fn)
        # the thread-local scalar became a 64-slot buffer outside the loops.
        expanded = [op for op in fn.body_block.operations if isinstance(op, memref_d.AllocOp)]
        assert any(op.result.type.shape == (64,) for op in expanded)


class TestInterchange:
    def test_for_interchange(self):
        module, fn, builder = build_function("k", [memref((64,), F32)], ["a"], noalias=True)
        zero = const_index(builder, 0)
        five = const_index(builder, 5)
        one = const_index(builder, 1)
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        serial = inner.insert(scf.ForOp(zero, five, one, iv_name="j"))
        serial_builder = Builder.at_end(serial.body)
        c = serial_builder.insert(arith.ConstantOp(1.0, F32))
        serial_builder.insert(memref_d.StoreOp(c.result, fn.arguments[0], [tid]))
        serial_builder.insert(polygeist.PolygeistBarrierOp([tid]))
        serial_builder.insert(scf.YieldOp())
        close_parallel(inner)
        finish_function(builder)

        new_for = interchange_for(loop, serial)
        verify(module)
        # now: for { parallel { ... barrier ... } }
        assert isinstance(new_for, scf.ForOp)
        nested_parallel = [op for op in new_for.walk() if isinstance(op, scf.ParallelOp)]
        assert len(nested_parallel) == 1
        assert first_splittable_barrier(nested_parallel[0]) is not None

    def test_if_interchange_uniform_condition(self):
        module, fn, builder = build_function("k", [memref((64,), F32), memref((1,), I32)],
                                             ["a", "flag"], noalias=True)
        zero = const_index(builder, 0)
        flag = builder.insert(memref_d.LoadOp(fn.arguments[1], [zero]))
        zero_i = builder.insert(arith.ConstantOp(0, I32))
        cond = builder.insert(arith.CmpIOp(arith.CmpPredicate.GT, flag.result, zero_i.result))
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        if_op = inner.insert(scf.IfOp(cond.result, with_else=False))
        then_builder = Builder.at_end(if_op.then_block)
        c = then_builder.insert(arith.ConstantOp(2.0, F32))
        then_builder.insert(memref_d.StoreOp(c.result, fn.arguments[0], [tid]))
        then_builder.insert(polygeist.PolygeistBarrierOp([tid]))
        then_builder.insert(scf.YieldOp())
        close_parallel(inner)
        finish_function(builder)

        new_if = interchange_if(loop, if_op)
        verify(module)
        nested_parallel = [op for op in new_if.walk() if isinstance(op, scf.ParallelOp)]
        assert len(nested_parallel) == 1

    def test_if_interchange_rejects_divergent_condition(self):
        module, fn, builder = build_function("k", [memref((64,), F32)], ["a"], noalias=True)
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        limit = const_index(inner, 32)
        cond = inner.insert(arith.CmpIOp(arith.CmpPredicate.LT, tid, limit))
        if_op = inner.insert(scf.IfOp(cond.result, with_else=False))
        Builder.at_end(if_op.then_block).insert(polygeist.PolygeistBarrierOp([tid]))
        Builder.at_end(if_op.then_block).insert(scf.YieldOp())
        close_parallel(inner)
        finish_function(builder)
        with pytest.raises(InterchangeError):
            interchange_if(loop, if_op)

    def test_while_interchange_builds_helper(self):
        module, fn, builder = build_function("k", [memref((64,), F32), memref((1,), I32)],
                                             ["a", "count"], noalias=True)
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        while_op = inner.insert(scf.WhileOp([]))
        before = Builder.at_end(while_op.before_block)
        zero = before.insert(arith.ConstantOp(0, INDEX))
        count = before.insert(memref_d.LoadOp(fn.arguments[1], [zero.result]))
        zero_i = before.insert(arith.ConstantOp(0, I32))
        cond = before.insert(arith.CmpIOp(arith.CmpPredicate.GT, count.result, zero_i.result))
        before.insert(scf.ConditionOp(cond.result))
        after = Builder.at_end(while_op.after_block)
        c = after.insert(arith.ConstantOp(1.0, F32))
        after.insert(memref_d.StoreOp(c.result, fn.arguments[0], [tid]))
        after.insert(polygeist.PolygeistBarrierOp([tid]))
        after.insert(scf.YieldOp())
        close_parallel(inner)
        finish_function(builder)

        new_while = interchange_while(loop, while_op)
        verify(module)
        assert isinstance(new_while, scf.WhileOp)
        # helper variable allocated outside, and the condition is evaluated
        # inside a parallel loop in the before region.
        assert any(isinstance(op, memref_d.AllocOp) for op in fn.body_block.operations)
        assert any(isinstance(op, scf.ParallelOp) for op in new_while.before_block.operations)

    def test_wrap_with_barriers(self):
        module, fn, builder = build_function("k", [memref((64,), F32)], ["a"], noalias=True)
        zero = const_index(builder, 0)
        five = const_index(builder, 5)
        one = const_index(builder, 1)
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        c = inner.insert(arith.ConstantOp(1.0, F32))
        inner.insert(memref_d.StoreOp(c.result, fn.arguments[0], [tid]))
        serial = inner.insert(scf.ForOp(zero, five, one))
        sb = Builder.at_end(serial.body)
        sb.insert(polygeist.PolygeistBarrierOp([tid]))
        sb.insert(scf.YieldOp())
        inner.insert(memref_d.StoreOp(c.result, fn.arguments[0], [tid]))
        close_parallel(inner)
        finish_function(builder)
        assert wrap_with_barriers(loop, serial)
        top_level_barriers = [op for op in loop.body.operations
                              if isinstance(op, polygeist.PolygeistBarrierOp)]
        assert len(top_level_barriers) == 2


class TestLowerGPUAndOMP:
    def _launch_module(self):
        module = func.ModuleOp()
        fn = func.FuncOp("host", FunctionType((memref((256,), F32),), ()), arg_names=["data"])
        fn.set_attr("arg_noalias", True)
        module.add_function(fn)
        builder = Builder.at_end(fn.body_block)
        four = builder.insert(arith.ConstantOp(4, INDEX)).result
        sixty_four = builder.insert(arith.ConstantOp(64, INDEX)).result
        one = builder.insert(arith.ConstantOp(1, INDEX)).result
        launch = builder.insert(gpu_d.LaunchOp([four, one, one], [sixty_four, one, one],
                                               kernel_name="scale"))
        body = Builder.at_end(launch.body)
        bx, _, _ = launch.block_ids
        tx, _, _ = launch.thread_ids
        bdim = launch.block_dim_args[0]
        offset = body.insert(arith.MulIOp(bx, bdim))
        gid = body.insert(arith.AddIOp(offset.result, tx))
        val = body.insert(memref_d.LoadOp(fn.arguments[0], [gid.result]))
        doubled = body.insert(arith.AddFOp(val.result, val.result))
        body.insert(memref_d.StoreOp(doubled.result, fn.arguments[0], [gid.result]))
        body.insert(scf.YieldOp())
        builder.insert(func.ReturnOp())
        return module, fn

    def test_launch_lowering_structure(self):
        module, fn = self._launch_module()
        LowerGPUPass().run(module)
        verify(module)
        parallels = [op for op in fn.walk() if isinstance(op, scf.ParallelOp)]
        assert len(parallels) == 2
        levels = {p.parallel_level for p in parallels}
        assert levels == {"grid", "block"}
        assert not any(isinstance(op, gpu_d.LaunchOp) for op in fn.walk())

    def test_collapse_without_shared_memory(self):
        module, fn = self._launch_module()
        LowerGPUPass().run(module)
        assert collapse_parallel_loops(module)
        parallels = [op for op in fn.walk() if isinstance(op, scf.ParallelOp)]
        assert len(parallels) == 1
        assert parallels[0].num_dims == 6

    def test_serialize_inner(self):
        module, fn = self._launch_module()
        LowerGPUPass().run(module)
        assert serialize_inner_parallel_loops(module)
        parallels = [op for op in fn.walk() if isinstance(op, scf.ParallelOp)]
        assert len(parallels) == 1
        assert parallels[0].parallel_level == "grid"
        assert any(isinstance(op, scf.ForOp) for op in parallels[0].walk())

    def test_lower_to_omp(self):
        module, fn = self._launch_module()
        LowerGPUPass().run(module)
        serialize_inner_parallel_loops(module)
        lower_module_to_omp(module)
        verify(module)
        assert count_ops(fn, omp_d.OmpParallelOp) == 1
        assert count_ops(fn, omp_d.OmpWsLoopOp) == 1
        assert count_ops(fn, scf.ParallelOp) == 0

    def test_fuse_adjacent_omp_regions(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"], noalias=True)
        for _ in range(2):
            loop, inner = build_parallel(builder, 8)
            c = inner.insert(arith.ConstantOp(1.0, F32))
            inner.insert(memref_d.StoreOp(c.result, fn.arguments[0], [loop.induction_vars[0]]))
            close_parallel(inner)
        finish_function(builder)
        lower_module_to_omp(module)
        assert count_ops(fn, omp_d.OmpParallelOp) == 2
        fuse_parallel_regions(module)
        verify(module)
        assert count_ops(fn, omp_d.OmpParallelOp) == 1
        assert count_ops(fn, omp_d.OmpBarrierOp) == 1
        assert count_ops(fn, omp_d.OmpWsLoopOp) == 2

    def test_hoist_parallel_out_of_serial_loop(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"], noalias=True)
        zero = const_index(builder, 0)
        ten = const_index(builder, 10)
        one = const_index(builder, 1)
        outer = builder.insert(scf.ForOp(zero, ten, one))
        inner_builder = Builder.at_end(outer.body)
        loop, inner = build_parallel(inner_builder, 8)
        c = inner.insert(arith.ConstantOp(1.0, F32))
        inner.insert(memref_d.StoreOp(c.result, fn.arguments[0], [loop.induction_vars[0]]))
        close_parallel(inner)
        inner_builder.insert(scf.YieldOp())
        finish_function(builder)
        lower_module_to_omp(module)
        hoist_parallel_regions(module)
        verify(module)
        # omp.parallel now encloses the for loop.
        region = next(op for op in fn.walk() if isinstance(op, omp_d.OmpParallelOp))
        assert any(isinstance(op, scf.ForOp) for op in region.walk())
        assert count_ops(fn, omp_d.OmpBarrierOp) == 1


class TestFullPipeline:
    def _reduction_kernel_module(self):
        """A kernel with shared memory and a barrier inside a serial loop."""
        module = func.ModuleOp()
        fn = func.FuncOp("host", FunctionType((memref((256,), F32), memref((4,), F32)), ()),
                         arg_names=["data", "out"])
        fn.set_attr("arg_noalias", True)
        module.add_function(fn)
        builder = Builder.at_end(fn.body_block)
        four = builder.insert(arith.ConstantOp(4, INDEX)).result
        sixty_four = builder.insert(arith.ConstantOp(64, INDEX)).result
        one = builder.insert(arith.ConstantOp(1, INDEX)).result
        launch = builder.insert(gpu_d.LaunchOp([four, one, one], [sixty_four, one, one],
                                               kernel_name="block_sum"))
        body = Builder.at_end(launch.body)
        bx = launch.block_ids[0]
        tx = launch.thread_ids[0]
        bdim = launch.block_dim_args[0]
        shared = body.insert(memref_d.AllocaOp(memref((64,), F32, "shared"))).result
        offset = body.insert(arith.MulIOp(bx, bdim))
        gid = body.insert(arith.AddIOp(offset.result, tx))
        val = body.insert(memref_d.LoadOp(fn.arguments[0], [gid.result]))
        body.insert(memref_d.StoreOp(val.result, shared, [tx]))
        body.insert(gpu_d.BarrierOp())
        # tree reduction: for s in {32, 16, 8, 4, 2, 1}: if tx < s: shared[tx] += shared[tx+s]
        c32 = body.insert(arith.ConstantOp(32, INDEX)).result
        zero_idx = body.insert(arith.ConstantOp(0, INDEX)).result
        six = body.insert(arith.ConstantOp(6, INDEX)).result
        loop = body.insert(scf.ForOp(zero_idx, six, one, iv_name="step"))
        lb = Builder.at_end(loop.body)
        # stride = 32 >> step
        stride = lb.insert(arith.ShRSIOp(c32, loop.induction_var))
        cond = lb.insert(arith.CmpIOp(arith.CmpPredicate.LT, tx, stride.result))
        if_op = lb.insert(scf.IfOp(cond.result, with_else=False))
        then = Builder.at_end(if_op.then_block)
        partner = then.insert(arith.AddIOp(tx, stride.result))
        mine = then.insert(memref_d.LoadOp(shared, [tx]))
        other = then.insert(memref_d.LoadOp(shared, [partner.result]))
        total = then.insert(arith.AddFOp(mine.result, other.result))
        then.insert(memref_d.StoreOp(total.result, shared, [tx]))
        then.insert(scf.YieldOp())
        lb.insert(gpu_d.BarrierOp())
        lb.insert(scf.YieldOp())
        zero_cmp = body.insert(arith.ConstantOp(0, INDEX)).result
        is_first = body.insert(arith.CmpIOp(arith.CmpPredicate.EQ, tx, zero_cmp))
        guard = body.insert(scf.IfOp(is_first.result, with_else=False))
        gbuilder = Builder.at_end(guard.then_block)
        result = gbuilder.insert(memref_d.LoadOp(shared, [zero_cmp]))
        gbuilder.insert(memref_d.StoreOp(result.result, fn.arguments[1], [bx]))
        gbuilder.insert(scf.YieldOp())
        body.insert(scf.YieldOp())
        builder.insert(func.ReturnOp())
        return module, fn

    @pytest.mark.parametrize("options", [
        PipelineOptions.all_optimizations(),
        PipelineOptions.all_optimizations(inner_serialize=False),
        PipelineOptions.opt_disabled(),
        PipelineOptions.from_flags("mincut,openmpopt"),
    ])
    def test_cpuify_eliminates_gpu_dialect_and_barriers(self, options):
        module, fn = self._reduction_kernel_module()
        cpuify(module, options)
        verify(module)
        assert not any(isinstance(op, (gpu_d.LaunchOp, gpu_d.BarrierOp)) for op in module.walk())
        # barriers only survive inside explicit fallback loops (none expected here)
        remaining = barriers_in(fn)
        assert not remaining

    def test_cpuify_produces_omp_regions(self):
        module, fn = self._reduction_kernel_module()
        cpuify(module, PipelineOptions.all_optimizations())
        assert count_ops(fn, omp_d.OmpParallelOp) >= 1
        assert count_ops(fn, omp_d.OmpWsLoopOp) >= 1

    def test_pipeline_options_flags(self):
        options = PipelineOptions.from_flags("mincut,openmpopt,affine,innerser")
        assert options.mincut and options.openmp_opt and options.affine and options.inner_serialize
        with pytest.raises(ValueError):
            PipelineOptions.from_flags("bogus")
