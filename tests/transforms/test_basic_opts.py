"""Tests for canonicalize / CSE / DCE / LICM / mem2reg / inline / unroll."""


from repro.ir import Builder, F32, FunctionType, I1, I32, INDEX, memref, verify
from repro.dialects import arith, func, math as math_d, memref as memref_d, scf
from repro.transforms import (
    CSEPass,
    ParallelLICMPass,
    canonicalize,
    eliminate_dead_code,
    fully_unroll,
    hoist_loop_invariant_code,
    inline_functions,
    promote_memory_to_registers,
    trip_count,
    unroll_small_loops,
)

from tests.helpers import (
    alloc_shared,
    build_function,
    build_parallel,
    close_parallel,
    const_index,
    finish_function,
    insert_barrier,
)


class TestCanonicalize:
    def test_constant_fold_add(self):
        module, fn, builder = build_function("f", [memref((4,), F32)], ["out"])
        a = builder.insert(arith.ConstantOp(2, I32))
        b = builder.insert(arith.ConstantOp(3, I32))
        total = builder.insert(arith.AddIOp(a.result, b.result))
        doubled = builder.insert(arith.MulIOp(total.result, total.result))
        cast = builder.insert(arith.SIToFPOp(doubled.result, F32))
        zero = const_index(builder, 0)
        builder.insert(memref_d.StoreOp(cast.result, fn.arguments[0], [zero]))
        finish_function(builder)
        canonicalize(module)
        verify(module)
        constants = [op.value for op in fn.walk() if isinstance(op, arith.ConstantOp)]
        assert 25.0 in constants
        assert not any(isinstance(op, arith.AddIOp) for op in fn.walk())

    def test_fold_math_and_cmp(self):
        module, fn, builder = build_function("f", [memref((4,), F32)], ["out"])
        four = builder.insert(arith.ConstantOp(4.0, F32))
        root = builder.insert(math_d.UnaryMathOp("sqrt", four.result))
        two = builder.insert(arith.ConstantOp(2.0, F32))
        cmp = builder.insert(arith.CmpFOp(arith.CmpPredicate.EQ, root.result, two.result))
        select = builder.insert(arith.SelectOp(cmp.result, four.result, two.result))
        zero = const_index(builder, 0)
        builder.insert(memref_d.StoreOp(select.result, fn.arguments[0], [zero]))
        finish_function(builder)
        canonicalize(module)
        stored = fn.body_block.operations[-2]
        assert isinstance(stored, memref_d.StoreOp)
        assert stored.value.defining_op().value == 4.0

    def test_identity_simplification(self):
        module, fn, builder = build_function("f", [memref((4,), F32)], ["out"])
        zero_f = builder.insert(arith.ConstantOp(0.0, F32))
        value = builder.insert(memref_d.LoadOp(fn.arguments[0], [const_index(builder, 0)]))
        added = builder.insert(arith.AddFOp(value.result, zero_f.result))
        builder.insert(memref_d.StoreOp(added.result, fn.arguments[0], [const_index(builder, 1)]))
        finish_function(builder)
        canonicalize(module)
        assert not any(isinstance(op, arith.AddFOp) for op in fn.walk())

    def test_constant_if_inlined(self):
        module, fn, builder = build_function("f", [memref((4,), F32)], ["out"])
        true_val = builder.insert(arith.ConstantOp(1, I1))
        if_op = builder.insert(scf.IfOp(true_val.result))
        then_builder = Builder.at_end(if_op.then_block)
        c = then_builder.insert(arith.ConstantOp(7.0, F32))
        then_builder.insert(memref_d.StoreOp(c.result, fn.arguments[0], [const_index(then_builder, 0)]))
        then_builder.insert(scf.YieldOp())
        Builder.at_end(if_op.regions[1].block).insert(scf.YieldOp())
        finish_function(builder)
        canonicalize(module)
        assert not any(isinstance(op, scf.IfOp) for op in fn.walk())
        assert any(isinstance(op, memref_d.StoreOp) for op in fn.walk())

    def test_dce_removes_unused_pure_chain(self):
        module, fn, builder = build_function("f", [memref((4,), F32)], ["out"])
        a = builder.insert(arith.ConstantOp(2, I32))
        b = builder.insert(arith.AddIOp(a.result, a.result))
        builder.insert(arith.MulIOp(b.result, b.result))
        finish_function(builder)
        eliminate_dead_code(module)
        assert len(fn.body_block.operations) == 1  # just the return

    def test_dce_keeps_stores(self):
        module, fn, builder = build_function("f", [memref((4,), F32)], ["out"])
        c = builder.insert(arith.ConstantOp(1.0, F32))
        builder.insert(memref_d.StoreOp(c.result, fn.arguments[0], [const_index(builder, 0)]))
        finish_function(builder)
        eliminate_dead_code(module)
        assert any(isinstance(op, memref_d.StoreOp) for op in fn.walk())


class TestCSE:
    def test_duplicate_pure_ops_merged(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"])
        i0 = const_index(builder, 0)
        x = builder.insert(arith.ConstantOp(3, I32))
        first = builder.insert(arith.AddIOp(x.result, x.result))
        second = builder.insert(arith.AddIOp(x.result, x.result))
        as_float1 = builder.insert(arith.SIToFPOp(first.result, F32))
        as_float2 = builder.insert(arith.SIToFPOp(second.result, F32))
        total = builder.insert(arith.AddFOp(as_float1.result, as_float2.result))
        builder.insert(memref_d.StoreOp(total.result, fn.arguments[0], [i0]))
        finish_function(builder)
        CSEPass().run(module)
        adds = [op for op in fn.walk() if isinstance(op, arith.AddIOp)]
        assert len(adds) == 1

    def test_loads_not_csed(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"])
        i0 = const_index(builder, 0)
        l1 = builder.insert(memref_d.LoadOp(fn.arguments[0], [i0]))
        l2 = builder.insert(memref_d.LoadOp(fn.arguments[0], [i0]))
        total = builder.insert(arith.AddFOp(l1.result, l2.result))
        builder.insert(memref_d.StoreOp(total.result, fn.arguments[0], [i0]))
        finish_function(builder)
        CSEPass().run(module)
        loads = [op for op in fn.walk() if isinstance(op, memref_d.LoadOp)]
        assert len(loads) == 2

    def test_outer_value_reused_in_nested_block(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"])
        x = builder.insert(arith.ConstantOp(3, I32))
        outer = builder.insert(arith.AddIOp(x.result, x.result))
        loop, inner = build_parallel(builder, 4)
        duplicate = inner.insert(arith.AddIOp(x.result, x.result))
        as_float = inner.insert(arith.SIToFPOp(duplicate.result, F32))
        inner.insert(memref_d.StoreOp(as_float.result, fn.arguments[0], [loop.induction_vars[0]]))
        close_parallel(inner)
        finish_function(builder)
        CSEPass().run(module)
        adds = [op for op in fn.walk() if isinstance(op, arith.AddIOp)]
        assert len(adds) == 1


class TestLICM:
    def _loop_with_invariant_load(self):
        module, fn, builder = build_function("f", [memref((8,), F32), memref((8,), F32)],
                                             ["a", "b"], noalias=True)
        zero = const_index(builder, 0)
        eight = const_index(builder, 8)
        one = const_index(builder, 1)
        loop = builder.insert(scf.ForOp(zero, eight, one))
        inner = Builder.at_end(loop.body)
        invariant = inner.insert(memref_d.LoadOp(fn.arguments[1], [zero]))
        doubled = inner.insert(arith.AddFOp(invariant.result, invariant.result))
        inner.insert(memref_d.StoreOp(doubled.result, fn.arguments[0], [loop.induction_var]))
        inner.insert(scf.YieldOp())
        finish_function(builder)
        return module, fn, loop

    def test_serial_licm_hoists_invariant_load(self):
        module, fn, loop = self._loop_with_invariant_load()
        hoist_loop_invariant_code(fn, module, parallel=False)
        verify(module)
        assert not any(isinstance(op, memref_d.LoadOp) for op in loop.body.operations)
        assert any(isinstance(op, memref_d.LoadOp) for op in fn.body_block.operations)

    def test_serial_licm_respects_conflicting_store(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"])
        zero = const_index(builder, 0)
        eight = const_index(builder, 8)
        one = const_index(builder, 1)
        loop = builder.insert(scf.ForOp(zero, eight, one))
        inner = Builder.at_end(loop.body)
        load = inner.insert(memref_d.LoadOp(fn.arguments[0], [zero]))
        doubled = inner.insert(arith.AddFOp(load.result, load.result))
        inner.insert(memref_d.StoreOp(doubled.result, fn.arguments[0], [loop.induction_var]))
        inner.insert(scf.YieldOp())
        finish_function(builder)
        hoist_loop_invariant_code(fn, module, parallel=False)
        # the load may read what the loop writes: it must stay inside.
        assert any(isinstance(op, memref_d.LoadOp) for op in loop.body.operations)

    def test_parallel_licm_hoists_readonly_call(self):
        """The Fig. 1 normalize example: sum() moves out of the parallel loop."""
        module = func.ModuleOp()
        summ = func.FuncOp("sum", FunctionType((memref((64,), F32),), (F32,)),
                           device=True, arg_names=["data"])
        module.add_function(summ)
        sb = Builder.at_end(summ.body_block)
        acc = sb.insert(memref_d.LoadOp(summ.arguments[0], [sb.insert(arith.ConstantOp(0, INDEX)).result]))
        sb.insert(func.ReturnOp([acc.result]))

        kernel = func.FuncOp("normalize", FunctionType((memref((64,), F32), memref((64,), F32)), ()),
                             kernel=True, arg_names=["out", "in"])
        kernel.set_attr("arg_noalias", True)
        module.add_function(kernel)
        kb = Builder.at_end(kernel.body_block)
        loop, inner = build_parallel(kb, 64)
        tid = loop.induction_vars[0]
        total = inner.insert(func.CallOp("sum", [kernel.arguments[1]], [F32]))
        element = inner.insert(memref_d.LoadOp(kernel.arguments[1], [tid]))
        normalized = inner.insert(arith.DivFOp(element.result, total.result))
        inner.insert(memref_d.StoreOp(normalized.result, kernel.arguments[0], [tid]))
        close_parallel(inner)
        kb.insert(func.ReturnOp())

        ParallelLICMPass().run(module)
        verify(module)
        # the call now sits in the kernel body, outside the parallel loop.
        assert not any(isinstance(op, func.CallOp) for op in loop.body.operations)
        assert any(isinstance(op, func.CallOp) for op in kernel.body_block.operations)

    def test_parallel_licm_blocked_by_prior_write(self):
        module, fn, builder = build_function("f", [memref((8,), F32), memref((8,), F32)],
                                             ["a", "b"], noalias=False)
        loop, inner = build_parallel(builder, 8)
        tid = loop.induction_vars[0]
        c = inner.insert(arith.ConstantOp(1.0, F32))
        inner.insert(memref_d.StoreOp(c.result, fn.arguments[0], [tid]))
        zero = const_index(builder, 0)
        load = inner.insert(memref_d.LoadOp(fn.arguments[1], [zero]))
        inner.insert(memref_d.StoreOp(load.result, fn.arguments[0], [tid]))
        close_parallel(inner)
        finish_function(builder)
        hoist_loop_invariant_code(fn, module, parallel=True)
        # args may alias, and a prior op writes: the load must stay.
        assert any(isinstance(op, memref_d.LoadOp) for op in loop.body.operations)


class TestMem2Reg:
    def test_forwarding_across_barrier(self):
        """Fig. 9 "Unnecessary Store/Load #1": forwarding works across syncs."""
        module, fn, builder = build_function("k", [memref((64,), F32), memref((64,), F32)],
                                             ["hidden", "out"], noalias=True)
        weights = alloc_shared(builder, (64,))
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        hidden_val = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        inner.insert(memref_d.StoreOp(hidden_val.result, weights, [tid]))
        insert_barrier(inner, [tid])
        reloaded = inner.insert(memref_d.LoadOp(weights, [tid]))
        doubled = inner.insert(arith.AddFOp(reloaded.result, reloaded.result))
        inner.insert(memref_d.StoreOp(doubled.result, weights, [tid]))
        insert_barrier(inner, [tid])
        final = inner.insert(memref_d.LoadOp(weights, [tid]))
        inner.insert(memref_d.StoreOp(final.result, fn.arguments[1], [tid]))
        close_parallel(inner)
        finish_function(builder)

        promote_memory_to_registers(fn, module)
        verify(module)
        # the reload right after the first barrier is gone; its user now reads
        # the register (SSA value) loaded from `hidden`.
        remaining_loads = [op for op in loop.body.operations if isinstance(op, memref_d.LoadOp)]
        assert all(op.memref is not weights or op is not reloaded for op in remaining_loads)
        assert doubled.operands[0] is hidden_val.result

    def test_forwarding_blocked_by_cross_thread_access(self):
        module, fn, builder = build_function("k", [memref((64,), F32)], ["out"], noalias=True)
        shared = alloc_shared(builder, (64,))
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        c = inner.insert(arith.ConstantOp(1.0, F32))
        inner.insert(memref_d.StoreOp(c.result, shared, [tid]))
        insert_barrier(inner, [tid])
        one = const_index(inner, 1)
        neighbor = inner.insert(arith.AddIOp(tid, one))
        other = inner.insert(memref_d.LoadOp(shared, [neighbor.result]))
        inner.insert(memref_d.StoreOp(other.result, fn.arguments[0], [tid]))
        close_parallel(inner)
        finish_function(builder)
        promote_memory_to_registers(fn, module)
        # the load reads a *different* thread's slot: it must remain a load.
        assert any(isinstance(op, memref_d.LoadOp) and op.memref is shared
                   for op in loop.body.operations)

    def test_dead_store_elimination(self):
        module, fn, builder = build_function("k", [memref((8,), F32)], ["a"], noalias=True)
        zero = const_index(builder, 0)
        c1 = builder.insert(arith.ConstantOp(1.0, F32))
        c2 = builder.insert(arith.ConstantOp(2.0, F32))
        builder.insert(memref_d.StoreOp(c1.result, fn.arguments[0], [zero]))
        builder.insert(memref_d.StoreOp(c2.result, fn.arguments[0], [zero]))
        finish_function(builder)
        promote_memory_to_registers(fn, module)
        stores = [op for op in fn.walk() if isinstance(op, memref_d.StoreOp)]
        assert len(stores) == 1
        assert stores[0].value is c2.result


class TestInlineAndUnroll:
    def test_inline_device_function(self):
        module = func.ModuleOp()
        helper = func.FuncOp("helper", FunctionType((F32,), (F32,)), device=True, arg_names=["x"])
        module.add_function(helper)
        hb = Builder.at_end(helper.body_block)
        doubled = hb.insert(arith.AddFOp(helper.arguments[0], helper.arguments[0]))
        hb.insert(func.ReturnOp([doubled.result]))

        caller = func.FuncOp("caller", FunctionType((F32, memref((4,), F32)), ()),
                             kernel=True, arg_names=["x", "out"])
        module.add_function(caller)
        cb = Builder.at_end(caller.body_block)
        call = cb.insert(func.CallOp("helper", [caller.arguments[0]], [F32]))
        zero = cb.insert(arith.ConstantOp(0, INDEX))
        cb.insert(memref_d.StoreOp(call.result, caller.arguments[1], [zero.result]))
        cb.insert(func.ReturnOp())

        inline_functions(module, device_only=True)
        verify(module)
        assert not any(isinstance(op, func.CallOp) for op in caller.walk())
        assert any(isinstance(op, arith.AddFOp) for op in caller.walk())

    def test_trip_count(self):
        module, fn, builder = build_function("f", [memref((4,), F32)], ["a"])
        zero = const_index(builder, 0)
        ten = const_index(builder, 10)
        three = const_index(builder, 3)
        loop = builder.insert(scf.ForOp(zero, ten, three))
        Builder.at_end(loop.body).insert(scf.YieldOp())
        finish_function(builder)
        assert trip_count(loop) == 4

    def test_full_unroll_replicates_body(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"])
        zero = const_index(builder, 0)
        four = const_index(builder, 4)
        one = const_index(builder, 1)
        loop = builder.insert(scf.ForOp(zero, four, one))
        inner = Builder.at_end(loop.body)
        c = inner.insert(arith.ConstantOp(1.0, F32))
        inner.insert(memref_d.StoreOp(c.result, fn.arguments[0], [loop.induction_var]))
        inner.insert(scf.YieldOp())
        finish_function(builder)
        assert fully_unroll(loop)
        verify(module)
        stores = [op for op in fn.walk() if isinstance(op, memref_d.StoreOp)]
        assert len(stores) == 4
        assert not any(isinstance(op, scf.ForOp) for op in fn.walk())

    def test_unroll_only_with_barriers_filter(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"])
        zero = const_index(builder, 0)
        four = const_index(builder, 4)
        one = const_index(builder, 1)
        loop = builder.insert(scf.ForOp(zero, four, one))
        Builder.at_end(loop.body).insert(scf.YieldOp())
        finish_function(builder)
        assert not unroll_small_loops(fn, only_with_barriers=True)
        assert any(isinstance(op, scf.ForOp) for op in fn.walk())
