"""Frontend tests: lexer, parser, codegen and end-to-end compile+execute."""

import numpy as np
import pytest

from repro.frontend import CodegenError, ParseError, compile_cuda, parse, tokenize
from repro.frontend import cast as ast
from repro.dialects import gpu as gpu_d, omp as omp_d, polygeist, scf
from repro.runtime import Interpreter
from repro.transforms import PipelineOptions
from repro.ir import verify


NORMALIZE_SOURCE = """
__device__ float sum(float* data, int n) {
    float total = 0.0f;
    for (int i = 0; i < n; i += 1) {
        total += data[i];
    }
    return total;
}

__global__ void normalize(float* out, float* in, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float val = sum(in, n);
    if (tid < n) {
        out[tid] = in[tid] / val;
    }
}

void launch(float* d_out, float* d_in, int n) {
    normalize<<<(n + 31) / 32, 32>>>(d_out, d_in, n);
}
"""

REDUCTION_SOURCE = """
__global__ void block_sum(float* data, float* out, int n) {
    __shared__ float buffer[32];
    int tid = threadIdx.x;
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    buffer[tid] = data[gid];
    __syncthreads();
    for (int s = 16; s > 0; s = s / 2) {
        if (tid < s) {
            buffer[tid] += buffer[tid + s];
        }
        __syncthreads();
    }
    if (tid == 0) {
        out[blockIdx.x] = buffer[0];
    }
}

void host(float* data, float* out, int n) {
    block_sum<<<n / 32, 32>>>(data, out, n);
}
"""

OPENMP_SOURCE = """
void scale(float* data, int n, float factor) {
    #pragma omp parallel for
    for (int i = 0; i < n; i += 1) {
        data[i] = data[i] * factor;
    }
}
"""


class TestLexer:
    def test_tokens(self):
        tokens = tokenize("__global__ void f(float* x) { x[0] = 1.5f; }")
        kinds = [token.kind for token in tokens]
        assert "keyword" in kinds and "ident" in kinds and "float" in kinds
        assert tokens[-1].kind == "eof"

    def test_launch_chevrons(self):
        tokens = tokenize("k<<<grid, 32>>>(a);")
        texts = [token.text for token in tokens]
        assert "<<<" in texts and ">>>" in texts

    def test_comments_and_includes_skipped(self):
        tokens = tokenize("#include <stdio.h>\n// comment\n/* block */ int x;")
        texts = [token.text for token in tokens if token.kind != "eof"]
        assert texts == ["int", "x", ";"]

    def test_pragma_token(self):
        tokens = tokenize("#pragma omp parallel for\nfor(;;){}")
        assert tokens[0].kind == "pragma"
        assert "omp" in tokens[0].text


class TestParser:
    def test_parse_normalize(self):
        program = parse(NORMALIZE_SOURCE)
        assert len(program.functions) == 3
        kernel = program.find("normalize")
        assert kernel.is_kernel
        device = program.find("sum")
        assert device.is_device
        host = program.find("launch")
        assert any(isinstance(statement, ast.LaunchStmt) for statement in host.body.statements)

    def test_parse_shared_and_sync(self):
        program = parse(REDUCTION_SOURCE)
        kernel = program.find("block_sum")
        declarations = [s for s in kernel.body.statements if isinstance(s, ast.DeclStmt)]
        assert any(decl.shared and decl.array_dims == [32] for decl in declarations)

    def test_parse_omp_pragma(self):
        program = parse(OPENMP_SOURCE)
        loop = program.find("scale").body.statements[0]
        assert isinstance(loop, ast.ForStmt) and loop.omp_parallel

    def test_parse_error_reported(self):
        with pytest.raises(ParseError):
            parse("void f( { }")

    def test_expression_precedence(self):
        program = parse("int f(int a, int b) { return a + b * 2; }")
        ret = program.find("f").body.statements[0]
        assert isinstance(ret.value, ast.BinOp) and ret.value.op == "+"
        assert isinstance(ret.value.rhs, ast.BinOp) and ret.value.rhs.op == "*"


class TestCodegen:
    def test_normalize_module_structure(self):
        module = compile_cuda(NORMALIZE_SOURCE)
        verify(module)
        assert module.lookup("launch") is not None
        assert module.lookup("sum") is not None
        launches = [op for op in module.walk() if isinstance(op, gpu_d.LaunchOp)]
        assert len(launches) == 1
        assert launches[0].kernel_name == "normalize"

    def test_syncthreads_becomes_gpu_barrier(self):
        module = compile_cuda(REDUCTION_SOURCE)
        assert any(isinstance(op, gpu_d.BarrierOp) for op in module.walk())

    def test_omp_pragma_becomes_parallel_loop(self):
        module = compile_cuda(OPENMP_SOURCE)
        assert any(isinstance(op, scf.ParallelOp) for op in module.walk())

    def test_error_on_unknown_kernel(self):
        with pytest.raises(CodegenError):
            compile_cuda("void f() { missing<<<1, 1>>>(); }")

    def test_error_on_syncthreads_outside_kernel(self):
        with pytest.raises(CodegenError):
            compile_cuda("void f() { __syncthreads(); }")


class TestEndToEnd:
    def test_normalize_oracle_vs_cpuified(self):
        rng = np.random.default_rng(1)
        data = rng.random(64).astype(np.float32) + 0.5
        expected = data / data.sum()

        oracle_module = compile_cuda(NORMALIZE_SOURCE)
        oracle_out = np.zeros(64, dtype=np.float32)
        Interpreter(oracle_module).run("launch", [oracle_out, data.copy(), 64])
        assert np.allclose(oracle_out, expected, rtol=1e-4)

        cpu_module = compile_cuda(NORMALIZE_SOURCE, cuda_lower=True)
        cpu_out = np.zeros(64, dtype=np.float32)
        Interpreter(cpu_module).run("launch", [cpu_out, data.copy(), 64])
        assert np.allclose(cpu_out, expected, rtol=1e-4)

    def test_normalize_parallel_licm_hoists_sum(self):
        """The Fig. 1 motivation: after cpuify the sum() work runs once, not once
        per thread, so the dynamic op count drops by an order of magnitude."""
        data = np.ones(64, dtype=np.float32)

        unoptimized = compile_cuda(NORMALIZE_SOURCE, cuda_lower=True,
                                   options=PipelineOptions.opt_disabled())
        out_a = np.zeros(64, dtype=np.float32)
        interp_a = Interpreter(unoptimized)
        interp_a.run("launch", [out_a, data.copy(), 64])

        optimized = compile_cuda(NORMALIZE_SOURCE, cuda_lower=True)
        out_b = np.zeros(64, dtype=np.float32)
        interp_b = Interpreter(optimized)
        interp_b.run("launch", [out_b, data.copy(), 64])

        assert np.allclose(out_a, out_b, rtol=1e-5)
        assert interp_b.report.dynamic_ops * 5 < interp_a.report.dynamic_ops

    @pytest.mark.parametrize("flags", ["mincut,openmpopt,affine,innerser", "mincut", ""])
    def test_reduction_kernel_matches_numpy(self, flags):
        rng = np.random.default_rng(2)
        data = rng.standard_normal(128).astype(np.float32)
        expected = data.reshape(4, 32).sum(axis=1)

        module = compile_cuda(REDUCTION_SOURCE, cuda_lower=True,
                              cpuify_options=flags if flags else None,
                              options=None if flags else PipelineOptions.opt_disabled())
        out = np.zeros(4, dtype=np.float32)
        Interpreter(module).run("host", [data.copy(), out, 128])
        assert np.allclose(out, expected, rtol=1e-4)
        # after lowering no GPU barrier survives
        assert not any(isinstance(op, (gpu_d.BarrierOp, polygeist.PolygeistBarrierOp))
                       for op in module.walk())

    def test_openmp_reference_runs(self):
        module = compile_cuda(OPENMP_SOURCE, cuda_lower=True)
        data = np.arange(16, dtype=np.float32)
        Interpreter(module).run("scale", [data, 16, 3.0])
        assert np.allclose(data, np.arange(16) * 3.0)
        assert any(isinstance(op, omp_d.OmpParallelOp) for op in module.walk())
