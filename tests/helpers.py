"""Shared helpers for building test IR fragments."""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ir import Builder, F32, FunctionType, INDEX, MemorySpace, Type, memref
from repro.dialects import arith, func, memref as memref_d, polygeist, scf


def build_function(name: str, arg_types: Sequence[Type], arg_names: Sequence[str] = (),
                   noalias: bool = True) -> Tuple[func.ModuleOp, func.FuncOp, Builder]:
    """Create a module with one empty function and a builder at its end."""
    module = func.ModuleOp()
    fn = func.FuncOp(name, FunctionType(tuple(arg_types), ()), arg_names=list(arg_names))
    fn.set_attr("arg_noalias", noalias)
    module.add_function(fn)
    return module, fn, Builder.at_end(fn.body_block)


def finish_function(builder: Builder) -> None:
    builder.insert(func.ReturnOp())


def const_index(builder: Builder, value: int):
    return builder.insert(arith.ConstantOp(value, INDEX)).result


def build_parallel(builder: Builder, extent: int, level: str = scf.ParallelOp.LEVEL_BLOCK,
                   num_dims: int = 1) -> Tuple[scf.ParallelOp, Builder]:
    """Insert a 1D (or nD) ``scf.parallel`` from 0 to ``extent`` step 1."""
    zero = const_index(builder, 0)
    upper = const_index(builder, extent)
    one = const_index(builder, 1)
    loop = builder.insert(scf.ParallelOp([zero] * num_dims, [upper] * num_dims,
                                         [one] * num_dims, parallel_level=level))
    inner = Builder.at_end(loop.body)
    return loop, inner


def close_parallel(inner_builder: Builder) -> None:
    inner_builder.insert(scf.YieldOp())


def alloc_global(builder: Builder, shape, element_type=F32):
    return builder.insert(memref_d.AllocOp(memref(shape, element_type))).result


def alloc_shared(builder: Builder, shape, element_type=F32):
    return builder.insert(
        memref_d.AllocaOp(memref(shape, element_type, MemorySpace.SHARED))).result


def insert_barrier(builder: Builder, thread_ivs) -> polygeist.PolygeistBarrierOp:
    return builder.insert(polygeist.PolygeistBarrierOp(list(thread_ivs)))
