"""Shared helpers: test IR fragments, engine-parity assertions and the
seeded random CUDA-kernel generator used by the differential fuzz suite."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir import Builder, F32, FunctionType, INDEX, MemorySpace, Type, memref
from repro.dialects import arith, func, memref as memref_d, polygeist, scf
from repro.transforms import PipelineOptions


def build_function(name: str, arg_types: Sequence[Type], arg_names: Sequence[str] = (),
                   noalias: bool = True) -> Tuple[func.ModuleOp, func.FuncOp, Builder]:
    """Create a module with one empty function and a builder at its end."""
    module = func.ModuleOp()
    fn = func.FuncOp(name, FunctionType(tuple(arg_types), ()), arg_names=list(arg_names))
    fn.set_attr("arg_noalias", noalias)
    module.add_function(fn)
    return module, fn, Builder.at_end(fn.body_block)


def finish_function(builder: Builder) -> None:
    builder.insert(func.ReturnOp())


def const_index(builder: Builder, value: int):
    return builder.insert(arith.ConstantOp(value, INDEX)).result


def build_parallel(builder: Builder, extent: int, level: str = scf.ParallelOp.LEVEL_BLOCK,
                   num_dims: int = 1) -> Tuple[scf.ParallelOp, Builder]:
    """Insert a 1D (or nD) ``scf.parallel`` from 0 to ``extent`` step 1."""
    zero = const_index(builder, 0)
    upper = const_index(builder, extent)
    one = const_index(builder, 1)
    loop = builder.insert(scf.ParallelOp([zero] * num_dims, [upper] * num_dims,
                                         [one] * num_dims, parallel_level=level))
    inner = Builder.at_end(loop.body)
    return loop, inner


def close_parallel(inner_builder: Builder) -> None:
    inner_builder.insert(scf.YieldOp())


def alloc_global(builder: Builder, shape, element_type=F32):
    return builder.insert(memref_d.AllocOp(memref(shape, element_type))).result


def alloc_shared(builder: Builder, shape, element_type=F32):
    return builder.insert(
        memref_d.AllocaOp(memref(shape, element_type, MemorySpace.SHARED))).result


def insert_barrier(builder: Builder, thread_ivs) -> polygeist.PolygeistBarrierOp:
    return builder.insert(polygeist.PolygeistBarrierOp(list(thread_ivs)))


# ---------------------------------------------------------------------------
# Cross-engine parity assertions (shared by parity, fuzz and cache tests)
# ---------------------------------------------------------------------------
def report_fields(report) -> Tuple:
    """The CostReport fields pinned bit-for-bit across engines."""
    return (report.cycles, report.dynamic_ops, report.parallel_regions,
            report.nested_regions, report.workshared_loops, report.barriers,
            report.simt_phases, report.global_bytes)


def run_engine_matrix(module, entry: str, make_args: Callable[[], List],
                      output_indices: Sequence[int], *,
                      engines: Sequence[str] = ("interp", "compiled",
                                                "vectorized", "multicore",
                                                "native"),
                      machine=None, threads: Optional[int] = None,
                      workers: Optional[int] = None,
                      label: str = "") -> None:
    """Run ``module`` through every engine; assert bit-identical outputs and
    CostReports against the first engine in the list (the oracle)."""
    from repro.runtime import XEON_8375C, make_executor

    machine = machine or XEON_8375C
    oracle_name = engines[0]
    oracle_args = make_args()
    oracle = make_executor(module, engine=oracle_name, machine=machine,
                           threads=threads, workers=workers)
    oracle.run(entry, oracle_args)
    for engine_name in engines[1:]:
        engine_args = make_args()
        engine = make_executor(module, engine=engine_name, machine=machine,
                               threads=threads, workers=workers)
        engine.run(entry, engine_args)
        for index in output_indices:
            np.testing.assert_array_equal(
                np.asarray(oracle_args[index]), np.asarray(engine_args[index]),
                err_msg=(f"{label}: output {index} diverged between "
                         f"{oracle_name} and {engine_name}"))
        assert report_fields(oracle.report) == report_fields(engine.report), (
            f"{label}: cost reports diverged between {oracle_name} and "
            f"{engine_name}:\n  {oracle_name} {report_fields(oracle.report)}"
            f"\n  {engine_name} {report_fields(engine.report)}")


# ---------------------------------------------------------------------------
# Seeded random CUDA-kernel generator (the differential fuzzer's front half)
# ---------------------------------------------------------------------------
#: pipeline configurations the fuzzer samples, by name (the name goes into
#: the kernel's description so failures reproduce from the seed alone).
FUZZ_PIPELINES = {
    "all": PipelineOptions.all_optimizations(),
    "innerpar": PipelineOptions.all_optimizations(inner_serialize=False),
    "disabled": PipelineOptions.opt_disabled(),
    "mincut+openmpopt": PipelineOptions.from_flags("mincut,openmpopt"),
}


@dataclass
class FuzzKernel:
    """One generated CUDA kernel plus everything needed to execute it."""

    seed: int
    source: str
    entry: str
    total_threads: int
    n: int
    block_size: int
    dims: int
    has_barrier: bool
    guarded: bool
    pipeline: str
    has_while: bool = False
    barrier_loop: bool = False
    description: str = field(default="")

    def make_args(self) -> List:
        rng = np.random.default_rng(self.seed)
        size = self.total_threads
        a = (rng.random(size, dtype=np.float64).astype(np.float32) + 0.1)
        b = (rng.random(size, dtype=np.float64).astype(np.float32) + 0.1)
        out = np.zeros(size, dtype=np.float32)
        return [a, b, out, self.n]

    @property
    def options(self) -> PipelineOptions:
        return FUZZ_PIPELINES[self.pipeline]

    def compile(self, cuda_lower: bool = True):
        from repro.frontend import compile_cuda

        return compile_cuda(self.source, filename=f"fuzz_{self.seed}.cu",
                            cuda_lower=cuda_lower,
                            options=self.options if cuda_lower else None)


class _KernelGrammar:
    """Grammar over arith exprs / memref accesses / for / if / barriers."""

    def __init__(self, rng: random.Random, n_name: str = "n") -> None:
        self.rng = rng
        self.n_name = n_name

    def index(self, extra: Sequence[str] = ()) -> str:
        """A random in-bounds flat index expression (memref access)."""
        roll = self.rng.random()
        if extra and roll < 0.35:
            ivar = self.rng.choice(list(extra))
            return f"(gid + {ivar}) % {self.n_name}"
        if roll < 0.6:
            return "gid"
        if roll < 0.8:
            return f"(gid + {self.rng.randint(1, 7)}) % {self.n_name}"
        # gid may exceed n-1 in guarded kernels: reduce *before* mirroring
        # so the index never goes negative.
        return f"({self.n_name} - 1 - gid % {self.n_name})"

    def atom(self, locals_: Sequence[str], loop_vars: Sequence[str]) -> str:
        roll = self.rng.random()
        if roll < 0.35:
            return f"a[{self.index(loop_vars)}]"
        if roll < 0.6:
            return f"b[{self.index(loop_vars)}]"
        if locals_ and roll < 0.8:
            return self.rng.choice(list(locals_))
        return f"{self.rng.uniform(0.125, 2.0):.4f}f"

    def expr(self, locals_: Sequence[str] = (), loop_vars: Sequence[str] = (),
             depth: int = 2) -> str:
        """A random float expression over loads, locals and literals."""
        if depth <= 0 or self.rng.random() < 0.3:
            return self.atom(locals_, loop_vars)
        op = self.rng.choice(["+", "-", "*", "+", "*", "/"])
        lhs = self.expr(locals_, loop_vars, depth - 1)
        if op == "/":
            # divisor is a load plus a constant > 1, so it is always in
            # [1.6, 2.6): no division by zero, no overflow, engine-exact.
            rhs = f"(b[{self.index(loop_vars)}] + 1.5f)"
        else:
            rhs = self.expr(locals_, loop_vars, depth - 1)
        return f"({lhs} {op} {rhs})"


def generate_fuzz_kernel(seed: int) -> FuzzKernel:
    """Generate one deterministic random CUDA kernel for ``seed``.

    The grammar covers the constructs the engines must agree on: arith
    expression DAGs, memref loads/stores with wrapped indices, uniform
    ``for`` loops (``scf.for``), data-dependent ``if``/``else`` (``scf.if``),
    optional ``__shared__`` staging with ``__syncthreads`` (including a
    tree reduction and a uniform ``while`` loop *containing* barriers — the
    guarded-barrier region class), ``while``/``do-while`` loops over local
    counters (``scf.while``), 1D and 2D grids, and guarded stores.  Inputs
    are bounded away from zero so every operation is exact-arithmetic-safe
    and all five engines must match bit for bit.
    """
    rng = random.Random(seed)
    g = _KernelGrammar(rng)

    dims = 2 if rng.random() < 0.35 else 1
    grid_x = rng.choice([1, 2, 3, 4])
    grid_y = rng.choice([1, 2]) if dims == 2 else 1
    block_size = rng.choice([4, 8, 16, 32])
    total = grid_x * grid_y * block_size
    has_barrier = rng.random() < 0.4
    barrier_kind = rng.random()
    barrier_reduce = has_barrier and barrier_kind < 0.4 and block_size >= 4
    barrier_loop = has_barrier and not barrier_reduce and barrier_kind < 0.7
    has_loop = rng.random() < 0.55
    has_branch = rng.random() < 0.55
    has_while = rng.random() < 0.35
    do_while = has_while and rng.random() < 0.4
    guarded = rng.random() < 0.3
    n = total - rng.randint(1, block_size - 1) if guarded else total
    n = max(n, 1)
    pipeline = rng.choice(sorted(FUZZ_PIPELINES))

    body: List[str] = []
    body.append("    int bx = blockIdx.x;")
    body.append("    int tx = threadIdx.x;")
    if dims == 2:
        body.append("    int by = blockIdx.y;")
        body.append("    int gid = (by * gridDim.x + bx) * blockDim.x + tx;")
    else:
        body.append("    int gid = bx * blockDim.x + tx;")
    body.append(f"    float acc = {g.expr(depth=2)};")
    locals_ = ["acc"]
    if rng.random() < 0.5:
        body.append(f"    float aux = {g.expr(locals_, depth=2)};")
        locals_.append("aux")

    if has_branch:
        kind = rng.choice(["parity", "threshold", "data"])
        if kind == "parity":
            condition = "gid % 2 == 0"
        elif kind == "threshold":
            condition = f"tx < {max(1, block_size // 2)}"
        else:
            condition = f"a[gid] < b[{g.index()}]"
        body.append(f"    if ({condition}) {{")
        body.append(f"        acc = acc + {g.expr(locals_, depth=1)};")
        if rng.random() < 0.7:
            body.append("    } else {")
            body.append(f"        acc = (acc * 0.5f) - {g.expr(locals_, depth=1)};")
        body.append("    }")

    if has_loop:
        trip = rng.randint(2, 5)
        body.append(f"    for (int i = 0; i < {trip}; i++) {{")
        body.append(f"        acc = acc + {g.expr(locals_, ['i'], depth=1)};")
        body.append("    }")

    if has_while:
        trip = rng.randint(2, 5)
        body.append("    int k = 0;")
        if do_while:
            body.append("    do {")
            body.append(f"        acc = acc * 0.5f + {g.expr(locals_, ['k'], depth=1)};")
            body.append("        k = k + 1;")
            body.append(f"    }} while (k < {trip});")
        else:
            body.append(f"    while (k < {trip}) {{")
            body.append(f"        acc = acc + {g.expr(locals_, ['k'], depth=1)};")
            body.append("        k = k + 1;")
            body.append("    }")

    if has_barrier:
        body.append(f"    __shared__ float buf[{block_size}];")
        body.append("    buf[tx] = acc;")
        body.append("    __syncthreads();")
        if barrier_reduce:
            body.append(f"    for (int s = {block_size // 2}; s > 0; s = s / 2) {{")
            body.append("        if (tx < s) {")
            body.append("            buf[tx] += buf[tx + s];")
            body.append("        }")
            body.append("        __syncthreads();")
            body.append("    }")
            body.append("    acc = acc + buf[0] * 0.125f;")
        elif barrier_loop:
            # barriers inside a uniform while loop (backprop's shape): the
            # round counter is a per-thread local updated identically by
            # every thread, so the loop condition is block-uniform and each
            # shared-buffer write is barrier-separated from the next read.
            rounds = rng.randint(2, 4)
            body.append(f"    int rounds = {rounds};")
            body.append("    while (rounds > 0) {")
            body.append(f"        float v = buf[(tx + 1) % {block_size}];")
            body.append("        __syncthreads();")
            body.append("        buf[tx] = v * 0.5f + acc;")
            body.append("        __syncthreads();")
            body.append("        rounds = rounds - 1;")
            body.append("    }")
            body.append("    acc = acc + buf[0] * 0.125f;")
        else:
            body.append(f"    acc = acc + buf[(tx + 1) % {block_size}] * 0.25f;")

    store = "out[gid] = acc;"
    if guarded:
        body.append("    if (gid < n) {")
        body.append(f"        {store}")
        body.append("    }")
    else:
        body.append(f"    {store}")

    launch_lines: List[str] = []
    if dims == 2:
        launch_lines.append(f"    dim3 grid({grid_x}, {grid_y});")
        launch_lines.append(
            f"    fuzz_kernel<<<grid, {block_size}>>>(a, b, out, n);")
    else:
        launch_lines.append(
            f"    fuzz_kernel<<<{grid_x}, {block_size}>>>(a, b, out, n);")

    source = "\n".join([
        "__global__ void fuzz_kernel(float* a, float* b, float* out, int n) {",
        *body,
        "}",
        "",
        "void launch(float* a, float* b, float* out, int n) {",
        *launch_lines,
        "}",
        "",
    ])
    description = (f"seed={seed} dims={dims} grid={grid_x}x{grid_y} "
                   f"block={block_size} barrier={has_barrier} "
                   f"reduce={barrier_reduce} bloop={barrier_loop} "
                   f"loop={has_loop} branch={has_branch} "
                   f"while={has_while} dowhile={do_while} guarded={guarded} "
                   f"pipeline={pipeline}")
    return FuzzKernel(seed=seed, source=source, entry="launch",
                      total_threads=total, n=n, block_size=block_size,
                      dims=dims, has_barrier=has_barrier, guarded=guarded,
                      pipeline=pipeline, has_while=has_while,
                      barrier_loop=barrier_loop, description=description)
