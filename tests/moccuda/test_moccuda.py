"""MocCUDA tests: tensor numerics, backend model shapes, the CUDART shim and
the Polygeist-transpiled NLL-loss kernel."""

import numpy as np
import pytest

from repro import moccuda as mc
from repro.runtime import A64FX_CMG


class TestTensorPrimitives:
    def test_conv2d_matches_naive_reference(self):
        rng = np.random.default_rng(0)
        inputs = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        weight = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        out = mc.conv2d_im2col(inputs, weight, stride=1, padding=1)
        # naive direct reference
        padded = np.pad(inputs, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros_like(out)
        for n in range(2):
            for k in range(4):
                for y in range(8):
                    for x in range(8):
                        expected[n, k, y, x] = np.sum(
                            padded[n, :, y:y + 3, x:x + 3] * weight[k])
        assert np.allclose(out, expected, atol=1e-4)
        assert out.shape == (2, 4, 8, 8)

    def test_conv2d_stride(self):
        rng = np.random.default_rng(1)
        inputs = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        weight = rng.standard_normal((2, 2, 3, 3)).astype(np.float32)
        out = mc.conv2d_im2col(inputs, weight, stride=2, padding=1)
        assert out.shape == (1, 2, 4, 4)

    def test_batch_norm_normalizes(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 3, 8, 8)).astype(np.float32) * 5 + 2
        y = mc.batch_norm(x)
        assert abs(y.mean()) < 1e-4
        assert abs(y.std() - 1.0) < 1e-2

    def test_pooling_and_relu(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4) - 8
        assert mc.relu(x).min() == 0
        assert mc.max_pool2d(x).shape == (1, 1, 2, 2)
        assert mc.avg_pool2d(x).shape == (1, 1, 1, 1)

    def test_softmax_nll(self):
        logits = np.array([[2.0, 1.0, 0.1], [0.5, 2.5, 0.0]], dtype=np.float32)
        probs = mc.softmax(logits)
        assert np.allclose(probs.sum(axis=1), 1.0)
        loss = mc.nll_loss(np.log(probs), np.array([0, 1]))
        assert loss > 0


class TestBackendModel:
    def test_all_backends_numerically_agree(self):
        rng = np.random.default_rng(3)
        inputs = rng.standard_normal((1, 4, 8, 8)).astype(np.float32)
        weight = rng.standard_normal((8, 4, 3, 3)).astype(np.float32)
        reference = mc.conv2d(inputs, weight, backend="native", padding=1)
        for backend in mc.BACKENDS:
            assert np.allclose(mc.conv2d(inputs, weight, backend=backend, padding=1),
                               reference, atol=1e-4)

    def test_moccuda_beats_onednn_on_hbm_machine(self):
        shape = mc.ConvShape(batch=4, in_channels=64, height=56, width=56,
                             out_channels=64, kernel=3, padding=1)
        moc = mc.conv_layer_cycles(shape, "moccuda+polygeist", threads=12, machine=A64FX_CMG)
        dnn = mc.conv_layer_cycles(shape, "dnnl", threads=12, machine=A64FX_CMG)
        native = mc.conv_layer_cycles(shape, "native", threads=12, machine=A64FX_CMG)
        assert moc < dnn < native

    def test_fujitsu_tuning_improves_on_intel_onednn(self):
        shape = mc.ConvShape(batch=4, in_channels=128, height=28, width=28,
                             out_channels=128, kernel=3, padding=1)
        intel = mc.conv_layer_cycles(shape, "onednn", threads=12)
        fujitsu = mc.conv_layer_cycles(shape, "dnnl", threads=12)
        assert fujitsu < intel
        assert fujitsu > intel * 0.8  # tuned fork helps by a few percent, not 10x

    def test_resnet_throughput_shapes(self):
        """Fig. 15: MocCUDA over oneDNN geomean ~2.7x, within the 1.2x-4.5x band."""
        ratios = [mc.relative_throughput(batch, threads)
                  for batch in (1, 2, 4, 6, 8, 12)
                  for threads in (1, 4, 12)]
        geomean = float(np.exp(np.mean(np.log(ratios))))
        assert min(ratios) >= 1.0
        assert max(ratios) <= 6.0
        assert 1.5 <= geomean <= 4.5

    def test_expert_and_polygeist_kernels_comparable(self):
        expert = mc.throughput_images_per_second("moccuda+expert", batch=8, threads=12)
        polygeist = mc.throughput_images_per_second("moccuda+polygeist", batch=8, threads=12)
        assert abs(expert - polygeist) / expert < 0.1

    def test_throughput_scales_with_threads(self):
        slow = mc.throughput_images_per_second("moccuda+polygeist", batch=8, threads=1)
        fast = mc.throughput_images_per_second("moccuda+polygeist", batch=8, threads=12)
        assert fast > slow


class TestShim:
    def test_device_properties(self):
        session = mc.MocCUDASession()
        properties = session.cuda_get_device_properties()
        assert properties.warp_size == 32
        assert "cudaGetDeviceProperties" in session.call_log

    def test_streams_execute_in_order(self):
        session = mc.MocCUDASession()
        stream = session.cuda_stream_create()
        order = []
        stream.enqueue(lambda: order.append(1))
        stream.enqueue(lambda: order.append(2))
        assert session.cuda_stream_synchronize(stream.stream_id) == 2
        assert order == [1, 2]

    def test_memcpy_and_malloc(self):
        session = mc.MocCUDASession()
        device_buffer = session.cuda_malloc(16 * 4)
        session.cuda_memcpy(device_buffer, np.arange(16, dtype=np.float32))
        assert np.allclose(device_buffer, np.arange(16))

    def test_cublas_interception(self):
        session = mc.MocCUDASession()
        a = np.eye(3, dtype=np.float32)
        b = np.arange(9, dtype=np.float32).reshape(3, 3)
        assert np.allclose(session.cublas_sgemm(a, b), b)

    def test_transpiled_nll_loss_matches_numpy(self):
        session = mc.MocCUDASession()
        rng = np.random.default_rng(4)
        logits = rng.standard_normal((8, 10)).astype(np.float32)
        log_probs = np.log(mc.softmax(logits))
        targets = rng.integers(0, 10, size=8)
        expected = mc.nll_loss(log_probs, targets)
        actual = session.nll_loss(log_probs, targets)
        assert actual == pytest.approx(expected, rel=1e-4)
        assert "ClassNLLCriterion_updateOutput" in session.call_log
