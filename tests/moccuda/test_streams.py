"""Stream/event semantics under the thread-backed executor.

Pins the MocCUDA shim's asynchrony contract: per-stream FIFO order,
host-overlapping execution, cross-stream ordering through CUDA events,
``synchronize()`` task counting, error propagation at sync, and launch
batching (coalesced dispatches produce tensors bit-identical to unbatched
launches while issuing fewer executor dispatches)."""

import threading
import time

import numpy as np
import pytest

from repro import moccuda as mc
from repro.moccuda import CudaEvent, MocCUDASession
from repro.runtime import StreamPoisonedError, WorkerCrashError, resilience
from repro.runtime.resilience import reset_faults


@pytest.fixture()
def session():
    with MocCUDASession() as live_session:
        yield live_session


def _nll_inputs(seed=4, batch=8, classes=10):
    rng = np.random.default_rng(seed)
    logits = rng.standard_normal((batch, classes)).astype(np.float32)
    log_probs = np.log(mc.softmax(logits))
    targets = rng.integers(0, classes, size=batch)
    return log_probs, targets


def _launch_args(log_probs, targets, batch, classes):
    losses = np.zeros(32, dtype=np.float32)
    total = np.zeros(1, dtype=np.float32)
    return [np.ascontiguousarray(log_probs.reshape(-1)),
            targets.astype(np.int64), losses, total, batch, classes], total


class TestFifoOrder:
    def test_tasks_execute_in_submission_order(self, session):
        stream = session.cuda_stream_create()
        order = []
        for index in range(20):
            stream.enqueue(lambda index=index: order.append(index))
        executed = session.cuda_stream_synchronize(stream.stream_id)
        assert executed == 20
        assert order == list(range(20))

    def test_fifo_holds_under_interleaved_sleeps(self, session):
        """A slow head task must not let later tasks overtake it."""
        stream = session.cuda_stream_create()
        order = []
        stream.enqueue(lambda: (time.sleep(0.05), order.append("slow")))
        stream.enqueue(lambda: order.append("fast"))
        stream.synchronize()
        assert order == ["slow", "fast"]

    def test_streams_run_concurrently_with_host(self, session):
        """The queue starts executing before synchronize is called."""
        stream = session.cuda_stream_create()
        started = threading.Event()
        release = threading.Event()
        stream.enqueue(lambda: (started.set(), release.wait(5)))
        assert started.wait(5), "task did not start until synchronize()"
        release.set()
        stream.synchronize()

    def test_sync_mode_drains_only_on_synchronize(self):
        with MocCUDASession(async_streams=False) as session:
            stream = session.cuda_stream_create()
            ran = []
            stream.enqueue(lambda: ran.append(1))
            time.sleep(0.02)
            assert ran == []  # legacy semantics: nothing runs until sync
            assert session.cuda_stream_synchronize(stream.stream_id) == 1
            assert ran == [1]


class TestSynchronizeCounts:
    def test_counts_reset_between_synchronizes(self, session):
        stream = session.cuda_stream_create()
        for _ in range(3):
            stream.enqueue(lambda: None)
        assert stream.synchronize() == 3
        assert stream.synchronize() == 0
        stream.enqueue(lambda: None)
        assert stream.synchronize() == 1

    def test_device_synchronize_drains_all_streams(self, session):
        streams = [session.cuda_stream_create() for _ in range(3)]
        for index, stream in enumerate(streams):
            for _ in range(index + 1):
                stream.enqueue(lambda: None)
        assert session.cuda_device_synchronize() == 1 + 2 + 3

    def test_task_errors_surface_at_synchronize(self, session):
        stream = session.cuda_stream_create()

        def boom():
            raise ValueError("async launch failure")

        stream.enqueue(boom)
        with pytest.raises(ValueError, match="async launch failure"):
            stream.synchronize()

    def test_synchronize_drains_past_a_failing_task(self, session):
        """An error must not abandon queued work: after a caught error the
        stream is idle and later work has actually completed."""
        stream = session.cuda_stream_create()
        ran = []

        def boom():
            raise ValueError("first task fails")

        stream.enqueue(boom)
        stream.enqueue(lambda: (time.sleep(0.03), ran.append("late")))
        with pytest.raises(ValueError, match="first task fails"):
            stream.synchronize()
        assert ran == ["late"]       # the queue drained before raising
        assert stream.synchronize() == 0  # counter was reset, stream idle


class TestEvents:
    def test_unrecorded_event_is_complete(self, session):
        event = session.cuda_event_create()
        assert session.cuda_event_query(event)
        session.cuda_event_synchronize(event)  # returns immediately

    def test_record_resets_until_queue_reaches_marker(self, session):
        stream = session.cuda_stream_create()
        release = threading.Event()
        stream.enqueue(lambda: release.wait(5))
        event = session.cuda_event_create()
        session.cuda_event_record(event, stream.stream_id)
        assert not session.cuda_event_query(event)
        release.set()
        session.cuda_event_synchronize(event)
        assert session.cuda_event_query(event)
        stream.synchronize()

    def test_cross_stream_event_ordering(self, session):
        """B's work after wait_event must observe A's work before record."""
        stream_a = session.cuda_stream_create()
        stream_b = session.cuda_stream_create()
        event = session.cuda_event_create()
        log = []
        stream_a.enqueue(lambda: (time.sleep(0.05), log.append("a")))
        session.cuda_event_record(event, stream_a.stream_id)
        session.cuda_stream_wait_event(stream_b.stream_id, event)
        stream_b.enqueue(lambda: log.append("b"))
        stream_b.synchronize()
        stream_a.synchronize()
        assert log == ["a", "b"]

    def test_wait_event_blocks_stream_not_host(self, session):
        stream = session.cuda_stream_create()
        event = CudaEvent(99)
        event._reset()  # recorded somewhere, not yet fired
        stream.wait_event(event)
        ran = []
        stream.enqueue(lambda: ran.append(1))
        time.sleep(0.05)
        assert ran == []  # the stream is parked behind the event...
        event._fire()    # ...but the host was never blocked
        stream.synchronize()
        assert ran == [1]

    def test_wait_event_timeout_raises_at_sync(self, session):
        stream = session.cuda_stream_create()
        event = CudaEvent(100)
        event._reset()
        stream.wait_event(event, timeout=0.05)
        with pytest.raises(RuntimeError, match="timed out"):
            stream.synchronize()

    def test_rerecord_supersedes_previous_record(self, session):
        """Only the *latest* record point may fire the event: a marker left
        in an earlier stream's queue must not release waiters early."""
        fast, slow = session.cuda_stream_create(), session.cuda_stream_create()
        event = session.cuda_event_create()
        release = threading.Event()
        session.cuda_event_record(event, fast.stream_id)   # superseded below
        slow.enqueue(lambda: release.wait(5))
        session.cuda_event_record(event, slow.stream_id)   # the record that counts
        fast.synchronize()  # fast's stale marker has definitely run by now
        assert not session.cuda_event_query(event)
        release.set()
        slow.synchronize()
        assert session.cuda_event_query(event)

    def test_sync_mode_wait_event_fails_fast_on_unfired_event(self):
        """Synchronous streams drain on the host thread, so an unfired
        cross-stream wait can never be satisfied: raise immediately instead
        of stalling out the timeout."""
        with MocCUDASession(async_streams=False) as session:
            stream_a = session.cuda_stream_create()
            stream_b = session.cuda_stream_create()
            event = session.cuda_event_create()
            session.cuda_event_record(event, stream_a.stream_id)
            session.cuda_stream_wait_event(stream_b.stream_id, event)
            start = time.perf_counter()
            with pytest.raises(RuntimeError, match="requires asynchronous"):
                stream_b.synchronize()
            assert time.perf_counter() - start < 5.0  # no timeout stall

    def test_sync_mode_wait_event_passes_once_fired(self):
        with MocCUDASession(async_streams=False) as session:
            stream_a = session.cuda_stream_create()
            stream_b = session.cuda_stream_create()
            event = session.cuda_event_create()
            session.cuda_event_record(event, stream_a.stream_id)
            stream_a.synchronize()  # fires the event
            session.cuda_stream_wait_event(stream_b.stream_id, event)
            ran = []
            stream_b.enqueue(lambda: ran.append(1))
            stream_b.synchronize()
            assert ran == [1]

    def test_chained_events_across_three_streams(self, session):
        streams = [session.cuda_stream_create() for _ in range(3)]
        events = [session.cuda_event_create() for _ in range(2)]
        log = []
        streams[0].enqueue(lambda: (time.sleep(0.03), log.append(0)))
        session.cuda_event_record(events[0], streams[0].stream_id)
        session.cuda_stream_wait_event(streams[1].stream_id, events[0])
        streams[1].enqueue(lambda: (time.sleep(0.02), log.append(1)))
        session.cuda_event_record(events[1], streams[1].stream_id)
        session.cuda_stream_wait_event(streams[2].stream_id, events[1])
        streams[2].enqueue(lambda: log.append(2))
        streams[2].synchronize()
        session.cuda_device_synchronize()
        assert log == [0, 1, 2]


class TestLaunchBatching:
    def test_batched_launches_match_unbatched(self, session):
        log_probs, targets = _nll_inputs()
        kernel = session.compile_kernel(mc.NLL_LOSS_CUDA, "nll_loss",
                                        filename="nll_loss.cu")

        # unbatched reference: one launch, one synchronize, repeated.
        reference = []
        for _ in range(4):
            args, total = _launch_args(log_probs, targets, 8, 10)
            session.launch_kernel(kernel, args)
            session.cuda_stream_synchronize(0)
            reference.append(total.copy())

        # batched: park the stream so back-to-back launches coalesce.
        stream = session.cuda_stream_create()
        release = threading.Event()
        stream.enqueue(lambda: release.wait(5))
        totals = []
        for _ in range(4):
            args, total = _launch_args(log_probs, targets, 8, 10)
            session.launch_kernel(kernel, args, stream_id=stream.stream_id)
            totals.append(total)
        release.set()
        stream.synchronize()
        assert stream.stats["launches"] == 4
        assert stream.stats["coalesced"] >= 1
        assert stream.stats["dispatches"] + stream.stats["coalesced"] == 4
        for total, expected in zip(totals, reference):
            np.testing.assert_array_equal(total, expected)

    def test_batch_counts_as_single_task(self, session):
        log_probs, targets = _nll_inputs(seed=7)
        kernel = session.compile_kernel(mc.NLL_LOSS_CUDA, "nll_loss")
        stream = session.cuda_stream_create()
        release = threading.Event()
        stream.enqueue(lambda: release.wait(5))
        for _ in range(3):
            args, _ = _launch_args(log_probs, targets, 8, 10)
            session.launch_kernel(kernel, args, stream_id=stream.stream_id)
        release.set()
        executed = stream.synchronize()
        # the parked task plus exactly one coalesced dispatch.
        assert executed == 1 + stream.stats["dispatches"]
        assert stream.stats["dispatches"] == 1
        assert stream.stats["coalesced"] == 2

    def test_interleaved_task_breaks_coalescing_window(self, session):
        log_probs, targets = _nll_inputs(seed=8)
        kernel = session.compile_kernel(mc.NLL_LOSS_CUDA, "nll_loss")
        stream = session.cuda_stream_create()
        release = threading.Event()
        stream.enqueue(lambda: release.wait(5))
        args1, _ = _launch_args(log_probs, targets, 8, 10)
        args2, _ = _launch_args(log_probs, targets, 8, 10)
        session.launch_kernel(kernel, args1, stream_id=stream.stream_id)
        stream.enqueue(lambda: None)  # e.g. a memcpy between launches
        session.launch_kernel(kernel, args2, stream_id=stream.stream_id)
        release.set()
        stream.synchronize()
        assert stream.stats["dispatches"] == 2
        assert stream.stats["coalesced"] == 0

    def test_event_record_breaks_coalescing_window(self, session):
        """An event between launches must not let the second launch ride
        the first dispatch (the event would cover too much work)."""
        log_probs, targets = _nll_inputs(seed=9)
        kernel = session.compile_kernel(mc.NLL_LOSS_CUDA, "nll_loss")
        stream = session.cuda_stream_create()
        release = threading.Event()
        stream.enqueue(lambda: release.wait(5))
        args1, _ = _launch_args(log_probs, targets, 8, 10)
        args2, _ = _launch_args(log_probs, targets, 8, 10)
        session.launch_kernel(kernel, args1, stream_id=stream.stream_id)
        event = session.cuda_event_create()
        session.cuda_event_record(event, stream.stream_id)
        session.launch_kernel(kernel, args2, stream_id=stream.stream_id)
        release.set()
        stream.synchronize()
        assert stream.stats["dispatches"] == 2

    def test_nll_loss_through_async_stream_matches_numpy(self, session):
        log_probs, targets = _nll_inputs(seed=11)
        expected = mc.nll_loss(log_probs, targets)
        actual = session.nll_loss(log_probs, targets)
        assert actual == pytest.approx(expected, rel=1e-4)
        assert "cudaLaunchKernel" in session.call_log


class TestPoisonedStream:
    """Sticky-error semantics: a failed kernel launch batch poisons the
    stream — later work is rejected with the original cause chained —
    until ``synchronize()`` surfaces the original error and clears it,
    like a sticky CUDA error cleared at ``cudaStreamSynchronize``."""

    @pytest.fixture(autouse=True)
    def _clean_resilience(self):
        reset_faults()
        resilience.global_log().clear()
        yield
        reset_faults()
        resilience.global_log().clear()

    def _poison(self, session, stream, monkeypatch, *, seed=21):
        """Drive the stream into the poisoned state via one injected
        launch-batch failure; returns the (healthy again) kernel handle."""
        kernel = session.compile_kernel(mc.NLL_LOSS_CUDA, "nll_loss")
        monkeypatch.setenv("REPRO_FAULTS", "shim.launch:1")
        reset_faults()
        args, _ = _launch_args(*_nll_inputs(seed=seed), 8, 10)
        session.launch_kernel(kernel, args, stream_id=stream.stream_id)
        deadline = time.monotonic() + 5
        while stream.poisoned is None and time.monotonic() < deadline:
            time.sleep(0.005)
        assert stream.poisoned is not None, "injected batch failure never landed"
        return kernel

    def test_failed_batch_fails_its_whole_coalesced_window(
            self, session, monkeypatch):
        """The injected failure precedes every launch of the batch: none of
        the coalesced windows' outputs may be written."""
        kernel = session.compile_kernel(mc.NLL_LOSS_CUDA, "nll_loss")
        stream = session.cuda_stream_create()
        release = threading.Event()
        stream.enqueue(lambda: release.wait(5))
        monkeypatch.setenv("REPRO_FAULTS", "shim.launch:1")
        reset_faults()
        totals = []
        for _ in range(3):
            args, total = _launch_args(*_nll_inputs(seed=20), 8, 10)
            session.launch_kernel(kernel, args, stream_id=stream.stream_id)
            totals.append(total)
        release.set()
        with pytest.raises(WorkerCrashError, match="injected fault"):
            stream.synchronize()
        assert stream.stats["dispatches"] == 1
        assert stream.stats["coalesced"] == 2
        for total in totals:
            np.testing.assert_array_equal(total, np.zeros(1, dtype=np.float32))

    def test_poisoned_stream_rejects_work_with_cause_chained(
            self, session, monkeypatch):
        stream = session.cuda_stream_create()
        kernel = self._poison(session, stream, monkeypatch)
        original = stream.poisoned
        args, _ = _launch_args(*_nll_inputs(seed=22), 8, 10)
        with pytest.raises(StreamPoisonedError, match="poisoned") as excinfo:
            session.launch_kernel(kernel, args, stream_id=stream.stream_id)
        assert excinfo.value.__cause__ is original  # worker traceback intact
        with pytest.raises(StreamPoisonedError) as excinfo:
            stream.enqueue(lambda: None)
        assert excinfo.value.__cause__ is original
        assert stream.poisoned is not None  # still poisoned until synchronize
        with pytest.raises(WorkerCrashError):
            stream.synchronize()

    def test_synchronize_raises_original_and_clears_poison(
            self, session, monkeypatch):
        stream = session.cuda_stream_create()
        kernel = self._poison(session, stream, monkeypatch)
        original = stream.poisoned
        with pytest.raises(WorkerCrashError) as excinfo:
            stream.synchronize()
        assert excinfo.value is original   # the original error object
        assert stream.poisoned is None     # ...and the poison is cleared
        log = resilience.global_log()
        assert log.events(op="shim.launch", action="degrade")
        assert log.events(op="shim.launch", action="recover")
        # the stream is healthy again: the same kernel launches and the
        # result matches the library oracle.
        log_probs, targets = _nll_inputs(seed=23)
        args, total = _launch_args(log_probs, targets, 8, 10)
        session.launch_kernel(kernel, args, stream_id=stream.stream_id)
        stream.synchronize()
        expected = mc.nll_loss(log_probs, targets)
        assert total[0] == pytest.approx(expected, rel=1e-4)

    def test_plain_task_failure_does_not_poison(self, session):
        """Legacy contract pinned: host-task errors surface at synchronize
        but never reject queued work in between."""
        stream = session.cuda_stream_create()

        def boom():
            raise ValueError("host task failure")

        stream.enqueue(boom)
        with pytest.raises(ValueError, match="host task failure"):
            stream.synchronize()
        assert stream.poisoned is None
        ran = []
        stream.enqueue(lambda: ran.append(1))  # not rejected
        assert stream.synchronize() == 1
        assert ran == [1]


class TestSessionLifecycle:
    def test_close_is_idempotent(self):
        session = MocCUDASession()
        session.nll_loss(*_nll_inputs(seed=12))
        session.close()
        session.close()

    def test_kernel_handles_are_memoized(self, session):
        first = session.compile_kernel(mc.NLL_LOSS_CUDA, "nll_loss")
        second = session.compile_kernel(mc.NLL_LOSS_CUDA, "nll_loss")
        assert first is second
        assert first.module is second.module

    def test_same_entry_different_source_distinct_handles(self, session):
        """Handle memoization is by (source, entry): two kernels that share
        an entry-point name must not collide."""
        template = """
__global__ void k(float* out, int n) {{
    int gid = blockIdx.x * blockDim.x + threadIdx.x;
    if (gid < n) {{ out[gid] = {value}f; }}
}}

void launch(float* out, int n) {{
    k<<<1, 4>>>(out, n);
}}
"""
        kernel_two = session.compile_kernel(template.format(value="2.0"), "launch")
        kernel_three = session.compile_kernel(template.format(value="3.0"), "launch")
        assert kernel_two is not kernel_three
        out_two = np.zeros(4, dtype=np.float32)
        out_three = np.zeros(4, dtype=np.float32)
        session.launch_kernel(kernel_two, [out_two, 4])
        session.launch_kernel(kernel_three, [out_three, 4])
        session.cuda_stream_synchronize(0)
        np.testing.assert_array_equal(out_two, np.full(4, 2.0, dtype=np.float32))
        np.testing.assert_array_equal(out_three, np.full(4, 3.0, dtype=np.float32))

    def test_sessions_share_cached_modules(self):
        with MocCUDASession() as one, MocCUDASession() as two:
            kernel_one = one.compile_kernel(mc.NLL_LOSS_CUDA, "nll_loss")
            kernel_two = two.compile_kernel(mc.NLL_LOSS_CUDA, "nll_loss")
            # the content-addressed cache hands both sessions the same
            # canonical module (shared mode) — compile once, replay forever.
            assert kernel_one.module is kernel_two.module
