"""Multi-client differential soak: served == in-process, bit for bit.

N client threads hammer one daemon with fuzz-grammar kernels across mixed
engines, each client as its own tenant (own connection, own server-side
stream).  Every response — output buffers *and* CostReport fields — must
be bit-identical to running the same (kernel, engine, options) in-process,
no matter how requests interleave, coalesce into launch batches, or race
cold compiles in the shared caches.

Knobs:

* ``REPRO_SOAK_COUNT``  — kernels in the corpus (default 12; CI smoke
  uses a reduced count),
* ``REPRO_SOAK_CLIENTS`` — concurrent client threads (default 8),
* ``REPRO_SOAK_SEED``   — base fuzz seed (default 0),
* ``REPRO_SERVICE_SOCKET`` — connect to an externally started daemon at
  this path instead of spawning one in-process (the CI ``service-smoke``
  job starts ``python -m repro serve`` and points the soak at it).
"""

import os
import threading

import numpy as np
import pytest

from repro.frontend import compile_cuda
from repro.runtime import make_executor, shutdown_worker_pools
from repro.service import KernelServer, ServiceClient
from tests.helpers import generate_fuzz_kernel, report_fields

SOAK_COUNT = max(1, int(os.environ.get("REPRO_SOAK_COUNT", "12")))
SOAK_CLIENTS = max(2, int(os.environ.get("REPRO_SOAK_CLIENTS", "8")))
SOAK_SEED = int(os.environ.get("REPRO_SOAK_SEED", "0"))
EXTERNAL_SOCKET = os.environ.get("REPRO_SERVICE_SOCKET", "").strip()

#: engines mixed across requests; every (kernel, engine) pair is compared
#: against its own in-process reference.
ENGINES = ("compiled", "vectorized", "interp")


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()


def _references(kernels):
    """In-process reference (output bytes, report tuple) per
    (seed, engine)."""
    references = {}
    for kernel in kernels:
        module = compile_cuda(kernel.source, cuda_lower=True,
                              options=kernel.options, cache="shared")
        for engine in ENGINES:
            arguments = kernel.make_args()
            executor = make_executor(module, engine=engine)
            executor.run(kernel.entry, arguments)
            references[(kernel.seed, engine)] = (
                arguments[2].tobytes(), report_fields(executor.report))
    return references


def test_concurrent_soak_bit_identical(tmp_path):
    kernels = [generate_fuzz_kernel(seed)
               for seed in range(SOAK_SEED, SOAK_SEED + SOAK_COUNT)]
    references = _references(kernels)

    server = None
    if EXTERNAL_SOCKET:
        address = EXTERNAL_SOCKET
    else:
        server = KernelServer(
            socket_path=str(tmp_path / "soak.sock")).start()
        address = server.address
    mismatches = []
    errors = []
    barrier = threading.Barrier(SOAK_CLIENTS)

    def client_worker(client_index):
        try:
            with ServiceClient(address,
                               tenant=f"soak-{client_index}") as client:
                barrier.wait(timeout=30)
                # each client walks the corpus from its own offset, so at
                # any instant different clients hit different kernels (and
                # the same kernel back-to-back coalesces per tenant).
                for step in range(len(kernels) * len(ENGINES)):
                    kernel = kernels[(client_index + step) % len(kernels)]
                    engine = ENGINES[step % len(ENGINES)]
                    result = client.launch(
                        kernel.source, kernel.entry, kernel.make_args(),
                        engine=engine, workers=2, options=kernel.options)
                    expected_bytes, expected_report = references[
                        (kernel.seed, engine)]
                    if (result.args[2].tobytes() != expected_bytes
                            or result.report_tuple != expected_report):
                        mismatches.append(
                            (client_index, kernel.description, engine))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append((client_index, repr(exc)))

    threads = [threading.Thread(target=client_worker, args=(index,))
               for index in range(SOAK_CLIENTS)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        assert not any(thread.is_alive() for thread in threads), \
            "soak clients wedged"
    finally:
        if server is not None:
            server.stop()

    assert not errors, errors[:5]
    assert not mismatches, (
        f"{len(mismatches)} served responses diverged from the in-process "
        f"reference; first: {mismatches[0]}")
