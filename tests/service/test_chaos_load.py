"""Chaos under load: injected faults stay confined to the tenant they hit.

Scenario 1 (engine-fault isolation): with ``REPRO_FAULTS=native.cc:*``
every native compile fails, so the tenant requesting ``engine="native"``
must be *degraded* down the fallback chain — and still answer with
bit-identical outputs — while concurrent tenants on healthy engines see
zero errors, zero degradations and unchanged results.

Scenario 2 (stream-fault recovery): with a bounded ``shim.launch:N``
fault the first N launch batches are killed before dispatch, poisoning
their streams; the server must drain + clear the poison and retry under
the retry policy, so every concurrent client still gets a correct
response (retries visible in the stats, errors still zero).

Both scenarios run many clients concurrently — the point is that recovery
happens *under load*, not on an idle server.
"""

import threading

import numpy as np
import pytest

from repro.frontend import compile_cuda
from repro.runtime import make_executor, shutdown_worker_pools
from repro.runtime import resilience
from repro.runtime.cache import global_native_cache
from repro.service import KernelServer, ServiceClient
from tests.helpers import generate_fuzz_kernel, report_fields

HEALTHY_ENGINES = ("compiled", "vectorized")
REQUESTS_PER_CLIENT = 6
HEALTHY_CLIENTS = 4


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()


@pytest.fixture(autouse=True)
def _fresh_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.setenv("REPRO_BACKOFF_S", "0")
    resilience.reset_faults()
    resilience.global_log().clear()
    yield
    resilience.reset_faults()


def _reference(kernel, engine):
    module = compile_cuda(kernel.source, cuda_lower=True,
                          options=kernel.options, cache="shared")
    arguments = kernel.make_args()
    executor = make_executor(module, engine=engine)
    executor.run(kernel.entry, arguments)
    return arguments[2].tobytes(), report_fields(executor.report)


def test_native_fault_degrades_only_the_faulted_tenant(tmp_path, monkeypatch):
    kernels = [generate_fuzz_kernel(seed) for seed in range(3)]
    # the native.cc fault only fires on a cold cc invocation: drop any
    # artifacts earlier tests compiled for these kernels, or the chaos
    # tenant would hit the warm .so and run genuinely native instead of
    # degrading (unlinking is safe for already-dlopened handles).
    global_native_cache().clear()
    healthy_refs = {(kernel.seed, engine): _reference(kernel, engine)
                    for kernel in kernels for engine in HEALTHY_ENGINES}
    # what the faulted tenant *should* still produce: outputs bit-identical
    # to any healthy engine (all engines agree), merely degraded.
    monkeypatch.setenv("REPRO_FAULTS", "native.cc:*")
    resilience.reset_faults()

    server = KernelServer(socket_path=str(tmp_path / "chaos.sock")).start()
    healthy_failures, chaos_failures, errors = [], [], []
    barrier = threading.Barrier(HEALTHY_CLIENTS + 1)

    def healthy_worker(index):
        try:
            with ServiceClient(server.address,
                               tenant=f"healthy-{index}") as client:
                barrier.wait(timeout=30)
                for step in range(REQUESTS_PER_CLIENT):
                    kernel = kernels[step % len(kernels)]
                    engine = HEALTHY_ENGINES[step % len(HEALTHY_ENGINES)]
                    result = client.launch(
                        kernel.source, kernel.entry, kernel.make_args(),
                        engine=engine, options=kernel.options)
                    expected_bytes, expected_report = healthy_refs[
                        (kernel.seed, engine)]
                    if (result.degraded or result.retries
                            or result.args[2].tobytes() != expected_bytes
                            or result.report_tuple != expected_report):
                        healthy_failures.append((index, step, engine))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(("healthy", index, repr(exc)))

    def chaos_worker():
        try:
            with ServiceClient(server.address, tenant="chaos") as client:
                barrier.wait(timeout=30)
                for step in range(REQUESTS_PER_CLIENT):
                    kernel = kernels[step % len(kernels)]
                    result = client.launch(
                        kernel.source, kernel.entry, kernel.make_args(),
                        engine="native", options=kernel.options)
                    expected_bytes, _ = healthy_refs[
                        (kernel.seed, HEALTHY_ENGINES[0])]
                    if (not result.degraded or result.engine == "native"
                            or result.args[2].tobytes() != expected_bytes):
                        chaos_failures.append((step, result.engine,
                                               result.degraded))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(("chaos", 0, repr(exc)))

    threads = [threading.Thread(target=healthy_worker, args=(index,))
               for index in range(HEALTHY_CLIENTS)]
    threads.append(threading.Thread(target=chaos_worker))
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not any(thread.is_alive() for thread in threads), "wedged"
        with ServiceClient(server.address) as client:
            stats = client.stats()
    finally:
        server.stop()

    assert not errors, errors[:5]
    assert not healthy_failures, (
        f"healthy tenants were affected by the chaos tenant's faults: "
        f"{healthy_failures[:5]}")
    assert not chaos_failures, (
        f"faulted tenant did not degrade as expected: {chaos_failures[:5]}")
    assert stats["errors"] == 0
    assert stats["degraded"] == REQUESTS_PER_CLIENT  # only the chaos tenant
    assert stats["resilience"].get("inject", 0) >= REQUESTS_PER_CLIENT
    assert stats["resilience"].get("degrade", 0) >= 1
    per_tenant = stats["streams"]["per_tenant"]
    assert per_tenant["chaos"]["launches"] == REQUESTS_PER_CLIENT
    for index in range(HEALTHY_CLIENTS):
        assert per_tenant[f"healthy-{index}"]["launches"] == \
            REQUESTS_PER_CLIENT


def test_stream_fault_recovers_under_concurrent_load(tmp_path, monkeypatch):
    kernel = generate_fuzz_kernel(1)
    expected_bytes, expected_report = _reference(kernel, "compiled")
    clients = 4
    # the first few launch *batches* are killed before dispatch; the server
    # must clear each poisoned stream and retry the stranded requests.
    monkeypatch.setenv("REPRO_FAULTS", "shim.launch:3")
    resilience.reset_faults()

    server = KernelServer(socket_path=str(tmp_path / "poison.sock")).start()
    failures, errors = [], []
    barrier = threading.Barrier(clients)

    def worker(index):
        try:
            with ServiceClient(server.address,
                               tenant=f"tenant-{index}") as client:
                barrier.wait(timeout=30)
                for _ in range(REQUESTS_PER_CLIENT):
                    result = client.launch(
                        kernel.source, kernel.entry, kernel.make_args(),
                        engine="compiled", options=kernel.options)
                    if (result.args[2].tobytes() != expected_bytes
                            or result.report_tuple != expected_report):
                        failures.append(index)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append((index, repr(exc)))

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(clients)]
    try:
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not any(thread.is_alive() for thread in threads), "wedged"
        with ServiceClient(server.address) as client:
            stats = client.stats()
    finally:
        server.stop()

    assert not errors, errors[:5]
    assert not failures
    assert stats["errors"] == 0
    assert stats["launches"] == clients * REQUESTS_PER_CLIENT
    assert stats["retries"] >= 1  # the killed batches were actually retried
    assert stats["resilience"].get("inject", 0) == 3
    assert stats["resilience"].get("recover", 0) >= 1


def test_unretryable_tenant_error_does_not_poison_neighbours(tmp_path,
                                                             monkeypatch):
    """A tenant whose *every* launch batch is killed (``shim.launch:*``)
    exhausts its retries and gets error responses — while tenants whose
    requests coalesce onto other streams keep succeeding, and the failed
    tenant's next request after the fault plan clears succeeds too (the
    stream was recovered, not wedged)."""
    kernel = generate_fuzz_kernel(2)
    expected_bytes, _ = _reference(kernel, "interp")
    monkeypatch.setenv("REPRO_RETRIES", "1")
    monkeypatch.setenv("REPRO_FAULTS", "shim.launch:*")
    resilience.reset_faults()

    server = KernelServer(socket_path=str(tmp_path / "alway.sock")).start()
    try:
        with ServiceClient(server.address, tenant="doomed") as client:
            from repro.service import ServiceError

            with pytest.raises(ServiceError):
                client.launch(kernel.source, kernel.entry, kernel.make_args(),
                              engine="interp", options=kernel.options)
        # fault plan cleared: the same tenant's stream must be usable again.
        monkeypatch.delenv("REPRO_FAULTS")
        resilience.reset_faults()
        with ServiceClient(server.address, tenant="doomed") as client:
            result = client.launch(kernel.source, kernel.entry,
                                   kernel.make_args(), engine="interp",
                                   options=kernel.options)
            assert result.args[2].tobytes() == expected_bytes
        with ServiceClient(server.address) as client:
            stats = client.stats()
        assert stats["errors"] == 1
        assert stats["launches"] == 2
    finally:
        server.stop()
