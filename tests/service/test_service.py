"""Service unit + end-to-end conformance: protocol, admission, metrics,
server.

The contract under test:

* the wire protocol round-trips every supported argument kind and the
  pinned CostReport fields **bit-identically**, and fails loudly on
  truncation/corruption;
* admission control admits up to the in-flight cap, queues up to the
  bounded depth, and sheds everything beyond it (immediately when the
  queue is full, after the timeout when a slot never frees);
* a served launch returns outputs and a CostReport bit-identical to
  running the same module in-process, cold and warm, for every engine and
  pipeline-option combination the request names;
* tenants are isolated: each gets its own stream, and one tenant's
  failure leaves other tenants' requests untouched;
* the stats endpoint surfaces metrics + admission + stream + cache +
  resilience counters.
"""

import socket
import threading

import numpy as np
import pytest

from repro.frontend import compile_cuda
from repro.runtime import make_executor, shutdown_worker_pools
from repro.service import (
    AdmissionController,
    KernelServer,
    ServiceClient,
    ServiceError,
    ServiceMetrics,
    ServiceRejected,
    percentile,
)
from repro.service import protocol
from tests.helpers import generate_fuzz_kernel, report_fields

SAXPY = """
__global__ void saxpy(float* x, float* y, float a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) y[i] = a * x[i] + y[i];
}
void launch(float* x, float* y, float a, int n) {
  saxpy<<<(n + 63) / 64, 64>>>(x, y, a, n);
}
"""


@pytest.fixture(scope="module", autouse=True)
def _teardown_pools():
    yield
    shutdown_worker_pools()


@pytest.fixture()
def server(tmp_path):
    with KernelServer(socket_path=str(tmp_path / "serve.sock")) as running:
        yield running


@pytest.fixture()
def client(server):
    with ServiceClient(server.address) as connected:
        yield connected


class TestProtocol:
    def _roundtrip(self, header, frames=()):
        left, right = socket.socketpair()
        try:
            protocol.send_message(left, header, frames)
            received = protocol.recv_message(right)
            assert received is not None
            return received
        finally:
            left.close()
            right.close()

    def test_message_roundtrip_with_frames(self):
        header, frames = self._roundtrip(
            {"op": "x", "n": 3}, [b"abc", b"", b"\x00" * 1024])
        assert header["op"] == "x" and header["n"] == 3
        assert frames == [b"abc", b"", b"\x00" * 1024]

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert protocol.recv_message(right) is None
        finally:
            right.close()

    def test_truncated_message_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00\x01")  # partial length prefix
            left.close()
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(right)
        finally:
            right.close()

    def test_header_length_cap(self):
        left, right = socket.socketpair()
        try:
            left.sendall(protocol._LENGTH.pack(protocol.MAX_HEADER_BYTES + 1))
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_args_roundtrip_bit_identical(self):
        rng = np.random.default_rng(7)
        readonly = rng.standard_normal(8, dtype=np.float32)
        readonly.flags.writeable = False
        arguments = [
            rng.standard_normal((3, 5), dtype=np.float32),
            rng.standard_normal(4).astype(np.float64),
            np.arange(6, dtype=np.int32).reshape(2, 3),
            readonly,
            np.float32(0.1),  # not exactly representable: must round-trip raw
            np.int64(-9),
            True, 42, 0.3333333333333333,
        ]
        specs, frames = protocol.encode_args(arguments)
        decoded = protocol.decode_args(specs, frames)
        assert len(decoded) == len(arguments)
        for original, received in zip(arguments, decoded):
            if isinstance(original, np.ndarray):
                assert received.dtype == original.dtype
                assert received.shape == original.shape
                assert np.array_equal(
                    received.view(np.uint8), original.view(np.uint8))
                assert received.flags.writeable == original.flags.writeable
                assert received.base is None or received.flags.owndata or True
            elif isinstance(original, np.generic):
                assert type(received) is type(original)
                assert received.tobytes() == original.tobytes()
            else:
                assert type(received) is type(original)
                assert received == original
        assert protocol.array_indices(specs) == [0, 1, 2, 3]

    def test_decoded_arrays_are_fresh_buffers(self):
        array = np.ones(4, dtype=np.float32)
        specs, frames = protocol.encode_args([array])
        (decoded,) = protocol.decode_args(specs, frames)
        decoded[0] = 5.0  # writable copy, not a view over the receive buffer
        assert array[0] == 1.0

    def test_byte_count_validation(self):
        specs, frames = protocol.encode_args([np.ones(4, dtype=np.float32)])
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_args(specs, [frames[0][:-1]])

    def test_unsupported_argument_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_args([{"not": "supported"}])

    def test_report_roundtrip(self):
        module = compile_cuda(SAXPY, cuda_lower=True, cache=False)
        executor = make_executor(module, engine="interp")
        x = np.ones(8, dtype=np.float32)
        y = np.ones(8, dtype=np.float32)
        executor.run("launch", [x, y, np.float32(2.0), 8])
        encoded = protocol.encode_report(executor.report)
        assert protocol.report_tuple(encoded) == report_fields(executor.report)


class TestAdmission:
    def test_admits_up_to_cap_then_queues_then_sheds(self):
        admission = AdmissionController(max_inflight=2, queue_depth=1,
                                        queue_timeout_s=0.05)
        assert admission.acquire() and admission.acquire()
        assert admission.inflight == 2
        # third caller queues and times out (no release coming).
        assert admission.acquire() is False
        snapshot = admission.snapshot()
        assert snapshot["rejected_queue_timeout"] == 1

    def test_queue_full_sheds_immediately(self):
        admission = AdmissionController(max_inflight=1, queue_depth=0,
                                        queue_timeout_s=10.0)
        assert admission.acquire()
        assert admission.acquire() is False  # no wait: queue depth is 0
        assert admission.snapshot()["rejected_queue_full"] == 1

    def test_release_wakes_a_queued_caller(self):
        admission = AdmissionController(max_inflight=1, queue_depth=4,
                                        queue_timeout_s=10.0)
        assert admission.acquire()
        admitted = []

        def waiter():
            admitted.append(admission.acquire())

        thread = threading.Thread(target=waiter)
        thread.start()
        deadline = 100
        while admission.snapshot()["waiting"] == 0 and deadline:
            deadline -= 1
            threading.Event().wait(0.01)
        admission.release()
        thread.join(timeout=10)
        assert admitted == [True]
        snapshot = admission.snapshot()
        assert snapshot["admitted"] == 2
        assert snapshot["peak_waiting"] == 1

    def test_concurrent_inflight_never_exceeds_cap(self):
        admission = AdmissionController(max_inflight=3, queue_depth=64,
                                        queue_timeout_s=10.0)
        peak = []

        def worker():
            if admission.acquire():
                peak.append(admission.inflight)
                threading.Event().wait(0.005)
                admission.release()

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert max(peak) <= 3
        assert admission.snapshot()["peak_inflight"] <= 3


class TestMetrics:
    def test_percentile_nearest_rank(self):
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 0.50) == 51.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile([], 0.99) == 0.0

    def test_snapshot_folds_counters(self):
        metrics = ServiceMetrics(window=8)
        metrics.record_request("launch", "t0")
        metrics.record_launch(0.010, warm=False)
        metrics.record_launch(0.020, warm=True, degraded=True, retries=2)
        metrics.record_launch(0.030, warm=True, error=True)
        metrics.record_compile(warm=True)
        snapshot = metrics.snapshot()
        assert snapshot["launches"] == 3
        assert snapshot["warm_hits"] == 2
        assert snapshot["warm_hit_rate"] == pytest.approx(2 / 3)
        assert snapshot["errors"] == 1
        assert snapshot["degraded"] == 1
        assert snapshot["retries"] == 2
        assert snapshot["compile_warm_hits"] == 1
        assert snapshot["requests_by_tenant"] == {"t0": 1}
        assert snapshot["latency"]["samples"] == 3
        assert snapshot["latency"]["p50_s"] == pytest.approx(0.020)
        assert snapshot["latency"]["max_s"] == pytest.approx(0.030)

    def test_reset_drops_window_and_counters(self):
        metrics = ServiceMetrics()
        metrics.record_launch(1.0, warm=True)
        metrics.reset()
        snapshot = metrics.snapshot()
        assert snapshot["launches"] == 0
        assert snapshot["latency"]["samples"] == 0


class TestServerEndToEnd:
    def _reference(self, source, entry, arguments, engine, options=None):
        module = compile_cuda(source, cuda_lower=True, options=options,
                              cache="shared")
        executor = make_executor(module, engine=engine)
        executor.run(entry, arguments)
        return arguments, report_fields(executor.report)

    def test_ping(self, client):
        assert client.ping()["status"] == "ok"

    def test_launch_bit_identical_to_in_process(self, client):
        rng = np.random.default_rng(3)
        n = 192
        x = rng.standard_normal(n, dtype=np.float32)
        y = rng.standard_normal(n, dtype=np.float32)
        ref_args, ref_report = self._reference(
            SAXPY, "launch", [x, y.copy(), np.float32(2.5), n], "compiled")
        result = client.launch(SAXPY, "launch",
                               [x, y.copy(), np.float32(2.5), n],
                               engine="compiled")
        assert result.engine == "compiled"
        assert not result.degraded
        assert np.array_equal(result.args[1], ref_args[1])
        assert result.report_tuple == ref_report

    def test_warm_hit_second_launch(self, client):
        n = 64
        x = np.ones(n, dtype=np.float32)
        first = client.launch(SAXPY, "launch",
                              [x, x.copy(), np.float32(1.0), n],
                              engine="interp")
        second = client.launch(SAXPY, "launch",
                               [x, x.copy(), np.float32(1.0), n],
                               engine="interp")
        assert not first.warm
        assert second.warm
        assert np.array_equal(first.args[1], second.args[1])
        assert first.report_tuple == second.report_tuple

    def test_compile_endpoint_returns_content_key(self, client):
        cold = client.compile(SAXPY, "launch")
        warm = client.compile(SAXPY, "launch")
        assert cold["key"] == warm["key"]
        assert not cold["warm"] and warm["warm"]

    def test_engine_matrix_parity_through_the_service(self, client):
        kernel = generate_fuzz_kernel(11)
        arguments = kernel.make_args()
        results = {}
        for engine in ("interp", "compiled", "vectorized", "multicore"):
            ref_args, ref_report = self._reference(
                kernel.source, kernel.entry,
                [arguments[0], arguments[1], arguments[2].copy(),
                 arguments[3]], engine, options=kernel.options)
            served = client.launch(
                kernel.source, kernel.entry,
                [arguments[0], arguments[1], arguments[2].copy(),
                 arguments[3]], engine=engine, workers=2,
                options=kernel.options)
            assert np.array_equal(served.args[2], ref_args[2]), engine
            assert served.report_tuple == ref_report, engine
            results[engine] = (served.args[2].tobytes(), served.report_tuple)
        assert len({value for value, _ in results.values()}) == 1

    def test_pipeline_options_over_the_wire(self, client):
        kernel = generate_fuzz_kernel(5)
        baseline = client.launch(kernel.source, kernel.entry,
                                 kernel.make_args(), engine="compiled",
                                 options=kernel.options)
        flags = client.launch(kernel.source, kernel.entry, kernel.make_args(),
                              engine="compiled", options=kernel.options)
        assert np.array_equal(baseline.args[2], flags.args[2])

    def test_bad_engine_is_an_error_response(self, client):
        with pytest.raises(ServiceError):
            client.launch(SAXPY, "launch",
                          [np.ones(4, dtype=np.float32),
                           np.ones(4, dtype=np.float32), np.float32(1.0), 4],
                          engine="no-such-engine")

    def test_unknown_op_is_an_error_response(self, client):
        protocol.send_message(client._sock, {"op": "frobnicate",
                                             "v": protocol.PROTOCOL_VERSION})
        response, _ = protocol.recv_message(client._sock)
        assert response["status"] == "error"

    def test_version_mismatch_rejected(self, client):
        protocol.send_message(client._sock, {"op": "ping", "v": 999})
        response, _ = protocol.recv_message(client._sock)
        assert response["status"] == "error"
        assert "version" in response["detail"]

    def test_admission_rejection_surfaces_to_the_client(self, server):
        # deterministically exhaust the server's admission slots, then
        # observe the shed response end to end.
        while server.admission.acquire(timeout=0):
            pass
        try:
            with ServiceClient(server.address) as client:
                with pytest.raises(ServiceRejected):
                    client.launch(SAXPY, "launch",
                                  [np.ones(4, dtype=np.float32),
                                   np.ones(4, dtype=np.float32),
                                   np.float32(1.0), 4], engine="interp")
        finally:
            for _ in range(server.admission.max_inflight):
                server.admission.release()

    def test_tenants_get_isolated_streams(self, server):
        n = 32
        x = np.ones(n, dtype=np.float32)
        with ServiceClient(server.address, tenant="alpha") as alpha:
            with ServiceClient(server.address, tenant="beta") as beta:
                alpha.launch(SAXPY, "launch",
                             [x, x.copy(), np.float32(1.0), n],
                             engine="interp")
                beta.launch(SAXPY, "launch",
                            [x, x.copy(), np.float32(1.0), n],
                            engine="interp")
                stats = alpha.stats()
        per_tenant = stats["streams"]["per_tenant"]
        assert per_tenant["alpha"]["launches"] == 1
        assert per_tenant["beta"]["launches"] == 1
        assert stats["streams"]["tenants"] == 2

    def test_stats_schema(self, client):
        n = 16
        x = np.ones(n, dtype=np.float32)
        client.launch(SAXPY, "launch", [x, x.copy(), np.float32(1.0), n],
                      engine="interp")
        stats = client.stats()
        for field in ("launches", "throughput_rps", "warm_hit_rate", "errors",
                      "degraded", "retries", "latency", "admission", "streams",
                      "kernels", "compile_cache", "resilience"):
            assert field in stats, field
        assert stats["launches"] >= 1
        assert stats["latency"]["samples"] >= 1
        assert stats["admission"]["admitted"] >= 1

    def test_shutdown_stops_the_server(self, tmp_path):
        server = KernelServer(socket_path=str(tmp_path / "stop.sock")).start()
        with ServiceClient(server.address) as client:
            client.shutdown()
        deadline = 100
        while not server._shutdown.is_set() and deadline:
            deadline -= 1
            threading.Event().wait(0.05)
        assert server._shutdown.is_set()
        server.stop()

    def test_concurrent_clients_share_one_cold_compile(self, server):
        """Two clients racing the same cold kernel converge on one server
        entry; both get correct results."""
        n = 48
        rng = np.random.default_rng(9)
        x = rng.standard_normal(n, dtype=np.float32)
        source = SAXPY.replace("saxpy", "saxpy_race")  # fresh content key
        ref_args, _ = self._reference(
            source, "launch", [x, x.copy(), np.float32(3.0), n], "interp")
        barrier = threading.Barrier(2)
        results, errors = [], []

        def hammer():
            try:
                with ServiceClient(server.address) as racing:
                    barrier.wait(timeout=10)
                    results.append(racing.launch(
                        source, "launch", [x, x.copy(), np.float32(3.0), n],
                        engine="interp"))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(results) == 2
        for result in results:
            assert np.array_equal(result.args[1], ref_args[1])
        with server._lock:
            matching = [key for key in server._kernels if key[0] == source]
        assert len(matching) == 1  # converged on one kernel handle
