"""Unit tests for the core IR data structures (values, ops, blocks, regions)."""

import pytest

from repro.ir import (
    Block,
    Builder,
    EffectKind,
    F32,
    FunctionType,
    I32,
    INDEX,
    IntegerType,
    MemorySpace,
    MemRefType,
    VerificationError,
    memref,
    print_op,
    verify,
)
from repro.dialects import arith, func, memref as memref_d, scf


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------
class TestTypes:
    def test_integer_equality(self):
        assert IntegerType(32) == I32
        assert IntegerType(32) != IntegerType(64)

    def test_type_str(self):
        assert str(I32) == "i32"
        assert str(F32) == "f32"
        assert str(INDEX) == "index"

    def test_memref_str(self):
        t = memref((4, -1), F32)
        assert str(t) == "memref<4x?xf32>"
        shared = memref((256,), F32, MemorySpace.SHARED)
        assert "shared" in str(shared)

    def test_memref_static_shape(self):
        assert memref((2, 3), F32).num_elements == 6
        assert not memref((2, -1), F32).has_static_shape
        with pytest.raises(ValueError):
            memref((2, -1), F32).num_elements

    def test_memref_rejects_nested(self):
        with pytest.raises(ValueError):
            memref((2,), memref((2,), F32))

    def test_invalid_memory_space(self):
        with pytest.raises(ValueError):
            MemRefType((2,), F32, "weird")

    def test_function_type(self):
        ft = FunctionType((I32, F32), (F32,))
        assert "i32" in str(ft) and "f32" in str(ft)

    def test_predicates(self):
        assert I32.is_integer and not I32.is_float
        assert F32.is_float and F32.is_arithmetic
        assert memref((1,), F32).is_memref


# ---------------------------------------------------------------------------
# Def-use chains
# ---------------------------------------------------------------------------
class TestDefUse:
    def test_constant_result_use(self):
        c = arith.ConstantOp(1, I32)
        add = arith.AddIOp(c.result, c.result)
        assert len(c.result.uses) == 2
        assert add in c.result.users

    def test_replace_all_uses(self):
        c1 = arith.ConstantOp(1, I32)
        c2 = arith.ConstantOp(2, I32)
        add = arith.AddIOp(c1.result, c1.result)
        c1.result.replace_all_uses_with(c2.result)
        assert not c1.result.has_uses
        assert add.operands[0] is c2.result and add.operands[1] is c2.result

    def test_set_operand_updates_uses(self):
        c1 = arith.ConstantOp(1, I32)
        c2 = arith.ConstantOp(2, I32)
        add = arith.AddIOp(c1.result, c1.result)
        add.set_operand(0, c2.result)
        assert len(c1.result.uses) == 1
        assert len(c2.result.uses) == 1

    def test_erase_requires_no_uses(self):
        c = arith.ConstantOp(1, I32)
        block = Block()
        block.append(c)
        add = arith.AddIOp(c.result, c.result)
        block.append(add)
        with pytest.raises(ValueError):
            c.erase()
        add.erase()
        c.erase()
        assert len(block.operations) == 0

    def test_replace_uses_if(self):
        c1 = arith.ConstantOp(1, I32)
        c2 = arith.ConstantOp(2, I32)
        add = arith.AddIOp(c1.result, c1.result)
        c1.result.replace_uses_if(c2.result, lambda use: use.operand_index == 0)
        assert add.operands[0] is c2.result
        assert add.operands[1] is c1.result


# ---------------------------------------------------------------------------
# Blocks, regions, builder
# ---------------------------------------------------------------------------
class TestStructure:
    def test_builder_insertion_order(self):
        block = Block()
        builder = Builder.at_end(block)
        a = builder.insert(arith.ConstantOp(1, I32))
        b = builder.insert(arith.ConstantOp(2, I32))
        assert block.operations == [a, b]

    def test_builder_before_after(self):
        block = Block()
        builder = Builder.at_end(block)
        a = builder.insert(arith.ConstantOp(1, I32))
        c = builder.insert(arith.ConstantOp(3, I32))
        builder2 = Builder.before_op(c)
        b = builder2.insert(arith.ConstantOp(2, I32))
        assert block.operations == [a, b, c]

    def test_move_before_after(self):
        block = Block()
        a = block.append(arith.ConstantOp(1, I32))
        b = block.append(arith.ConstantOp(2, I32))
        b.move_before(a)
        assert block.operations == [b, a]
        b.move_after(a)
        assert block.operations == [a, b]

    def test_parent_links(self):
        module = func.ModuleOp()
        fn = func.FuncOp("f", FunctionType((), ()))
        module.add_function(fn)
        assert fn.parent_op is module
        assert module.lookup("f") is fn
        assert module.lookup("missing") is None

    def test_duplicate_symbol_rejected(self):
        module = func.ModuleOp()
        module.add_function(func.FuncOp("f", FunctionType((), ())))
        with pytest.raises(ValueError):
            module.add_function(func.FuncOp("f", FunctionType((), ())))

    def test_is_ancestor(self):
        module = func.ModuleOp()
        fn = func.FuncOp("f", FunctionType((), ()))
        module.add_function(fn)
        c = fn.body_block.append(arith.ConstantOp(1, I32))
        assert module.is_ancestor_of(c)
        assert fn.is_ancestor_of(c)
        assert not c.is_ancestor_of(fn)

    def test_walk_order(self):
        module = func.ModuleOp()
        fn = func.FuncOp("f", FunctionType((), ()))
        module.add_function(fn)
        builder = Builder.at_end(fn.body_block)
        builder.insert(arith.ConstantOp(1, I32))
        builder.insert(func.ReturnOp())
        names = [op.name for op in module.walk()]
        assert names == ["builtin.module", "func.func", "arith.constant", "func.return"]

    def test_walk_post_order(self):
        module = func.ModuleOp()
        fn = func.FuncOp("f", FunctionType((), ()))
        module.add_function(fn)
        fn.body_block.append(func.ReturnOp())
        names = [op.name for op in module.walk_post_order()]
        assert names == ["func.return", "func.func", "builtin.module"]


# ---------------------------------------------------------------------------
# Cloning
# ---------------------------------------------------------------------------
class TestClone:
    def test_clone_remaps_nested_uses(self):
        block = Block([INDEX])
        builder = Builder.at_end(block)
        c = builder.insert(arith.ConstantOp(0, INDEX))
        one = builder.insert(arith.ConstantOp(1, INDEX))
        ten = builder.insert(arith.ConstantOp(10, INDEX))
        loop = builder.insert(scf.ForOp(c.result, ten.result, one.result))
        loop_builder = Builder.at_end(loop.body)
        add = loop_builder.insert(arith.AddIOp(loop.induction_var, loop.induction_var))
        loop_builder.insert(scf.YieldOp())

        clone = loop.clone({})
        cloned_add = clone.body.operations[0]
        assert cloned_add is not add
        assert cloned_add.operands[0] is clone.induction_var
        # original untouched
        assert add.operands[0] is loop.induction_var

    def test_clone_with_value_map(self):
        c1 = arith.ConstantOp(1, I32)
        c2 = arith.ConstantOp(2, I32)
        add = arith.AddIOp(c1.result, c1.result)
        clone = add.clone({c1.result: c2.result})
        assert clone.operands[0] is c2.result

    def test_clone_preserves_attributes(self):
        c = arith.ConstantOp(42, I32)
        assert c.clone({}).value == 42


# ---------------------------------------------------------------------------
# Memory effects
# ---------------------------------------------------------------------------
class TestEffects:
    def test_pure_ops_have_no_effects(self):
        c = arith.ConstantOp(1.0, F32)
        assert c.memory_effects() == []
        assert c.is_pure()

    def test_load_store_effects(self):
        buf = memref_d.AllocOp(memref((16,), F32))
        idx = arith.ConstantOp(0, INDEX)
        load = memref_d.LoadOp(buf.result, [idx.result])
        effects = load.memory_effects()
        assert len(effects) == 1
        assert effects[0].kind is EffectKind.READ
        assert effects[0].value is buf.result
        store = memref_d.StoreOp(load.result, buf.result, [idx.result])
        assert store.memory_effects()[0].kind is EffectKind.WRITE

    def test_recursive_effects(self):
        block = Block()
        builder = Builder.at_end(block)
        c0 = builder.insert(arith.ConstantOp(0, INDEX))
        c1 = builder.insert(arith.ConstantOp(1, INDEX))
        c4 = builder.insert(arith.ConstantOp(4, INDEX))
        buf = builder.insert(memref_d.AllocOp(memref((4,), F32)))
        loop = builder.insert(scf.ForOp(c0.result, c4.result, c1.result))
        inner = Builder.at_end(loop.body)
        cf = inner.insert(arith.ConstantOp(1.0, F32))
        inner.insert(memref_d.StoreOp(cf.result, buf.result, [loop.induction_var]))
        inner.insert(scf.YieldOp())
        kinds = {effect.kind for effect in loop.memory_effects()}
        assert kinds == {EffectKind.WRITE}


# ---------------------------------------------------------------------------
# Printer and verifier
# ---------------------------------------------------------------------------
class TestPrinterVerifier:
    def _make_valid_func(self):
        module = func.ModuleOp()
        fn = func.FuncOp("f", FunctionType((F32,), (F32,)), arg_names=["x"])
        module.add_function(fn)
        builder = Builder.at_end(fn.body_block)
        doubled = builder.insert(arith.AddFOp(fn.arguments[0], fn.arguments[0]))
        builder.insert(func.ReturnOp([doubled.result]))
        return module, fn

    def test_print_contains_op_names(self):
        module, _ = self._make_valid_func()
        text = print_op(module)
        assert "builtin.module" in text
        assert "func.func" in text
        assert "arith.addf" in text

    def test_verify_valid_module(self):
        module, _ = self._make_valid_func()
        verify(module)

    def test_verify_detects_dominance_violation(self):
        module, fn = self._make_valid_func()
        # build a use-before-def: move the add after the return
        add = fn.body_block.operations[0]
        ret = fn.body_block.operations[1]
        add.move_after(ret)
        with pytest.raises(VerificationError):
            verify(module)

    def test_verify_detects_misplaced_terminator(self):
        module, fn = self._make_valid_func()
        builder = Builder.at_end(fn.body_block)
        builder.insert(arith.ConstantOp(0.0, F32))
        with pytest.raises(VerificationError):
            verify(module)

    def test_printer_deterministic(self):
        module, _ = self._make_valid_func()
        assert print_op(module) == print_op(module)
