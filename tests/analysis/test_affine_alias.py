"""Tests for affine access extraction and alias analysis."""


from repro.ir import Block, Builder, F32, I32, INDEX, memref
from repro.dialects import arith, memref as memref_d
from repro.analysis import (
    AliasResult,
    access_equivalent,
    access_is_injective_in,
    alias,
    extract_access,
    extract_affine,
    may_alias,
)

from tests.helpers import build_function


class TestAffineExtraction:
    def _block_builder(self):
        block = Block([INDEX, INDEX], ["tid", "j"])
        return block, Builder.at_end(block), block.arguments[0], block.arguments[1]

    def test_symbol(self):
        _, _, tid, _ = self._block_builder()
        expr = extract_affine(tid)
        assert expr.coefficient_of(tid) == 1
        assert expr.constant == 0

    def test_constant(self):
        _, builder, _, _ = self._block_builder()
        c = builder.insert(arith.ConstantOp(7, INDEX))
        expr = extract_affine(c.result)
        assert expr.is_constant and expr.constant == 7

    def test_linear_combination(self):
        _, builder, tid, j = self._block_builder()
        c4 = builder.insert(arith.ConstantOp(4, INDEX))
        scaled = builder.insert(arith.MulIOp(j, c4.result))
        total = builder.insert(arith.AddIOp(tid, scaled.result))
        expr = extract_affine(total.result)
        assert expr.coefficient_of(tid) == 1
        assert expr.coefficient_of(j) == 4

    def test_subtraction_and_constant_fold(self):
        _, builder, tid, _ = self._block_builder()
        c1 = builder.insert(arith.ConstantOp(1, INDEX))
        expr = extract_affine(builder.insert(arith.SubIOp(tid, c1.result)).result)
        assert expr.coefficient_of(tid) == 1
        assert expr.constant == -1

    def test_cancelled_symbol_disappears(self):
        _, builder, tid, _ = self._block_builder()
        diff = builder.insert(arith.SubIOp(tid, tid))
        expr = extract_affine(diff.result)
        assert expr.is_constant and expr.constant == 0

    def test_non_affine_through_load_is_opaque_symbol(self):
        _, builder, tid, _ = self._block_builder()
        buf = builder.insert(memref_d.AllocOp(memref((8,), INDEX)))
        load = builder.insert(memref_d.LoadOp(buf.result, [tid]))
        expr = extract_affine(load.result)
        # the load result is an opaque symbol, not decomposed further
        assert expr.coefficient_of(load.result) == 1

    def test_float_constant_not_affine(self):
        _, builder, _, _ = self._block_builder()
        c = builder.insert(arith.ConstantOp(1.5, F32))
        assert extract_affine(c.result) is None

    def test_access_equivalence(self):
        _, builder, tid, j = self._block_builder()
        access_a = extract_access([tid, j])
        access_b = extract_access([tid, j])
        access_c = extract_access([j, tid])
        assert access_equivalent(access_a, access_b)
        assert not access_equivalent(access_a, access_c)

    def test_injectivity_in_thread_iv(self):
        _, builder, tid, j = self._block_builder()
        access = extract_access([tid])
        assert access_is_injective_in(access, [tid])
        # offset by a uniform symbol is still injective
        shifted = extract_access([builder.insert(arith.AddIOp(tid, j)).result])
        assert access_is_injective_in(shifted, [tid], uniform_symbols=[j])
        # but not if the other symbol may vary per thread
        assert not access_is_injective_in(shifted, [tid])
        # an access not using the tid at all is not injective in it
        assert not access_is_injective_in(extract_access([j]), [tid], uniform_symbols=[j])


class TestAlias:
    def test_same_value_must_alias(self):
        block = Block()
        builder = Builder.at_end(block)
        buf = builder.insert(memref_d.AllocOp(memref((4,), F32)))
        assert alias(buf.result, buf.result) is AliasResult.MUST

    def test_distinct_allocations_no_alias(self):
        block = Block()
        builder = Builder.at_end(block)
        a = builder.insert(memref_d.AllocOp(memref((4,), F32)))
        b = builder.insert(memref_d.AllocaOp(memref((4,), F32)))
        assert alias(a.result, b.result) is AliasResult.NO

    def test_alloc_vs_argument_no_alias(self):
        module, fn, builder = build_function("f", [memref((4,), F32)], ["arg"])
        local = builder.insert(memref_d.AllocOp(memref((4,), F32)))
        assert not may_alias(local.result, fn.arguments[0])

    def test_arguments_noalias_attribute(self):
        module, fn, _ = build_function("f", [memref((4,), F32), memref((4,), F32)],
                                       ["a", "b"], noalias=True)
        assert alias(fn.arguments[0], fn.arguments[1]) is AliasResult.NO

    def test_arguments_may_alias_without_attribute(self):
        module, fn, _ = build_function("f", [memref((4,), F32), memref((4,), F32)],
                                       ["a", "b"], noalias=False)
        assert alias(fn.arguments[0], fn.arguments[1]) is AliasResult.MAY

    def test_non_memref_values_do_not_alias(self):
        block = Block([I32, I32])
        assert alias(block.arguments[0], block.arguments[1]) is AliasResult.NO
