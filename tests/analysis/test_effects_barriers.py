"""Tests for memory-effect collection, conflicts, and barrier semantics."""


from repro.ir import Builder, EffectKind, F32, FunctionType, INDEX, memref
from repro.dialects import arith, func, memref as memref_d
from repro.analysis import (
    accesses_conflict,
    barrier_is_redundant,
    barrier_memory_effects,
    collect_accesses,
    function_is_read_only,
    op_is_speculatable,
)

from tests.helpers import (
    alloc_shared,
    build_function,
    build_parallel,
    close_parallel,
    const_index,
    finish_function,
    insert_barrier,
)


class TestCollectAccesses:
    def test_load_store(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"])
        zero = const_index(builder, 0)
        load = builder.insert(memref_d.LoadOp(fn.arguments[0], [zero]))
        builder.insert(memref_d.StoreOp(load.result, fn.arguments[0], [zero]))
        finish_function(builder)
        accesses = collect_accesses(fn, module=module)
        kinds = sorted(access.kind.value for access in accesses)
        assert kinds == ["read", "write"]
        assert all(access.base is fn.arguments[0] for access in accesses)

    def test_call_summarized_through_callee(self):
        module = func.ModuleOp()
        callee = func.FuncOp("reader", FunctionType((memref((8,), F32),), ()), arg_names=["p"])
        module.add_function(callee)
        callee_builder = Builder.at_end(callee.body_block)
        zero = callee_builder.insert(arith.ConstantOp(0, INDEX))
        callee_builder.insert(memref_d.LoadOp(callee.arguments[0], [zero.result]))
        callee_builder.insert(func.ReturnOp())

        caller = func.FuncOp("caller", FunctionType((memref((8,), F32),), ()), arg_names=["q"])
        module.add_function(caller)
        caller_builder = Builder.at_end(caller.body_block)
        caller_builder.insert(func.CallOp("reader", [caller.arguments[0]]))
        caller_builder.insert(func.ReturnOp())

        accesses = collect_accesses(caller, module=module)
        assert len(accesses) == 1
        assert accesses[0].kind is EffectKind.READ
        assert accesses[0].base is caller.arguments[0]

    def test_call_to_unknown_function_is_conservative(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"])
        builder.insert(func.CallOp("extern_fn", [fn.arguments[0]]))
        finish_function(builder)
        accesses = collect_accesses(fn, module=module)
        assert any(access.base is None and access.is_write for access in accesses)

    def test_function_read_only_summary(self):
        module = func.ModuleOp()
        reader = func.FuncOp("sum", FunctionType((memref((8,), F32),), (F32,)), arg_names=["data"])
        module.add_function(reader)
        b = Builder.at_end(reader.body_block)
        zero = b.insert(arith.ConstantOp(0, INDEX))
        val = b.insert(memref_d.LoadOp(reader.arguments[0], [zero.result]))
        b.insert(func.ReturnOp([val.result]))
        assert function_is_read_only(reader, module)

        writer = func.FuncOp("scale", FunctionType((memref((8,), F32),), ()), arg_names=["data"])
        module.add_function(writer)
        wb = Builder.at_end(writer.body_block)
        zero2 = wb.insert(arith.ConstantOp(0, INDEX))
        c = wb.insert(arith.ConstantOp(2.0, F32))
        wb.insert(memref_d.StoreOp(c.result, writer.arguments[0], [zero2.result]))
        wb.insert(func.ReturnOp())
        assert not function_is_read_only(writer, module)

    def test_speculatable(self):
        module = func.ModuleOp()
        reader = func.FuncOp("sum", FunctionType((memref((8,), F32),), (F32,)), arg_names=["data"])
        module.add_function(reader)
        b = Builder.at_end(reader.body_block)
        zero = b.insert(arith.ConstantOp(0, INDEX))
        val = b.insert(memref_d.LoadOp(reader.arguments[0], [zero.result]))
        b.insert(func.ReturnOp([val.result]))

        caller = func.FuncOp("caller", FunctionType((memref((8,), F32),), ()), arg_names=["q"])
        module.add_function(caller)
        cb = Builder.at_end(caller.body_block)
        call = cb.insert(func.CallOp("sum", [caller.arguments[0]], [F32]))
        cb.insert(func.ReturnOp())
        assert op_is_speculatable(call, module)
        add = arith.AddIOp(zero.result, zero.result)
        assert op_is_speculatable(add, module)
        load = memref_d.LoadOp(caller.arguments[0], [zero.result])
        assert not op_is_speculatable(load, module)


class TestConflicts:
    def test_rar_never_conflicts(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"])
        zero = const_index(builder, 0)
        l1 = builder.insert(memref_d.LoadOp(fn.arguments[0], [zero]))
        l2 = builder.insert(memref_d.LoadOp(fn.arguments[0], [zero]))
        finish_function(builder)
        a1 = collect_accesses(l1)[0]
        a2 = collect_accesses(l2)[0]
        assert not accesses_conflict(a1, a2)

    def test_write_write_same_base_conflicts(self):
        module, fn, builder = build_function("f", [memref((8,), F32)], ["a"])
        zero = const_index(builder, 0)
        c = builder.insert(arith.ConstantOp(1.0, F32))
        s1 = builder.insert(memref_d.StoreOp(c.result, fn.arguments[0], [zero]))
        s2 = builder.insert(memref_d.StoreOp(c.result, fn.arguments[0], [zero]))
        finish_function(builder)
        assert accesses_conflict(collect_accesses(s1)[0], collect_accesses(s2)[0])

    def test_noalias_args_do_not_conflict(self):
        module, fn, builder = build_function(
            "f", [memref((8,), F32), memref((8,), F32)], ["a", "b"], noalias=True)
        zero = const_index(builder, 0)
        c = builder.insert(arith.ConstantOp(1.0, F32))
        s = builder.insert(memref_d.StoreOp(c.result, fn.arguments[0], [zero]))
        l = builder.insert(memref_d.LoadOp(fn.arguments[1], [zero]))
        finish_function(builder)
        assert not accesses_conflict(collect_accesses(s)[0], collect_accesses(l)[0])

    def test_cross_thread_refinement(self):
        """A[tid] write vs A[tid] read: no cross-thread conflict; A[tid+1] does."""
        module, fn, builder = build_function("f", [memref((64,), F32)], ["a"])
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        c = inner.insert(arith.ConstantOp(1.0, F32))
        store_same = inner.insert(memref_d.StoreOp(c.result, fn.arguments[0], [tid]))
        load_same = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        one = inner.insert(arith.ConstantOp(1, INDEX))
        shifted = inner.insert(arith.AddIOp(tid, one.result))
        load_shifted = inner.insert(memref_d.LoadOp(fn.arguments[0], [shifted.result]))
        close_parallel(inner)
        finish_function(builder)

        write = collect_accesses(store_same)[0]
        read_same = collect_accesses(load_same)[0]
        read_shifted = collect_accesses(load_shifted)[0]
        assert not accesses_conflict(write, read_same, cross_thread_only=True, thread_ivs=[tid])
        assert accesses_conflict(write, read_shifted, cross_thread_only=True, thread_ivs=[tid])
        # without the refinement both conflict
        assert accesses_conflict(write, read_same)


class TestBarrierSemantics:
    def _kernel_fig9_like(self):
        """A simplified bpnn_layerforward: the first barrier is redundant."""
        module, fn, builder = build_function(
            "bpnn", [memref((256,), F32), memref((256,), F32), memref((256,), F32)],
            ["input", "hidden", "output"], noalias=True)
        # shared memory lives at the grid (block) level, outside the thread loop
        node = alloc_shared(builder, (16,))
        weights = alloc_shared(builder, (16,))
        loop, inner = build_parallel(builder, 16)
        tid = loop.induction_vars[0]

        # node[tid] = input[tid]
        val = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        inner.insert(memref_d.StoreOp(val.result, node, [tid]))
        first_barrier = insert_barrier(inner, [tid])
        # weights[tid] = hidden[tid]
        hidden_val = inner.insert(memref_d.LoadOp(fn.arguments[1], [tid]))
        inner.insert(memref_d.StoreOp(hidden_val.result, weights, [tid]))
        second_barrier = insert_barrier(inner, [tid])
        # output[tid] = weights[0] + weights[tid]: weights[0] was written by a
        # *different* thread after the first barrier, so the second barrier
        # carries a real cross-thread dependence (like the reduction in Fig. 9).
        zero = const_index(inner, 0)
        w0 = inner.insert(memref_d.LoadOp(weights, [zero]))
        w = inner.insert(memref_d.LoadOp(weights, [tid]))
        summed = inner.insert(arith.AddFOp(w0.result, w.result))
        inner.insert(memref_d.StoreOp(summed.result, fn.arguments[2], [tid]))
        close_parallel(inner)
        finish_function(builder)
        return module, first_barrier, second_barrier

    def test_first_barrier_redundant(self):
        module, first, second = self._kernel_fig9_like()
        assert barrier_is_redundant(first, module=module)

    def test_second_barrier_not_redundant(self):
        # weights[] written per-thread before, weights[0] read by every thread
        # after: a genuine cross-thread dependence, so the barrier must stay.
        module, first, second = self._kernel_fig9_like()
        assert not barrier_is_redundant(second, module=module)

    def test_barrier_with_no_effects_removable(self):
        module, fn, builder = build_function("empty", [memref((8,), F32)], ["a"])
        loop, inner = build_parallel(builder, 8)
        barrier = insert_barrier(inner, [loop.induction_vars[0]])
        close_parallel(inner)
        finish_function(builder)
        assert barrier_is_redundant(barrier, module=module)

    def test_barrier_effects_cover_both_sides(self):
        module, fn, builder = build_function("k", [memref((8,), F32), memref((8,), F32)],
                                             ["a", "b"], noalias=True)
        loop, inner = build_parallel(builder, 8)
        tid = loop.induction_vars[0]
        c = inner.insert(arith.ConstantOp(2.0, F32))
        inner.insert(memref_d.StoreOp(c.result, fn.arguments[0], [tid]))
        barrier = insert_barrier(inner, [tid])
        inner.insert(memref_d.LoadOp(fn.arguments[1], [tid]))
        close_parallel(inner)
        finish_function(builder)
        effects = barrier_memory_effects(barrier, module=module)
        bases = {access.base for access in effects}
        assert fn.arguments[0] in bases and fn.arguments[1] in bases

    def test_shared_reduction_barrier_kept(self):
        """A[tid] += A[tid + 2^j] pattern: barrier is required."""
        module, fn, builder = build_function("reduce", [memref((64,), F32)], ["a"])
        shared = alloc_shared(builder, (64,))
        loop, inner = build_parallel(builder, 64)
        tid = loop.induction_vars[0]
        offset = const_index(inner, 32)
        other = inner.insert(arith.AddIOp(tid, offset))
        load_other = inner.insert(memref_d.LoadOp(shared, [other.result]))
        load_self = inner.insert(memref_d.LoadOp(shared, [tid]))
        total = inner.insert(arith.AddFOp(load_other.result, load_self.result))
        inner.insert(memref_d.StoreOp(total.result, shared, [tid]))
        barrier = insert_barrier(inner, [tid])
        inner.insert(memref_d.LoadOp(shared, [other.result]))
        close_parallel(inner)
        finish_function(builder)
        assert not barrier_is_redundant(barrier, module=module)
