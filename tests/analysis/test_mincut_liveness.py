"""Tests for the min-cut cache selection and liveness utilities."""

from hypothesis import given, settings, strategies as st

from repro.ir import F32, memref
from repro.dialects import arith, memref as memref_d
from repro.analysis import (
    FlowNetwork,
    crossing_values,
    def_use_edges_among,
    minimum_value_cut,
    validate_cut,
    values_defined_before,
)

from tests.helpers import build_function, build_parallel, close_parallel, finish_function


class TestFlowNetwork:
    def test_simple_max_flow(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 3)
        network.add_edge("a", "t", 2)
        network.add_edge("s", "b", 2)
        network.add_edge("b", "t", 3)
        flow, _ = network.max_flow("s", "t")
        assert flow == 4

    def test_bottleneck(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 10)
        network.add_edge("a", "b", 1)
        network.add_edge("b", "t", 10)
        flow, _ = network.max_flow("s", "t")
        assert flow == 1

    def test_min_cut_reachable_side(self):
        network = FlowNetwork()
        network.add_edge("s", "a", 1)
        network.add_edge("a", "t", 5)
        reachable = network.min_cut_reachable("s", "t")
        assert "s" in reachable and "t" not in reachable


class TestMinimumValueCut:
    def test_fig6_example(self):
        """Paper Fig. 6: caching {x, y} (2 values) beats caching {a, b, c} (3)."""
        values = ["x", "y", "a", "b", "c"]
        edges = [("x", "a"), ("x", "c"), ("y", "b"), ("y", "c")]
        non_recomputable = ["x", "y"]          # loads
        required = ["a", "b", "c"]             # used after the barrier
        cut = minimum_value_cut(values, edges, non_recomputable, required)
        assert cut == {"x", "y"}
        assert validate_cut(cut, edges, non_recomputable, required)

    def test_direct_requirement_of_load(self):
        values = ["x"]
        cut = minimum_value_cut(values, [], ["x"], ["x"])
        assert cut == {"x"}

    def test_recomputable_chain_needs_no_cache(self):
        # a = f(arg); b = g(a); both pure and arg is free: nothing to cache.
        values = ["a", "b"]
        edges = [("a", "b")]
        cut = minimum_value_cut(values, edges, [], ["b"])
        assert cut == set()
        assert validate_cut(cut, edges, [], ["b"])

    def test_weighted_cut_prefers_cheaper_value(self):
        # y is expensive to cache (a whole vector); prefer caching x twice.
        values = ["x", "y"]
        edges = [("x", "y")]
        cut = minimum_value_cut(values, edges, ["x"], ["y"], weights={"x": 1.0, "y": 10.0})
        assert cut == {"x"}

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_random_dags_produce_valid_cuts(self, data):
        """Property: the cut always makes every required value available and is
        never larger than the trivial cut (cache every required value)."""
        num_values = data.draw(st.integers(min_value=1, max_value=12))
        values = list(range(num_values))
        edges = []
        for consumer in range(num_values):
            producers = data.draw(st.lists(
                st.integers(min_value=0, max_value=max(0, consumer - 1)),
                max_size=3, unique=True)) if consumer > 0 else []
            edges.extend((producer, consumer) for producer in producers)
        non_recomputable = data.draw(st.lists(st.sampled_from(values), max_size=num_values,
                                              unique=True))
        required = data.draw(st.lists(st.sampled_from(values), min_size=1,
                                      max_size=num_values, unique=True))
        cut = minimum_value_cut(values, edges, non_recomputable, required)
        assert validate_cut(cut, edges, non_recomputable, required)
        assert len(cut) <= len(required)


class TestLiveness:
    def test_crossing_values(self):
        module, fn, builder = build_function("f", [memref((16,), F32)], ["a"])
        loop, inner = build_parallel(builder, 16)
        tid = loop.induction_vars[0]
        x = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        doubled = inner.insert(arith.AddFOp(x.result, x.result))
        unused = inner.insert(arith.ConstantOp(5.0, F32))
        split = len(loop.body.operations)  # split here: following ops are "after"
        inner.insert(memref_d.StoreOp(doubled.result, fn.arguments[0], [tid]))
        close_parallel(inner)
        finish_function(builder)

        crossing = crossing_values(loop.body, split)
        assert doubled.result in crossing
        assert tid in crossing          # used by the store's index
        assert unused.result not in crossing
        assert x.result not in crossing  # only used before the split

    def test_def_use_edges(self):
        module, fn, builder = build_function("f", [memref((16,), F32)], ["a"])
        loop, inner = build_parallel(builder, 16)
        tid = loop.induction_vars[0]
        x = inner.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
        y = inner.insert(arith.AddFOp(x.result, x.result))
        close_parallel(inner)
        finish_function(builder)
        values = [x.result, y.result]
        edges = def_use_edges_among(values)
        assert (id(x.result), id(y.result)) in edges

    def test_values_defined_before_includes_block_args(self):
        module, fn, builder = build_function("f", [memref((16,), F32)], ["a"])
        loop, inner = build_parallel(builder, 16)
        close_parallel(inner)
        finish_function(builder)
        assert loop.induction_vars[0] in values_defined_before(loop.body, 0)
