"""Rodinia suite tests: every benchmark compiles, runs, and the cpuified CUDA
code matches the SIMT oracle; OpenMP references compile and run too."""

import numpy as np
import pytest

from repro.rodinia import BENCHMARKS, FIGURE13_SET, run_benchmark, verify_benchmark
from repro.baselines import compile_mcuda, mcuda_options, run_thread_per_thread
from repro.runtime import Interpreter
from repro.transforms import PipelineOptions


ALL_NAMES = sorted(BENCHMARKS)


class TestSuiteCorrectness:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_cpuified_matches_oracle(self, name):
        assert verify_benchmark(name), f"{name}: cpuified output diverges from the SIMT oracle"

    @pytest.mark.parametrize("name", ["backprop layerforward", "particlefilter", "matmul"])
    def test_opt_disabled_still_correct(self, name):
        assert verify_benchmark(name, options=PipelineOptions.opt_disabled())

    @pytest.mark.parametrize("name", ["backprop layerforward", "hotspot", "nw"])
    def test_mcuda_baseline_correct(self, name):
        assert verify_benchmark(name, options=mcuda_options())


class TestSuiteExecution:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_openmp_reference_runs(self, name):
        bench = BENCHMARKS[name]
        if bench.omp_source is None:
            pytest.skip("no OpenMP reference")
        report = run_benchmark(name, variant="omp")
        assert report.cycles > 0

    def test_cuda_variant_reports_parallel_regions(self):
        report = run_benchmark("streamcluster", variant="cuda")
        assert report.parallel_regions >= 1
        assert report.dynamic_ops > 100

    def test_thread_counts_affect_cycles(self):
        slow = run_benchmark("srad_v1", variant="cuda", threads=1)
        fast = run_benchmark("srad_v1", variant="cuda", threads=32)
        assert fast.cycles < slow.cycles

    def test_thread_per_thread_baseline(self):
        bench = BENCHMARKS["matmul"]
        report = run_thread_per_thread(bench.cuda_source, bench.entry, bench.make_inputs(1))
        assert report.cycles > 0

    def test_mcuda_compiles_matmul(self):
        module = compile_mcuda(BENCHMARKS["matmul"].cuda_source)
        args = BENCHMARKS["matmul"].make_inputs(1)
        Interpreter(module).run("matmul", args)
        n = args[3]
        a = args[0].reshape(n, n)
        b = args[1].reshape(n, n)
        assert np.allclose(args[2].reshape(n, n), a @ b, rtol=1e-4)

    def test_figure13_set_excludes_matmul(self):
        assert "matmul" not in FIGURE13_SET
        assert len(FIGURE13_SET) >= 10
