"""The native-coverage gate: all 13 Rodinia parallel regions execute native.

This is the CI acceptance bar for the native backend's construct coverage —
the paper's headline artifact is the transpiled kernel running as compiled
OpenMP C, so every Rodinia region that falls back to the compiled closures
is a hole in the reproduction.  Both compilation paths are gated:

* ``cuda`` (cpuified): 12 benchmarks lower to spans; backprop and
  particlefilter carry ``scf.while`` loops inside theirs — the region class
  that used to fall back;
* ``oracle`` (SIMT): 12 benchmarks keep ``gpu.launch`` regions; backprop
  layerforward has a barrier *inside* a ``scf.while`` — barriers under
  (uniform) control flow, the other formerly-fallback class.

Outputs and CostReports must stay bit-identical to the interpreter, and the
total region count is pinned so a silently-skipped region (or a benchmark
regression that stops emitting one) fails loudly rather than shrinking the
denominator.
"""

import numpy as np
import pytest

from repro.rodinia import BENCHMARKS
from repro.runtime import Interpreter, NativeEngine, native_available
from repro.transforms import PipelineOptions
from tests.helpers import report_fields

needs_cc = pytest.mark.skipif(not native_available(),
                              reason="no working cc -fopenmp")

ALL_NAMES = sorted(BENCHMARKS)

#: Rodinia parallel regions per compilation path (srad_v1 has two kernels,
#: the other 11 benchmarks one each).  Update deliberately, never downward.
EXPECTED_REGIONS = 13


def _compile(bench, variant):
    # fresh (non-shared) modules: the two backprop benchmarks share one CUDA
    # source, and a shared module would share one program whose region stats
    # accumulate across both entries, double-counting the total.
    if variant == "oracle":
        return bench.compile_cuda(cuda_lower=False)
    return bench.compile_cuda(PipelineOptions.all_optimizations())


@needs_cc
class TestNativeCoverage:
    @pytest.mark.parametrize("variant", ["cuda", "oracle"])
    def test_all_rodinia_regions_execute_native(self, variant):
        regions = 0
        for name in ALL_NAMES:
            bench = BENCHMARKS[name]
            module = _compile(bench, variant)

            interp_args = bench.make_inputs(1)
            interp = Interpreter(module)
            interp.run(bench.entry, interp_args)

            native_args = bench.make_inputs(1)
            engine = NativeEngine(module)
            engine.run(bench.entry, native_args)

            stats = engine.native_stats
            assert stats["fallback_regions"] == 0, (
                f"{name} [{variant}]: {stats['fallback_regions']} region(s) "
                "fell back out of the native engine")
            assert stats["compile_errors"] == 0, f"{name} [{variant}]"
            assert stats["native_dispatches"] >= 1, f"{name} [{variant}]"
            regions += stats["native_regions"]

            for index in bench.output_indices:
                np.testing.assert_array_equal(
                    interp_args[index], native_args[index],
                    err_msg=f"{name} [{variant}] output {index}")
            assert report_fields(interp.report) == report_fields(engine.report), (
                f"{name} [{variant}]: CostReport diverged")
        assert regions == EXPECTED_REGIONS, (
            f"{variant}: {regions}/{EXPECTED_REGIONS} regions compiled native")
