"""Rodinia case study: the `backprop layerforward` kernel (paper Fig. 9).

Compiles the shared-memory layerforward kernel with four option sets
(the Fig. 13 ablation series), verifies each against the SIMT oracle, and
prints the simulated-cycle comparison plus the transpiled-vs-OpenMP speedup.

Run with:  python examples/rodinia_backprop.py
"""

import numpy as np

from repro.rodinia import BENCHMARKS, run_module
from repro.runtime import make_executor
from repro.transforms import PipelineOptions
from repro.harness.tables import format_table

SERIES = {
    "Opt Disabled": PipelineOptions.opt_disabled(),
    "mincut": PipelineOptions.from_flags("mincut"),
    "mincut+openmpopt": PipelineOptions.from_flags("mincut,openmpopt"),
    "all (affine+innerser)": PipelineOptions.all_optimizations(),
}


def main() -> None:
    bench = BENCHMARKS["backprop layerforward"]
    threads, scale = 8, 8

    # oracle outputs (SIMT semantics, default compiled engine)
    oracle_args = bench.make_inputs(scale)
    make_executor(bench.compile_cuda(cuda_lower=False)).run(bench.entry, oracle_args)

    rows = []
    for label, options in SERIES.items():
        args = bench.make_inputs(scale)
        module = bench.compile_cuda(options)
        report = run_module(module, bench.entry, args, threads=threads)
        for index in bench.output_indices:
            assert np.allclose(args[index], oracle_args[index], rtol=1e-4), label
        rows.append([label, report.dynamic_ops, report.barriers + report.simt_phases,
                     report.cycles])
    print("backprop layerforward (shared-memory staging + tree reduction), "
          f"{threads} threads")
    print(format_table(["configuration", "dynamic ops", "syncs", "cycles"], rows,
                       float_format="{:.0f}"))

    omp_report = run_module(bench.compile_openmp(), bench.entry, bench.make_inputs(scale),
                            threads=threads)
    best = min(row[3] for row in rows)
    print(f"\nhand-written OpenMP reference: {omp_report.cycles:.0f} cycles "
          f"-> transpiled-CUDA speedup {omp_report.cycles / best:.2f}x")


if __name__ == "__main__":
    main()
