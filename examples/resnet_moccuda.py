"""MocCUDA example: ResNet-50 training throughput on a CPU-only A64FX node.

Reproduces the Fig. 15 story at example scale: the CUDART/cuDNN interception
layer answers device queries, dispatches a convolution through each backend
(checking they agree numerically), runs the Polygeist-transpiled NLL-loss
kernel, and prints the images/s comparison of the four backends.

Run with:  python examples/resnet_moccuda.py
"""

import numpy as np

from repro import moccuda as mc
from repro.harness.tables import format_table, geomean


def main() -> None:
    session = mc.MocCUDASession()
    properties = session.cuda_get_device_properties()
    print(f"MocCUDA emulating: {properties.name}")

    # one bottleneck convolution through every backend — identical numerics
    rng = np.random.default_rng(0)
    inputs = rng.standard_normal((2, 8, 14, 14)).astype(np.float32)
    weight = rng.standard_normal((8, 8, 3, 3)).astype(np.float32)
    reference = mc.conv2d(inputs, weight, backend="native", padding=1)
    for backend in mc.BACKENDS:
        assert np.allclose(mc.conv2d(inputs, weight, backend=backend, padding=1),
                           reference, atol=1e-4)
    print("conv2d backends agree numerically (native / oneDNN / DNNL / MocCUDA)")

    # the transpiled ClassNLLCriterion kernel
    logits = rng.standard_normal((8, 10)).astype(np.float32)
    log_probs = np.log(mc.softmax(logits))
    targets = rng.integers(0, 10, size=8)
    loss = session.nll_loss(log_probs, targets)
    print(f"Polygeist-transpiled NLL loss kernel: loss = {loss:.4f} "
          f"(numpy reference {mc.nll_loss(log_probs, targets):.4f})")

    # Fig. 15-style throughput comparison on one core-memory group
    batches = (1, 4, 8, 12)
    rows = []
    for backend in ("native", "onednn", "dnnl", "moccuda+polygeist", "moccuda+expert"):
        throughputs = [mc.throughput_images_per_second(backend, batch, threads=12)
                       for batch in batches]
        rows.append([backend, *throughputs, geomean(throughputs)])
    print()
    print("ResNet-50 training throughput (images/s, 12 threads, one A64FX CMG)")
    print(format_table(["backend", *[f"batch {b}" for b in batches], "geomean"], rows,
                       float_format="{:.2f}"))
    ratio = (mc.throughput_images_per_second("moccuda+polygeist", 8, 12)
             / mc.throughput_images_per_second("dnnl", 8, 12))
    print(f"\nMocCUDA+Polygeist over Fujitsu-tuned oneDNN at batch 8: {ratio:.2f}x "
          "(paper geomean: 2.7x)")


if __name__ == "__main__":
    main()
