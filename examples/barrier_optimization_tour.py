"""A tour of the barrier machinery on IR built directly with the builder API.

Shows, step by step, what the paper's §III-A/§IV machinery does to a kernel
with shared-memory staging and synchronization:

  1. barrier elimination proves the first __syncthreads unnecessary,
  2. barrier-aware mem2reg forwards the staged store to its reload,
  3. parallel loop splitting (with the min-cut cache choice) lowers the
     remaining barrier into two parallel loops, and
  4. the OpenMP lowering + region fusion produce the final CPU form.

Run with:  python examples/barrier_optimization_tour.py
"""

from repro.ir import Builder, F32, FunctionType, INDEX, MemorySpace, memref, print_op
from repro.dialects import arith, func, memref as memref_d, polygeist, scf
from repro.analysis import barrier_is_redundant, barriers_in
from repro.transforms import (
    BarrierEliminationPass,
    Mem2RegPass,
    LowerToOpenMPPass,
    OpenMPOptPass,
    first_splittable_barrier,
    split_parallel_at_barrier,
)


def build_kernel():
    module = func.ModuleOp()
    fn = func.FuncOp("staging", FunctionType((memref((64,), F32), memref((64,), F32)), ()),
                     arg_names=["hidden", "out"])
    fn.set_attr("arg_noalias", True)
    module.add_function(fn)
    builder = Builder.at_end(fn.body_block)
    shared = builder.insert(memref_d.AllocaOp(memref((64,), F32, MemorySpace.SHARED))).result
    zero = builder.insert(arith.ConstantOp(0, INDEX)).result
    count = builder.insert(arith.ConstantOp(64, INDEX)).result
    one = builder.insert(arith.ConstantOp(1, INDEX)).result
    loop = builder.insert(scf.ParallelOp([zero], [count], [one],
                                         parallel_level="block", iv_names=["tid"]))
    body = Builder.at_end(loop.body)
    tid = loop.induction_vars[0]
    value = body.insert(memref_d.LoadOp(fn.arguments[0], [tid]))
    body.insert(polygeist.PolygeistBarrierOp([tid]))              # unnecessary
    body.insert(memref_d.StoreOp(value.result, shared, [tid]))    # staging store
    body.insert(polygeist.PolygeistBarrierOp([tid]))
    reloaded = body.insert(memref_d.LoadOp(shared, [tid]))        # forwardable reload
    doubled = body.insert(arith.AddFOp(reloaded.result, reloaded.result))
    body.insert(polygeist.PolygeistBarrierOp([tid]))
    mirrored = body.insert(arith.SubIOp(
        body.insert(arith.ConstantOp(63, INDEX)).result, tid))
    other = body.insert(memref_d.LoadOp(shared, [mirrored.result]))  # real cross-thread read
    total = body.insert(arith.AddFOp(doubled.result, other.result))
    body.insert(memref_d.StoreOp(total.result, fn.arguments[1], [tid]))
    body.insert(scf.YieldOp())
    builder.insert(func.ReturnOp())
    return module, fn, loop


def main() -> None:
    module, fn, loop = build_kernel()
    barriers = barriers_in(fn)
    print(f"initial kernel: {len(barriers)} barriers")
    for index, barrier in enumerate(barriers):
        print(f"  barrier #{index}: redundant = {barrier_is_redundant(barrier, module=module)}")

    BarrierEliminationPass().run(module)
    print(f"\nafter barrier elimination: {len(barriers_in(fn))} barriers remain")

    Mem2RegPass().run(module)
    loads_from_shared = [op for op in loop.walk() if isinstance(op, memref_d.LoadOp)]
    print(f"after barrier-aware mem2reg: {len(loads_from_shared)} loads remain in the kernel "
          "(the staged reload was forwarded)")

    barrier = first_splittable_barrier(loop)
    split_parallel_at_barrier(loop, barrier, use_mincut=True)
    print(f"after parallel loop splitting: {len(barriers_in(fn))} barriers, "
          f"{sum(1 for op in fn.walk() if isinstance(op, scf.ParallelOp))} parallel loops")

    LowerToOpenMPPass().run(module)
    OpenMPOptPass().run(module)
    print("\nfinal CPU form (OpenMP dialect):\n")
    print(print_op(fn))


if __name__ == "__main__":
    main()
