"""Quickstart: compile the paper's Fig. 1 `normalize` CUDA kernel to the CPU.

Demonstrates the three-step workflow:
  1. compile CUDA-C with the frontend (unified host/device module),
  2. run it with the SIMT oracle to get reference outputs,
  3. run the GPU-to-CPU pipeline (`-cuda-lower`) and execute the OpenMP-style
     result on the simulated multicore, showing the O(N^2) -> O(N) effect of
     parallel loop-invariant code motion on the `sum` call.

Execution uses the default compiled engine (IR translated once to Python
closures); pass REPRO_ENGINE=vectorized to execute whole thread grids as
NumPy array operations, REPRO_ENGINE=multicore (with REPRO_WORKERS=N) to
shard parallel regions across N real worker processes over shared memory,
REPRO_ENGINE=native to emit the parallel regions as OpenMP C and run the
compiled shared object, REPRO_ENGINE=interp to run on the tree-walking
reference interpreter, or REPRO_ENGINE=auto to let the autotuner measure
the engine matrix once per kernel and dispatch to the fastest — outputs
and simulated cycles are identical in every engine.  The registered set
is printed live via ``engine_names()``.  Steps 3–5 demonstrate the
multicore, native, and auto engines explicitly.

Run with:  python examples/quickstart.py
"""

import time

import numpy as np

from repro.frontend import compile_cuda
from repro.runtime import (
    default_engine,
    engine_names,
    make_executor,
    multicore_available,
    native_available,
)
from repro.transforms import PipelineOptions

CUDA_SOURCE = """
__device__ float sum(float* data, int n) {
    float total = 0.0f;
    for (int i = 0; i < n; i++) {
        total += data[i];
    }
    return total;
}

__global__ void normalize(float* out, float* in, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float val = sum(in, n);
    if (tid < n) {
        out[tid] = in[tid] / val;
    }
}

void launch(float* d_out, float* d_in, int n) {
    normalize<<<(n + 31) / 32, 32>>>(d_out, d_in, n);
}
"""


def main() -> None:
    n = 128
    rng = np.random.default_rng(0)
    data = rng.random(n).astype(np.float32) + 0.5

    # 1. reference execution with genuine GPU (SIMT) semantics
    oracle = compile_cuda(CUDA_SOURCE)
    reference = np.zeros(n, dtype=np.float32)
    make_executor(oracle).run("launch", [reference, data.copy(), n])

    # 2. GPU-to-CPU transpilation, unoptimized vs. fully optimized
    results = {}
    for label, options in [("opt-disabled", PipelineOptions.opt_disabled()),
                           ("optimized", PipelineOptions.all_optimizations())]:
        module = compile_cuda(CUDA_SOURCE, cuda_lower=True, options=options)
        output = np.zeros(n, dtype=np.float32)
        executor = make_executor(module, threads=32)
        executor.run("launch", [output, data.copy(), n])
        assert np.allclose(output, reference, rtol=1e-4), "CPU result diverged from the oracle"
        results[label] = executor.report

    print(f"normalize kernel, n = {n} (engine: {default_engine()}; "
          f"registered: {', '.join(engine_names())})")
    print("  reference sum-normalized output verified against the SIMT oracle")
    for label, report in results.items():
        print(f"  {label:>13}: {report.dynamic_ops:8d} dynamic ops, "
              f"{report.cycles:12.0f} simulated cycles")
    ratio = results["opt-disabled"].dynamic_ops / results["optimized"].dynamic_ops
    print(f"  parallel LICM hoists the O(N) sum() out of the kernel: "
          f"{ratio:.1f}x fewer dynamic operations (O(N^2) -> O(N))")

    # 3. the multicore engine: the same lowered module sharded across two
    #    real worker processes with shared-memory buffers — outputs and
    #    simulated cycles stay bit-identical to the in-process engines.
    if multicore_available():
        module = compile_cuda(CUDA_SOURCE, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        output = np.zeros(n, dtype=np.float32)
        executor = make_executor(module, engine="multicore", threads=32, workers=2)
        executor.run("launch", [output, data.copy(), n])
        assert np.allclose(output, reference, rtol=1e-4)
        assert executor.report.cycles == results["optimized"].cycles
        stats = executor.shard_stats
        print(f"  multicore engine (2 workers): same output and "
              f"{executor.report.cycles:.0f} cycles; "
              f"{stats['dispatches']} region(s) sharded across the pool")
    else:
        print("  multicore engine skipped (no fork/shared memory here)")

    # 4. the native engine: the wsloop emitted as `#pragma omp parallel for`
    #    C, compiled once (cold) and dispatched through the cached shared
    #    object afterwards (warm) — still bit-identical.
    if native_available():
        module = compile_cuda(CUDA_SOURCE, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        executor = make_executor(module, engine="native", threads=32)
        output = np.zeros(n, dtype=np.float32)
        start = time.perf_counter()
        executor.run("launch", [output, data.copy(), n])   # emits + runs cc
        cold = time.perf_counter() - start
        assert np.allclose(output, reference, rtol=1e-4)
        assert executor.report.cycles == results["optimized"].cycles
        start = time.perf_counter()
        make_executor(module, engine="native", threads=32).run(
            "launch", [np.zeros(n, dtype=np.float32), data.copy(), n])
        warm = time.perf_counter() - start
        # bare engines (REPRO_RESILIENCE=0) have no engine_name attribute
        engine_name = getattr(executor, "engine_name", "native")
        if engine_name == "native":
            stats = executor.native_stats
            print(f"  native engine: {stats['native_regions']} region(s) as OpenMP C; "
                  f"cold {cold * 1e3:.0f} ms (emit + cc), "
                  f"warm {warm * 1e3:.2f} ms (cached .so)")
        else:
            # the resilience layer degraded the run (e.g. cc failed mid-way
            # or REPRO_FAULTS is armed) — output was still bit-identical.
            print(f"  native engine degraded to '{engine_name}' "
                  f"(toolchain failure); outputs verified identical")
    else:
        print("  native engine skipped (no cc -fopenmp toolchain here)")

    # 5. the auto engine: the first run measures every viable engine on the
    #    real arguments and caches the fastest bit-identical config in the
    #    tuning cache; a fresh executor on the same module + argument shapes
    #    then dispatches straight to the winner with zero measurements.
    module = compile_cuda(CUDA_SOURCE, cuda_lower=True,
                          options=PipelineOptions.all_optimizations())
    cold = make_executor(module, engine="auto", threads=32)
    output = np.zeros(n, dtype=np.float32)
    cold.run("launch", [output, data.copy(), n])
    assert np.allclose(output, reference, rtol=1e-4)
    assert cold.report.cycles == results["optimized"].cycles
    warm = make_executor(module, engine="auto", threads=32)
    warm.run("launch", [np.zeros(n, dtype=np.float32), data.copy(), n])
    print(f"  auto engine: tuned over {len(cold.auto_stats['measurements'])} "
          f"candidate(s), winner '{cold.auto_stats['winner']}'; "
          f"warm executor re-dispatched with "
          f"{len(warm.auto_stats['measurements'])} measurement(s)")

    # 6. the kernel service (`python -m repro serve`): the same request
    #    served over a local socket by a long-running daemon — shared
    #    compile cache across tenants, per-tenant streams, bit-identical
    #    outputs and CostReports.  In-process here; in production the
    #    daemon runs standalone and many clients connect to its socket.
    import tempfile

    from repro.service import KernelServer, ServiceClient

    socket_path = tempfile.mktemp(prefix="repro-quickstart-", suffix=".sock")
    with KernelServer(socket_path=socket_path) as server:
        with ServiceClient(server.address, tenant="quickstart") as client:
            cold_req = client.launch(
                CUDA_SOURCE, "launch",
                [np.zeros(n, dtype=np.float32), data.copy(), n],
                options=PipelineOptions.all_optimizations())
            warm_req = client.launch(
                CUDA_SOURCE, "launch",
                [np.zeros(n, dtype=np.float32), data.copy(), n],
                options=PipelineOptions.all_optimizations())
            assert np.allclose(cold_req.args[0], reference, rtol=1e-4)
            assert cold_req.report["cycles"] == results["optimized"].cycles
            stats = client.stats()
        print(f"  kernel service: served via {server.socket_path} on engine "
              f"'{cold_req.engine}'; cold {cold_req.latency_s * 1e3:.0f} ms, "
              f"warm {warm_req.latency_s * 1e3:.1f} ms (shared-cache hit: "
              f"{warm_req.warm}); p50 latency "
              f"{stats['latency']['p50_s'] * 1e3:.1f} ms over "
              f"{stats['launches']} launches")


if __name__ == "__main__":
    main()
