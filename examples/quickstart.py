"""Quickstart: compile the paper's Fig. 1 `normalize` CUDA kernel to the CPU.

Demonstrates the three-step workflow:
  1. compile CUDA-C with the frontend (unified host/device module),
  2. run it with the SIMT oracle to get reference outputs,
  3. run the GPU-to-CPU pipeline (`-cuda-lower`) and execute the OpenMP-style
     result on the simulated multicore, showing the O(N^2) -> O(N) effect of
     parallel loop-invariant code motion on the `sum` call.

Execution uses the default compiled engine (IR translated once to Python
closures); pass REPRO_ENGINE=vectorized to execute whole thread grids as
NumPy array operations, REPRO_ENGINE=multicore (with REPRO_WORKERS=N) to
shard parallel regions across N real worker processes over shared memory,
or REPRO_ENGINE=interp to run on the tree-walking reference interpreter —
outputs and simulated cycles are identical in all four engines.  Step 4
demonstrates the multicore engine explicitly.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.frontend import compile_cuda
from repro.runtime import default_engine, make_executor, multicore_available
from repro.transforms import PipelineOptions

CUDA_SOURCE = """
__device__ float sum(float* data, int n) {
    float total = 0.0f;
    for (int i = 0; i < n; i++) {
        total += data[i];
    }
    return total;
}

__global__ void normalize(float* out, float* in, int n) {
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    float val = sum(in, n);
    if (tid < n) {
        out[tid] = in[tid] / val;
    }
}

void launch(float* d_out, float* d_in, int n) {
    normalize<<<(n + 31) / 32, 32>>>(d_out, d_in, n);
}
"""


def main() -> None:
    n = 128
    rng = np.random.default_rng(0)
    data = rng.random(n).astype(np.float32) + 0.5

    # 1. reference execution with genuine GPU (SIMT) semantics
    oracle = compile_cuda(CUDA_SOURCE)
    reference = np.zeros(n, dtype=np.float32)
    make_executor(oracle).run("launch", [reference, data.copy(), n])

    # 2. GPU-to-CPU transpilation, unoptimized vs. fully optimized
    results = {}
    for label, options in [("opt-disabled", PipelineOptions.opt_disabled()),
                           ("optimized", PipelineOptions.all_optimizations())]:
        module = compile_cuda(CUDA_SOURCE, cuda_lower=True, options=options)
        output = np.zeros(n, dtype=np.float32)
        executor = make_executor(module, threads=32)
        executor.run("launch", [output, data.copy(), n])
        assert np.allclose(output, reference, rtol=1e-4), "CPU result diverged from the oracle"
        results[label] = executor.report

    print(f"normalize kernel, n = {n} (engine: {default_engine()})")
    print(f"  reference sum-normalized output verified against the SIMT oracle")
    for label, report in results.items():
        print(f"  {label:>13}: {report.dynamic_ops:8d} dynamic ops, "
              f"{report.cycles:12.0f} simulated cycles")
    ratio = results["opt-disabled"].dynamic_ops / results["optimized"].dynamic_ops
    print(f"  parallel LICM hoists the O(N) sum() out of the kernel: "
          f"{ratio:.1f}x fewer dynamic operations (O(N^2) -> O(N))")

    # 3. the multicore engine: the same lowered module sharded across two
    #    real worker processes with shared-memory buffers — outputs and
    #    simulated cycles stay bit-identical to the in-process engines.
    if multicore_available():
        module = compile_cuda(CUDA_SOURCE, cuda_lower=True,
                              options=PipelineOptions.all_optimizations())
        output = np.zeros(n, dtype=np.float32)
        executor = make_executor(module, engine="multicore", threads=32, workers=2)
        executor.run("launch", [output, data.copy(), n])
        assert np.allclose(output, reference, rtol=1e-4)
        assert executor.report.cycles == results["optimized"].cycles
        stats = executor.shard_stats
        print(f"  multicore engine (2 workers): same output and "
              f"{executor.report.cycles:.0f} cycles; "
              f"{stats['dispatches']} region(s) sharded across the pool")
    else:
        print("  multicore engine skipped (no fork/shared memory here)")


if __name__ == "__main__":
    main()
