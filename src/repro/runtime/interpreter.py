"""IR interpreter with cost accounting.

One interpreter covers both execution modes the evaluation needs:

* **reference (oracle) execution** — a module straight out of the frontend,
  still containing ``gpu.launch``, runs with genuine SIMT semantics: every
  block executes its threads in barrier-delimited phases, so
  ``__syncthreads`` behaves exactly as on a GPU.  This is the correctness
  oracle every transformed module is compared against.
* **simulated CPU execution** — a module lowered by ``cpuify`` runs its
  ``omp.parallel`` / ``omp.wsloop`` structure under the analytic cost model
  of :mod:`repro.runtime.costmodel`, producing a :class:`CostReport` whose
  ``cycles`` are the "runtime" all benchmarks report.

Memory behaviour is always executed exactly (numpy buffers), so outputs can
be compared bit-for-bit (or within float tolerance) between the two modes.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..ir import Operation, Value
from ..dialects import arith, func as func_d, gpu as gpu_d, math as math_d, memref as memref_d
from ..dialects import omp as omp_d, polygeist, scf
from .costmodel import (
    CostReport,
    MachineModel,
    XEON_8375C,
    memory_access_cost,
    op_cost,
)
from .errors import InterpreterError
from .memory import MemRefStorage
from .registry import register_engine

_BARRIER = object()  # sentinel yielded by the execution generator at barriers


class Interpreter:
    """Executes a module and accounts simulated cycles."""

    def __init__(self, module: func_d.ModuleOp, machine: MachineModel = XEON_8375C,
                 threads: Optional[int] = None, collect_cost: bool = True,
                 max_dynamic_ops: Optional[int] = None) -> None:
        self.module = module
        self.machine = machine
        self.threads = threads if threads is not None else machine.cores
        self.collect_cost = collect_cost
        self.max_dynamic_ops = max_dynamic_ops
        self.report = CostReport(machine=machine, threads=self.threads)
        self._work_stack: List[float] = [0.0]

    # ------------------------------------------------------------------ API --
    def run(self, function_name: str, arguments: Sequence = ()) -> List:
        """Execute ``function_name`` with the given arguments.

        numpy arrays are wrapped into :class:`MemRefStorage` automatically (and
        modified in place, so callers can inspect outputs afterwards).
        """
        fn = self.module.lookup(function_name)
        if fn is None or fn.is_declaration:
            raise InterpreterError(f"no function body for {function_name!r}")
        runtime_args = [self._wrap_argument(argument) for argument in arguments]
        results = self._call_function(fn, runtime_args)
        self.report.cycles += self._work_stack[0]
        self._work_stack[0] = 0.0
        return results

    @staticmethod
    def _wrap_argument(argument):
        if isinstance(argument, np.ndarray):
            return MemRefStorage.from_numpy(argument)
        return argument

    # -------------------------------------------------------------- internals --
    def _charge(self, cycles: float) -> None:
        if self.collect_cost:
            self._work_stack[-1] += cycles

    def _count_op(self) -> None:
        self.report.dynamic_ops += 1
        if self.max_dynamic_ops is not None and self.report.dynamic_ops > self.max_dynamic_ops:
            raise InterpreterError("dynamic operation budget exceeded")

    def _call_function(self, fn: func_d.FuncOp, arguments: Sequence) -> List:
        if len(arguments) != len(fn.arguments):
            raise InterpreterError(
                f"{fn.sym_name}: expected {len(fn.arguments)} arguments, got {len(arguments)}")
        env: Dict[int, object] = {id(arg): value for arg, value in zip(fn.arguments, arguments)}
        result: List = []
        for signal in self._execute_ops(fn.body_block.operations, env, result_sink=result):
            if signal is _BARRIER:
                raise InterpreterError("barrier executed outside a parallel context")
        return result

    # The core execution routine is a generator so that SIMT phase execution
    # can suspend a "thread" at each barrier.
    def _execute_ops(self, ops: Sequence[Operation], env: Dict[int, object],
                     result_sink: Optional[List] = None):
        for op in list(ops):
            self._count_op()
            if isinstance(op, (polygeist.PolygeistBarrierOp, gpu_d.BarrierOp)):
                yield _BARRIER
                continue
            if isinstance(op, func_d.ReturnOp):
                if result_sink is not None:
                    result_sink.extend(self._value(env, operand) for operand in op.operands)
                return
            if isinstance(op, (scf.YieldOp, scf.ConditionOp)):
                # handled by the enclosing construct
                env["__terminator__"] = op
                return
            handler = self._handlers.get(type(op))
            if handler is not None:
                yield from handler(self, op, env)
            elif isinstance(op, arith.BinaryOp):
                self._exec_binary(op, env)
            elif isinstance(op, arith._CmpOp):
                self._exec_cmp(op, env)
            elif isinstance(op, arith._CastOp):
                self._exec_cast(op, env)
            else:
                raise InterpreterError(f"no interpretation for op {op.name}")

    def _value(self, env: Dict[int, object], value: Value):
        try:
            return env[id(value)]
        except KeyError:
            raise InterpreterError(f"use of undefined value {value.name}") from None

    def _bind(self, env: Dict[int, object], value: Value, concrete) -> None:
        env[id(value)] = concrete

    @staticmethod
    def _child_env(env: Dict[int, object]) -> Dict[int, object]:
        """A copy of ``env`` for a nested scope, with the terminator cleared.

        The ``__terminator__`` sentinel is only meaningful within the block
        that set it; without clearing it a stale ``scf.yield`` copied via
        ``dict(env)`` could be misread as the current block's terminator
        (e.g. an ``scf.if`` whose chosen branch has no terminator).
        """
        child = dict(env)
        child.pop("__terminator__", None)
        return child

    # -- scalar ops ------------------------------------------------------------
    def _exec_binary(self, op: arith.BinaryOp, env) -> None:
        lhs = self._value(env, op.lhs)
        rhs = self._value(env, op.rhs)
        self._charge(op_cost(op.name))
        result = op.PY_FUNC(lhs, rhs)
        if op.result.type.is_integer or op.result.type.is_index:
            result = int(result)
        self._bind(env, op.result, result)

    def _exec_cmp(self, op, env) -> None:
        lhs = self._value(env, op.lhs)
        rhs = self._value(env, op.rhs)
        self._charge(op_cost(op.name))
        self._bind(env, op.result, arith.CmpPredicate.evaluate(op.predicate, lhs, rhs))

    def _exec_cast(self, op, env) -> None:
        value = self._value(env, op.input)
        self._charge(op_cost(op.name))
        if op.result.type.is_float:
            self._bind(env, op.result, float(value))
        else:
            self._bind(env, op.result, int(value))

    def _exec_constant(self, op: arith.ConstantOp, env):
        self._bind(env, op.result, op.value)
        return
        yield  # pragma: no cover - make this a generator-compatible handler

    def _exec_negf(self, op: arith.NegFOp, env):
        self._charge(op_cost(op.name))
        self._bind(env, op.result, -self._value(env, op.operands[0]))
        return
        yield  # pragma: no cover

    def _exec_select(self, op: arith.SelectOp, env):
        self._charge(op_cost(op.name))
        condition = self._value(env, op.condition)
        self._bind(env, op.result,
                   self._value(env, op.true_value) if condition else self._value(env, op.false_value))
        return
        yield  # pragma: no cover

    def _exec_math_unary(self, op: math_d.UnaryMathOp, env):
        self._charge(op_cost("math.unary"))
        self._bind(env, op.result, op.evaluate(float(self._value(env, op.operands[0]))))
        return
        yield  # pragma: no cover

    def _exec_math_pow(self, op: math_d.PowFOp, env):
        self._charge(op_cost("math.powf"))
        self._bind(env, op.result, op.evaluate(self._value(env, op.lhs), self._value(env, op.rhs)))
        return
        yield  # pragma: no cover

    # -- memory ops --------------------------------------------------------------
    def _storage(self, env, value: Value) -> MemRefStorage:
        storage = self._value(env, value)
        if not isinstance(storage, MemRefStorage):
            raise InterpreterError(f"value {value.name} is not a memref at runtime")
        # delegate the use-after-free guard to the storage layer here, before
        # any cost accounting, so a freed-buffer access raises without
        # charging (matching the compiled engine's prologue ordering).
        storage.check_alive()
        return storage

    def _exec_alloc(self, op: memref_d.AllocOp, env):
        if id(op.result) in env:
            # pre-bound shared-memory buffer (one per GPU block): do not
            # re-allocate it per thread.
            return
        sizes = [int(self._value(env, operand)) for operand in op.operands]
        storage = MemRefStorage.allocate(op.memref_type, sizes)
        self._charge(2.0)
        self._bind(env, op.result, storage)
        return
        yield  # pragma: no cover

    def _exec_dealloc(self, op: memref_d.DeallocOp, env):
        self._storage(env, op.memref).free()
        self._charge(2.0)
        return
        yield  # pragma: no cover

    def _exec_load(self, op: memref_d.LoadOp, env):
        storage = self._storage(env, op.memref)
        indices = tuple(int(self._value(env, index)) for index in op.indices)
        self._charge(memory_access_cost(self.machine, storage.memory_space, storage.element_bytes))
        if storage.memory_space == "global":
            self.report.global_bytes += storage.element_bytes
        self._bind(env, op.result, storage.load(indices))
        return
        yield  # pragma: no cover

    def _exec_store(self, op: memref_d.StoreOp, env):
        storage = self._storage(env, op.memref)
        indices = tuple(int(self._value(env, index)) for index in op.indices)
        self._charge(memory_access_cost(self.machine, storage.memory_space, storage.element_bytes))
        if storage.memory_space == "global":
            self.report.global_bytes += storage.element_bytes
        storage.store(self._value(env, op.value), indices)
        return
        yield  # pragma: no cover

    def _exec_dim(self, op: memref_d.DimOp, env):
        storage = self._storage(env, op.memref)
        self._bind(env, op.result, int(storage.check_alive().shape[op.dim]))
        return
        yield  # pragma: no cover

    def _exec_copy(self, op: memref_d.CopyOp, env):
        source = self._storage(env, op.source)
        destination = self._storage(env, op.destination)
        destination.copy_from(source)
        self._charge(2.0 * source.num_elements
                     * memory_access_cost(self.machine, "global", source.element_bytes))
        self.report.global_bytes += 2 * source.num_bytes
        return
        yield  # pragma: no cover

    # -- functions ------------------------------------------------------------------
    def _exec_call(self, op: func_d.CallOp, env):
        callee = self.module.lookup(op.callee)
        if callee is None or callee.is_declaration:
            raise InterpreterError(f"call to unknown function {op.callee!r}")
        self._charge(op_cost("func.call"))
        arguments = [self._value(env, operand) for operand in op.operands]
        inner_env: Dict[int, object] = {
            id(arg): value for arg, value in zip(callee.arguments, arguments)}
        results: List = []
        yield from self._execute_ops(callee.body_block.operations, inner_env, result_sink=results)
        for result_value, concrete in zip(op.results, results):
            self._bind(env, result_value, concrete)

    # -- structured control flow -------------------------------------------------------
    def _exec_for(self, op: scf.ForOp, env):
        self._charge(op_cost("scf.for"))
        lower = int(self._value(env, op.lower_bound))
        upper = int(self._value(env, op.upper_bound))
        step = int(self._value(env, op.step))
        if step <= 0:
            raise InterpreterError("scf.for requires a positive step")
        carried = [self._value(env, value) for value in op.iter_init]
        iv = lower
        while iv < upper:
            body_env = self._child_env(env)
            self._bind(body_env, op.induction_var, iv)
            for arg, value in zip(op.iter_args, carried):
                self._bind(body_env, arg, value)
            yield from self._execute_ops(op.body.operations, body_env)
            terminator = body_env.get("__terminator__")
            if isinstance(terminator, scf.YieldOp):
                carried = [self._value(body_env, value) for value in terminator.operands]
            iv += step
            self._charge(op_cost("scf.for"))
        for result, value in zip(op.results, carried):
            self._bind(env, result, value)

    def _exec_if(self, op: scf.IfOp, env):
        self._charge(op_cost("scf.if"))
        condition = self._value(env, op.condition)
        block = op.then_block if condition else op.else_block
        if block is None:
            if op.results:
                raise InterpreterError("scf.if with results requires an else branch")
            return
        body_env = self._child_env(env)
        yield from self._execute_ops(block.operations, body_env)
        terminator = body_env.get("__terminator__")
        if op.results and isinstance(terminator, scf.YieldOp):
            for result, value in zip(op.results,
                                     [self._value(body_env, v) for v in terminator.operands]):
                self._bind(env, result, value)

    def _exec_while(self, op: scf.WhileOp, env):
        carried = [self._value(env, value) for value in op.init_args]
        while True:
            self._charge(op_cost("scf.while"))
            before_env = self._child_env(env)
            for arg, value in zip(op.before_block.arguments, carried):
                self._bind(before_env, arg, value)
            yield from self._execute_ops(op.before_block.operations, before_env)
            condition_op = before_env.get("__terminator__")
            if not isinstance(condition_op, scf.ConditionOp):
                raise InterpreterError("scf.while before-region did not reach scf.condition")
            proceed = self._value(before_env, condition_op.condition)
            forwarded = [self._value(before_env, value) for value in condition_op.forwarded]
            if not proceed:
                for result, value in zip(op.results, forwarded):
                    self._bind(env, result, value)
                return
            after_env = self._child_env(env)
            for arg, value in zip(op.after_block.arguments, forwarded):
                self._bind(after_env, arg, value)
            yield from self._execute_ops(op.after_block.operations, after_env)
            terminator = after_env.get("__terminator__")
            if isinstance(terminator, scf.YieldOp):
                carried = [self._value(after_env, value) for value in terminator.operands]
            else:
                carried = forwarded

    # -- parallel constructs ----------------------------------------------------------------
    def _iteration_space(self, env, lower_bounds, upper_bounds, steps):
        """Lazy row-major iteration space: ``(point_iterator, point_count)``.

        The Cartesian product is streamed by ``itertools.product`` instead of
        being materialized as nested list-comprehension copies, so large
        iteration spaces cost O(num_dims) memory instead of O(points).
        """
        lowers = [int(self._value(env, value)) for value in lower_bounds]
        uppers = [int(self._value(env, value)) for value in upper_bounds]
        strides = [int(self._value(env, value)) for value in steps]
        axes = [range(low, high, stride)
                for low, high, stride in zip(lowers, uppers, strides)]
        count = 1
        for axis in axes:
            count *= len(axis)
        return product(*axes), count

    def _run_simt(self, body_ops, per_thread_envs) -> int:
        """Run thread generators in barrier-delimited phases; returns #phases."""
        generators = [self._execute_ops(body_ops, thread_env) for thread_env in per_thread_envs]
        live = list(generators)
        phases = 0
        while live:
            phases += 1
            still_running = []
            for generator in live:
                try:
                    signal = next(generator)
                    while signal is not _BARRIER:
                        signal = next(generator)
                    still_running.append(generator)
                except StopIteration:
                    pass
            live = still_running
        return phases

    def _exec_scf_parallel(self, op: scf.ParallelOp, env):
        from ..analysis import contains_barrier

        iterations, num_points = self._iteration_space(
            env, op.lower_bounds, op.upper_bounds, op.steps)
        self.report.parallel_regions += 1
        self._work_stack.append(0.0)
        has_barrier = contains_barrier(op, immediate_region_only=True)
        phases = 0
        if has_barrier:
            per_thread_envs = []
            for point in iterations:
                thread_env = self._child_env(env)
                for iv, value in zip(op.induction_vars, point):
                    self._bind(thread_env, iv, value)
                per_thread_envs.append(thread_env)
            phases = self._run_simt(op.body.operations, per_thread_envs)
            self.report.simt_phases += phases
        else:
            for point in iterations:
                body_env = self._child_env(env)
                for iv, value in zip(op.induction_vars, point):
                    self._bind(body_env, iv, value)
                for _ in self._execute_ops(op.body.operations, body_env):
                    raise InterpreterError("unexpected barrier in barrier-free parallel loop")
        work = self._work_stack.pop()
        threads = min(self.threads, max(1, num_points))
        wall = (self.machine.fork_cost
                + work / self.machine.effective_speedup(threads)
                + phases * self.machine.simt_phase_cost)
        self._charge(wall)
        return
        yield  # pragma: no cover

    def _exec_gpu_launch(self, op: gpu_d.LaunchOp, env):
        grid = [int(self._value(env, value)) for value in op.grid_dims]
        block = [int(self._value(env, value)) for value in op.block_dims]
        for bz in range(grid[2]):
            for by in range(grid[1]):
                for bx in range(grid[0]):
                    per_thread_envs = []
                    block_env = self._child_env(env)
                    # shared allocas are part of the body and re-created per
                    # thread env copy; to share them within a block we execute
                    # them once here is unnecessary: the frontend emits shared
                    # allocas as the first ops of the body, so we pre-execute
                    # them in a common env that thread envs inherit.
                    for tz in range(block[2]):
                        for ty in range(block[1]):
                            for tx in range(block[0]):
                                thread_env = dict(block_env)
                                values = [bx, by, bz, tx, ty, tz,
                                          grid[0], grid[1], grid[2],
                                          block[0], block[1], block[2]]
                                for arg, value in zip(op.body.arguments, values):
                                    self._bind(thread_env, arg, value)
                                per_thread_envs.append(thread_env)
                    # shared memory: allocate once per block and share across
                    # thread envs by pre-binding shared allocas.
                    self._share_block_allocas(op, per_thread_envs)
                    phases = self._run_simt(op.body.operations, per_thread_envs)
                    self.report.simt_phases += phases
        return
        yield  # pragma: no cover

    def _share_block_allocas(self, op: gpu_d.LaunchOp, per_thread_envs) -> None:
        """Pre-bind shared-memory allocas so all threads of a block see one buffer."""
        for nested in op.body.operations:
            if isinstance(nested, memref_d.AllocaOp) and memref_d.is_shared_memref(nested.result):
                storage = MemRefStorage.allocate(nested.memref_type, [])
                for thread_env in per_thread_envs:
                    thread_env[id(nested.result)] = storage

    def _exec_gpu_alloc(self, op: gpu_d.GPUAllocOp, env):
        sizes = [int(self._value(env, operand)) for operand in op.operands]
        self._bind(env, op.result, MemRefStorage.allocate(op.result.type, sizes))
        return
        yield  # pragma: no cover

    def _exec_gpu_dealloc(self, op: gpu_d.GPUDeallocOp, env):
        self._storage(env, op.memref).free()
        return
        yield  # pragma: no cover

    def _exec_gpu_memcpy(self, op: gpu_d.GPUMemcpyOp, env):
        self._storage(env, op.destination).copy_from(self._storage(env, op.source))
        return
        yield  # pragma: no cover

    # -- OpenMP ------------------------------------------------------------------------------
    def _exec_omp_parallel(self, op: omp_d.OmpParallelOp, env):
        nested = op.nest_level > 0
        self.report.parallel_regions += 1
        if nested:
            self.report.nested_regions += 1
        self._work_stack.append(0.0)
        body_env = self._child_env(env)
        for _ in self._execute_ops(op.body.operations, body_env):
            raise InterpreterError("GPU barrier inside an OpenMP region")
        work = self._work_stack.pop()
        if nested:
            work *= self.machine.false_sharing_penalty
            fork = self.machine.nested_fork_cost
        else:
            fork = self.machine.fork_cost
        self._charge(fork + work)
        return
        yield  # pragma: no cover

    def _effective_team(self, op: omp_d.OmpWsLoopOp) -> int:
        parent = op.parent_op
        while parent is not None and not isinstance(parent, omp_d.OmpParallelOp):
            parent = parent.parent_op
        if parent is None:
            return 1
        if parent.nest_level > 0:
            return 1  # the outer level already saturates the cores
        return parent.num_threads or self.threads

    def _exec_omp_wsloop(self, op: omp_d.OmpWsLoopOp, env):
        self.report.workshared_loops += 1
        iterations, num_points = self._iteration_space(
            env, op.lower_bounds, op.upper_bounds, op.steps)
        self._work_stack.append(0.0)
        for point in iterations:
            body_env = self._child_env(env)
            for iv, value in zip(op.induction_vars, point):
                self._bind(body_env, iv, value)
            for _ in self._execute_ops(op.body.operations, body_env):
                raise InterpreterError("GPU barrier inside a workshared loop")
        work = self._work_stack.pop()
        # a workshared loop cannot use more workers than it has iterations —
        # this is exactly why preserving the kernel's full (collapsed)
        # parallelism matters once block counts are small.
        team = min(self._effective_team(op), max(1, num_points))
        wall = work / self.machine.effective_speedup(team)
        if not op.nowait:
            wall += self.machine.sync_cost
        self._charge(wall)
        return
        yield  # pragma: no cover

    def _exec_omp_barrier(self, op: omp_d.OmpBarrierOp, env):
        self.report.barriers += 1
        self._charge(self.machine.sync_cost)
        return
        yield  # pragma: no cover

    def _exec_omp_single(self, op: omp_d.OmpSingleOp, env):
        body_env = self._child_env(env)
        for _ in self._execute_ops(op.body.operations, body_env):
            raise InterpreterError("GPU barrier inside omp.single")
        return
        yield  # pragma: no cover

    # handler dispatch table -------------------------------------------------------------------
    _handlers = {
        arith.ConstantOp: _exec_constant,
        arith.NegFOp: _exec_negf,
        arith.SelectOp: _exec_select,
        math_d.UnaryMathOp: _exec_math_unary,
        math_d.PowFOp: _exec_math_pow,
        memref_d.AllocOp: _exec_alloc,
        memref_d.AllocaOp: _exec_alloc,
        memref_d.DeallocOp: _exec_dealloc,
        memref_d.LoadOp: _exec_load,
        memref_d.StoreOp: _exec_store,
        memref_d.DimOp: _exec_dim,
        memref_d.CopyOp: _exec_copy,
        func_d.CallOp: _exec_call,
        scf.ForOp: _exec_for,
        scf.IfOp: _exec_if,
        scf.WhileOp: _exec_while,
        scf.ParallelOp: _exec_scf_parallel,
        gpu_d.LaunchOp: _exec_gpu_launch,
        gpu_d.GPUAllocOp: _exec_gpu_alloc,
        gpu_d.GPUDeallocOp: _exec_gpu_dealloc,
        gpu_d.GPUMemcpyOp: _exec_gpu_memcpy,
        omp_d.OmpParallelOp: _exec_omp_parallel,
        omp_d.OmpWsLoopOp: _exec_omp_wsloop,
        omp_d.OmpBarrierOp: _exec_omp_barrier,
        omp_d.OmpSingleOp: _exec_omp_single,
    }


# NOTE: the module-level ``execute`` convenience wrapper lives in
# :mod:`repro.runtime.engine` so that every entry point goes through the
# engine-selection layer (``engine="compiled"|"interp"``, REPRO_ENGINE).


def _make_interpreter(module, *, machine=XEON_8375C, threads=None,
                      collect_cost=True, max_dynamic_ops=None, workers=None):
    # ``workers`` is a multicore-engine knob; the interpreter ignores it.
    return Interpreter(module, machine=machine, threads=threads,
                       collect_cost=collect_cost, max_dynamic_ops=max_dynamic_ops)


register_engine(
    "interp", _make_interpreter, order=3,
    description="tree-walking reference interpreter (semantic and cost oracle)")
