"""Content-addressed kernel compile cache: memory LRU + optional disk tier.

The paper's MocCUDA layer (§V-B) compiles each intercepted CUDA kernel once
and replays the compiled artifact on every subsequent launch; this module
gives the reproduction the same amortization for *every* entry point that
goes through :func:`repro.frontend.compile_cuda` (the Rodinia suite, the
figure harnesses, the MocCUDA shim, user code).

A cache entry is keyed by the *content* of the compilation request:

* the SHA-256 of the CUDA-C source text,
* whether the GPU-to-CPU pipeline runs (``cuda_lower``),
* the full :class:`~repro.transforms.PipelineOptions` configuration,
* a fingerprint of the pass pipeline those options assemble (pass names and
  their constructor state, in order), so editing the pipeline invalidates
  old entries, and
* the frontend ``noalias`` assumption.

Two tiers:

* an in-process LRU holding the **pickled** module bytes.  A hit is
  deserialized into a private module copy by default (callers may mutate it
  freely, ~100x faster than a cold compile), or returned as the retained
  *shared* canonical object with ``shared=True`` — the mode the MocCUDA
  stream executor uses so the per-module compiled-program caches
  (:mod:`repro.runtime.compiler`) amortize executor construction too.
  Shared modules must not be mutated (same contract as
  :func:`repro.runtime.invalidate_compiled`).
* an optional on-disk pickle tier, enabled with ``REPRO_CACHE=1`` and
  located at ``REPRO_CACHE_DIR`` (default ``~/.cache/repro-kernel-cache``),
  surviving process restarts.  Corrupt, truncated or stale entries (format
  or key mismatch after a pipeline change) silently fall back to a fresh
  compile and are rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from ..transforms import PipelineOptions
from . import resilience

#: bump when the pickle payload layout (not the IR) changes.
CACHE_FORMAT = 1

#: bump when the tuning-record layout changes (old records become stale).
TUNING_FORMAT = 1

#: environment knobs.
DISK_ENV_VAR = "REPRO_CACHE"
DISK_DIR_ENV_VAR = "REPRO_CACHE_DIR"
CAPACITY_ENV_VAR = "REPRO_CACHE_CAPACITY"
TUNE_CACHE_ENV_VAR = "REPRO_TUNE_CACHE"

_DEFAULT_CAPACITY = 256


# ---------------------------------------------------------------------------
# Key computation
# ---------------------------------------------------------------------------
_FINGERPRINTS: Dict[PipelineOptions, str] = {}
_FINGERPRINT_LOCK = threading.Lock()


def _pass_state(pass_) -> str:
    """A stable rendering of a pass's constructor state (simple attrs only)."""
    items = []
    for name in sorted(vars(pass_)):
        value = getattr(pass_, name)
        if isinstance(value, (bool, int, float, str, type(None))):
            items.append(f"{name}={value!r}")
    return ",".join(items)


def pipeline_fingerprint(options: PipelineOptions) -> str:
    """Fingerprint of the pass pipeline ``options`` assembles.

    Covers the ordered pass names and each pass's simple constructor state,
    so a change to :func:`repro.transforms.cpuify.build_pipeline` (or to a
    pass default) keys differently and old cache entries become stale.
    """
    with _FINGERPRINT_LOCK:
        cached = _FINGERPRINTS.get(options)
    if cached is not None:
        return cached
    from ..transforms.cpuify import build_pipeline

    pm = build_pipeline(options)
    text = ";".join(f"{p.NAME}({_pass_state(p)})" for p in pm.passes)
    digest = hashlib.sha256(text.encode()).hexdigest()[:16]
    with _FINGERPRINT_LOCK:
        _FINGERPRINTS[options] = digest
    return digest


def kernel_key(source: str, *, cuda_lower: bool = False,
               options: Optional[PipelineOptions] = None,
               noalias: bool = True) -> str:
    """The content-addressed cache key for one ``compile_cuda`` request."""
    parts = [f"format:{CACHE_FORMAT}", f"noalias:{noalias}",
             f"cuda_lower:{cuda_lower}"]
    if cuda_lower:
        resolved = options or PipelineOptions.all_optimizations()
        parts.append(f"options:{resolved!r}")
        parts.append(f"pipeline:{pipeline_fingerprint(resolved)}")
    hasher = hashlib.sha256("\n".join(parts).encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(source.encode("utf-8"))
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------
@dataclass
class CacheStats:
    """Counters for the cache's behavior (reset with ``reset_stats``)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_stores: int = 0
    disk_errors: int = 0
    uncacheable: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


@dataclass
class _Entry:
    blob: bytes
    #: the retained canonical module, materialized on first shared lookup.
    shared_module: object = field(default=None, repr=False)


class KernelCache:
    """Two-tier (memory LRU + optional disk) cache of compiled modules.

    ``disk_dir=None`` (the default for the process-global cache) consults
    the ``REPRO_CACHE`` / ``REPRO_CACHE_DIR`` environment on every
    operation, so tests and services can toggle the disk tier at runtime;
    pass an explicit path to pin it, or ``disk_dir=False`` to disable.
    """

    def __init__(self, capacity: Optional[int] = None,
                 disk_dir: object = None) -> None:
        if capacity is None:
            capacity = int(os.environ.get(CAPACITY_ENV_VAR, _DEFAULT_CAPACITY))
        self.capacity = max(1, capacity)
        self._disk_dir = disk_dir
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    # -- disk-tier configuration ------------------------------------------------
    def disk_path(self) -> Optional[Path]:
        """The active disk-tier directory, or ``None`` when disabled."""
        if self._disk_dir is False:
            return None
        if self._disk_dir is not None:
            return Path(self._disk_dir)
        if os.environ.get(DISK_ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on"):
            configured = os.environ.get(DISK_DIR_ENV_VAR)
            if configured:
                return Path(configured)
            return Path.home() / ".cache" / "repro-kernel-cache"
        return None

    def _entry_path(self, key: str) -> Optional[Path]:
        directory = self.disk_path()
        return None if directory is None else directory / f"{key}.pkl"

    # -- lookup / insert -----------------------------------------------------
    def lookup(self, key: str, *, shared: bool = False):
        """Return a module for ``key`` or ``None``.

        ``shared=False`` deserializes a private copy the caller owns;
        ``shared=True`` returns the retained canonical object (do not
        mutate it).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.stats.memory_hits += 1
        disk_module = None
        if entry is None:
            loaded = self._load_from_disk(key)
            if loaded is None:
                with self._lock:
                    self.stats.misses += 1
                return None
            # the disk load already deserialized (and verified) one module:
            # hand that very object out instead of unpickling again.
            entry, disk_module = loaded
            with self._lock:
                self.stats.disk_hits += 1
                self._entries[key] = entry
                self._evict_locked()
        if not shared:
            return disk_module if disk_module is not None else pickle.loads(entry.blob)
        with self._lock:
            if entry.shared_module is None:
                entry.shared_module = (disk_module if disk_module is not None
                                       else pickle.loads(entry.blob))
            return entry.shared_module

    def insert(self, key: str, module, *, shared: bool = False) -> None:
        """Store a freshly compiled module under ``key`` (both tiers).

        ``shared=True`` additionally retains ``module`` as the canonical
        shared object, so the very caller that compiled it keeps receiving
        the same object from later ``shared`` lookups.  Copy-mode inserts
        leave it out: the compiling caller owns (and may mutate) its
        module, while the pristine pickled blob serves every later hit.
        """
        try:
            blob = pickle.dumps(module, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with self._lock:
                self.stats.uncacheable += 1
            return
        with self._lock:
            self._entries[key] = _Entry(blob, module if shared else None)
            self._entries.move_to_end(key)
            self._evict_locked()
            self.stats.stores += 1
        self._store_to_disk(key, blob)

    def _evict_locked(self) -> None:
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    # -- disk tier ------------------------------------------------------------
    def _load_from_disk(self, key: str) -> Optional[tuple]:
        """Returns ``(entry, verified_module)`` or None; the module is the
        one deserialization the caller should hand out."""
        path = self._entry_path(key)
        if path is None:
            return None
        try:
            resilience.inject("cache.read")
            payload = pickle.loads(path.read_bytes())
            if (not isinstance(payload, dict)
                    or payload.get("format") != CACHE_FORMAT
                    or payload.get("key") != key):
                raise ValueError("stale or foreign cache entry")
            blob = payload["blob"]
            # materialize + verify so a corrupt entry can never hand out a
            # structurally broken module.
            from ..ir import verify
            module = pickle.loads(blob)
            verify(module)
            return _Entry(blob), module
        except FileNotFoundError:
            return None
        except Exception as exc:
            # corrupt/stale/unreadable entry: drop it and recompile — the
            # rewrite repairs the disk tier on the very next insert.
            with self._lock:
                self.stats.disk_errors += 1
            resilience.record_event("cache.read", "fallback",
                                    type(exc).__name__,
                                    f"{path.name}: dropping entry, recompiling")
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _store_to_disk(self, key: str, blob: bytes) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        payload = {"format": CACHE_FORMAT, "key": key, "blob": blob}
        try:
            resilience.inject("cache.write")
            path.parent.mkdir(parents=True, exist_ok=True)
            # crash-safe publish: write + fsync a tempfile in the cache
            # directory, then atomically rename over the final name — a
            # killed process can never leave a torn entry, and concurrent
            # writers of the same key converge on one valid file.
            fd, temp_name = tempfile.mkstemp(dir=str(path.parent),
                                             prefix=".tmp-", suffix=".pkl")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(payload, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            with self._lock:
                self.stats.disk_stores += 1
        except OSError as exc:
            with self._lock:
                self.stats.disk_errors += 1
            resilience.record_event("cache.write", "fallback",
                                    type(exc).__name__,
                                    "disk store skipped; memory tier serves")

    # -- maintenance ----------------------------------------------------------
    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and, with ``disk=True``, the disk tier)."""
        with self._lock:
            self._entries.clear()
        if disk:
            directory = self.disk_path()
            if directory is not None and directory.is_dir():
                for path in directory.glob("*.pkl"):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# ---------------------------------------------------------------------------
# Native artifact tier (compiled .so files for the native engine)
# ---------------------------------------------------------------------------
class NativeArtifactCache:
    """Content-addressed shared objects for :mod:`repro.runtime.native`.

    The native engine hashes each generated C translation unit (plus the
    compiler command and flags) and keys the compiled ``.so`` here, so warm
    launches skip the C compiler entirely:

    * without the disk tier, artifacts live in a per-process temporary
      directory (in-process reuse; cleaned up with the process);
    * with ``REPRO_CACHE=1`` they live in a ``native/`` subdirectory of the
      kernel cache (``REPRO_CACHE_DIR``) and survive process restarts.

    Eviction keeps at most ``capacity`` artifacts by access time (a lookup
    refreshes the file's mtime); artifacts the current process has dlopened
    are pinned via :meth:`pin` and never evicted out from under a loaded
    handle.  A corrupt artifact (truncated write, foreign file) surfaces as
    a dlopen failure in the engine, which calls :meth:`invalidate` and
    recompiles — never a crash.
    """

    def __init__(self, capacity: Optional[int] = None,
                 directory: object = None) -> None:
        if capacity is None:
            capacity = int(os.environ.get(CAPACITY_ENV_VAR, _DEFAULT_CAPACITY))
        self.capacity = max(1, capacity)
        self._directory = directory
        self._temp_dir: Optional[str] = None
        self._pinned: set = set()
        self._lock = threading.Lock()

    def directory(self) -> Path:
        """The active artifact directory (created on demand)."""
        if self._directory is not None:
            path = Path(self._directory)
        elif os.environ.get(DISK_ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on"):
            configured = os.environ.get(DISK_DIR_ENV_VAR)
            base = Path(configured) if configured else Path.home() / ".cache" / "repro-kernel-cache"
            path = base / "native"
        else:
            with self._lock:
                if self._temp_dir is None:
                    self._temp_dir = tempfile.mkdtemp(prefix="repro-native-")
            path = Path(self._temp_dir)
        path.mkdir(parents=True, exist_ok=True)
        return path

    def path_for(self, key: str) -> Path:
        return self.directory() / f"{key}.so"

    def lookup(self, key: str) -> Optional[Path]:
        """The artifact path for ``key`` if present (refreshes its LRU age)."""
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        return path

    def store(self, key: str, build) -> Optional[Path]:
        """Build an artifact via ``build(temp_path)`` and publish atomically.

        ``build`` must create the shared object at the temporary path it is
        given; a failed build (exception) propagates after cleanup.
        """
        resilience.inject("cache.write")
        path = self.path_for(key)
        fd, temp_name = tempfile.mkstemp(dir=str(path.parent),
                                         prefix=".tmp-", suffix=".so")
        os.close(fd)
        try:
            build(Path(temp_name))
            # crash-safe publish, same contract as the pickle tier: fsync
            # the built artifact before the atomic rename so a torn .so
            # can never become visible under the content key.
            sync_fd = os.open(temp_name, os.O_RDONLY)
            try:
                os.fsync(sync_fd)
            finally:
                os.close(sync_fd)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self.evict()
        return path

    def pin(self, key: str) -> None:
        """Protect a dlopened artifact from eviction for this process."""
        with self._lock:
            self._pinned.add(key)

    def invalidate(self, key: str) -> None:
        """Drop a corrupt artifact so the next request recompiles."""
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    def evict(self) -> None:
        """Trim the directory to ``capacity`` artifacts, oldest-access first.

        Pinned (dlopened) artifacts neither count against the capacity nor
        get removed — evicting them would strand the next process on a
        recompile while this one still maps the file.
        """
        with self._lock:
            pinned = set(self._pinned)
        try:
            entries = sorted((path for path in self.directory().glob("*.so")
                              if path.stem not in pinned),
                             key=lambda path: path.stat().st_mtime)
        except OSError:
            return
        excess = len(entries) - self.capacity
        for path in entries:
            if excess <= 0:
                break
            try:
                path.unlink()
                excess -= 1
            except OSError:
                pass

    def clear(self) -> None:
        for path in self.directory().glob("*.so"):
            try:
                path.unlink()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Tuning cache (persisted autotuner winners for engine="auto")
# ---------------------------------------------------------------------------
@dataclass
class TuningCacheStats:
    """Counters for the tuning cache (reset with ``reset_stats``)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_stores: int = 0
    disk_errors: int = 0
    invalidations: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits


def tuning_cache_enabled() -> bool:
    """Whether tuned winners are remembered at all (``REPRO_TUNE_CACHE``).

    Off (``REPRO_TUNE_CACHE=0``) means every ``engine="auto"`` executor
    re-tunes — useful for measuring the tuner itself; the default keeps
    winners in memory always and on disk when the kernel cache's disk tier
    is enabled (``REPRO_CACHE=1``).
    """
    return os.environ.get(TUNE_CACHE_ENV_VAR, "1").strip().lower() not in (
        "0", "false", "no", "off")


class TuningCache:
    """Persisted autotuner winners, the third cache tier.

    One record per (module content-address x function x argument-shape/dtype
    signature x execution parameters) key — the key is computed by
    :func:`repro.runtime.autotune.tuning_key`; this class only stores and
    retrieves.  A record is a small JSON-able dict::

        {"config": {"engine": "native", "workers": None},
         "host": {"cpus": 4, "toolchain": true, ...},
         "seconds": 0.00045, "measurements": {...}}

    The ``host`` fingerprint is stored *inside* the record and checked by
    the autotuner on lookup: a record tuned on a different host (CPU count,
    toolchain, numpy version) is treated as a miss and re-tuned, which also
    overwrites the stale record in place.

    Tiers mirror :class:`KernelCache`: an in-process dict always (unless
    ``REPRO_TUNE_CACHE=0`` disables the cache entirely), plus a crash-safe
    on-disk JSON tier under ``<cache-dir>/tuning/`` when ``REPRO_CACHE=1``
    — write + fsync a tempfile, then ``os.replace``, so a killed process
    never publishes a torn record.  Corrupt, truncated or stale disk
    records fall back to a re-tune and are rewritten.
    """

    def __init__(self, disk_dir: object = None) -> None:
        self._disk_dir = disk_dir
        self._records: Dict[str, dict] = {}
        self._lock = threading.Lock()
        self.stats = TuningCacheStats()
        #: bumped on every mutation (insert/invalidate/clear); lets callers
        #: stamp derived state (the autotuner's resolved-config memo) and
        #: drop it the moment the underlying records change.
        self.generation = 0

    # -- disk-tier configuration ----------------------------------------------
    def disk_path(self) -> Optional[Path]:
        """The active disk-tier directory, or ``None`` when disabled."""
        if self._disk_dir is False:
            return None
        if self._disk_dir is not None:
            return Path(self._disk_dir)
        if os.environ.get(DISK_ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on"):
            configured = os.environ.get(DISK_DIR_ENV_VAR)
            base = Path(configured) if configured else Path.home() / ".cache" / "repro-kernel-cache"
            return base / "tuning"
        return None

    def _record_path(self, key: str) -> Optional[Path]:
        directory = self.disk_path()
        return None if directory is None else directory / f"{key}.json"

    # -- lookup / insert -------------------------------------------------------
    def lookup(self, key: str) -> Optional[dict]:
        """The stored record for ``key``, or ``None`` (a private copy)."""
        if not tuning_cache_enabled():
            return None
        with self._lock:
            record = self._records.get(key)
            if record is not None:
                self.stats.memory_hits += 1
                return dict(record)
        record = self._load_from_disk(key)
        if record is None:
            with self._lock:
                self.stats.misses += 1
            return None
        with self._lock:
            self.stats.disk_hits += 1
            self._records[key] = record
        return dict(record)

    def insert(self, key: str, record: dict) -> None:
        """Store (and crash-safely publish) a freshly tuned record."""
        if not tuning_cache_enabled():
            return
        with self._lock:
            self._records[key] = dict(record)
            self.stats.stores += 1
            self.generation += 1
        self._store_to_disk(key, record)

    def invalidate(self, key: str) -> None:
        """Drop a record whose winner degraded; the next run re-tunes."""
        with self._lock:
            existed = self._records.pop(key, None) is not None
            self.generation += 1
        path = self._record_path(key)
        if path is not None:
            try:
                path.unlink()
                existed = True
            except OSError:
                pass
        if existed:
            with self._lock:
                self.stats.invalidations += 1

    # -- disk tier -------------------------------------------------------------
    def _load_from_disk(self, key: str) -> Optional[dict]:
        path = self._record_path(key)
        if path is None:
            return None
        try:
            resilience.inject("cache.read")
            payload = json.loads(path.read_text())
            if (not isinstance(payload, dict)
                    or payload.get("format") != TUNING_FORMAT
                    or payload.get("key") != key
                    or not isinstance(payload.get("record"), dict)):
                raise ValueError("stale or foreign tuning record")
            return payload["record"]
        except FileNotFoundError:
            return None
        except Exception as exc:
            # corrupt/stale/unreadable record: drop it and re-tune — the
            # rewrite repairs the disk tier on the very next insert.
            with self._lock:
                self.stats.disk_errors += 1
            resilience.record_event("cache.read", "fallback",
                                    type(exc).__name__,
                                    f"{path.name}: dropping tuning record, re-tuning")
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _store_to_disk(self, key: str, record: dict) -> None:
        path = self._record_path(key)
        if path is None:
            return
        payload = {"format": TUNING_FORMAT, "key": key, "record": record}
        try:
            resilience.inject("cache.write")
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, temp_name = tempfile.mkstemp(dir=str(path.parent),
                                             prefix=".tmp-", suffix=".json")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            with self._lock:
                self.stats.disk_stores += 1
        except (OSError, TypeError, ValueError) as exc:
            with self._lock:
                self.stats.disk_errors += 1
            resilience.record_event("cache.write", "fallback",
                                    type(exc).__name__,
                                    "tuning record disk store skipped; memory tier serves")

    # -- maintenance -----------------------------------------------------------
    def clear(self, disk: bool = False) -> None:
        """Drop the memory tier (and, with ``disk=True``, the disk tier)."""
        with self._lock:
            self._records.clear()
            self.generation += 1
        if disk:
            directory = self.disk_path()
            if directory is not None and directory.is_dir():
                for path in directory.glob("*.json"):
                    try:
                        path.unlink()
                    except OSError:
                        pass

    def reset_stats(self) -> None:
        with self._lock:
            self.stats = TuningCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


# ---------------------------------------------------------------------------
# Process-global cache
# ---------------------------------------------------------------------------
_GLOBAL_CACHE: Optional[KernelCache] = None
_GLOBAL_LOCK = threading.Lock()


def global_cache() -> KernelCache:
    """The process-wide kernel cache used by ``compile_cuda``."""
    global _GLOBAL_CACHE
    with _GLOBAL_LOCK:
        if _GLOBAL_CACHE is None:
            _GLOBAL_CACHE = KernelCache()
        return _GLOBAL_CACHE


def clear_global_cache(disk: bool = False) -> None:
    """Drop the process-wide cache (used by tests and benchmarks)."""
    cache = global_cache()
    cache.clear(disk=disk)
    cache.reset_stats()


_GLOBAL_NATIVE_CACHE: Optional[NativeArtifactCache] = None


def global_native_cache() -> NativeArtifactCache:
    """The process-wide native artifact cache used by the native engine."""
    global _GLOBAL_NATIVE_CACHE
    with _GLOBAL_LOCK:
        if _GLOBAL_NATIVE_CACHE is None:
            _GLOBAL_NATIVE_CACHE = NativeArtifactCache()
        return _GLOBAL_NATIVE_CACHE


_GLOBAL_TUNING_CACHE: Optional[TuningCache] = None


def global_tuning_cache() -> TuningCache:
    """The process-wide tuning cache used by ``engine="auto"``."""
    global _GLOBAL_TUNING_CACHE
    with _GLOBAL_LOCK:
        if _GLOBAL_TUNING_CACHE is None:
            _GLOBAL_TUNING_CACHE = TuningCache()
        return _GLOBAL_TUNING_CACHE


def clear_global_tuning_cache(disk: bool = False) -> None:
    """Drop the process-wide tuning cache (used by tests and benchmarks)."""
    cache = global_tuning_cache()
    cache.clear(disk=disk)
    cache.reset_stats()


__all__ = [
    "CACHE_FORMAT", "CAPACITY_ENV_VAR", "DISK_DIR_ENV_VAR", "DISK_ENV_VAR",
    "TUNE_CACHE_ENV_VAR", "TUNING_FORMAT",
    "CacheStats", "KernelCache", "NativeArtifactCache", "TuningCache",
    "TuningCacheStats", "clear_global_cache", "clear_global_tuning_cache",
    "global_cache", "global_native_cache", "global_tuning_cache",
    "kernel_key", "pipeline_fingerprint", "tuning_cache_enabled",
]
