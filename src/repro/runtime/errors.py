"""Runtime error types shared by the execution engines and the memory layer.

``InterpreterError`` historically lived in :mod:`repro.runtime.interpreter`
(and is still re-exported from there); it moved here so that
:mod:`repro.runtime.memory` can raise engine-compatible errors without a
circular import — the use-after-free guard is centralized in
:class:`~repro.runtime.memory.MemRefStorage` and must surface as an
``InterpreterError`` to every engine.

On top of the interpreter errors this module defines the **failure
taxonomy** consumed by :mod:`repro.runtime.resilience`: every
infrastructure failure the runtime can encounter mid-run maps to one of
the :class:`ResilienceError` subclasses below, each tagged transient
(worth retrying under the configured :class:`~repro.runtime.resilience.
RetryPolicy`) or permanent (degrade through the engine fallback chain).
The classes keep their historical base types — ``WorkerCrashError`` and
``DispatchTimeoutError`` are ``InterpreterError``s, ``ShmExhaustedError``
is an ``OSError`` — so the pre-taxonomy ``except`` clauses in the engines
keep catching them.
"""

from __future__ import annotations

import errno


class InterpreterError(RuntimeError):
    """Raised on malformed IR or unsupported runtime situations."""


class UseAfterFreeError(InterpreterError):
    """Raised when a freed memref buffer is accessed (load/store/free/copy)."""


# ---------------------------------------------------------------------------
# Failure taxonomy (see runtime/resilience.py for the policy layer)
# ---------------------------------------------------------------------------
class ResilienceError(Exception):
    """Mixin base for the structured failure taxonomy.

    ``transient`` tags whether retrying the *same* operation can plausibly
    succeed (crashed worker → re-fork, hiccuping I/O) as opposed to a
    deterministic environment fact (no C toolchain on the box).  The class
    default can be overridden per instance for borderline cases — e.g. an
    injected ``ToolchainError`` standing in for a flaky compiler invocation
    is transient while a real non-zero ``cc`` exit is not.
    """

    TRANSIENT = False

    def __init__(self, *args, transient=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.transient = self.TRANSIENT if transient is None else bool(transient)


class ToolchainError(ResilienceError, RuntimeError):
    """The C toolchain is missing or a ``cc`` invocation failed.

    Permanent by default (a box without ``cc`` stays without ``cc``);
    raised transient for spawn-level hiccups and injected compiler faults.
    Carries the probe/compile ``stderr`` in ``detail`` when available.
    """

    def __init__(self, message, *, detail="", transient=None):
        super().__init__(message, transient=transient)
        self.detail = detail


class WorkerCrashError(ResilienceError, InterpreterError):
    """A multicore worker process died mid-shard (EOF on its pipe).

    Transient: sharded stores are injective, so killing the pool,
    re-forking and re-dispatching the same shards is idempotent.
    """

    TRANSIENT = True


class DispatchTimeoutError(ResilienceError, InterpreterError):
    """A multicore shard dispatch exceeded the ``REPRO_TIMEOUT_S`` watchdog.

    Transient: the watchdog kills the hung pool; a re-fork gets a clean
    slate for the retry.
    """

    TRANSIENT = True


class ShmExhaustedError(ResilienceError, OSError):
    """``/dev/shm`` cannot hold a shared-memory promotion (``ENOSPC``).

    Permanent for the run: the engines demote the affected pool to
    in-process execution rather than hammering a full filesystem.
    Subclasses ``OSError`` so the pre-taxonomy demotion paths
    (``except OSError``) keep working.
    """

    def __init__(self, message, *, transient=None):
        OSError.__init__(self, errno.ENOSPC, message)
        self.transient = False if transient is None else bool(transient)


class CacheCorruptionError(ResilienceError, RuntimeError):
    """A disk-cache entry failed to load or verify.

    Transient in the retry sense that the corrupt entry is unlinked and a
    recompile rewrites it — the *next* attempt through the same code path
    succeeds.
    """

    TRANSIENT = True


class StreamPoisonedError(RuntimeError):
    """A launch was submitted to a poisoned MocCUDA stream.

    After an asynchronous batch fails, the stream refuses further launches
    (chaining the original worker-thread failure via ``__cause__``) until
    ``synchronize()`` re-raises and clears it.  Not part of the fallback
    taxonomy: it is the *surfacing* of an earlier failure, not a new one.
    """


#: every taxonomy class, in documentation order.
TAXONOMY = (ToolchainError, WorkerCrashError, ShmExhaustedError,
            CacheCorruptionError, DispatchTimeoutError)


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is tagged worth retrying (taxonomy-aware)."""
    return bool(getattr(error, "transient", False))


__all__ = [
    "CacheCorruptionError", "DispatchTimeoutError", "InterpreterError",
    "ResilienceError", "ShmExhaustedError", "StreamPoisonedError",
    "TAXONOMY", "ToolchainError", "UseAfterFreeError", "WorkerCrashError",
    "is_transient",
]
