"""Runtime error types shared by the execution engines and the memory layer.

``InterpreterError`` historically lived in :mod:`repro.runtime.interpreter`
(and is still re-exported from there); it moved here so that
:mod:`repro.runtime.memory` can raise engine-compatible errors without a
circular import — the use-after-free guard is centralized in
:class:`~repro.runtime.memory.MemRefStorage` and must surface as an
``InterpreterError`` to every engine.
"""

from __future__ import annotations


class InterpreterError(RuntimeError):
    """Raised on malformed IR or unsupported runtime situations."""


class UseAfterFreeError(InterpreterError):
    """Raised when a freed memref buffer is accessed (load/store/free/copy)."""
