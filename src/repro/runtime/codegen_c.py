"""C code generation for the native OpenMP engine (``engine="native"``).

The paper's headline artifact is *transpiled C*: CUDA kernels lowered through
high-level parallel constructs and emitted as OpenMP CPU code that runs at
native speed.  This module closes that gap for the reproduction: it walks a
lowered parallel region — an ``omp.wsloop`` / barrier-free ``scf.parallel``
iteration span, or a ``gpu.launch`` block grid with straight-line barriers —
and emits one C function per region:

* span regions become a loop over the linearized iteration space, executed
  under ``#pragma omp parallel for`` when the multicore engine's write-write
  store-safety analysis proves the region shard-safe (and sequentially
  otherwise — sequential C is still far faster than Python closures); the
  same proof also unlocks ``#pragma omp simd`` on the innermost loop
  (dispatch ``mode`` bit 1), statically disabled when the body calls libm
  functions whose vector variants are not IEEE-exact;
* launch regions become a loop over linearized block ids; inside a block,
  ``__syncthreads`` phase boundaries split the body into *chunks* executed
  thread-by-thread, phase-by-phase — the barrier is realized by finishing a
  chunk's thread loop before the next chunk starts (the per-block equivalent
  of ``#pragma omp barrier`` between worksharing phases).  Barriers under
  control flow compile structurally: every barrier-containing scf.for /
  scf.if / scf.while whose control is provably thread-uniform runs at C
  block scope and drives the per-phase thread loops (§III-B1's structured
  phase chunking), and values crossing a phase boundary are either cached
  in per-thread lanes or recomputed at the use site, split by the minimum
  value cut from :mod:`repro.analysis.mincut`.

**Bit-identical cost accounting.**  The generated C accumulates the same
counters the Python engines charge — ``work`` cycles, ``dynamic_ops``,
``global_bytes``, SIMT phases — with every static per-op charge folded into
one constant per block.  On machines whose per-access costs are exact binary
fractions (:func:`repro.runtime.vectorizer.machine_vectorizable`), float
accumulation of those charges is associative in exact arithmetic, so the
folded totals (and OpenMP ``reduction(+)`` partial sums) are bit-identical
to the interpreter's sequential accumulation; all double literals are
emitted as C99 hex floats so no decimal round-trip can perturb them.

Anything the emitter cannot prove it can translate exactly — nested
parallel constructs, dynamic-extent private allocas, barriers under
thread-varying control or carrying loop state, recursion — raises
:class:`UnsupportedRegion` and the region falls back to the compiled
engine (per region, never wholesale), keeping correctness independent of
emitter coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import arith, func as func_d, gpu as gpu_d, math as math_d
from ..dialects import memref as memref_d, omp as omp_d, polygeist, scf
from ..ir import MemRefType
from .costmodel import op_cost
from .memory import dtype_for

#: ops that must never appear inside a natively compiled region body.
_NESTED_CONTEXT_OPS = (scf.ParallelOp, gpu_d.LaunchOp, omp_d.OmpParallelOp,
                       omp_d.OmpWsLoopOp, omp_d.OmpSingleOp)

_BARRIER_OPS = (polygeist.PolygeistBarrierOp, gpu_d.BarrierOp)

_TERMINATORS = (func_d.ReturnOp, scf.YieldOp, scf.ConditionOp)

#: largest private (stack) buffer the emitter will place per iteration.
_MAX_PRIVATE_BYTES = 1 << 16

#: error codes written into ``outi[2]`` by generated code.
ERR_BAD_STEP = 1
ERR_OOM = 2


class UnsupportedRegion(Exception):
    """The region contains a construct the C emitter does not translate."""


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------
def c_double(value: float) -> str:
    """A C99 literal reproducing ``value`` bit for bit (hex float)."""
    value = float(value)
    if value != value:
        return "NAN"
    if value == float("inf"):
        return "INFINITY"
    if value == float("-inf"):
        return "-INFINITY"
    return value.hex()


def c_int(value: int) -> str:
    return f"INT64_C({int(value)})"


_CTYPES = {  # numpy dtype name -> C element type
    "float32": "float", "float64": "double",
    "int8": "int8_t", "int32": "int32_t", "int64": "int64_t",
}


def _element_ctype(element_type) -> str:
    name = dtype_for(element_type).name
    try:
        return _CTYPES[name]
    except KeyError:
        raise UnsupportedRegion(f"no C element type for {element_type}") from None


# ---------------------------------------------------------------------------
# Emitter plumbing
# ---------------------------------------------------------------------------
class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 1

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def open(self, line: str) -> None:
        self.w(line)
        self.indent += 1

    def close(self, line: str = "}") -> None:
        self.indent -= 1
        self.w(line)


@dataclass
class _Buffer:
    """One memref value visible inside the region."""

    name: str                 # C base identifier of the data pointer/array
    ctype: str                # C element type
    rank: int
    extents: List[str]        # C expressions, one per dimension
    space: str                # memory space for cost accounting
    kind: str                 # 'livein' | 'private' | 'shared' | 'threadlocal'
    elem_bytes: int
    freed_var: Optional[str] = None


@dataclass
class BufSpec:
    """Dispatch-side contract for one live-in memref (checked per call)."""

    slot: int
    dtype: str                # numpy dtype name the C code assumes
    rank: int
    space: str                # memory space the cost folding assumed
    stored: bool              # region writes through this buffer


@dataclass
class RegionSpec:
    """Everything the dispatcher needs to call one emitted region."""

    symbol: str
    kind: str                            # 'span' | 'launch'
    int_slots: List[int] = field(default_factory=list)
    float_slots: List[int] = field(default_factory=list)
    buffers: List[BufSpec] = field(default_factory=list)
    num_dims: int = 0                    # span only
    #: span only: the emitted C contains `#pragma omp simd` variants the
    #: dispatcher may select (mode bit 1) when the store-safety/alias proof
    #: holds.  Statically false when the body calls libm functions whose
    #: vector variants are not IEEE-exact, or inlines other functions.
    simd_ok: bool = False


class RegionCodegen:
    """Emits one region as a self-contained C function.

    ``slot_of`` maps an SSA value to its register slot in the enclosing
    compiled function (used to describe the live-in ABI to the dispatcher).
    """

    def __init__(self, program, op, symbol: str, slot_of) -> None:
        self.program = program
        self.op = op
        self.symbol = symbol
        self.slot_of = slot_of
        self.machine = program.machine
        self.local_cost = program.local_cost
        self.global_base = program.global_base
        self.out = _Writer()
        self._uid = 0
        self.cexpr: Dict[int, str] = {}          # id(value) -> C expression
        self.buffers: Dict[int, _Buffer] = {}    # id(value) -> buffer
        self.spec = RegionSpec(symbol=symbol, kind="span")
        self._livein_index: Dict[int, str] = {}  # id(value) -> bound C name
        self._stored_buffers: set = set()        # live-in buffer names written
        self._inline_stack: List[int] = []
        # SIMT state (launch regions)
        self.simt = False
        self._toplevel: Dict[int, Tuple[str, int]] = {}  # id -> (kind, index)
        self._n_ti = 0
        self._n_tf = 0
        # phase-crossing bookkeeping: values defined as plain C locals inside
        # one thread-loop chunk are out of scope in later chunks; `ref` then
        # recomputes them from still-available values (charge-free, exactly
        # the paper's min-cut cache-vs-recompute split).
        self._chunk_token = 0
        self._local_token: Dict[int, int] = {}   # id(value) -> defining chunk
        self._def_op: Dict[int, object] = {}     # id(value) -> defining op
        self._varying: set = set()               # id(value) -> thread-varying
        self._barrier_memo: Dict[int, bool] = {}

    def _name(self, prefix: str) -> str:
        self._uid += 1
        return f"{prefix}{self._uid}"

    # -- live-in binding -------------------------------------------------------
    def _collect_defined(self, op, defined: set) -> None:
        for result in op.results:
            defined.add(id(result))
        for region in op.regions:
            for block in region.blocks:
                for argument in block.arguments:
                    defined.add(id(argument))
                for nested in block.operations:
                    self._collect_defined(nested, defined)

    def _collect_liveins(self) -> List:
        defined: set = set()
        self._collect_defined(self.op, defined)
        order: List = []
        seen: set = set()

        def visit(operation):
            for operand in operation.operands:
                if id(operand) not in defined and id(operand) not in seen:
                    seen.add(id(operand))
                    order.append(operand)
            for region in operation.regions:
                for block in region.blocks:
                    for nested in block.operations:
                        visit(nested)

        visit(self.op)
        return order

    def _bind_livein(self, value) -> None:
        type_ = value.type
        if isinstance(type_, MemRefType):
            index = len(self.spec.buffers)
            name = f"lp{index}"
            ctype = _element_ctype(type_.element_type)
            shape_base = sum(b.rank for b in self.spec.buffers)
            extents = [f"LS[{shape_base + d}]" for d in range(type_.rank)]
            self.buffers[id(value)] = _Buffer(
                name=name, ctype=ctype, rank=type_.rank, extents=extents,
                space=type_.memory_space, kind="livein",
                elem_bytes=dtype_for(type_.element_type).itemsize)
            self.spec.buffers.append(BufSpec(
                slot=self.slot_of(value), dtype=dtype_for(type_.element_type).name,
                rank=type_.rank, space=type_.memory_space, stored=False))
            self._livein_index[id(value)] = name
        elif type_.is_float:
            index = len(self.spec.float_slots)
            self.spec.float_slots.append(self.slot_of(value))
            self.cexpr[id(value)] = f"lf{index}"
        elif type_.is_integer or type_.is_index:
            index = len(self.spec.int_slots)
            self.spec.int_slots.append(self.slot_of(value))
            self.cexpr[id(value)] = f"li{index}"
        else:
            raise UnsupportedRegion(f"live-in of type {type_}")

    def _emit_livein_prologue(self) -> None:
        w = self.out.w
        for index in range(len(self.spec.int_slots)):
            w(f"const int64_t li{index} = LI[{index}];")
        for index in range(len(self.spec.float_slots)):
            w(f"const double lf{index} = LF[{index}];")
        for index, buf_spec in enumerate(self.spec.buffers):
            ctype = _CTYPES[buf_spec.dtype]
            w(f"{ctype}* const lp{index} = ({ctype}*)LP[{index}];")

    # -- value helpers ---------------------------------------------------------
    def _ctype_of(self, value) -> str:
        if value.type.is_float:
            return "double"
        if value.type.is_integer or value.type.is_index:
            return "int64_t"
        raise UnsupportedRegion(f"SSA value of type {value.type}")

    def ref(self, value) -> str:
        vid = id(value)
        expr = self.cexpr.get(vid)
        if expr is None:
            raise UnsupportedRegion("use of an untranslated value")
        token = self._local_token.get(vid)
        if token is not None and token != self._chunk_token:
            # chunk-local C variable from an earlier phase: recompute it
            # here from values still in scope (lanes, live-ins, builtins).
            return self._recompute_expr(value, 0)
        return expr

    def _recompute_expr(self, value, depth: int) -> str:
        if depth > 32:
            raise UnsupportedRegion("recompute chain too deep")
        vid = id(value)
        expr = self.cexpr.get(vid)
        if expr is not None:
            token = self._local_token.get(vid)
            if token is None or token == self._chunk_token:
                return expr
        op = self._def_op.get(vid)
        if op is None:
            raise UnsupportedRegion("phase-crossing value is not recomputable")
        expr = self._scalar_expr(
            op, lambda operand: self._recompute_expr(operand, depth + 1))
        if expr is None:
            # loads/calls/control-flow results must have been laned by the
            # min-cut (they are non-recomputable); reaching here is a bug in
            # the cut, and falling back keeps it a correctness non-event.
            raise UnsupportedRegion("phase-crossing value is not recomputable")
        return expr

    def _define(self, value, expr: str) -> None:
        """Emit the definition of ``value`` as ``expr``."""
        top = self._toplevel.get(id(value))
        if top is not None:
            kind, index = top
            target = (f"TI[{index} * NT + t]" if kind == "i"
                      else f"TF[{index} * NT + t]")
            self.cexpr[id(value)] = target
            self.out.w(f"{target} = {expr};")
            return
        name = self._name("v")
        self.cexpr[id(value)] = name
        if self.simt:
            self._local_token[id(value)] = self._chunk_token
        self.out.w(f"{self._ctype_of(value)} {name} = {expr};")

    def _declare_result(self, value) -> str:
        """Pre-declare a construct result (scf.for / scf.if) in scope."""
        top = self._toplevel.get(id(value))
        if top is not None:
            kind, index = top
            target = (f"TI[{index} * NT + t]" if kind == "i"
                      else f"TF[{index} * NT + t]")
            self.cexpr[id(value)] = target
            return target
        name = self._name("v")
        self.cexpr[id(value)] = name
        if self.simt:
            self._local_token[id(value)] = self._chunk_token
        self.out.w(f"{self._ctype_of(value)} {name};")
        return name

    # -- static cost folding ---------------------------------------------------
    def _access_charge(self, memref_value) -> Tuple[float, float]:
        """(work, global_bytes) charged per access of ``memref_value``.

        Derived from the memref's *static* type; the dispatcher verifies at
        every call that the runtime storage (dtype, memory space) matches
        what this folding assumed, falling back otherwise.
        """
        mtype = memref_value.type
        if not isinstance(mtype, MemRefType):
            raise UnsupportedRegion("memory access through a non-memref value")
        space = mtype.memory_space
        if space in ("shared", "local"):
            return self.local_cost, 0.0
        elem_bytes = dtype_for(mtype.element_type).itemsize
        work = self.global_base * max(1.0, elem_bytes / 4.0)
        gb = float(elem_bytes) if space == "global" else 0.0
        return work, gb

    def _static_charge(self, op) -> Tuple[float, float]:
        """The (work, global_bytes) charged once per execution of ``op``'s
        own straight-line step, excluding anything its nested blocks charge
        per iteration.  Mirrors the compiled engine op by op."""
        if isinstance(op, arith.ConstantOp):
            return 0.0, 0.0
        if isinstance(op, arith.BinaryOp):
            return op_cost(op.name), 0.0
        if isinstance(op, (arith._CmpOp, arith._CastOp, arith.NegFOp,
                           arith.SelectOp)):
            return op_cost(op.name), 0.0
        if isinstance(op, math_d.UnaryMathOp):
            return op_cost("math.unary"), 0.0
        if isinstance(op, math_d.PowFOp):
            return op_cost("math.powf"), 0.0
        if isinstance(op, memref_d.AllocOp):  # covers AllocaOp
            if id(op.result) in self._prebound_shared:
                return 0.0, 0.0
            return 2.0, 0.0
        if isinstance(op, memref_d.DeallocOp):
            return 2.0, 0.0
        if isinstance(op, memref_d.LoadOp):
            return self._access_charge(op.memref)
        if isinstance(op, memref_d.StoreOp):
            return self._access_charge(op.memref)
        if isinstance(op, memref_d.DimOp):
            return 0.0, 0.0
        if isinstance(op, memref_d.CopyOp):
            return 0.0, 0.0  # charged at runtime (size-dependent)
        if isinstance(op, func_d.CallOp):
            return op_cost("func.call"), 0.0
        if isinstance(op, scf.ForOp):
            return op_cost("scf.for"), 0.0
        if isinstance(op, scf.IfOp):
            return op_cost("scf.if"), 0.0
        if isinstance(op, scf.WhileOp):
            # scf.while charges per iteration (at the head, including the
            # final failed check), never on entry — mirrored in _emit_while.
            return 0.0, 0.0
        if isinstance(op, _BARRIER_OPS):
            return 0.0, 0.0
        raise UnsupportedRegion(f"op {op.name}")

    # -- block emission --------------------------------------------------------
    @staticmethod
    def _split(block) -> Tuple[List, Optional[object]]:
        body = []
        for op in block.operations:
            if isinstance(op, _TERMINATORS):
                return body, op
            body.append(op)
        return body, None

    def _precheck(self, ops: Sequence, *, allow_barriers: bool = False) -> None:
        """Reject whole-region show-stoppers before any text is emitted.

        Launch regions (``allow_barriers``) accept barriers at any structured
        depth — placement validity (only under uniform, carried-value-free
        scf.for/scf.if/scf.while) is checked by the structural analysis.
        """
        for op in ops:
            if isinstance(op, _NESTED_CONTEXT_OPS):
                raise UnsupportedRegion(f"nested parallel construct {op.name}")
            if isinstance(op, omp_d.OmpBarrierOp):
                raise UnsupportedRegion("omp.barrier inside a region body")
            if isinstance(op, _BARRIER_OPS) and not allow_barriers:
                raise UnsupportedRegion("barrier inside the region body")
            if isinstance(op, (gpu_d.GPUAllocOp, gpu_d.GPUDeallocOp,
                               gpu_d.GPUMemcpyOp)):
                raise UnsupportedRegion(f"host-level op {op.name}")
            for region in op.regions:
                for block in region.blocks:
                    self._precheck(list(block.operations),
                                   allow_barriers=allow_barriers)

    def _emit_block(self, block, *, count_ops: bool = True) -> None:
        """Emit one straight-line block: folded static charges + op code."""
        ops, term = self._split(block)
        nops = len(ops) + (1 if term is not None else 0)
        work = gb = 0.0
        for op in ops:
            op_work, op_gb = self._static_charge(op)
            work += op_work
            gb += op_gb
        if count_ops and nops:
            self.out.w(f"OPS += {c_int(nops)};")
        if work:
            self.out.w(f"W += {c_double(work)};")
        if gb:
            self.out.w(f"GB += {c_double(gb)};")
        for op in ops:
            self._emit_op(op)

    # -- op emission -----------------------------------------------------------
    _BINARY = {
        arith.AddIOp: "({a} + {b})", arith.SubIOp: "({a} - {b})",
        arith.MulIOp: "({a} * {b})",
        arith.AddFOp: "({a} + {b})", arith.SubFOp: "({a} - {b})",
        arith.MulFOp: "({a} * {b})",
        arith.MinSIOp: "(({b} < {a}) ? {b} : {a})",
        arith.MaxSIOp: "(({b} > {a}) ? {b} : {a})",
        arith.MinFOp: "(({b} < {a}) ? {b} : {a})",
        arith.MaxFOp: "(({b} > {a}) ? {b} : {a})",
        arith.DivFOp: "(({b} != 0.0) ? ({a} / {b}) : INFINITY)",
        arith.RemFOp: "(({b} != 0.0) ? fmod({a}, {b}) : NAN)",
        arith.DivSIOp: "(({b} != 0) ? (int64_t)((double){a} / (double){b}) : 0)",
        arith.RemSIOp: "(({b} != 0) ? (int64_t)fmod((double){a}, (double){b}) : 0)",
        arith.AndIOp: "({a} & {b})", arith.OrIOp: "({a} | {b})",
        arith.XOrIOp: "({a} ^ {b})",
        arith.ShLIOp: "repro_shli({a}, {b})",
        arith.ShRSIOp: "repro_shrsi({a}, {b})",
    }
    _CMP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

    def _scalar_expr(self, op, rf) -> Optional[str]:
        """Pure scalar expression for ``op.result`` with operands rendered by
        ``rf``, or None when ``op`` is not a pure scalar computation.  Shared
        by direct emission (``rf=self.ref``) and phase-crossing recompute."""
        if isinstance(op, arith.ConstantOp):
            return (c_double(op.value) if op.result.type.is_float
                    else c_int(op.value))
        if isinstance(op, arith.BinaryOp):
            template = self._BINARY.get(type(op))
            if template is None:
                raise UnsupportedRegion(f"binary op {op.name}")
            return template.format(a=rf(op.lhs), b=rf(op.rhs))
        if isinstance(op, arith._CmpOp):
            cmp = self._CMP[op.predicate]
            return f"(({rf(op.lhs)} {cmp} {rf(op.rhs)}) ? 1 : 0)"
        if isinstance(op, arith._CastOp):
            source = rf(op.input)
            if op.result.type.is_float:
                return f"(double)({source})"
            return f"(int64_t)({source})"
        if isinstance(op, arith.NegFOp):
            return f"(-{rf(op.operands[0])})"
        if isinstance(op, arith.SelectOp):
            return (f"(({rf(op.condition)}) ? {rf(op.true_value)}"
                    f" : {rf(op.false_value)})")
        if isinstance(op, math_d.UnaryMathOp):
            return f"repro_{op.fn}({rf(op.operands[0])})"
        if isinstance(op, math_d.PowFOp):
            return f"repro_powf({rf(op.lhs)}, {rf(op.rhs)})"
        if isinstance(op, memref_d.DimOp):
            buffer = self._buffer(op.memref)
            if not (0 <= op.dim < buffer.rank):
                raise UnsupportedRegion("memref.dim out of rank")
            return buffer.extents[op.dim]
        return None

    def _emit_op(self, op) -> None:
        if isinstance(op, _BARRIER_OPS):
            return  # chunk splitting already realized the phase boundary
        expr = self._scalar_expr(op, self.ref)
        if expr is not None:
            self._define(op.result, expr)
            return
        if isinstance(op, memref_d.AllocOp):  # covers AllocaOp
            self._emit_alloc(op)
            return
        if isinstance(op, memref_d.DeallocOp):
            self._emit_dealloc(op)
            return
        if isinstance(op, memref_d.LoadOp):
            self._emit_load(op)
            return
        if isinstance(op, memref_d.StoreOp):
            self._emit_store(op)
            return
        if isinstance(op, memref_d.CopyOp):
            self._emit_copy(op)
            return
        if isinstance(op, func_d.CallOp):
            self._emit_call(op)
            return
        if isinstance(op, scf.ForOp):
            self._emit_for(op)
            return
        if isinstance(op, scf.IfOp):
            self._emit_if(op)
            return
        if isinstance(op, scf.WhileOp):
            self._emit_while(op)
            return
        raise UnsupportedRegion(f"op {op.name}")

    # -- memory ----------------------------------------------------------------
    def _buffer(self, value) -> _Buffer:
        buffer = self.buffers.get(id(value))
        if buffer is None:
            raise UnsupportedRegion("access to an untranslated memref")
        return buffer

    def _flat_index(self, buffer: _Buffer, indices: Sequence) -> str:
        if buffer.rank == 0:
            base = "0"
        else:
            base = f"(int64_t)({self.ref(indices[0])})"
            for dim in range(1, buffer.rank):
                base = (f"(({base}) * ({buffer.extents[dim]})"
                        f" + (int64_t)({self.ref(indices[dim])}))")
        if buffer.kind == "threadlocal":
            elems = " * ".join(buffer.extents) if buffer.rank else "1"
            return f"((int64_t)t * ({elems}) + ({base}))"
        return base

    def _emit_load(self, op) -> None:
        buffer = self._buffer(op.memref)
        element = f"{buffer.name}[{self._flat_index(buffer, op.indices)}]"
        cast = "double" if op.result.type.is_float else "int64_t"
        self._define(op.result, f"({cast}){element}")

    def _emit_store(self, op) -> None:
        buffer = self._buffer(op.memref)
        if buffer.kind == "livein":
            self._stored_buffers.add(buffer.name)
        element = f"{buffer.name}[{self._flat_index(buffer, op.indices)}]"
        self.out.w(f"{element} = ({buffer.ctype}){self.ref(op.value)};")

    def _private_shape(self, op) -> Tuple[List[int], int]:
        mtype = op.memref_type
        if op.operands:
            raise UnsupportedRegion("dynamic-extent private alloc")
        shape = [int(extent) for extent in mtype.shape]
        elems = 1
        for extent in shape:
            elems *= extent
        return shape, max(1, elems)

    def _emit_alloc(self, op) -> None:
        if id(op.result) in self._prebound_shared:
            return
        existing = self.buffers.get(id(op.result))
        if existing is not None and existing.kind == "threadlocal":
            # prescanned launch-body alloca: zero this thread's lane at the
            # op's execution point (numpy zero-alloc semantics per thread).
            elems = " * ".join(existing.extents) or "1"
            self.out.w(f"memset({existing.name} + (int64_t)t * ({elems}), 0, "
                       f"sizeof({existing.ctype}) * ({elems}));")
            return
        mtype = op.memref_type
        shape, elems = self._private_shape(op)
        ctype = _element_ctype(mtype.element_type)
        elem_bytes = dtype_for(mtype.element_type).itemsize
        if elems * elem_bytes > _MAX_PRIVATE_BYTES:
            raise UnsupportedRegion("private alloc too large for the stack")
        name = self._name("b")
        self.out.w(f"{ctype} {name}[{elems}];")
        self.out.w(f"memset({name}, 0, sizeof {name});")
        self.buffers[id(op.result)] = _Buffer(
            name=name, ctype=ctype, rank=len(shape),
            extents=[str(extent) for extent in shape],
            space=mtype.memory_space, kind="private", elem_bytes=elem_bytes)

    def _emit_dealloc(self, op) -> None:
        buffer = self._buffer(op.memref)
        if buffer.kind == "livein":
            raise UnsupportedRegion("dealloc of a live-in buffer")
        # private buffers have automatic storage; the 2.0-cycle charge is in
        # the block's folded constant.  Double frees cannot be replicated
        # here, so regions that free twice diverge only on already-erroring
        # programs (same contract as the int64 lane divergence).

    def _emit_copy(self, op) -> None:
        source = self._buffer(op.source)
        destination = self._buffer(op.destination)
        if "threadlocal" in (source.kind, destination.kind):
            # flat indexing below has no per-thread lane offset; the
            # pipeline never emits copies of launch-body allocas, so fall
            # back rather than copy thread 0's lane for every thread.
            raise UnsupportedRegion("memref.copy of a thread-local buffer")
        if destination.kind == "livein":
            self._stored_buffers.add(destination.name)
        elems = " * ".join(f"({extent})" for extent in source.extents) or "1"
        count = self._name("n")
        index = self._name("i")
        cost = self.global_base * max(1.0, source.elem_bytes / 4.0)
        self.out.w(f"const int64_t {count} = {elems};")
        self.out.open(f"for (int64_t {index} = 0; {index} < {count}; ++{index}) {{")
        self.out.w(f"{destination.name}[{index}] = "
                   f"({destination.ctype}){source.name}[{index}];")
        self.out.close()
        self.out.w(f"W += 2.0 * (double){count} * {c_double(cost)};")
        self.out.w(f"GB += (double)(2 * {count} * {source.elem_bytes});")

    # -- calls -------------------------------------------------------------------
    def _emit_call(self, op) -> None:
        program = self.program
        callee = program.module.lookup(op.callee)
        if callee is None or callee.is_declaration:
            raise UnsupportedRegion(f"call to unknown function {op.callee!r}")
        if program.function_may_yield(callee):
            raise UnsupportedRegion("call to a function containing barriers")
        if id(callee) in self._inline_stack:
            raise UnsupportedRegion("recursive call")
        self._inline_stack.append(id(callee))
        try:
            # results must be declared *outside* the inlined scope: the
            # callee's values go out of C scope at the closing brace.
            results = [self._declare_result(result) for result in op.results]
            self.out.open("{")
            for argument, operand in zip(callee.arguments, op.operands):
                if isinstance(argument.type, MemRefType):
                    self.buffers[id(argument)] = self._buffer(operand)
                else:
                    name = self._name("a")
                    self.cexpr[id(argument)] = name
                    self.out.w(f"const {self._ctype_of(argument)} {name} = "
                               f"{self.ref(operand)};")
            self._emit_block(callee.body_block)
            _, term = self._split(callee.body_block)
            returned = term.operands if isinstance(term, func_d.ReturnOp) else []
            for target, value in zip(results, returned):
                self.out.w(f"{target} = {self.ref(value)};")
            self.out.close()
        finally:
            self._inline_stack.pop()

    # -- structured control flow --------------------------------------------------
    def _emit_for(self, op) -> None:
        lower = self.ref(op.lower_bound)
        upper = self.ref(op.upper_bound)
        step = self.ref(op.step)
        results = [self._declare_result(result) for result in op.results]
        cost = op_cost("scf.for")
        self.out.open("{")
        ub = self._name("ub")
        st = self._name("st")
        self.out.w(f"const int64_t {ub} = {upper};")
        self.out.w(f"const int64_t {st} = {step};")
        # never *read* ERR here: under reduction(max:ERR) each thread's
        # private copy starts at the max identity (INT64_MIN), not 0.
        self.out.w(f"if ({st} <= 0) ERR = {ERR_BAD_STEP};")
        carried = []
        for init in op.iter_init:
            name = self._name("c")
            carried.append(name)
            self.out.w(f"{self._ctype_of(init)} {name} = {self.ref(init)};")
        iv = self._name("iv")
        self.out.open(f"if ({st} > 0) for (int64_t {iv} = {lower}; {iv} < {ub}; "
                      f"{iv} += {st}) {{")
        self.cexpr[id(op.induction_var)] = iv
        for name, argument in zip(carried, op.iter_args):
            self.cexpr[id(argument)] = name
        self._emit_block(op.body)
        _, term = self._split(op.body)
        if isinstance(term, scf.YieldOp) and carried:
            # two-phase update so permuted yields read pre-update values
            temps = []
            for name, value in zip(carried, term.operands):
                temp = self._name("y")
                temps.append(temp)
                self.out.w(f"{self._ctype_of(value)} {temp} = {self.ref(value)};")
            for temp, name in zip(temps, carried):
                self.out.w(f"{name} = {temp};")
        self.out.w(f"W += {c_double(cost)};")
        self.out.close()
        for result, name in zip(results, carried):
            self.out.w(f"{result} = {name};")
        self.out.close()

    def _emit_if(self, op) -> None:
        if op.results and op.else_block is None:
            raise UnsupportedRegion("scf.if with results but no else branch")
        results = [self._declare_result(result) for result in op.results]

        def copy_results(block) -> None:
            _, term = self._split(block)
            if results and isinstance(term, scf.YieldOp):
                for target, value in zip(results, term.operands):
                    self.out.w(f"{target} = {self.ref(value)};")

        self.out.open(f"if ({self.ref(op.condition)}) {{")
        self._emit_block(op.then_block)
        copy_results(op.then_block)
        if op.else_block is not None:
            self.out.close("} else {")
            self.out.indent += 1
            self._emit_block(op.else_block)
            copy_results(op.else_block)
        self.out.close()

    def _emit_while(self, op) -> None:
        """``scf.while`` as a C ``for (;;)``, mirroring the compiled engine's
        _c_while charge for charge: ``op_cost("scf.while")`` at the head of
        every iteration (including the final failed check), no entry charge;
        the before block re-runs per iteration, results are the forwarded
        values at exit."""
        _, before_term = self._split(op.before_block)
        if not isinstance(before_term, scf.ConditionOp):
            raise UnsupportedRegion("scf.while without scf.condition")
        results = [self._declare_result(result) for result in op.results]
        cost = op_cost("scf.while")
        self.out.open("{")
        carried = []
        for init in op.init_args:
            name = self._name("c")
            carried.append(name)
            self.out.w(f"{self._ctype_of(init)} {name} = {self.ref(init)};")
        for name, argument in zip(carried, op.before_block.arguments):
            self.cexpr[id(argument)] = name
        self.out.open("for (;;) {")
        self.out.w(f"W += {c_double(cost)};")
        self._emit_block(op.before_block)
        condition = self.ref(before_term.condition)
        forwarded = list(before_term.forwarded)
        self.out.open(f"if (!({condition})) {{")
        for target, value in zip(results, forwarded):
            self.out.w(f"{target} = {self.ref(value)};")
        self.out.w("break;")
        self.out.close()
        after_names = []
        for argument, value in zip(op.after_block.arguments, forwarded):
            name = self._name("w")
            after_names.append(name)
            self.cexpr[id(argument)] = name
            self.out.w(f"{self._ctype_of(argument)} {name} = {self.ref(value)};")
        self._emit_block(op.after_block)
        _, after_term = self._split(op.after_block)
        if isinstance(after_term, scf.YieldOp) and carried:
            # two-phase update so permuted yields read pre-update values
            temps = []
            for value in after_term.operands:
                temp = self._name("y")
                temps.append(temp)
                self.out.w(f"{self._ctype_of(value)} {temp} = {self.ref(value)};")
            for temp, name in zip(temps, carried):
                self.out.w(f"{name} = {temp};")
        elif carried:
            for name, value in zip(carried, forwarded):
                self.out.w(f"{name} = {self.ref(value)};")
        self.out.close()
        self.out.close()

    #: unary libm functions whose scalar results are IEEE-exact (correctly
    #: rounded), so any vectorization — which only exists via fast-math
    #: libmvec variants anyway — cannot perturb them.  Everything else
    #: (exp, log, sin, pow, ...) statically disables `#pragma omp simd`.
    _EXACT_MATH_FNS = frozenset({"sqrt", "fabs", "floor", "ceil", "round"})

    def _simd_eligible(self, ops: Sequence) -> bool:
        for op in ops:
            if isinstance(op, math_d.UnaryMathOp):
                if op.fn not in self._EXACT_MATH_FNS:
                    return False
            elif isinstance(op, math_d.PowFOp):
                return False
            elif isinstance(op, func_d.CallOp):
                return False  # inlined callees: not scanned, stay conservative
            for region in op.regions:
                for block in region.blocks:
                    if not self._simd_eligible(list(block.operations)):
                        return False
        return True

    # ------------------------------------------------------------------------
    # Span regions (omp.wsloop / barrier-free scf.parallel)
    # ------------------------------------------------------------------------
    def emit_span(self) -> Tuple[str, RegionSpec]:
        op = self.op
        self._prebound_shared: set = set()
        ops, _ = self._split(op.body)
        self._precheck(ops)
        num_dims = len(op.induction_vars)
        self.spec.kind = "span"
        self.spec.num_dims = num_dims
        options = getattr(self.program, "native_options", None)
        simd_on = bool(options.simd) if options is not None else True
        self.spec.simd_ok = simd_on and self._simd_eligible(ops)
        for value in self._collect_liveins():
            self._bind_livein(value)

        header = _Writer()
        header.indent = 0
        header.w(f"void {self.symbol}(const int64_t* LI, const double* LF,")
        header.w("        void* const* LP, const int64_t* LS,")
        header.w("        const int64_t* RLB, const int64_t* RST,")
        header.w("        const int64_t* RLEN, int64_t total, int64_t mode,")
        header.w("        double* outf, int64_t* outi)")
        header.w("{")

        self.out.w("double W = 0.0, GB = 0.0;")
        self.out.w("int64_t OPS = 0, ERR = 0;")
        self._emit_livein_prologue()

        body = _Writer()
        body.indent = 2
        saved = self.out
        self.out = body
        body.w("int64_t rem = lin;")
        coords = []
        for dim in reversed(range(num_dims)):
            coord = f"q{dim}"
            coords.append(coord)
            body.w(f"const int64_t {coord} = rem % RLEN[{dim}];")
            if dim:
                body.w(f"rem /= RLEN[{dim}];")
        body.w("(void)rem;")
        for dim, induction_var in enumerate(op.induction_vars):
            # "sv" (span variable), disjoint from the _name() prefixes so a
            # nested scf.for's "iv<uid>" counter can never shadow it.
            name = f"sv{dim}"
            self.cexpr[id(induction_var)] = name
            body.w(f"const int64_t {name} = RLB[{dim}] + q{dim} * RST[{dim}];")
        self._emit_block(op.body)
        self.out = saved

        lines = [*header.lines]
        lines.extend(self.out.lines)

        # max-reduction on ERR: error *codes* must not sum across threads.
        # Counter reductions reassociate W/GB/OPS partial sums — exact, and
        # therefore bit-identical, on dyadic machines (module docstring).
        reductions = "reduction(+:W,GB,OPS) reduction(max:ERR)"

        def loop(pragma: Optional[str]) -> List[str]:
            out = []
            if pragma:
                out.append(pragma)
            out.append("    for (int64_t lin = 0; lin < total; ++lin) {")
            out.extend(body.lines)
            out.append("    }")
            return out

        # mode bit 0: OpenMP worksharing (store-safety proof + ≥64 units);
        # mode bit 1: innermost SIMD (same proof, no size threshold).
        if self.spec.simd_ok:
            lines.append("    if ((mode & 1) && (mode & 2)) {")
            lines += loop("#pragma omp parallel for simd schedule(static) "
                          + reductions)
            lines.append("    } else if (mode & 1) {")
            lines += loop("#pragma omp parallel for schedule(static) "
                          + reductions)
            lines.append("    } else if (mode & 2) {")
            lines += loop("#pragma omp simd " + reductions)
            lines.append("    } else {")
            lines += loop(None)
            lines.append("    }")
        else:
            lines.append("    if (mode & 1) {")
            lines += loop("#pragma omp parallel for schedule(static) "
                          + reductions)
            lines.append("    } else {")
            lines += loop(None)
            lines.append("    }")
        lines.append("    outf[0] = W; outf[1] = GB;")
        lines.append("    outi[0] = OPS; outi[1] = 0; outi[2] = ERR;")
        lines.append("}")
        self._mark_stored()
        return "\n".join(lines), self.spec

    # ------------------------------------------------------------------------
    # Launch regions (gpu.launch with structured barriers)
    # ------------------------------------------------------------------------
    #
    # A launch body is a tree of *structural levels*: the top-level block,
    # plus the blocks of every barrier-containing scf.for / scf.if /
    # scf.while (executed once per block at C block scope, under provably
    # thread-uniform control).  Each level splits into items: *chunks* of
    # plain ops (one `for (t)` thread loop each), *barriers* (`PH += 1` —
    # the phase boundary is the end of the preceding thread loop), and
    # nested *structural* ops.  Values that cross a phase boundary are
    # either cached in per-thread lanes (TI/TF) or recomputed at the use
    # site; the split is chosen by the §III-B1 minimum value cut.
    def _op_has_barrier(self, op) -> bool:
        memo = self._barrier_memo
        cached = memo.get(id(op))
        if cached is not None:
            return cached
        if isinstance(op, _BARRIER_OPS):
            result = True
        elif isinstance(op, func_d.CallOp):
            callee = self.program.module.lookup(op.callee)
            result = bool(callee is not None and not callee.is_declaration
                          and self.program.function_may_yield(callee))
        else:
            result = any(self._op_has_barrier(nested)
                         for region in op.regions
                         for block in region.blocks
                         for nested in block.operations)
        memo[id(op)] = result
        return result

    def _level_items(self, ops: Sequence) -> List[Tuple[str, object]]:
        """Split one structural level into chunk / barrier / struct items."""
        items: List[Tuple[str, object]] = []
        chunk: List = []
        for nested in ops:
            if isinstance(nested, _BARRIER_OPS):
                if chunk:
                    items.append(("chunk", chunk))
                    chunk = []
                items.append(("barrier", nested))
            elif self._op_has_barrier(nested):
                if chunk:
                    items.append(("chunk", chunk))
                    chunk = []
                items.append(("struct", nested))
            else:
                chunk.append(nested)
        if chunk:
            items.append(("chunk", chunk))
        return items

    def _struct_header_operands(self, op) -> List:
        """Validate a barrier-containing structural op; return the scalar
        operands its C header needs at block scope (must be uniform)."""
        if isinstance(op, scf.IfOp):
            if op.results:
                raise UnsupportedRegion("barrier under scf.if with results")
            return [op.condition]
        if isinstance(op, scf.ForOp):
            if list(op.iter_init) or op.results:
                raise UnsupportedRegion("barrier under scf.for with iter_args")
            return [op.lower_bound, op.upper_bound, op.step]
        if isinstance(op, scf.WhileOp):
            _, before_term = self._split(op.before_block)
            if not isinstance(before_term, scf.ConditionOp):
                raise UnsupportedRegion("scf.while without scf.condition")
            if list(op.init_args) or op.results or list(before_term.forwarded):
                raise UnsupportedRegion(
                    "barrier under scf.while with carried values")
            return [before_term.condition]
        raise UnsupportedRegion(f"barrier inside {op.name}")

    def _struct_children(self, op) -> List[Tuple[List, Optional[object]]]:
        if isinstance(op, scf.IfOp):
            children = [self._split(op.then_block)]
            if op.else_block is not None:
                children.append(self._split(op.else_block))
            return children
        if isinstance(op, scf.ForOp):
            return [self._split(op.body)]
        return [self._split(op.before_block), self._split(op.after_block)]

    def _launch_uniformity(self, ops: Sequence) -> set:
        """ids of SSA values that may differ across threads of a block.

        Optimistic monotone fixpoint: everything starts uniform except
        tx/ty/tz; varying-ness propagates through pure ops, loads (unless
        from a *uniform cell* — a non-shared alloca whose every store writes
        a uniform value at uniform indices under uniform control), and
        loop-carried values.  Loads from live-in or shared buffers are
        conservatively varying."""
        launch = self.op
        varying: set = set()
        for index in (3, 4, 5):
            varying.add(id(launch.body.arguments[index]))
        cell_ids: set = set()
        varying_cells: set = set()

        def collect_cells(op) -> None:
            if isinstance(op, memref_d.AllocOp):
                cell_ids.add(id(op.result))
                if memref_d.is_shared_memref(op.result):
                    varying_cells.add(id(op.result))
            for region in op.regions:
                for block in region.blocks:
                    for nested in block.operations:
                        collect_cells(nested)

        for nested in ops:
            collect_cells(nested)

        def uni(value) -> bool:
            return id(value) not in varying

        def mark(value) -> bool:
            if id(value) in varying:
                return False
            varying.add(id(value))
            return True

        def visit(block_ops: Sequence, ctx: bool) -> bool:
            changed = False
            for op in block_ops:
                if isinstance(op, (memref_d.AllocOp, memref_d.DeallocOp)):
                    continue
                if isinstance(op, _BARRIER_OPS):
                    continue
                if isinstance(op, memref_d.StoreOp):
                    target = id(op.memref)
                    if target in cell_ids and target not in varying_cells:
                        if (not ctx or not uni(op.value)
                                or any(not uni(i) for i in op.indices)):
                            varying_cells.add(target)
                            changed = True
                    continue
                if isinstance(op, memref_d.CopyOp):
                    target = id(op.destination)
                    if target in cell_ids and target not in varying_cells:
                        varying_cells.add(target)
                        changed = True
                    continue
                if isinstance(op, memref_d.LoadOp):
                    source = id(op.memref)
                    cell_ok = source in cell_ids and source not in varying_cells
                    if not (cell_ok and all(uni(i) for i in op.indices)):
                        changed |= mark(op.result)
                    continue
                if isinstance(op, scf.ForOp):
                    bounds_ok = (uni(op.lower_bound) and uni(op.upper_bound)
                                 and uni(op.step))
                    if not bounds_ok:
                        changed |= mark(op.induction_var)
                    body_ops, body_term = self._split(op.body)
                    yields = (list(body_term.operands)
                              if isinstance(body_term, scf.YieldOp) else [])
                    for arg, init in zip(op.iter_args, op.iter_init):
                        if not uni(init):
                            changed |= mark(arg)
                    for arg, yielded in zip(op.iter_args, yields):
                        if not uni(yielded):
                            changed |= mark(arg)
                    for result, arg in zip(op.results, op.iter_args):
                        if not uni(arg):
                            changed |= mark(result)
                    changed |= visit(body_ops, ctx and bounds_ok)
                    continue
                if isinstance(op, scf.IfOp):
                    cond_ok = uni(op.condition)
                    then_ops, then_term = self._split(op.then_block)
                    changed |= visit(then_ops, ctx and cond_ok)
                    yields = [(list(then_term.operands)
                               if isinstance(then_term, scf.YieldOp) else [])]
                    if op.else_block is not None:
                        else_ops, else_term = self._split(op.else_block)
                        changed |= visit(else_ops, ctx and cond_ok)
                        yields.append(list(else_term.operands)
                                      if isinstance(else_term, scf.YieldOp)
                                      else [])
                    for index, result in enumerate(op.results):
                        operands = [branch[index] for branch in yields
                                    if index < len(branch)]
                        if (not cond_ok or len(operands) < len(yields)
                                or any(not uni(v) for v in operands)):
                            changed |= mark(result)
                    continue
                if isinstance(op, scf.WhileOp):
                    before_ops, before_term = self._split(op.before_block)
                    after_ops, after_term = self._split(op.after_block)
                    cond_ok = (isinstance(before_term, scf.ConditionOp)
                               and uni(before_term.condition))
                    forwarded = (list(before_term.forwarded)
                                 if isinstance(before_term, scf.ConditionOp)
                                 else [])
                    for arg, init in zip(op.before_block.arguments,
                                         op.init_args):
                        if not uni(init):
                            changed |= mark(arg)
                    if isinstance(after_term, scf.YieldOp):
                        for arg, yielded in zip(op.before_block.arguments,
                                                after_term.operands):
                            if not uni(yielded):
                                changed |= mark(arg)
                    for arg, value in zip(op.after_block.arguments, forwarded):
                        if not uni(value):
                            changed |= mark(arg)
                    for result, value in zip(op.results, forwarded):
                        if not uni(value):
                            changed |= mark(result)
                    inner = ctx and cond_ok
                    changed |= visit(before_ops, inner)
                    changed |= visit(after_ops, inner)
                    continue
                if isinstance(op, func_d.CallOp):
                    for result in op.results:
                        changed |= mark(result)
                    for operand in op.operands:
                        if (id(operand) in cell_ids
                                and id(operand) not in varying_cells):
                            varying_cells.add(id(operand))
                            changed = True
                    continue
                # pure scalar ops (constants, arith, math, dim)
                if op.results and any(not uni(v) for v in op.operands):
                    for result in op.results:
                        changed |= mark(result)
            return changed

        while visit(ops, True):
            pass
        return varying

    def _analyze_launch_values(self, ops: Sequence):
        """Walk the structural level tree once: collect phase-cut candidates
        (scalar results of ops sitting directly at structural levels), which
        of them cross an item boundary, and which a structural C header
        needs at block scope (validating uniformity as it goes)."""
        candidates: List = []
        candidate_ids: set = set()
        def_pos: Dict[int, Tuple[int, int]] = {}
        crossing: set = set()
        needed: set = set()
        counter = [0]

        def visit_uses(operation, frames: Dict[int, int]) -> None:
            for operand in operation.operands:
                position = def_pos.get(id(operand))
                if position is not None and frames.get(position[0]) != position[1]:
                    crossing.add(id(operand))
            for region in operation.regions:
                for block in region.blocks:
                    for nested in block.operations:
                        visit_uses(nested, frames)

        def walk(level_ops: Sequence, frames: Dict[int, int]) -> None:
            level_id = counter[0]
            counter[0] += 1
            for item_id, (kind, payload) in enumerate(self._level_items(level_ops)):
                sub = dict(frames)
                sub[level_id] = item_id
                if kind == "chunk":
                    for nested in payload:
                        visit_uses(nested, sub)
                        for result in nested.results:
                            if isinstance(result.type, MemRefType):
                                continue
                            candidates.append(result)
                            candidate_ids.add(id(result))
                            def_pos[id(result)] = (level_id, item_id)
                            self._def_op[id(result)] = nested
                elif kind == "struct":
                    for value in self._struct_header_operands(payload):
                        if id(value) in self._varying:
                            raise UnsupportedRegion(
                                "barrier under thread-varying control flow")
                        needed.add(id(value))
                    for child_ops, _child_term in self._struct_children(payload):
                        walk(child_ops, sub)

        walk(ops, {})
        needed &= candidate_ids
        return candidates, candidate_ids, crossing, needed

    _PURE_SCALAR_OPS = (arith.ConstantOp, arith.BinaryOp, arith._CmpOp,
                        arith._CastOp, arith.NegFOp, arith.SelectOp,
                        math_d.UnaryMathOp, math_d.PowFOp, memref_d.DimOp)

    def _assign_lanes(self, ops: Sequence, phase_split: bool) -> None:
        """Decide which launch-body values get per-thread TI/TF lanes.

        With ``phase_split`` the lane set is the minimum value cut over the
        phase-crossing def-use graph (loads, calls and control-flow results
        are non-recomputable; structurally needed values are forced into the
        cut so block-scope headers can read lane 0); without it, every
        crossing value is cached — the pre-min-cut behavior."""
        from ..analysis.mincut import minimum_value_cut, validate_cut

        candidates, candidate_ids, crossing, needed = (
            self._analyze_launch_values(ops))
        required = (crossing & candidate_ids) | needed
        pure = {id(value) for value in candidates
                if isinstance(self._def_op[id(value)], self._PURE_SCALAR_OPS)}
        non_recomputable = (candidate_ids - pure) | needed
        edges = []
        for value in candidates:
            if id(value) not in pure:
                continue
            for operand in self._def_op[id(value)].operands:
                if id(operand) in candidate_ids:
                    edges.append((id(operand), id(value)))
        if phase_split and required:
            cut = minimum_value_cut(candidate_ids, edges, non_recomputable,
                                    required)
            if not validate_cut(cut, edges, non_recomputable, required):
                cut = set(required)
        else:
            cut = set(required)
        for value in candidates:
            if id(value) not in cut:
                continue
            if value.type.is_float:
                self._toplevel[id(value)] = ("f", self._n_tf)
                self._n_tf += 1
            else:
                self._toplevel[id(value)] = ("i", self._n_ti)
                self._n_ti += 1

    def _struct_ref(self, value) -> str:
        """A C expression for ``value`` readable at block scope (outside any
        thread loop): lane 0 of a cut value — uniform, so any lane works —
        or a scope-free expression (live-in, block builtin, constant)."""
        top = self._toplevel.get(id(value))
        if top is not None:
            kind, index = top
            return (f"TI[{index} * NT]" if kind == "i"
                    else f"TF[{index} * NT]")
        expr = self.cexpr.get(id(value))
        if expr is not None and self._local_token.get(id(value)) is None:
            return expr
        raise UnsupportedRegion("structural operand unavailable at block scope")

    def _prescan_threadlocal(self, ops: Sequence) -> List[Tuple[str, str, int]]:
        """Register per-thread scratch for every alloca sitting directly at a
        structural level (its buffer must survive phase boundaries)."""
        scratch: List[Tuple[str, str, int]] = []

        def walk(level_ops: Sequence) -> None:
            for kind, payload in self._level_items(level_ops):
                if kind == "chunk":
                    for nested in payload:
                        if (isinstance(nested, memref_d.AllocOp)
                                and id(nested.result) not in self._prebound_shared):
                            shape, elems = self._private_shape(nested)
                            mtype = nested.memref_type
                            ctype = _element_ctype(mtype.element_type)
                            name = self._name("tb")
                            scratch.append((name, ctype, elems))
                            self.buffers[id(nested.result)] = _Buffer(
                                name=name, ctype=ctype, rank=len(shape),
                                extents=[str(extent) for extent in shape],
                                space=mtype.memory_space, kind="threadlocal",
                                elem_bytes=dtype_for(mtype.element_type).itemsize)
                elif kind == "struct":
                    for child_ops, _term in self._struct_children(payload):
                        walk(child_ops)

        walk(ops)
        return scratch

    def emit_launch(self) -> Tuple[str, RegionSpec]:
        op = self.op
        self.simt = True
        self.spec.kind = "launch"
        ops, term = self._split(op.body)
        self._precheck(ops, allow_barriers=True)
        options = getattr(self.program, "native_options", None)
        phase_split = bool(options.phase_split) if options is not None else True
        # prebound shared allocas (one buffer per block, charged nothing)
        self._prebound_shared = set()
        shared_allocas = []
        for nested in ops:
            if (isinstance(nested, memref_d.AllocaOp)
                    and memref_d.is_shared_memref(nested.result)):
                self._prebound_shared.add(id(nested.result))
                shared_allocas.append(nested)
        # structural analysis: uniformity, phase-crossing values, min cut
        self._varying = self._launch_uniformity(ops)
        self._assign_lanes(ops, phase_split)
        scratch_buffers = self._prescan_threadlocal(ops)
        for value in self._collect_liveins():
            self._bind_livein(value)

        header = _Writer()
        header.indent = 0
        header.w(f"void {self.symbol}(const int64_t* LI, const double* LF,")
        header.w("        void* const* LP, const int64_t* LS,")
        header.w("        const int64_t* GRID, const int64_t* BLOCK,")
        header.w("        int64_t par_ok, double* outf, int64_t* outi)")
        header.w("{")

        self.out.w("double W = 0.0, GB = 0.0;")
        self.out.w("int64_t OPS = 0, PH = 0, ERR = 0;")
        self._emit_livein_prologue()
        self.out.w("const int64_t NT = BLOCK[0] * BLOCK[1] * BLOCK[2];")
        self.out.w("const int64_t nblocks = GRID[0] * GRID[1] * GRID[2];")

        body = _Writer()
        body.indent = 2
        saved = self.out
        self.out = body
        body.w("const int64_t bx = lin % GRID[0];")
        body.w("const int64_t by = (lin / GRID[0]) % GRID[1];")
        body.w("const int64_t bz = lin / (GRID[0] * GRID[1]);")
        body.w("(void)bx; (void)by; (void)bz;")
        arguments = op.body.arguments
        builtin = ["bx", "by", "bz", "tx", "ty", "tz",
                   "GRID[0]", "GRID[1]", "GRID[2]",
                   "BLOCK[0]", "BLOCK[1]", "BLOCK[2]"]
        for argument, expr in zip(arguments, builtin):
            self.cexpr[id(argument)] = expr
        # per-thread scratch: SSA lane arrays + thread-local alloca buffers
        scratch = [("TI", "int64_t", self._n_ti) if self._n_ti else None,
                   ("TF", "double", self._n_tf) if self._n_tf else None]
        scratch = [entry for entry in scratch if entry is not None]
        scratch += scratch_buffers
        body.w("int alloc_ok = 1;")
        for name, ctype, count in scratch:
            body.w(f"{ctype}* {name} = ({ctype}*)malloc(sizeof({ctype}) * "
                   f"{count} * (size_t)NT);")
            body.w(f"if (!{name}) alloc_ok = 0;")
        body.open("if (alloc_ok) {")
        # per-block shared buffers
        for alloca in shared_allocas:
            shape, elems = self._private_shape(alloca)
            mtype = alloca.memref_type
            ctype = _element_ctype(mtype.element_type)
            if elems * dtype_for(mtype.element_type).itemsize > _MAX_PRIVATE_BYTES:
                # same stack cap as private allocas: an oversized automatic
                # array would overflow the OpenMP thread stack instead of
                # falling back.
                raise UnsupportedRegion("shared alloca too large for the stack")
            name = self._name("sh")
            body.w(f"{ctype} {name}[{elems}];")
            body.w(f"memset({name}, 0, sizeof {name});")
            self.buffers[id(alloca.result)] = _Buffer(
                name=name, ctype=ctype, rank=len(shape),
                extents=[str(extent) for extent in shape],
                space=mtype.memory_space, kind="shared",
                elem_bytes=dtype_for(mtype.element_type).itemsize)
        # structural phase execution: each level folds its static charges
        # once (×NT — all threads execute it, control is uniform), thread
        # loops realize chunks, `PH += 1` realizes each dynamic barrier
        # (+1 for the entry phase, matching the SIMT rounds count).
        body.w("PH += 1;")
        self._emit_level(ops, term)
        body.close(f"}} else ERR = {ERR_OOM};")
        for name, _, _ in scratch:
            body.w(f"free({name});")
        self.out = saved

        lines = [*header.lines]
        lines.extend(self.out.lines)
        lines.append("    if (NT > 0) {")
        lines.append("    if (par_ok) {")
        # max-reduction on ERR: error *codes* must not sum across threads.
        lines.append("#pragma omp parallel for schedule(static) "
                     "reduction(+:W,GB,OPS,PH) reduction(max:ERR)")
        lines.append("    for (int64_t lin = 0; lin < nblocks; ++lin) {")
        lines.extend(body.lines)
        lines.append("    }")
        lines.append("    } else {")
        lines.append("    for (int64_t lin = 0; lin < nblocks; ++lin) {")
        lines.extend(body.lines)
        lines.append("    }")
        lines.append("    }")
        lines.append("    }")
        lines.append("    outf[0] = W; outf[1] = GB;")
        lines.append("    outi[0] = OPS; outi[1] = PH; outi[2] = ERR;")
        lines.append("}")
        self._mark_stored()
        return "\n".join(lines), self.spec

    def _emit_level(self, ops: Sequence, term) -> None:
        """Emit one structural level: folded per-level charges (×NT), then
        its items in order."""
        nops = len(ops) + (1 if term is not None else 0)
        work = gb = 0.0
        for nested in ops:
            op_work, op_gb = self._static_charge(nested)
            work += op_work
            gb += op_gb
        if nops:
            self.out.w(f"OPS += {c_int(nops)} * NT;")
        if work:
            self.out.w(f"W += {c_double(work)} * (double)NT;")
        if gb:
            self.out.w(f"GB += {c_double(gb)} * (double)NT;")
        for kind, payload in self._level_items(ops):
            if kind == "barrier":
                self.out.w("PH += 1;")
            elif kind == "chunk":
                self._emit_thread_chunk(payload)
            else:
                self._emit_struct(payload)

    def _emit_thread_chunk(self, chunk: Sequence) -> None:
        self._chunk_token += 1
        self.out.open("for (int64_t t = 0; t < NT; ++t) {")
        self.out.w("const int64_t tx = t % BLOCK[0];")
        self.out.w("const int64_t ty = (t / BLOCK[0]) % BLOCK[1];")
        self.out.w("const int64_t tz = t / (BLOCK[0] * BLOCK[1]);")
        self.out.w("(void)tx; (void)ty; (void)tz;")
        for nested in chunk:
            self._emit_op(nested)
        self.out.close()

    def _emit_struct(self, op) -> None:
        """A barrier-containing scf.for / scf.if / scf.while at block scope:
        every thread executes it with the same (uniform) control decisions,
        so one C-level construct drives the per-level thread loops."""
        if isinstance(op, scf.IfOp):
            self.out.open(f"if ({self._struct_ref(op.condition)}) {{")
            then_ops, then_term = self._split(op.then_block)
            self._emit_level(then_ops, then_term)
            if op.else_block is not None:
                self.out.close("} else {")
                self.out.indent += 1
                else_ops, else_term = self._split(op.else_block)
                self._emit_level(else_ops, else_term)
            self.out.close()
            return
        if isinstance(op, scf.ForOp):
            cost = op_cost("scf.for")
            lower = self._struct_ref(op.lower_bound)
            upper = self._struct_ref(op.upper_bound)
            step = self._struct_ref(op.step)
            self.out.open("{")
            ub = self._name("ub")
            st = self._name("st")
            self.out.w(f"const int64_t {ub} = {upper};")
            self.out.w(f"const int64_t {st} = {step};")
            self.out.w(f"if ({st} <= 0) ERR = {ERR_BAD_STEP};")
            iv = self._name("iv")
            self.cexpr[id(op.induction_var)] = iv
            self.out.open(f"if ({st} > 0) for (int64_t {iv} = {lower}; "
                          f"{iv} < {ub}; {iv} += {st}) {{")
            body_ops, body_term = self._split(op.body)
            self._emit_level(body_ops, body_term)
            self.out.w(f"W += {c_double(cost)} * (double)NT;")
            self.out.close()
            self.out.close()
            return
        # scf.while (validated carried-value-free by _struct_header_operands)
        cost = op_cost("scf.while")
        _, before_term = self._split(op.before_block)
        self.out.open("for (;;) {")
        self.out.w(f"W += {c_double(cost)} * (double)NT;")
        before_ops, _ = self._split(op.before_block)
        self._emit_level(before_ops, before_term)
        self.out.w(f"if (!({self._struct_ref(before_term.condition)})) break;")
        after_ops, after_term = self._split(op.after_block)
        self._emit_level(after_ops, after_term)
        self.out.close()

    def _mark_stored(self) -> None:
        for index, buf_spec in enumerate(self.spec.buffers):
            if f"lp{index}" in self._stored_buffers:
                buf_spec.stored = True


# ---------------------------------------------------------------------------
# Translation-unit assembly
# ---------------------------------------------------------------------------
PRELUDE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* Scalar semantics mirror the Python engines exactly: doubles for float
 * arithmetic (f32 rounds only on store), int64 lanes for integers, and the
 * interpreter's guarded versions of division, shifts and libm calls. */

static inline int64_t repro_shli(int64_t a, int64_t b) {
    if (b < 0 || b >= 64) return 0;
    return (int64_t)((uint64_t)a << (uint64_t)b);
}
static inline int64_t repro_shrsi(int64_t a, int64_t b) {
    if (b < 0) return 0;
    if (b >= 64) return a < 0 ? -1 : 0;
    return a >> b;
}
static inline double repro_exp(double x) { return exp(x); }
static inline double repro_exp2(double x) { return pow(2.0, x); }
static inline double repro_log(double x) { return x > 0.0 ? log(x) : -INFINITY; }
static inline double repro_log2(double x) { return x > 0.0 ? log2(x) : -INFINITY; }
static inline double repro_log10(double x) { return x > 0.0 ? log10(x) : -INFINITY; }
static inline double repro_sqrt(double x) { return x >= 0.0 ? sqrt(x) : NAN; }
static inline double repro_rsqrt(double x) { return x > 0.0 ? 1.0 / sqrt(x) : INFINITY; }
static inline double repro_fabs(double x) { return fabs(x); }
static inline double repro_sin(double x) { return sin(x); }
static inline double repro_cos(double x) { return cos(x); }
static inline double repro_tan(double x) { return tan(x); }
static inline double repro_tanh(double x) { return tanh(x); }
static inline double repro_floor(double x) { return floor(x); }
static inline double repro_ceil(double x) { return ceil(x); }
static inline double repro_erf(double x) { return erf(x); }
static inline double repro_round(double x) { return rint(x); }
static inline double repro_powf(double a, double b) {
    double r = pow(a, b);
    /* CPython raises OverflowError for finite operands overflowing to inf;
     * PowFOp.evaluate turns that into NaN. */
    if (isinf(r) && isfinite(a) && isfinite(b) && a != 0.0) return NAN;
    return r;
}
"""


def assemble_unit(functions: Sequence[str]) -> str:
    """One self-contained C translation unit from emitted region functions."""
    return PRELUDE + "\n\n" + "\n\n".join(functions) + "\n"
