"""C code generation for the native OpenMP engine (``engine="native"``).

The paper's headline artifact is *transpiled C*: CUDA kernels lowered through
high-level parallel constructs and emitted as OpenMP CPU code that runs at
native speed.  This module closes that gap for the reproduction: it walks a
lowered parallel region — an ``omp.wsloop`` / barrier-free ``scf.parallel``
iteration span, or a ``gpu.launch`` block grid with straight-line barriers —
and emits one C function per region:

* span regions become a loop over the linearized iteration space, executed
  under ``#pragma omp parallel for`` when the multicore engine's write-write
  store-safety analysis proves the region shard-safe (and sequentially
  otherwise — sequential C is still far faster than Python closures);
* launch regions become a loop over linearized block ids; inside a block,
  ``__syncthreads`` phase boundaries split the body into *chunks* executed
  thread-by-thread, phase-by-phase — the barrier is realized by finishing a
  chunk's thread loop before the next chunk starts (the per-block equivalent
  of ``#pragma omp barrier`` between worksharing phases).

**Bit-identical cost accounting.**  The generated C accumulates the same
counters the Python engines charge — ``work`` cycles, ``dynamic_ops``,
``global_bytes``, SIMT phases — with every static per-op charge folded into
one constant per block.  On machines whose per-access costs are exact binary
fractions (:func:`repro.runtime.vectorizer.machine_vectorizable`), float
accumulation of those charges is associative in exact arithmetic, so the
folded totals (and OpenMP ``reduction(+)`` partial sums) are bit-identical
to the interpreter's sequential accumulation; all double literals are
emitted as C99 hex floats so no decimal round-trip can perturb them.

Anything the emitter cannot prove it can translate exactly — nested
parallel constructs, ``scf.while``, dynamic-extent private allocas,
barriers under control flow, recursion — raises :class:`UnsupportedRegion`
and the region falls back to the compiled engine (per region, never
wholesale), keeping correctness independent of emitter coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dialects import arith, func as func_d, gpu as gpu_d, math as math_d
from ..dialects import memref as memref_d, omp as omp_d, polygeist, scf
from ..ir import MemRefType
from .costmodel import op_cost
from .memory import dtype_for

#: ops that must never appear inside a natively compiled region body.
_NESTED_CONTEXT_OPS = (scf.ParallelOp, gpu_d.LaunchOp, omp_d.OmpParallelOp,
                       omp_d.OmpWsLoopOp, omp_d.OmpSingleOp)

_BARRIER_OPS = (polygeist.PolygeistBarrierOp, gpu_d.BarrierOp)

_TERMINATORS = (func_d.ReturnOp, scf.YieldOp, scf.ConditionOp)

#: largest private (stack) buffer the emitter will place per iteration.
_MAX_PRIVATE_BYTES = 1 << 16

#: error codes written into ``outi[2]`` by generated code.
ERR_BAD_STEP = 1
ERR_OOM = 2


class UnsupportedRegion(Exception):
    """The region contains a construct the C emitter does not translate."""


# ---------------------------------------------------------------------------
# Literals
# ---------------------------------------------------------------------------
def c_double(value: float) -> str:
    """A C99 literal reproducing ``value`` bit for bit (hex float)."""
    value = float(value)
    if value != value:
        return "NAN"
    if value == float("inf"):
        return "INFINITY"
    if value == float("-inf"):
        return "-INFINITY"
    return value.hex()


def c_int(value: int) -> str:
    return f"INT64_C({int(value)})"


_CTYPES = {  # numpy dtype name -> C element type
    "float32": "float", "float64": "double",
    "int8": "int8_t", "int32": "int32_t", "int64": "int64_t",
}


def _element_ctype(element_type) -> str:
    name = dtype_for(element_type).name
    try:
        return _CTYPES[name]
    except KeyError:
        raise UnsupportedRegion(f"no C element type for {element_type}") from None


# ---------------------------------------------------------------------------
# Emitter plumbing
# ---------------------------------------------------------------------------
class _Writer:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.indent = 1

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def open(self, line: str) -> None:
        self.w(line)
        self.indent += 1

    def close(self, line: str = "}") -> None:
        self.indent -= 1
        self.w(line)


@dataclass
class _Buffer:
    """One memref value visible inside the region."""

    name: str                 # C base identifier of the data pointer/array
    ctype: str                # C element type
    rank: int
    extents: List[str]        # C expressions, one per dimension
    space: str                # memory space for cost accounting
    kind: str                 # 'livein' | 'private' | 'shared' | 'threadlocal'
    elem_bytes: int
    freed_var: Optional[str] = None


@dataclass
class BufSpec:
    """Dispatch-side contract for one live-in memref (checked per call)."""

    slot: int
    dtype: str                # numpy dtype name the C code assumes
    rank: int
    space: str                # memory space the cost folding assumed
    stored: bool              # region writes through this buffer


@dataclass
class RegionSpec:
    """Everything the dispatcher needs to call one emitted region."""

    symbol: str
    kind: str                            # 'span' | 'launch'
    int_slots: List[int] = field(default_factory=list)
    float_slots: List[int] = field(default_factory=list)
    buffers: List[BufSpec] = field(default_factory=list)
    num_dims: int = 0                    # span only


class RegionCodegen:
    """Emits one region as a self-contained C function.

    ``slot_of`` maps an SSA value to its register slot in the enclosing
    compiled function (used to describe the live-in ABI to the dispatcher).
    """

    def __init__(self, program, op, symbol: str, slot_of) -> None:
        self.program = program
        self.op = op
        self.symbol = symbol
        self.slot_of = slot_of
        self.machine = program.machine
        self.local_cost = program.local_cost
        self.global_base = program.global_base
        self.out = _Writer()
        self._uid = 0
        self.cexpr: Dict[int, str] = {}          # id(value) -> C expression
        self.buffers: Dict[int, _Buffer] = {}    # id(value) -> buffer
        self.spec = RegionSpec(symbol=symbol, kind="span")
        self._livein_index: Dict[int, str] = {}  # id(value) -> bound C name
        self._stored_buffers: set = set()        # live-in buffer names written
        self._inline_stack: List[int] = []
        # SIMT state (launch regions)
        self.simt = False
        self._toplevel: Dict[int, Tuple[str, int]] = {}  # id -> (kind, index)
        self._n_ti = 0
        self._n_tf = 0

    def _name(self, prefix: str) -> str:
        self._uid += 1
        return f"{prefix}{self._uid}"

    # -- live-in binding -------------------------------------------------------
    def _collect_defined(self, op, defined: set) -> None:
        for result in op.results:
            defined.add(id(result))
        for region in op.regions:
            for block in region.blocks:
                for argument in block.arguments:
                    defined.add(id(argument))
                for nested in block.operations:
                    self._collect_defined(nested, defined)

    def _collect_liveins(self) -> List:
        defined: set = set()
        self._collect_defined(self.op, defined)
        order: List = []
        seen: set = set()

        def visit(operation):
            for operand in operation.operands:
                if id(operand) not in defined and id(operand) not in seen:
                    seen.add(id(operand))
                    order.append(operand)
            for region in operation.regions:
                for block in region.blocks:
                    for nested in block.operations:
                        visit(nested)

        visit(self.op)
        return order

    def _bind_livein(self, value) -> None:
        type_ = value.type
        if isinstance(type_, MemRefType):
            index = len(self.spec.buffers)
            name = f"lp{index}"
            ctype = _element_ctype(type_.element_type)
            shape_base = sum(b.rank for b in self.spec.buffers)
            extents = [f"LS[{shape_base + d}]" for d in range(type_.rank)]
            self.buffers[id(value)] = _Buffer(
                name=name, ctype=ctype, rank=type_.rank, extents=extents,
                space=type_.memory_space, kind="livein",
                elem_bytes=dtype_for(type_.element_type).itemsize)
            self.spec.buffers.append(BufSpec(
                slot=self.slot_of(value), dtype=dtype_for(type_.element_type).name,
                rank=type_.rank, space=type_.memory_space, stored=False))
            self._livein_index[id(value)] = name
        elif type_.is_float:
            index = len(self.spec.float_slots)
            self.spec.float_slots.append(self.slot_of(value))
            self.cexpr[id(value)] = f"lf{index}"
        elif type_.is_integer or type_.is_index:
            index = len(self.spec.int_slots)
            self.spec.int_slots.append(self.slot_of(value))
            self.cexpr[id(value)] = f"li{index}"
        else:
            raise UnsupportedRegion(f"live-in of type {type_}")

    def _emit_livein_prologue(self) -> None:
        w = self.out.w
        for index in range(len(self.spec.int_slots)):
            w(f"const int64_t li{index} = LI[{index}];")
        for index in range(len(self.spec.float_slots)):
            w(f"const double lf{index} = LF[{index}];")
        for index, buf_spec in enumerate(self.spec.buffers):
            ctype = _CTYPES[buf_spec.dtype]
            w(f"{ctype}* const lp{index} = ({ctype}*)LP[{index}];")

    # -- value helpers ---------------------------------------------------------
    def _ctype_of(self, value) -> str:
        if value.type.is_float:
            return "double"
        if value.type.is_integer or value.type.is_index:
            return "int64_t"
        raise UnsupportedRegion(f"SSA value of type {value.type}")

    def ref(self, value) -> str:
        expr = self.cexpr.get(id(value))
        if expr is None:
            raise UnsupportedRegion("use of an untranslated value")
        return expr

    def _define(self, value, expr: str) -> None:
        """Emit the definition of ``value`` as ``expr``."""
        top = self._toplevel.get(id(value))
        if top is not None:
            kind, index = top
            target = (f"TI[{index} * NT + t]" if kind == "i"
                      else f"TF[{index} * NT + t]")
            self.cexpr[id(value)] = target
            self.out.w(f"{target} = {expr};")
            return
        name = self._name("v")
        self.cexpr[id(value)] = name
        self.out.w(f"{self._ctype_of(value)} {name} = {expr};")

    def _declare_result(self, value) -> str:
        """Pre-declare a construct result (scf.for / scf.if) in scope."""
        top = self._toplevel.get(id(value))
        if top is not None:
            kind, index = top
            target = (f"TI[{index} * NT + t]" if kind == "i"
                      else f"TF[{index} * NT + t]")
            self.cexpr[id(value)] = target
            return target
        name = self._name("v")
        self.cexpr[id(value)] = name
        self.out.w(f"{self._ctype_of(value)} {name};")
        return name

    # -- static cost folding ---------------------------------------------------
    def _access_charge(self, memref_value) -> Tuple[float, float]:
        """(work, global_bytes) charged per access of ``memref_value``.

        Derived from the memref's *static* type; the dispatcher verifies at
        every call that the runtime storage (dtype, memory space) matches
        what this folding assumed, falling back otherwise.
        """
        mtype = memref_value.type
        if not isinstance(mtype, MemRefType):
            raise UnsupportedRegion("memory access through a non-memref value")
        space = mtype.memory_space
        if space in ("shared", "local"):
            return self.local_cost, 0.0
        elem_bytes = dtype_for(mtype.element_type).itemsize
        work = self.global_base * max(1.0, elem_bytes / 4.0)
        gb = float(elem_bytes) if space == "global" else 0.0
        return work, gb

    def _static_charge(self, op) -> Tuple[float, float]:
        """The (work, global_bytes) charged once per execution of ``op``'s
        own straight-line step, excluding anything its nested blocks charge
        per iteration.  Mirrors the compiled engine op by op."""
        if isinstance(op, arith.ConstantOp):
            return 0.0, 0.0
        if isinstance(op, arith.BinaryOp):
            return op_cost(op.name), 0.0
        if isinstance(op, (arith._CmpOp, arith._CastOp, arith.NegFOp,
                           arith.SelectOp)):
            return op_cost(op.name), 0.0
        if isinstance(op, math_d.UnaryMathOp):
            return op_cost("math.unary"), 0.0
        if isinstance(op, math_d.PowFOp):
            return op_cost("math.powf"), 0.0
        if isinstance(op, memref_d.AllocOp):  # covers AllocaOp
            if id(op.result) in self._prebound_shared:
                return 0.0, 0.0
            return 2.0, 0.0
        if isinstance(op, memref_d.DeallocOp):
            return 2.0, 0.0
        if isinstance(op, memref_d.LoadOp):
            return self._access_charge(op.memref)
        if isinstance(op, memref_d.StoreOp):
            return self._access_charge(op.memref)
        if isinstance(op, memref_d.DimOp):
            return 0.0, 0.0
        if isinstance(op, memref_d.CopyOp):
            return 0.0, 0.0  # charged at runtime (size-dependent)
        if isinstance(op, func_d.CallOp):
            return op_cost("func.call"), 0.0
        if isinstance(op, scf.ForOp):
            return op_cost("scf.for"), 0.0
        if isinstance(op, scf.IfOp):
            return op_cost("scf.if"), 0.0
        if isinstance(op, _BARRIER_OPS):
            return 0.0, 0.0
        raise UnsupportedRegion(f"op {op.name}")

    # -- block emission --------------------------------------------------------
    @staticmethod
    def _split(block) -> Tuple[List, Optional[object]]:
        body = []
        for op in block.operations:
            if isinstance(op, _TERMINATORS):
                return body, op
            body.append(op)
        return body, None

    def _precheck(self, ops: Sequence, *, allow_barriers: bool = False,
                  top: bool = True) -> None:
        """Reject whole-region show-stoppers before any text is emitted."""
        for op in ops:
            if isinstance(op, _NESTED_CONTEXT_OPS):
                raise UnsupportedRegion(f"nested parallel construct {op.name}")
            if isinstance(op, scf.WhileOp):
                raise UnsupportedRegion("scf.while")
            if isinstance(op, omp_d.OmpBarrierOp):
                raise UnsupportedRegion("omp.barrier inside a region body")
            if isinstance(op, _BARRIER_OPS) and not (allow_barriers and top):
                raise UnsupportedRegion("barrier inside the region body")
            if isinstance(op, (gpu_d.GPUAllocOp, gpu_d.GPUDeallocOp,
                               gpu_d.GPUMemcpyOp)):
                raise UnsupportedRegion(f"host-level op {op.name}")
            for region in op.regions:
                for block in region.blocks:
                    self._precheck(list(block.operations),
                                   allow_barriers=allow_barriers, top=False)

    def _emit_block(self, block, *, count_ops: bool = True) -> None:
        """Emit one straight-line block: folded static charges + op code."""
        ops, term = self._split(block)
        nops = len(ops) + (1 if term is not None else 0)
        work = gb = 0.0
        for op in ops:
            op_work, op_gb = self._static_charge(op)
            work += op_work
            gb += op_gb
        if count_ops and nops:
            self.out.w(f"OPS += {c_int(nops)};")
        if work:
            self.out.w(f"W += {c_double(work)};")
        if gb:
            self.out.w(f"GB += {c_double(gb)};")
        for op in ops:
            self._emit_op(op)

    # -- op emission -----------------------------------------------------------
    _BINARY = {
        arith.AddIOp: "({a} + {b})", arith.SubIOp: "({a} - {b})",
        arith.MulIOp: "({a} * {b})",
        arith.AddFOp: "({a} + {b})", arith.SubFOp: "({a} - {b})",
        arith.MulFOp: "({a} * {b})",
        arith.MinSIOp: "(({b} < {a}) ? {b} : {a})",
        arith.MaxSIOp: "(({b} > {a}) ? {b} : {a})",
        arith.MinFOp: "(({b} < {a}) ? {b} : {a})",
        arith.MaxFOp: "(({b} > {a}) ? {b} : {a})",
        arith.DivFOp: "(({b} != 0.0) ? ({a} / {b}) : INFINITY)",
        arith.RemFOp: "(({b} != 0.0) ? fmod({a}, {b}) : NAN)",
        arith.DivSIOp: "(({b} != 0) ? (int64_t)((double){a} / (double){b}) : 0)",
        arith.RemSIOp: "(({b} != 0) ? (int64_t)fmod((double){a}, (double){b}) : 0)",
        arith.AndIOp: "({a} & {b})", arith.OrIOp: "({a} | {b})",
        arith.XOrIOp: "({a} ^ {b})",
        arith.ShLIOp: "repro_shli({a}, {b})",
        arith.ShRSIOp: "repro_shrsi({a}, {b})",
    }
    _CMP = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

    def _emit_op(self, op) -> None:
        if isinstance(op, _BARRIER_OPS):
            return  # chunk splitting already realized the phase boundary
        if isinstance(op, arith.ConstantOp):
            literal = (c_double(op.value) if op.result.type.is_float
                       else c_int(op.value))
            self._define(op.result, literal)
            return
        if isinstance(op, arith.BinaryOp):
            template = self._BINARY.get(type(op))
            if template is None:
                raise UnsupportedRegion(f"binary op {op.name}")
            self._define(op.result, template.format(a=self.ref(op.lhs),
                                                    b=self.ref(op.rhs)))
            return
        if isinstance(op, arith._CmpOp):
            cmp = self._CMP[op.predicate]
            self._define(op.result,
                         f"(({self.ref(op.lhs)} {cmp} {self.ref(op.rhs)}) ? 1 : 0)")
            return
        if isinstance(op, arith._CastOp):
            source = self.ref(op.input)
            if op.result.type.is_float:
                expr = f"(double)({source})"
            else:
                expr = f"(int64_t)({source})"
            self._define(op.result, expr)
            return
        if isinstance(op, arith.NegFOp):
            self._define(op.result, f"(-{self.ref(op.operands[0])})")
            return
        if isinstance(op, arith.SelectOp):
            self._define(op.result,
                         f"(({self.ref(op.condition)}) ? {self.ref(op.true_value)}"
                         f" : {self.ref(op.false_value)})")
            return
        if isinstance(op, math_d.UnaryMathOp):
            self._define(op.result, f"repro_{op.fn}({self.ref(op.operands[0])})")
            return
        if isinstance(op, math_d.PowFOp):
            self._define(op.result,
                         f"repro_powf({self.ref(op.lhs)}, {self.ref(op.rhs)})")
            return
        if isinstance(op, memref_d.AllocOp):  # covers AllocaOp
            self._emit_alloc(op)
            return
        if isinstance(op, memref_d.DeallocOp):
            self._emit_dealloc(op)
            return
        if isinstance(op, memref_d.LoadOp):
            self._emit_load(op)
            return
        if isinstance(op, memref_d.StoreOp):
            self._emit_store(op)
            return
        if isinstance(op, memref_d.DimOp):
            buffer = self._buffer(op.memref)
            if not (0 <= op.dim < buffer.rank):
                raise UnsupportedRegion("memref.dim out of rank")
            self._define(op.result, buffer.extents[op.dim])
            return
        if isinstance(op, memref_d.CopyOp):
            self._emit_copy(op)
            return
        if isinstance(op, func_d.CallOp):
            self._emit_call(op)
            return
        if isinstance(op, scf.ForOp):
            self._emit_for(op)
            return
        if isinstance(op, scf.IfOp):
            self._emit_if(op)
            return
        raise UnsupportedRegion(f"op {op.name}")

    # -- memory ----------------------------------------------------------------
    def _buffer(self, value) -> _Buffer:
        buffer = self.buffers.get(id(value))
        if buffer is None:
            raise UnsupportedRegion("access to an untranslated memref")
        return buffer

    def _flat_index(self, buffer: _Buffer, indices: Sequence) -> str:
        if buffer.rank == 0:
            base = "0"
        else:
            base = f"(int64_t)({self.ref(indices[0])})"
            for dim in range(1, buffer.rank):
                base = (f"(({base}) * ({buffer.extents[dim]})"
                        f" + (int64_t)({self.ref(indices[dim])}))")
        if buffer.kind == "threadlocal":
            elems = " * ".join(buffer.extents) if buffer.rank else "1"
            return f"((int64_t)t * ({elems}) + ({base}))"
        return base

    def _emit_load(self, op) -> None:
        buffer = self._buffer(op.memref)
        element = f"{buffer.name}[{self._flat_index(buffer, op.indices)}]"
        cast = "double" if op.result.type.is_float else "int64_t"
        self._define(op.result, f"({cast}){element}")

    def _emit_store(self, op) -> None:
        buffer = self._buffer(op.memref)
        if buffer.kind == "livein":
            self._stored_buffers.add(buffer.name)
        element = f"{buffer.name}[{self._flat_index(buffer, op.indices)}]"
        self.out.w(f"{element} = ({buffer.ctype}){self.ref(op.value)};")

    def _private_shape(self, op) -> Tuple[List[int], int]:
        mtype = op.memref_type
        if op.operands:
            raise UnsupportedRegion("dynamic-extent private alloc")
        shape = [int(extent) for extent in mtype.shape]
        elems = 1
        for extent in shape:
            elems *= extent
        return shape, max(1, elems)

    def _emit_alloc(self, op) -> None:
        if id(op.result) in self._prebound_shared:
            return
        existing = self.buffers.get(id(op.result))
        if existing is not None and existing.kind == "threadlocal":
            # prescanned launch-body alloca: zero this thread's lane at the
            # op's execution point (numpy zero-alloc semantics per thread).
            elems = " * ".join(existing.extents) or "1"
            self.out.w(f"memset({existing.name} + (int64_t)t * ({elems}), 0, "
                       f"sizeof({existing.ctype}) * ({elems}));")
            return
        mtype = op.memref_type
        shape, elems = self._private_shape(op)
        ctype = _element_ctype(mtype.element_type)
        elem_bytes = dtype_for(mtype.element_type).itemsize
        if elems * elem_bytes > _MAX_PRIVATE_BYTES:
            raise UnsupportedRegion("private alloc too large for the stack")
        name = self._name("b")
        self.out.w(f"{ctype} {name}[{elems}];")
        self.out.w(f"memset({name}, 0, sizeof {name});")
        self.buffers[id(op.result)] = _Buffer(
            name=name, ctype=ctype, rank=len(shape),
            extents=[str(extent) for extent in shape],
            space=mtype.memory_space, kind="private", elem_bytes=elem_bytes)

    def _emit_dealloc(self, op) -> None:
        buffer = self._buffer(op.memref)
        if buffer.kind == "livein":
            raise UnsupportedRegion("dealloc of a live-in buffer")
        # private buffers have automatic storage; the 2.0-cycle charge is in
        # the block's folded constant.  Double frees cannot be replicated
        # here, so regions that free twice diverge only on already-erroring
        # programs (same contract as the int64 lane divergence).

    def _emit_copy(self, op) -> None:
        source = self._buffer(op.source)
        destination = self._buffer(op.destination)
        if "threadlocal" in (source.kind, destination.kind):
            # flat indexing below has no per-thread lane offset; the
            # pipeline never emits copies of launch-body allocas, so fall
            # back rather than copy thread 0's lane for every thread.
            raise UnsupportedRegion("memref.copy of a thread-local buffer")
        if destination.kind == "livein":
            self._stored_buffers.add(destination.name)
        elems = " * ".join(f"({extent})" for extent in source.extents) or "1"
        count = self._name("n")
        index = self._name("i")
        cost = self.global_base * max(1.0, source.elem_bytes / 4.0)
        self.out.w(f"const int64_t {count} = {elems};")
        self.out.open(f"for (int64_t {index} = 0; {index} < {count}; ++{index}) {{")
        self.out.w(f"{destination.name}[{index}] = "
                   f"({destination.ctype}){source.name}[{index}];")
        self.out.close()
        self.out.w(f"W += 2.0 * (double){count} * {c_double(cost)};")
        self.out.w(f"GB += (double)(2 * {count} * {source.elem_bytes});")

    # -- calls -------------------------------------------------------------------
    def _emit_call(self, op) -> None:
        program = self.program
        callee = program.module.lookup(op.callee)
        if callee is None or callee.is_declaration:
            raise UnsupportedRegion(f"call to unknown function {op.callee!r}")
        if program.function_may_yield(callee):
            raise UnsupportedRegion("call to a function containing barriers")
        if id(callee) in self._inline_stack:
            raise UnsupportedRegion("recursive call")
        self._inline_stack.append(id(callee))
        try:
            # results must be declared *outside* the inlined scope: the
            # callee's values go out of C scope at the closing brace.
            results = [self._declare_result(result) for result in op.results]
            self.out.open("{")
            for argument, operand in zip(callee.arguments, op.operands):
                if isinstance(argument.type, MemRefType):
                    self.buffers[id(argument)] = self._buffer(operand)
                else:
                    name = self._name("a")
                    self.cexpr[id(argument)] = name
                    self.out.w(f"const {self._ctype_of(argument)} {name} = "
                               f"{self.ref(operand)};")
            self._emit_block(callee.body_block)
            _, term = self._split(callee.body_block)
            returned = term.operands if isinstance(term, func_d.ReturnOp) else []
            for target, value in zip(results, returned):
                self.out.w(f"{target} = {self.ref(value)};")
            self.out.close()
        finally:
            self._inline_stack.pop()

    # -- structured control flow --------------------------------------------------
    def _emit_for(self, op) -> None:
        lower = self.ref(op.lower_bound)
        upper = self.ref(op.upper_bound)
        step = self.ref(op.step)
        results = [self._declare_result(result) for result in op.results]
        cost = op_cost("scf.for")
        self.out.open("{")
        ub = self._name("ub")
        st = self._name("st")
        self.out.w(f"const int64_t {ub} = {upper};")
        self.out.w(f"const int64_t {st} = {step};")
        # never *read* ERR here: under reduction(max:ERR) each thread's
        # private copy starts at the max identity (INT64_MIN), not 0.
        self.out.w(f"if ({st} <= 0) ERR = {ERR_BAD_STEP};")
        carried = []
        for init in op.iter_init:
            name = self._name("c")
            carried.append(name)
            self.out.w(f"{self._ctype_of(init)} {name} = {self.ref(init)};")
        iv = self._name("iv")
        self.out.open(f"if ({st} > 0) for (int64_t {iv} = {lower}; {iv} < {ub}; "
                      f"{iv} += {st}) {{")
        self.cexpr[id(op.induction_var)] = iv
        for name, argument in zip(carried, op.iter_args):
            self.cexpr[id(argument)] = name
        self._emit_block(op.body)
        _, term = self._split(op.body)
        if isinstance(term, scf.YieldOp) and carried:
            # two-phase update so permuted yields read pre-update values
            temps = []
            for name, value in zip(carried, term.operands):
                temp = self._name("y")
                temps.append(temp)
                self.out.w(f"{self._ctype_of(value)} {temp} = {self.ref(value)};")
            for temp, name in zip(temps, carried):
                self.out.w(f"{name} = {temp};")
        self.out.w(f"W += {c_double(cost)};")
        self.out.close()
        for result, name in zip(results, carried):
            self.out.w(f"{result} = {name};")
        self.out.close()

    def _emit_if(self, op) -> None:
        if op.results and op.else_block is None:
            raise UnsupportedRegion("scf.if with results but no else branch")
        results = [self._declare_result(result) for result in op.results]

        def copy_results(block) -> None:
            _, term = self._split(block)
            if results and isinstance(term, scf.YieldOp):
                for target, value in zip(results, term.operands):
                    self.out.w(f"{target} = {self.ref(value)};")

        self.out.open(f"if ({self.ref(op.condition)}) {{")
        self._emit_block(op.then_block)
        copy_results(op.then_block)
        if op.else_block is not None:
            self.out.close("} else {")
            self.out.indent += 1
            self._emit_block(op.else_block)
            copy_results(op.else_block)
        self.out.close()

    # ------------------------------------------------------------------------
    # Span regions (omp.wsloop / barrier-free scf.parallel)
    # ------------------------------------------------------------------------
    def emit_span(self) -> Tuple[str, RegionSpec]:
        op = self.op
        self._prebound_shared: set = set()
        ops, _ = self._split(op.body)
        self._precheck(ops)
        num_dims = len(op.induction_vars)
        self.spec.kind = "span"
        self.spec.num_dims = num_dims
        for value in self._collect_liveins():
            self._bind_livein(value)

        header = _Writer()
        header.indent = 0
        header.w(f"void {self.symbol}(const int64_t* LI, const double* LF,")
        header.w("        void* const* LP, const int64_t* LS,")
        header.w("        const int64_t* RLB, const int64_t* RST,")
        header.w("        const int64_t* RLEN, int64_t total, int64_t par_ok,")
        header.w("        double* outf, int64_t* outi)")
        header.w("{")

        self.out.w("double W = 0.0, GB = 0.0;")
        self.out.w("int64_t OPS = 0, ERR = 0;")
        self._emit_livein_prologue()

        body = _Writer()
        body.indent = 2
        saved = self.out
        self.out = body
        body.w("int64_t rem = lin;")
        coords = []
        for dim in reversed(range(num_dims)):
            coord = f"q{dim}"
            coords.append(coord)
            body.w(f"const int64_t {coord} = rem % RLEN[{dim}];")
            if dim:
                body.w(f"rem /= RLEN[{dim}];")
        body.w("(void)rem;")
        for dim, induction_var in enumerate(op.induction_vars):
            # "sv" (span variable), disjoint from the _name() prefixes so a
            # nested scf.for's "iv<uid>" counter can never shadow it.
            name = f"sv{dim}"
            self.cexpr[id(induction_var)] = name
            body.w(f"const int64_t {name} = RLB[{dim}] + q{dim} * RST[{dim}];")
        self._emit_block(op.body)
        self.out = saved

        lines = [*header.lines]
        lines.extend(self.out.lines)
        lines.append("    if (par_ok) {")
        # max-reduction on ERR: error *codes* must not sum across threads.
        lines.append("#pragma omp parallel for schedule(static) "
                     "reduction(+:W,GB,OPS) reduction(max:ERR)")
        lines.append("    for (int64_t lin = 0; lin < total; ++lin) {")
        lines.extend(body.lines)
        lines.append("    }")
        lines.append("    } else {")
        lines.append("    for (int64_t lin = 0; lin < total; ++lin) {")
        lines.extend(body.lines)
        lines.append("    }")
        lines.append("    }")
        lines.append("    outf[0] = W; outf[1] = GB;")
        lines.append("    outi[0] = OPS; outi[1] = 0; outi[2] = ERR;")
        lines.append("}")
        self._mark_stored()
        return "\n".join(lines), self.spec

    # ------------------------------------------------------------------------
    # Launch regions (gpu.launch with straight-line barriers)
    # ------------------------------------------------------------------------
    def emit_launch(self) -> Tuple[str, RegionSpec]:
        op = self.op
        self.simt = True
        self.spec.kind = "launch"
        ops, term = self._split(op.body)
        self._precheck(ops, allow_barriers=True)
        # prebound shared allocas (one buffer per block, charged nothing)
        self._prebound_shared = set()
        shared_allocas = []
        for nested in ops:
            if (isinstance(nested, memref_d.AllocaOp)
                    and memref_d.is_shared_memref(nested.result)):
                self._prebound_shared.add(id(nested.result))
                shared_allocas.append(nested)
        # classify top-level SSA values (they live across phase boundaries)
        # and prescan top-level thread-local allocas into per-thread scratch.
        scratch_buffers: List[Tuple[str, str, int]] = []
        for nested in ops:
            if (isinstance(nested, memref_d.AllocOp)
                    and id(nested.result) not in self._prebound_shared):
                shape, elems = self._private_shape(nested)
                mtype = nested.memref_type
                ctype = _element_ctype(mtype.element_type)
                name = self._name("tb")
                scratch_buffers.append((name, ctype, elems))
                self.buffers[id(nested.result)] = _Buffer(
                    name=name, ctype=ctype, rank=len(shape),
                    extents=[str(extent) for extent in shape],
                    space=mtype.memory_space, kind="threadlocal",
                    elem_bytes=dtype_for(mtype.element_type).itemsize)
                continue
            for result in nested.results:
                if isinstance(result.type, MemRefType):
                    continue
                if result.type.is_float:
                    self._toplevel[id(result)] = ("f", self._n_tf)
                    self._n_tf += 1
                else:
                    self._toplevel[id(result)] = ("i", self._n_ti)
                    self._n_ti += 1
        for value in self._collect_liveins():
            self._bind_livein(value)

        header = _Writer()
        header.indent = 0
        header.w(f"void {self.symbol}(const int64_t* LI, const double* LF,")
        header.w("        void* const* LP, const int64_t* LS,")
        header.w("        const int64_t* GRID, const int64_t* BLOCK,")
        header.w("        int64_t par_ok, double* outf, int64_t* outi)")
        header.w("{")

        self.out.w("double W = 0.0, GB = 0.0;")
        self.out.w("int64_t OPS = 0, PH = 0, ERR = 0;")
        self._emit_livein_prologue()
        self.out.w("const int64_t NT = BLOCK[0] * BLOCK[1] * BLOCK[2];")
        self.out.w("const int64_t nblocks = GRID[0] * GRID[1] * GRID[2];")

        body = _Writer()
        body.indent = 2
        saved = self.out
        self.out = body
        body.w("const int64_t bx = lin % GRID[0];")
        body.w("const int64_t by = (lin / GRID[0]) % GRID[1];")
        body.w("const int64_t bz = lin / (GRID[0] * GRID[1]);")
        body.w("(void)bx; (void)by; (void)bz;")
        arguments = op.body.arguments
        builtin = ["bx", "by", "bz", "tx", "ty", "tz",
                   "GRID[0]", "GRID[1]", "GRID[2]",
                   "BLOCK[0]", "BLOCK[1]", "BLOCK[2]"]
        for argument, expr in zip(arguments, builtin):
            self.cexpr[id(argument)] = expr
        # per-thread scratch: SSA lane arrays + thread-local alloca buffers
        scratch = [("TI", "int64_t", self._n_ti) if self._n_ti else None,
                   ("TF", "double", self._n_tf) if self._n_tf else None]
        scratch = [entry for entry in scratch if entry is not None]
        scratch += scratch_buffers
        body.w("int alloc_ok = 1;")
        for name, ctype, count in scratch:
            body.w(f"{ctype}* {name} = ({ctype}*)malloc(sizeof({ctype}) * "
                   f"{count} * (size_t)NT);")
            body.w(f"if (!{name}) alloc_ok = 0;")
        body.open("if (alloc_ok) {")
        # per-block shared buffers
        for alloca in shared_allocas:
            shape, elems = self._private_shape(alloca)
            mtype = alloca.memref_type
            ctype = _element_ctype(mtype.element_type)
            if elems * dtype_for(mtype.element_type).itemsize > _MAX_PRIVATE_BYTES:
                # same stack cap as private allocas: an oversized automatic
                # array would overflow the OpenMP thread stack instead of
                # falling back.
                raise UnsupportedRegion("shared alloca too large for the stack")
            name = self._name("sh")
            body.w(f"{ctype} {name}[{elems}];")
            body.w(f"memset({name}, 0, sizeof {name});")
            self.buffers[id(alloca.result)] = _Buffer(
                name=name, ctype=ctype, rank=len(shape),
                extents=[str(extent) for extent in shape],
                space=mtype.memory_space, kind="shared",
                elem_bytes=dtype_for(mtype.element_type).itemsize)
        # chunked phase execution: a chunk ends at each __syncthreads
        chunks: List[List] = [[]]
        for nested in ops:
            if isinstance(nested, _BARRIER_OPS):
                chunks.append([])
            else:
                chunks[-1].append(nested)
        body.w(f"PH += {len(chunks)};")
        for index, chunk in enumerate(chunks):
            last = index == len(chunks) - 1
            nops = len(chunk) + (1 if not last or term is not None else 0)
            work = gb = 0.0
            for nested in chunk:
                op_work, op_gb = self._static_charge(nested)
                work += op_work
                gb += op_gb
            if nops:
                body.w(f"OPS += {c_int(nops)} * NT;")
            if work:
                body.w(f"W += {c_double(work)} * (double)NT;")
            if gb:
                body.w(f"GB += {c_double(gb)} * (double)NT;")
            body.open("for (int64_t t = 0; t < NT; ++t) {")
            body.w("const int64_t tx = t % BLOCK[0];")
            body.w("const int64_t ty = (t / BLOCK[0]) % BLOCK[1];")
            body.w("const int64_t tz = t / (BLOCK[0] * BLOCK[1]);")
            body.w("(void)tx; (void)ty; (void)tz;")
            for nested in chunk:
                self._emit_op(nested)
            body.close()
        body.close(f"}} else ERR = {ERR_OOM};")
        for name, _, _ in scratch:
            body.w(f"free({name});")
        self.out = saved

        lines = [*header.lines]
        lines.extend(self.out.lines)
        lines.append("    if (NT > 0) {")
        lines.append("    if (par_ok) {")
        # max-reduction on ERR: error *codes* must not sum across threads.
        lines.append("#pragma omp parallel for schedule(static) "
                     "reduction(+:W,GB,OPS,PH) reduction(max:ERR)")
        lines.append("    for (int64_t lin = 0; lin < nblocks; ++lin) {")
        lines.extend(body.lines)
        lines.append("    }")
        lines.append("    } else {")
        lines.append("    for (int64_t lin = 0; lin < nblocks; ++lin) {")
        lines.extend(body.lines)
        lines.append("    }")
        lines.append("    }")
        lines.append("    }")
        lines.append("    outf[0] = W; outf[1] = GB;")
        lines.append("    outi[0] = OPS; outi[1] = PH; outi[2] = ERR;")
        lines.append("}")
        self._mark_stored()
        return "\n".join(lines), self.spec

    def _mark_stored(self) -> None:
        for index, buf_spec in enumerate(self.spec.buffers):
            if f"lp{index}" in self._stored_buffers:
                buf_spec.stored = True


# ---------------------------------------------------------------------------
# Translation-unit assembly
# ---------------------------------------------------------------------------
PRELUDE = r"""
#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* Scalar semantics mirror the Python engines exactly: doubles for float
 * arithmetic (f32 rounds only on store), int64 lanes for integers, and the
 * interpreter's guarded versions of division, shifts and libm calls. */

static inline int64_t repro_shli(int64_t a, int64_t b) {
    if (b < 0 || b >= 64) return 0;
    return (int64_t)((uint64_t)a << (uint64_t)b);
}
static inline int64_t repro_shrsi(int64_t a, int64_t b) {
    if (b < 0) return 0;
    if (b >= 64) return a < 0 ? -1 : 0;
    return a >> b;
}
static inline double repro_exp(double x) { return exp(x); }
static inline double repro_exp2(double x) { return pow(2.0, x); }
static inline double repro_log(double x) { return x > 0.0 ? log(x) : -INFINITY; }
static inline double repro_log2(double x) { return x > 0.0 ? log2(x) : -INFINITY; }
static inline double repro_log10(double x) { return x > 0.0 ? log10(x) : -INFINITY; }
static inline double repro_sqrt(double x) { return x >= 0.0 ? sqrt(x) : NAN; }
static inline double repro_rsqrt(double x) { return x > 0.0 ? 1.0 / sqrt(x) : INFINITY; }
static inline double repro_fabs(double x) { return fabs(x); }
static inline double repro_sin(double x) { return sin(x); }
static inline double repro_cos(double x) { return cos(x); }
static inline double repro_tan(double x) { return tan(x); }
static inline double repro_tanh(double x) { return tanh(x); }
static inline double repro_floor(double x) { return floor(x); }
static inline double repro_ceil(double x) { return ceil(x); }
static inline double repro_erf(double x) { return erf(x); }
static inline double repro_round(double x) { return rint(x); }
static inline double repro_powf(double a, double b) {
    double r = pow(a, b);
    /* CPython raises OverflowError for finite operands overflowing to inf;
     * PowFOp.evaluate turns that into NaN. */
    if (isinf(r) && isfinite(a) && isfinite(b) && a != 0.0) return NAN;
    return r;
}
"""


def assemble_unit(functions: Sequence[str]) -> str:
    """One self-contained C translation unit from emitted region functions."""
    return PRELUDE + "\n\n" + "\n\n".join(functions) + "\n"
