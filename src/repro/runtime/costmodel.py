"""Analytic machine and cost model.

The paper's measurements come from an AWS ``c6i.metal`` node (dual Xeon
8375C) for the Rodinia/MCUDA study and a Fugaku A64FX node (4 core-memory
groups with HBM2) for the MocCUDA study.  Neither machine is available to a
pure-Python reproduction, so runtimes are reported in *simulated cycles*
computed from the structure of the executed program:

* every dynamic operation has a base cost (integer ALU 1, FP mul 4,
  division ~20, transcendental ~40, ...);
* memory accesses are charged by memory space and by a locality heuristic
  (sequential vs. strided global traffic, cache-resident shared/local
  buffers, high-bandwidth memory on A64FX);
* forking an OpenMP parallel region costs ``fork_cost`` (much more for
  nested regions), each workshared loop/barrier pays a synchronization cost,
  and nested regions additionally pay a false-sharing penalty on writes;
* a parallel region's wall-clock contribution is its sequential work divided
  by the effective worker count (no speedup for nested regions once the
  outer level already saturates the cores), plus the overheads above — an
  Amdahl-style model that reproduces the paper's qualitative results (inner
  serialization wins, transpiled CUDA scales better than hand-written
  OpenMP) without pretending to predict absolute hardware numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class MachineModel:
    """A simulated multicore CPU."""

    name: str
    cores: int
    #: cycles to fork+join a top-level parallel region (thread wake-up, closure setup).
    fork_cost: float = 2500.0
    #: cycles to fork a *nested* parallel region (oversubscription, contention).
    nested_fork_cost: float = 6000.0
    #: cycles for a team-wide synchronization (wsloop end / omp.barrier).
    sync_cost: float = 400.0
    #: per-phase cost of emulating an un-lowered GPU barrier on the CPU (SIMT fallback).
    simt_phase_cost: float = 20000.0
    #: cycles per global-memory element access (cache-missing traffic).
    global_access_cost: float = 6.0
    #: cycles per shared/local (cache-resident) element access.
    local_access_cost: float = 1.5
    #: multiplier on global traffic when the machine has high-bandwidth memory.
    hbm_bandwidth_factor: float = 1.0
    #: write penalty multiplier for nested parallel regions (false sharing).
    false_sharing_penalty: float = 1.25
    #: fraction of ideal scaling actually achievable per added core (memory BW limits).
    scaling_efficiency: float = 0.97

    def effective_speedup(self, threads: int) -> float:
        """Sub-linear speedup from ``threads`` workers."""
        threads = max(1, threads)
        return sum(self.scaling_efficiency ** i for i in range(threads))


#: the Rodinia / MCUDA evaluation machine (one socket of a c6i.metal).
XEON_8375C = MachineModel(name="xeon-8375c", cores=32)

#: one A64FX core-memory group (12 cores + HBM2) used for the MocCUDA study.
A64FX_CMG = MachineModel(name="a64fx-cmg", cores=12, global_access_cost=4.0,
                         hbm_bandwidth_factor=0.45, fork_cost=3200.0,
                         nested_fork_cost=8000.0)


#: base cycle costs per operation name (anything absent costs DEFAULT_OP_COST).
OP_COSTS: Dict[str, float] = {
    "arith.constant": 0.0,
    "arith.addi": 1.0, "arith.subi": 1.0, "arith.muli": 2.0,
    "arith.divsi": 20.0, "arith.remsi": 20.0,
    "arith.minsi": 1.0, "arith.maxsi": 1.0,
    "arith.andi": 1.0, "arith.ori": 1.0, "arith.xori": 1.0,
    "arith.shli": 1.0, "arith.shrsi": 1.0,
    "arith.addf": 2.0, "arith.subf": 2.0, "arith.mulf": 4.0,
    "arith.divf": 18.0, "arith.remf": 25.0,
    "arith.minf": 2.0, "arith.maxf": 2.0, "arith.negf": 1.0,
    "arith.cmpi": 1.0, "arith.cmpf": 2.0, "arith.select": 1.0,
    "arith.index_cast": 0.5, "arith.intcast": 0.5,
    "arith.sitofp": 2.0, "arith.fptosi": 2.0, "arith.fpcast": 1.0,
    "math.unary": 40.0, "math.powf": 55.0,
    "func.call": 12.0, "func.return": 1.0,
    "scf.yield": 0.0, "scf.condition": 1.0,
    "scf.for": 2.0, "scf.if": 1.0, "scf.while": 2.0,
    "memref.dim": 0.5,
    "polygeist.barrier": 0.0,  # charged by the executor, not per-op
    "omp.barrier": 0.0,
}

DEFAULT_OP_COST = 1.0


def op_cost(op_name: str) -> float:
    return OP_COSTS.get(op_name, DEFAULT_OP_COST)


@dataclass
class CostReport:
    """Result of one simulated execution."""

    machine: MachineModel
    threads: int
    cycles: float = 0.0
    dynamic_ops: int = 0
    parallel_regions: int = 0
    nested_regions: int = 0
    workshared_loops: int = 0
    barriers: int = 0
    simt_phases: int = 0
    global_bytes: float = 0.0

    @property
    def seconds(self) -> float:
        """Cycles scaled to a nominal 1 GHz clock — a convenience unit only."""
        return self.cycles / 1e9

    def merge(self, other: "CostReport") -> None:
        self.cycles += other.cycles
        self.dynamic_ops += other.dynamic_ops
        self.parallel_regions += other.parallel_regions
        self.nested_regions += other.nested_regions
        self.workshared_loops += other.workshared_loops
        self.barriers += other.barriers
        self.simt_phases += other.simt_phases
        self.global_bytes += other.global_bytes

    def __repr__(self) -> str:
        return (f"CostReport(cycles={self.cycles:.0f}, ops={self.dynamic_ops}, "
                f"regions={self.parallel_regions}, threads={self.threads})")


def memory_access_cost(machine: MachineModel, memory_space: str, element_bytes: int,
                       sequential: bool = True) -> float:
    """Cycles charged for a single element access."""
    if memory_space in ("shared", "local"):
        return machine.local_access_cost
    cost = machine.global_access_cost * machine.hbm_bandwidth_factor
    if not sequential:
        cost *= 2.5
    # wider elements move more bytes through the memory system.
    return cost * max(1.0, element_bytes / 4.0)
