"""Compiled execution engine: one-time translation of IR to Python closures.

The tree-walking :class:`~repro.runtime.interpreter.Interpreter` re-dispatches
on the operation type for every dynamic operation and copies the whole
environment dictionary per loop iteration and per SIMT thread.  This module
removes that hot-path overhead by *compiling* each function once:

* **SSA value numbering** — every SSA value of a function gets a flat integer
  slot in a per-invocation register list.  Loop iterations reuse slots in
  place (SSA dominance guarantees dead values are never read), so the
  per-iteration ``dict(env)`` copy disappears entirely; SIMT threads take a
  flat ``regs[:]`` list copy instead of a dict copy.
* **specialized closures** — each operation compiles to a small closure with
  operand slots, cost constants and type coercions resolved at compile time;
  straight-line block bodies are stitched into generated straight-line code
  (the ``generate_ast``-style "lower once, execute many" idiom).
* **lazy iteration spaces** — ``scf.parallel`` / ``omp.wsloop`` iteration
  spaces are ``itertools.product`` streams, never materialized lists.
* **compiled barrier phases** — bodies whose barriers sit in straight-line
  position compile to an explicit list of *phase closures* executed
  phase-by-phase over all threads with no generators at all; bodies with
  barriers under control flow fall back to compiled *generator* closures
  scheduled by the same barrier-phase loop the interpreter uses.

Cost accounting is replicated charge-for-charge in the interpreter's
execution order, so a compiled run produces a bit-identical
:class:`~repro.runtime.costmodel.CostReport` (the differential tests in
``tests/runtime/test_engine_parity.py`` pin this).  Two deliberate
differences, both only observable on malformed IR or exhausted budgets: the
``max_dynamic_ops`` budget is checked per *block* instead of per op (the
dynamic-op counter itself stays exact), and use-before-def reads surface as
``None`` values instead of a "use of undefined value" error.

Compiled programs are cached on the module object itself, keyed by the
machine model (cost constants are baked into the closures).  The cache
assumes the module is not mutated after its first compiled run — call
:func:`invalidate_compiled` after transforming an already-executed module.
"""

from __future__ import annotations

from itertools import islice, product
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dialects import arith, func as func_d, gpu as gpu_d, math as math_d, memref as memref_d
from ..dialects import omp as omp_d, polygeist, scf
from .costmodel import CostReport, MachineModel, XEON_8375C, op_cost
from .errors import InterpreterError
from .memory import MemRefStorage
from .registry import register_engine

_BARRIER = object()  # yielded by compiled generator closures at barriers

#: attribute used to cache compiled programs on the module operation.
_CACHE_ATTR = "_compiled_programs"

_TERMINATORS = (func_d.ReturnOp, scf.YieldOp, scf.ConditionOp)
_BARRIER_OPS = (polygeist.PolygeistBarrierOp, gpu_d.BarrierOp)

#: region-owning ops that run their bodies in their own execution context —
#: a barrier nested under one of these never suspends the *enclosing* body.
_CONTEXT_OPS = (scf.ParallelOp, gpu_d.LaunchOp, omp_d.OmpParallelOp,
                omp_d.OmpWsLoopOp, omp_d.OmpSingleOp)


class _BarrierEscape(Exception):
    """A barrier executed in a context that cannot suspend (compiled code)."""


class _State:
    """Mutable per-run execution state shared by all compiled closures.

    ``shard`` is the multicore engine's dispatch context (worker pool +
    worker count); it is ``None`` for the compiled/vectorized engines and
    inside worker processes, which makes every shard-capable region runner
    fall through to plain in-process execution.

    ``strict`` is set by the resilience layer
    (:class:`~repro.runtime.resilience.ResilientExecutor`): strict runs
    raise their taxonomy error instead of silently degrading, so the
    fallback chain owns the degradation decision.  It lives here rather
    than on the program because programs are cached on the module and
    shared across engine instances.
    """

    __slots__ = ("report", "threads", "work", "max_ops", "program", "shard",
                 "strict")

    def __init__(self, report: CostReport, threads: int, work: List[float],
                 max_ops: Optional[int], program: "_Program",
                 shard=None, strict: bool = False) -> None:
        self.report = report
        self.threads = threads
        self.work = work
        self.max_ops = max_ops
        self.program = program
        self.shard = shard
        self.strict = strict


class _CompiledFunction:
    """One function lowered to closures: register template + body runner."""

    __slots__ = ("name", "template", "arg_slots", "return_slots", "runner", "is_gen")

    def __init__(self, name: str, template: List, arg_slots: List[int],
                 return_slots: List[int], runner: Callable, is_gen: bool) -> None:
        self.name = name
        self.template = template
        self.arg_slots = arg_slots
        self.return_slots = return_slots
        self.runner = runner
        self.is_gen = is_gen


def _split_executed(block) -> Tuple[List, Optional[object]]:
    """Ops the interpreter would execute, split at the first terminator."""
    body = []
    for op in block.operations:
        if isinstance(op, _TERMINATORS):
            return body, op
        body.append(op)
    return body, None


class _Program:
    """All compiled functions of one module for one machine model."""

    #: the function-compiler class used to lower each function; subclasses
    #: (e.g. the vectorized engine's program) plug in an extended compiler.
    COMPILER: type = None  # set to _FunctionCompiler below (defined later)

    def __init__(self, module: func_d.ModuleOp, machine: MachineModel) -> None:
        self.module = module
        self.machine = machine
        self._functions: Dict[Tuple[int, bool], _CompiledFunction] = {}
        self._may_yield: Dict[int, bool] = {}
        self._speedups: Dict[int, float] = {}
        # cost constants baked into memory-access closures
        self.local_cost = machine.local_access_cost
        self.global_base = machine.global_access_cost * machine.hbm_bandwidth_factor

    def function(self, fn: func_d.FuncOp, gen: bool) -> _CompiledFunction:
        key = (id(fn), gen)
        compiled = self._functions.get(key)
        if compiled is None:
            compiled = self._functions[key] = type(self).COMPILER(self, fn, gen).compile()
        return compiled

    def speedup(self, threads: int) -> float:
        cached = self._speedups.get(threads)
        if cached is None:
            cached = self._speedups[threads] = self.machine.effective_speedup(threads)
        return cached

    # -- barrier reachability -------------------------------------------------
    def op_may_yield(self, op) -> bool:
        """True if executing ``op`` may surface a barrier to the enclosing body."""
        if isinstance(op, _BARRIER_OPS):
            return True
        if isinstance(op, _CONTEXT_OPS):
            return False
        if isinstance(op, func_d.CallOp):
            callee = self.module.lookup(op.callee)
            if callee is None or callee.is_declaration:
                return False
            return self.function_may_yield(callee)
        for region in op.regions:
            for block in region.blocks:
                for nested in block.operations:
                    if self.op_may_yield(nested):
                        return True
        return False

    def function_may_yield(self, fn: func_d.FuncOp) -> bool:
        key = id(fn)
        if key in self._may_yield:
            return self._may_yield[key]
        self._may_yield[key] = True  # conservative while recursing
        result = any(self.op_may_yield(op) for op in fn.body_block.operations)
        self._may_yield[key] = result
        return result


def program_for(module: func_d.ModuleOp, machine: MachineModel,
                cls: type = None, *, variant=None, factory=None) -> _Program:
    """The (cached) compiled program of ``module`` for ``machine``.

    ``cls`` selects the program flavour (default :class:`_Program`; the
    vectorized engine passes its own subclass) — each flavour caches its own
    program per machine model.  ``variant`` extends the cache key for
    flavours whose construction takes extra knobs (the native engine's
    simd / phase-split options); ``factory`` then builds the program
    (called as ``factory(module, machine)``, defaults to ``cls``).
    """
    if cls is None:
        cls = _Program
    cache = getattr(module, _CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(module, _CACHE_ATTR, cache)
    key = (cls, machine) if variant is None else (cls, machine, variant)
    prog = cache.get(key)
    if prog is None:
        prog = cache[key] = (factory or cls)(module, machine)
    return prog


def invalidate_compiled(module: func_d.ModuleOp) -> None:
    """Drop the compiled-program cache (call after mutating a run module)."""
    if hasattr(module, _CACHE_ATTR):
        delattr(module, _CACHE_ATTR)


def build_launch_thread_regs(regs, arg_slots, bx, by, bz, grid, block):
    """Per-thread register lists for one ``gpu.launch`` block.

    Thread order is tz outermost / tx innermost, matching the interpreter's
    env construction; shared by the compiled SIMT path and the vectorized
    engine's mixed-mode launch runner so the register layout cannot diverge.
    """
    a0, a1, a2, a3, a4, a5, a6, a7, a8, a9, a10, a11 = arg_slots
    g0, g1, g2 = grid
    b0, b1, b2 = block
    block_regs = regs[:]
    thread_regs = []
    append = thread_regs.append
    for tz in range(b2):
        for ty in range(b1):
            for tx in range(b0):
                per_thread = block_regs[:]
                per_thread[a0] = bx
                per_thread[a1] = by
                per_thread[a2] = bz
                per_thread[a3] = tx
                per_thread[a4] = ty
                per_thread[a5] = tz
                per_thread[a6] = g0
                per_thread[a7] = g1
                per_thread[a8] = g2
                per_thread[a9] = b0
                per_thread[a10] = b1
                per_thread[a11] = b2
                append(per_thread)
    return thread_regs


def bind_shared_allocas(shared_allocas, thread_regs):
    """Allocate each prebound shared buffer once and bind it in every thread."""
    allocate = MemRefStorage.allocate
    for dst, mtype in shared_allocas:
        storage = allocate(mtype, [])
        for per_thread in thread_regs:
            per_thread[dst] = storage


def build_parallel_thread_regs(regs, iv_slots, iterations):
    """Per-thread register lists for a SIMT ``scf.parallel`` iteration space."""
    thread_regs = []
    for point in iterations:
        per_thread = regs[:]
        for dst, value in zip(iv_slots, point):
            per_thread[dst] = value
        thread_regs.append(per_thread)
    return thread_regs


def _iteration_space(regs, lb_slots, ub_slots, st_slots) -> Tuple[List[range], int]:
    """Read a region's (ranges, total points) from its bound slots."""
    ranges = [range(int(regs[lb]), int(regs[ub]), int(regs[st]))
              for lb, ub, st in zip(lb_slots, ub_slots, st_slots)]
    total = 1
    for axis in ranges:
        total *= len(axis)
    return ranges, total


def _span_points(ranges, start: int, stop: Optional[int]):
    """Row-major iteration points of ``[start, stop)`` within the space.

    ``start == 0`` with ``stop=None`` is the whole space (no islice
    wrapper on the sequential hot path); a proper sub-span streams through
    ``itertools.islice`` — shard spans are contiguous in the same
    sequential order, which is what keeps worker-order cost aggregation
    equal to the interpreter's single sequential accumulation.
    """
    points = product(*ranges)
    if start == 0 and stop is None:
        return points
    return islice(points, start, stop)


# ---------------------------------------------------------------------------
# Function compilation
# ---------------------------------------------------------------------------
class _FunctionCompiler:
    """Translates one function body to slot-addressed closures."""

    def __init__(self, program: _Program, fn: func_d.FuncOp, gen: bool) -> None:
        self.program = program
        self.fn = fn
        self.gen_mode = gen
        self._slots: Dict[int, int] = {}
        self.template: List = []
        self._prebound: set = set()  # result ids of launch-prebound shared allocas
        self._uid = 0  # unique suffix for names captured by generated source

    def _name(self, prefix: str) -> str:
        self._uid += 1
        return f"_{prefix}{self._uid}"

    # -- slot allocation ------------------------------------------------------
    def slot(self, value) -> int:
        key = id(value)
        existing = self._slots.get(key)
        if existing is None:
            existing = self._slots[key] = len(self.template)
            self.template.append(None)
        return existing

    def slots(self, values) -> List[int]:
        return [self.slot(v) for v in values]

    def compile(self) -> _CompiledFunction:
        arg_slots = self.slots(self.fn.arguments)
        runner = self.compile_block(self.fn.body_block, gen=self.gen_mode)
        _, term = _split_executed(self.fn.body_block)
        return_slots = self.slots(term.operands) if isinstance(term, func_d.ReturnOp) else []
        return _CompiledFunction(self.fn.sym_name, self.template, arg_slots,
                                 return_slots, runner, self.gen_mode)

    # -- block compilation ----------------------------------------------------
    def compile_block(self, block, gen: bool) -> Callable:
        """Compile a block to a runner closure (generator closure if ``gen``)."""
        ops, term = _split_executed(block)
        nops = len(ops) + (1 if term is not None else 0)
        items = []
        for op in ops:
            item = self.compile_op(op, gen)
            if item is not None:
                items.append(item)
        return _build_runner(items, nops, gen)

    def compile_chunks(self, block) -> List[Callable]:
        """Compile a straight-line barrier body into phase-chunk closures."""
        ops, term = _split_executed(block)
        chunks: List[Callable] = []
        steps: List[Tuple[str, Callable]] = []
        count = 0
        for op in ops:
            count += 1  # every op (incl. the barrier itself) is a dynamic op
            if isinstance(op, _BARRIER_OPS):
                chunks.append(_build_runner(steps, count, gen=False))
                steps, count = [], 0
                continue
            item = self.compile_op(op, gen=False)
            if item is not None:
                steps.append(item)
        if term is not None:
            count += 1
        chunks.append(_build_runner(steps, count, gen=False))
        return chunks

    def compile_simt_body(self, block):
        """Compile a SIMT body: phase chunks when barriers are straight-line,
        compiled generator closures otherwise.  Returns a phase driver
        ``run_simt(state, thread_regs) -> phases``."""
        ops, _ = _split_executed(block)
        straight = all(isinstance(op, _BARRIER_OPS) or not self.program.op_may_yield(op)
                       for op in ops)
        if straight:
            chunks = self.compile_chunks(block)

            def run_simt(state, thread_regs, _chunks=chunks):
                if not thread_regs:
                    return 0
                for chunk in _chunks:
                    for regs in thread_regs:
                        chunk(state, regs)
                return len(_chunks)
        else:
            body = self.compile_block(block, gen=True)

            def run_simt(state, thread_regs, _body=body):
                live = [_body(state, regs) for regs in thread_regs]
                phases = 0
                while live:
                    phases += 1
                    survivors = []
                    keep = survivors.append
                    for thread in live:
                        try:
                            next(thread)
                        except StopIteration:
                            continue
                        keep(thread)
                    live = survivors
                return phases
        return run_simt

    # -- op compilation --------------------------------------------------------
    def compile_op(self, op, gen: bool):
        """Compile one op to an item ``(kind, closure)`` with kind ``'p'``
        (plain step), ``'g'`` (generator step) or ``'b'`` (barrier yield);
        returns ``None`` for ops with no runtime action (constants)."""
        if isinstance(op, _BARRIER_OPS):
            if gen:
                return ("b", None)
            def barrier(state, regs):
                raise _BarrierEscape()
            return ("p", barrier)
        if isinstance(op, arith.ConstantOp):
            self.template[self.slot(op.result)] = op.value
            return None
        if isinstance(op, arith.BinaryOp):
            return self._c_binary(op)
        if isinstance(op, arith._CmpOp):
            return self._c_cmp(op)
        if isinstance(op, arith._CastOp):
            return self._c_cast(op)
        if isinstance(op, arith.NegFOp):
            return self._c_negf(op)
        if isinstance(op, arith.SelectOp):
            return self._c_select(op)
        if isinstance(op, math_d.UnaryMathOp):
            return self._c_math_unary(op)
        if isinstance(op, math_d.PowFOp):
            return self._c_math_pow(op)
        if isinstance(op, memref_d.AllocOp):  # covers AllocaOp
            if id(op.result) in self._prebound:
                return None
            return ("p", self._c_alloc(op))
        if isinstance(op, memref_d.DeallocOp):
            return ("p", self._c_dealloc(op))
        if isinstance(op, memref_d.LoadOp):
            return self._c_load(op)
        if isinstance(op, memref_d.StoreOp):
            return self._c_store(op)
        if isinstance(op, memref_d.DimOp):
            return ("p", self._c_dim(op))
        if isinstance(op, memref_d.CopyOp):
            return ("p", self._c_copy(op))
        if isinstance(op, func_d.CallOp):
            return self._c_call(op, gen)
        if isinstance(op, scf.ForOp):
            if gen and self.program.op_may_yield(op):
                return ("g", self._c_for(op, gen=True))
            return ("p", self._c_for(op, gen=False))
        if isinstance(op, scf.IfOp):
            if gen and self.program.op_may_yield(op):
                return ("g", self._c_if(op, gen=True))
            return ("p", self._c_if(op, gen=False))
        if isinstance(op, scf.WhileOp):
            if gen and self.program.op_may_yield(op):
                return ("g", self._c_while(op, gen=True))
            return ("p", self._c_while(op, gen=False))
        if isinstance(op, scf.ParallelOp):
            return ("p", self._c_scf_parallel(op))
        if isinstance(op, gpu_d.LaunchOp):
            return ("p", self._c_gpu_launch(op))
        if isinstance(op, gpu_d.GPUAllocOp):
            return ("p", self._c_gpu_alloc(op))
        if isinstance(op, gpu_d.GPUDeallocOp):
            return ("p", self._c_gpu_dealloc(op))
        if isinstance(op, gpu_d.GPUMemcpyOp):
            return ("p", self._c_gpu_memcpy(op))
        if isinstance(op, omp_d.OmpParallelOp):
            return ("p", self._c_omp_parallel(op))
        if isinstance(op, omp_d.OmpWsLoopOp):
            return ("p", self._c_omp_wsloop(op))
        if isinstance(op, omp_d.OmpBarrierOp):
            return ("p", self._c_omp_barrier(op))
        if isinstance(op, omp_d.OmpSingleOp):
            return ("p", self._c_omp_single(op))
        message = f"no interpretation for op {op.name}"
        def unsupported(state, regs):
            raise InterpreterError(message)
        return ("p", unsupported)

    # -- scalar ops (inlined into the generated block source) -------------------
    #: binary ops whose Python evaluation is inlined as an expression; every
    #: template must match the corresponding ``PY_FUNC`` exactly.
    _BINARY_EXPR = {
        arith.AddIOp: "({a} + {b})", arith.SubIOp: "({a} - {b})",
        arith.MulIOp: "({a} * {b})",
        arith.MinSIOp: "min({a}, {b})", arith.MaxSIOp: "max({a}, {b})",
        arith.AddFOp: "({a} + {b})", arith.SubFOp: "({a} - {b})",
        arith.MulFOp: "({a} * {b})",
        arith.MinFOp: "min({a}, {b})", arith.MaxFOp: "max({a}, {b})",
        arith.DivFOp: "({a} / {b} if {b} != 0.0 else float('inf'))",
    }
    _CMP_EXPR = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

    def _charged(self, cost: float, lines: List[str], ns=None):
        return ("src", [f"w[-1] += {cost!r}", *lines], ns or {})

    def _c_binary(self, op):
        ls, rs, ds = self.slot(op.lhs), self.slot(op.rhs), self.slot(op.result)
        ns = {}
        template = self._BINARY_EXPR.get(type(op))
        if template is not None:
            expr = template.format(a=f"regs[{ls}]", b=f"regs[{rs}]")
        else:
            name = self._name("f")
            ns[name] = op.PY_FUNC
            expr = f"{name}(regs[{ls}], regs[{rs}])"
        if op.result.type.is_integer or op.result.type.is_index:
            expr = f"int({expr})"
        return self._charged(op_cost(op.name), [f"regs[{ds}] = {expr}"], ns)

    def _c_cmp(self, op):
        ls, rs, ds = self.slot(op.lhs), self.slot(op.rhs), self.slot(op.result)
        cmp = self._CMP_EXPR[op.predicate]
        return self._charged(
            op_cost(op.name),
            [f"regs[{ds}] = 1 if regs[{ls}] {cmp} regs[{rs}] else 0"])

    def _c_cast(self, op):
        src, ds = self.slot(op.input), self.slot(op.result)
        convert = "float" if op.result.type.is_float else "int"
        return self._charged(op_cost(op.name), [f"regs[{ds}] = {convert}(regs[{src}])"])

    def _c_negf(self, op):
        src, ds = self.slot(op.operands[0]), self.slot(op.result)
        return self._charged(op_cost(op.name), [f"regs[{ds}] = -regs[{src}]"])

    def _c_select(self, op):
        cs = self.slot(op.condition)
        ts, fs, ds = self.slot(op.true_value), self.slot(op.false_value), self.slot(op.result)
        return self._charged(
            op_cost(op.name),
            [f"regs[{ds}] = regs[{ts}] if regs[{cs}] else regs[{fs}]"])

    def _c_math_unary(self, op):
        src, ds = self.slot(op.operands[0]), self.slot(op.result)
        name = self._name("f")
        return self._charged(
            op_cost("math.unary"),
            [f"regs[{ds}] = {name}(float(regs[{src}]))"],
            {name: math_d.UNARY_FUNCTIONS[op.fn]})

    def _c_math_pow(self, op):
        ls, rs, ds = self.slot(op.lhs), self.slot(op.rhs), self.slot(op.result)
        name = self._name("f")
        return self._charged(
            op_cost("math.powf"),
            [f"regs[{ds}] = {name}(regs[{ls}], regs[{rs}])"],
            {name: math_d.PowFOp.evaluate})

    # -- memory ops -------------------------------------------------------------
    def _c_alloc(self, op):
        size_slots = self.slots(op.operands)
        ds = self.slot(op.result)
        mtype = op.memref_type
        allocate = MemRefStorage.allocate
        def step(state, regs):
            sizes = [int(regs[s]) for s in size_slots]
            storage = allocate(mtype, sizes)
            state.work[-1] += 2.0
            regs[ds] = storage
        return step

    def _c_dealloc(self, op):
        ms = self.slot(op.memref)
        def step(state, regs):
            regs[ms].free()  # raises on double free (centralized in storage)
            state.work[-1] += 2.0
        return step

    def _mem_cost_prefix(self):
        return self.program.local_cost, self.program.global_base

    def _access_lines(self, memref_slot: int) -> List[str]:
        """Shared prologue of a load/store: liveness check + access charge.

        Leaves the storage in ``_s`` and its array in ``_a``; the
        use-after-free guard is centralized in ``MemRefStorage.check_alive``,
        and the cost and traffic accounting replicates ``memory_access_cost``
        exactly (memory space and element width are runtime properties of the
        buffer).
        """
        local_cost, global_base = self._mem_cost_prefix()
        return [
            f"_s = regs[{memref_slot}]",
            "_a = _s.check_alive()",
            "_sp = _s.memory_space",
            "if _sp == 'shared' or _sp == 'local':",
            f"    w[-1] += {local_cost!r}",
            "else:",
            "    _eb = _a.itemsize",
            f"    w[-1] += {global_base!r} * max(1.0, _eb / 4.0)",
            "    if _sp == 'global':",
            "        report.global_bytes += _eb",
        ]

    @staticmethod
    def _index_expr(idx_slots: Sequence[int]) -> str:
        return ", ".join(f"int(regs[{s}])" for s in idx_slots)

    def _c_load(self, op):
        ms = self.slot(op.memref)
        idx_slots = self.slots(op.indices)
        ds = self.slot(op.result)
        if not idx_slots:
            access = f"regs[{ds}] = _a.item()"
        elif len(idx_slots) == 1:
            access = f"regs[{ds}] = _a.item({self._index_expr(idx_slots)})"
        else:
            access = f"regs[{ds}] = _a.item(({self._index_expr(idx_slots)}))"
        return ("src", [*self._access_lines(ms), access], {})

    def _c_store(self, op):
        vs = self.slot(op.value)
        ms = self.slot(op.memref)
        idx_slots = self.slots(op.indices)
        target = self._index_expr(idx_slots) if idx_slots else "()"
        access = f"_a[{target}] = regs[{vs}]"
        return ("src", [*self._access_lines(ms), access], {})

    def _c_dim(self, op):
        ms, ds = self.slot(op.memref), self.slot(op.result)
        dim = op.dim
        def step(state, regs):
            regs[ds] = int(regs[ms].check_alive().shape[dim])
        return step

    def _c_copy(self, op):
        ss, ds = self.slot(op.source), self.slot(op.destination)
        _, global_base = self._mem_cost_prefix()
        def step(state, regs):
            source = regs[ss]
            destination = regs[ds]
            destination.copy_from(source)  # checks both buffers' liveness
            element_bytes = int(source.array.itemsize)
            state.work[-1] += (2.0 * int(source.array.size)
                               * (global_base * max(1.0, element_bytes / 4.0)))
            state.report.global_bytes += 2 * int(source.array.nbytes)
        return step

    # -- functions ---------------------------------------------------------------
    def _c_call(self, op, gen: bool):
        program = self.program
        callee = program.module.lookup(op.callee)
        if callee is None or callee.is_declaration:
            message = f"call to unknown function {op.callee!r}"
            def unknown(state, regs):
                raise InterpreterError(message)
            return ("p", unknown)
        use_gen = gen and program.function_may_yield(callee)
        arg_slots = self.slots(op.operands)
        res_slots = self.slots(op.results)
        cost = op_cost("func.call")
        cell: List[Optional[_CompiledFunction]] = [None]
        if use_gen:
            def step(state, regs):
                compiled = cell[0]
                if compiled is None:
                    compiled = cell[0] = program.function(callee, True)
                state.work[-1] += cost
                inner = compiled.template[:]
                for dst, src in zip(compiled.arg_slots, arg_slots):
                    inner[dst] = regs[src]
                yield from compiled.runner(state, inner)
                for dst, src in zip(res_slots, compiled.return_slots):
                    regs[dst] = inner[src]
            return ("g", step)
        def step(state, regs):
            compiled = cell[0]
            if compiled is None:
                compiled = cell[0] = program.function(callee, False)
            state.work[-1] += cost
            inner = compiled.template[:]
            for dst, src in zip(compiled.arg_slots, arg_slots):
                inner[dst] = regs[src]
            compiled.runner(state, inner)
            for dst, src in zip(res_slots, compiled.return_slots):
                regs[dst] = inner[src]
        return ("p", step)

    # -- structured control flow ---------------------------------------------------
    def _c_for(self, op, gen: bool):
        lb, ub, st = self.slot(op.lower_bound), self.slot(op.upper_bound), self.slot(op.step)
        iv_slot = self.slot(op.induction_var)
        init_slots = self.slots(op.iter_init)
        iter_slots = self.slots(op.iter_args)
        result_slots = self.slots(op.results)
        body = self.compile_block(op.body, gen=gen and self.program.op_may_yield(op))
        _, term = _split_executed(op.body)
        yield_slots = (self.slots(term.operands)
                       if isinstance(term, scf.YieldOp) and result_slots else None)
        cost = op_cost("scf.for")
        if gen:
            def run(state, regs):
                work = state.work
                work[-1] += cost
                lower = int(regs[lb])
                upper = int(regs[ub])
                step = int(regs[st])
                if step <= 0:
                    raise InterpreterError("scf.for requires a positive step")
                carried = [regs[s] for s in init_slots]
                iv = lower
                while iv < upper:
                    regs[iv_slot] = iv
                    for dst, value in zip(iter_slots, carried):
                        regs[dst] = value
                    yield from body(state, regs)
                    if yield_slots is not None:
                        carried = [regs[s] for s in yield_slots]
                    iv += step
                    work[-1] += cost
                for dst, value in zip(result_slots, carried):
                    regs[dst] = value
            return run
        if not iter_slots:
            def run(state, regs):
                work = state.work
                work[-1] += cost
                lower = int(regs[lb])
                upper = int(regs[ub])
                step = int(regs[st])
                if step <= 0:
                    raise InterpreterError("scf.for requires a positive step")
                iv = lower
                while iv < upper:
                    regs[iv_slot] = iv
                    body(state, regs)
                    iv += step
                    work[-1] += cost
            return run
        def run(state, regs):
            work = state.work
            work[-1] += cost
            lower = int(regs[lb])
            upper = int(regs[ub])
            step = int(regs[st])
            if step <= 0:
                raise InterpreterError("scf.for requires a positive step")
            carried = [regs[s] for s in init_slots]
            iv = lower
            while iv < upper:
                regs[iv_slot] = iv
                for dst, value in zip(iter_slots, carried):
                    regs[dst] = value
                body(state, regs)
                if yield_slots is not None:
                    carried = [regs[s] for s in yield_slots]
                iv += step
                work[-1] += cost
            for dst, value in zip(result_slots, carried):
                regs[dst] = value
        return run

    def _branch_copy_pairs(self, op, block):
        """(result_slot, yielded_slot) pairs for one scf.if branch."""
        if block is None or not op.results:
            return None
        _, term = _split_executed(block)
        if not isinstance(term, scf.YieldOp):
            return []
        return list(zip(self.slots(op.results), self.slots(term.operands)))

    def _c_if(self, op, gen: bool):
        cs = self.slot(op.condition)
        has_results = bool(op.results)
        then_gen = gen and any(self.program.op_may_yield(o) for o in op.then_block.operations)
        then_run = self.compile_block(op.then_block, gen=then_gen)
        then_copy = self._branch_copy_pairs(op, op.then_block) or []
        else_block = op.else_block
        if else_block is not None:
            else_gen = gen and any(self.program.op_may_yield(o) for o in else_block.operations)
            else_run = self.compile_block(else_block, gen=else_gen)
            else_copy = self._branch_copy_pairs(op, else_block) or []
        else:
            else_run = None
            else_copy = []
        cost = op_cost("scf.if")
        if gen:
            def run(state, regs):
                state.work[-1] += cost
                if regs[cs]:
                    result = then_run(state, regs)
                    if result is not None:
                        yield from result
                    for dst, src in then_copy:
                        regs[dst] = regs[src]
                elif else_run is not None:
                    result = else_run(state, regs)
                    if result is not None:
                        yield from result
                    for dst, src in else_copy:
                        regs[dst] = regs[src]
                elif has_results:
                    raise InterpreterError("scf.if with results requires an else branch")
            return run
        def run(state, regs):
            state.work[-1] += cost
            if regs[cs]:
                then_run(state, regs)
                for dst, src in then_copy:
                    regs[dst] = regs[src]
            elif else_run is not None:
                else_run(state, regs)
                for dst, src in else_copy:
                    regs[dst] = regs[src]
            elif has_results:
                raise InterpreterError("scf.if with results requires an else branch")
        return run

    def _c_while(self, op, gen: bool):
        init_slots = self.slots(op.init_args)
        before_args = self.slots(op.before_block.arguments)
        before_gen = gen and any(self.program.op_may_yield(o)
                                 for o in op.before_block.operations)
        before_run = self.compile_block(op.before_block, gen=before_gen)
        _, before_term = _split_executed(op.before_block)
        if isinstance(before_term, scf.ConditionOp):
            cond_slot = self.slot(before_term.condition)
            fwd_slots = self.slots(before_term.forwarded)
        else:
            cond_slot = None
            fwd_slots = []
        after_args = self.slots(op.after_block.arguments)
        after_gen = gen and any(self.program.op_may_yield(o)
                                for o in op.after_block.operations)
        after_run = self.compile_block(op.after_block, gen=after_gen)
        _, after_term = _split_executed(op.after_block)
        yield_slots = self.slots(after_term.operands) if isinstance(after_term, scf.YieldOp) else None
        result_slots = self.slots(op.results)
        cost = op_cost("scf.while")
        if gen:
            def run(state, regs):
                work = state.work
                carried = [regs[s] for s in init_slots]
                while True:
                    work[-1] += cost
                    for dst, value in zip(before_args, carried):
                        regs[dst] = value
                    result = before_run(state, regs)
                    if result is not None:
                        yield from result
                    if cond_slot is None:
                        raise InterpreterError(
                            "scf.while before-region did not reach scf.condition")
                    proceed = regs[cond_slot]
                    forwarded = [regs[s] for s in fwd_slots]
                    if not proceed:
                        for dst, value in zip(result_slots, forwarded):
                            regs[dst] = value
                        return
                    for dst, value in zip(after_args, forwarded):
                        regs[dst] = value
                    result = after_run(state, regs)
                    if result is not None:
                        yield from result
                    carried = ([regs[s] for s in yield_slots]
                               if yield_slots is not None else forwarded)
            return run
        def run(state, regs):
            work = state.work
            carried = [regs[s] for s in init_slots]
            while True:
                work[-1] += cost
                for dst, value in zip(before_args, carried):
                    regs[dst] = value
                before_run(state, regs)
                if cond_slot is None:
                    raise InterpreterError(
                        "scf.while before-region did not reach scf.condition")
                proceed = regs[cond_slot]
                forwarded = [regs[s] for s in fwd_slots]
                if not proceed:
                    for dst, value in zip(result_slots, forwarded):
                        regs[dst] = value
                    return
                for dst, value in zip(after_args, forwarded):
                    regs[dst] = value
                after_run(state, regs)
                carried = ([regs[s] for s in yield_slots]
                           if yield_slots is not None else forwarded)
        return run

    # -- parallel constructs ----------------------------------------------------
    #
    # Each shardable region compiles in two parts: a *plan* that can execute
    # any contiguous sub-span of the region's work (`run_span(state, regs,
    # ranges, start, stop)` for iteration spaces, `run_blocks(state, regs,
    # grid, block, start, stop)` for launch block grids) and a *wrapper*
    # that owns the sequential accounting (report counters, work frames,
    # wall-clock formulas) and runs the full span.  The vectorized engine
    # overrides the plans; the multicore engine overrides the region
    # methods to dispatch plan sub-spans to worker processes.
    def _parallel_span_plan(self, op) -> Callable:
        iv_slots = self.slots(op.induction_vars)
        body = self.compile_block(op.body, gen=False)

        def run_span(state, regs, ranges, start, stop):
            for point in _span_points(ranges, start, stop):
                for dst, value in zip(iv_slots, point):
                    regs[dst] = value
                body(state, regs)
        return run_span

    def _parallel_accounting(self, op) -> Callable:
        """The barrier-free ``scf.parallel`` wall-clock epilogue.

        Shared by the sequential wrapper and the multicore engine's shard
        dispatcher so the two paths can never drift apart: ``finish`` takes
        the region's summed work and charges the enclosing frame.
        """
        fork_cost = self.program.machine.fork_cost

        def finish(state, total, work):
            threads = min(state.threads, max(1, total))
            state.work[-1] += fork_cost + work / state.program.speedup(threads)
        return finish

    def _parallel_wrapper(self, op, run_span) -> Callable:
        lb_slots = self.slots(op.lower_bounds)
        ub_slots = self.slots(op.upper_bounds)
        st_slots = self.slots(op.steps)
        finish = self._parallel_accounting(op)

        def run(state, regs):
            ranges, total = _iteration_space(regs, lb_slots, ub_slots, st_slots)
            state.report.parallel_regions += 1
            work_stack = state.work
            work_stack.append(0.0)
            try:
                run_span(state, regs, ranges, 0, None)
            except _BarrierEscape:
                raise InterpreterError(
                    "unexpected barrier in barrier-free parallel loop") from None
            work = work_stack.pop()
            finish(state, total, work)
        return run

    def _c_scf_parallel_simt(self, op):
        program = self.program
        lb_slots = self.slots(op.lower_bounds)
        ub_slots = self.slots(op.upper_bounds)
        st_slots = self.slots(op.steps)
        iv_slots = self.slots(op.induction_vars)
        machine = program.machine
        fork_cost = machine.fork_cost
        phase_cost = machine.simt_phase_cost
        run_simt = self.compile_simt_body(op.body)

        def run(state, regs):
            ranges, total = _iteration_space(regs, lb_slots, ub_slots, st_slots)
            state.report.parallel_regions += 1
            work_stack = state.work
            work_stack.append(0.0)
            thread_regs = build_parallel_thread_regs(
                regs, iv_slots, product(*ranges))
            phases = run_simt(state, thread_regs)
            state.report.simt_phases += phases
            work = work_stack.pop()
            threads = min(state.threads, max(1, total))
            wall = (fork_cost + work / state.program.speedup(threads)
                    + phases * phase_cost)
            work_stack[-1] += wall
        return run

    def _c_scf_parallel(self, op):
        from ..analysis import contains_barrier

        if contains_barrier(op, immediate_region_only=True):
            return self._c_scf_parallel_simt(op)
        return self._parallel_wrapper(op, self._parallel_span_plan(op))

    def _launch_plan(self, op) -> Callable:
        arg_slots = self.slots(op.body.arguments)
        shared_allocas = []
        saved_prebound = self._prebound
        self._prebound = set(saved_prebound)
        for nested in op.body.operations:
            if isinstance(nested, memref_d.AllocaOp) and memref_d.is_shared_memref(nested.result):
                shared_allocas.append((self.slot(nested.result), nested.memref_type))
                self._prebound.add(id(nested.result))
        run_simt = self.compile_simt_body(op.body)
        self._prebound = saved_prebound

        def run_blocks(state, regs, grid, block, start, stop):
            g0, g1 = grid[0], grid[1]
            report = state.report
            for linear in range(start, stop):
                bx = linear % g0
                by = (linear // g0) % g1
                bz = linear // (g0 * g1)
                thread_regs = build_launch_thread_regs(
                    regs, arg_slots, bx, by, bz, grid, block)
                bind_shared_allocas(shared_allocas, thread_regs)
                phases = run_simt(state, thread_regs)
                report.simt_phases += phases
        return run_blocks

    def _launch_wrapper(self, op, run_blocks) -> Callable:
        grid_slots = self.slots(op.grid_dims)
        block_slots = self.slots(op.block_dims)

        def run(state, regs):
            grid = [int(regs[s]) for s in grid_slots]
            block = [int(regs[s]) for s in block_slots]
            run_blocks(state, regs, grid, block, 0, grid[0] * grid[1] * grid[2])
        return run

    def _c_gpu_launch(self, op):
        return self._launch_wrapper(op, self._launch_plan(op))

    def _c_gpu_alloc(self, op):
        size_slots = self.slots(op.operands)
        ds = self.slot(op.result)
        mtype = op.result.type
        allocate = MemRefStorage.allocate
        def step(state, regs):
            regs[ds] = allocate(mtype, [int(regs[s]) for s in size_slots])
        return step

    def _c_gpu_dealloc(self, op):
        ms = self.slot(op.memref)
        def step(state, regs):
            regs[ms].free()  # raises on double free (centralized in storage)
        return step

    def _c_gpu_memcpy(self, op):
        ds, ss = self.slot(op.destination), self.slot(op.source)
        def step(state, regs):
            regs[ds].copy_from(regs[ss])  # checks both buffers' liveness
        return step

    # -- OpenMP -------------------------------------------------------------------
    def _c_omp_parallel(self, op):
        nested = op.nest_level > 0
        body = self.compile_block(op.body, gen=False)
        machine = self.program.machine
        fork = machine.nested_fork_cost if nested else machine.fork_cost
        penalty = machine.false_sharing_penalty

        def run(state, regs):
            report = state.report
            report.parallel_regions += 1
            if nested:
                report.nested_regions += 1
            work_stack = state.work
            work_stack.append(0.0)
            try:
                body(state, regs)
            except _BarrierEscape:
                raise InterpreterError("GPU barrier inside an OpenMP region") from None
            work = work_stack.pop()
            if nested:
                work *= penalty
            work_stack[-1] += fork + work
        return run

    @staticmethod
    def _static_team(op) -> Tuple[bool, bool, Optional[int]]:
        """(has_parallel_parent, parent_is_nested, parent_num_threads)."""
        parent = op.parent_op
        while parent is not None and not isinstance(parent, omp_d.OmpParallelOp):
            parent = parent.parent_op
        if parent is None:
            return False, False, None
        return True, parent.nest_level > 0, parent.num_threads

    def _wsloop_span_plan(self, op) -> Callable:
        iv_slots = self.slots(op.induction_vars)
        body = self.compile_block(op.body, gen=False)

        def run_span(state, regs, ranges, start, stop):
            for point in _span_points(ranges, start, stop):
                for dst, value in zip(iv_slots, point):
                    regs[dst] = value
                body(state, regs)
        return run_span

    def _wsloop_accounting(self, op) -> Callable:
        """The ``omp.wsloop`` wall-clock epilogue (see _parallel_accounting)."""
        has_parent, parent_nested, parent_threads = self._static_team(op)
        nowait = op.nowait
        sync_cost = self.program.machine.sync_cost

        def finish(state, total, work):
            if not has_parent or parent_nested:
                team_size = 1
            else:
                team_size = parent_threads or state.threads
            team = min(team_size, max(1, total))
            wall = work / state.program.speedup(team)
            if not nowait:
                wall += sync_cost
            state.work[-1] += wall
        return finish

    def _wsloop_wrapper(self, op, run_span) -> Callable:
        lb_slots = self.slots(op.lower_bounds)
        ub_slots = self.slots(op.upper_bounds)
        st_slots = self.slots(op.steps)
        finish = self._wsloop_accounting(op)

        def run(state, regs):
            state.report.workshared_loops += 1
            ranges, total = _iteration_space(regs, lb_slots, ub_slots, st_slots)
            work_stack = state.work
            work_stack.append(0.0)
            try:
                run_span(state, regs, ranges, 0, None)
            except _BarrierEscape:
                raise InterpreterError("GPU barrier inside a workshared loop") from None
            work = work_stack.pop()
            finish(state, total, work)
        return run

    def _c_omp_wsloop(self, op):
        return self._wsloop_wrapper(op, self._wsloop_span_plan(op))

    def _c_omp_barrier(self, op):
        sync_cost = self.program.machine.sync_cost
        def step(state, regs):
            state.report.barriers += 1
            state.work[-1] += sync_cost
        return step

    def _c_omp_single(self, op):
        body = self.compile_block(op.body, gen=False)
        def run(state, regs):
            try:
                body(state, regs)
            except _BarrierEscape:
                raise InterpreterError("GPU barrier inside omp.single") from None
        return run


_Program.COMPILER = _FunctionCompiler


# ---------------------------------------------------------------------------
# Block-runner code generation
# ---------------------------------------------------------------------------
def _build_runner(items: Sequence[Tuple], nops: int, gen: bool) -> Callable:
    """Stitch compiled items into one straight-line block runner.

    The runner batches the block's dynamic-op count into a single increment
    (every op of a block executes exactly once per block execution), splices
    inlined op source (``src`` items) directly into the generated body, and
    invokes the remaining step closures without any per-op dispatch.  ``gen``
    blocks become generator functions yielding at barriers.
    """
    namespace = {"_IE": InterpreterError, "_B": _BARRIER}
    lines = [
        "def run(state, regs):",
        "    report = state.report",
        f"    report.dynamic_ops += {nops}",
        "    if state.max_ops is not None and report.dynamic_ops > state.max_ops:",
        "        raise _IE('dynamic operation budget exceeded')",
        "    w = state.work",
    ]
    needs_yield = False
    for index, item in enumerate(items):
        kind = item[0]
        if kind == "src":
            _, src_lines, ns = item
            namespace.update(ns)
            lines.extend(f"    {line}" for line in src_lines)
        elif kind == "p":
            namespace[f"s{index}"] = item[1]
            lines.append(f"    s{index}(state, regs)")
        elif kind == "g":
            namespace[f"s{index}"] = item[1]
            lines.append(f"    yield from s{index}(state, regs)")
            needs_yield = True
        else:  # barrier
            lines.append("    yield _B")
            needs_yield = True
    if gen and not needs_yield:
        lines.append("    if False:")
        lines.append("        yield None")
    exec("\n".join(lines), namespace)  # noqa: S102 - compile-time codegen
    return namespace["run"]


# ---------------------------------------------------------------------------
# Engine front end
# ---------------------------------------------------------------------------
class CompiledEngine:
    """Drop-in replacement for :class:`Interpreter` backed by compiled closures.

    The first :meth:`run` of a function triggers its one-time translation;
    subsequent runs (same module, same machine) reuse the compiled program,
    including across engine instances.
    """

    #: program flavour; subclasses (the vectorized engine) override this.
    PROGRAM_CLS = _Program

    def __init__(self, module: func_d.ModuleOp, machine: MachineModel = XEON_8375C,
                 threads: Optional[int] = None, collect_cost: bool = True,
                 max_dynamic_ops: Optional[int] = None) -> None:
        self.module = module
        self.machine = machine
        self.threads = threads if threads is not None else machine.cores
        self.collect_cost = collect_cost
        self.max_dynamic_ops = max_dynamic_ops
        self.report = CostReport(machine=machine, threads=self.threads)
        self._program = self._build_program(module, machine)
        self._work: List[float] = [0.0]

    def _program_cls(self) -> type:
        """Program flavour hook (the multicore engine picks per instance)."""
        return type(self).PROGRAM_CLS

    def _build_program(self, module: func_d.ModuleOp,
                       machine: MachineModel) -> _Program:
        """Program construction hook (the native engine keys the cache by
        its codegen options and passes them to the program)."""
        return program_for(module, machine, self._program_cls())

    def _make_state(self) -> _State:
        """Per-run execution state hook (the multicore engine attaches its
        shard-dispatch context here)."""
        return _State(self.report, self.threads, self._work,
                      self.max_dynamic_ops, self._program,
                      strict=getattr(self, "_resilience_strict", False))

    def run(self, function_name: str, arguments: Sequence = ()) -> List:
        """Execute ``function_name`` with the given arguments (Interpreter API)."""
        fn = self.module.lookup(function_name)
        if fn is None or fn.is_declaration:
            raise InterpreterError(f"no function body for {function_name!r}")
        if len(arguments) != len(fn.arguments):
            raise InterpreterError(
                f"{fn.sym_name}: expected {len(fn.arguments)} arguments, got {len(arguments)}")
        compiled = self._program.function(fn, gen=False)
        state = self._make_state()
        regs = compiled.template[:]
        for slot, argument in zip(compiled.arg_slots, arguments):
            regs[slot] = self._wrap_argument(argument)
        try:
            compiled.runner(state, regs)
        except _BarrierEscape:
            raise InterpreterError("barrier executed outside a parallel context") from None
        results = [regs[s] for s in compiled.return_slots]
        if self.collect_cost:
            self.report.cycles += self._work[0]
        self._work[0] = 0.0
        return results

    @staticmethod
    def _wrap_argument(argument):
        if isinstance(argument, np.ndarray):
            return MemRefStorage.from_numpy(argument)
        return argument


def _make_compiled(module, *, machine=XEON_8375C, threads=None,
                   collect_cost=True, max_dynamic_ops=None, workers=None):
    # ``workers`` is a multicore-engine knob; the compiled engine ignores it.
    return CompiledEngine(module, machine=machine, threads=threads,
                          collect_cost=collect_cost, max_dynamic_ops=max_dynamic_ops)


register_engine(
    "compiled", _make_compiled, order=0,
    description="one-time translation of IR to specialized Python closures")
