"""Vectorized SIMT engine: whole-grid NumPy execution between barriers.

The compiled engine (PR 1) removed per-op dispatch but still runs every SIMT
thread / parallel-loop iteration as a separate Python closure call.  This
module exploits the same structural invariant the paper uses for barrier
elimination — *a barrier splits a thread body into phases that are
independent across threads within a phase* (§III-A) — to execute each
barrier-delimited phase for **all threads at once** as NumPy array
operations:

* SSA registers become full-width arrays of shape ``(num_lanes,)``
  (``float64``/``int64``, matching the interpreter's Python-scalar
  arithmetic bit for bit);
* thread-index induction variables become precomputed index grids
  (broadcast ``arange`` / ``meshgrid`` lane arrays in thread order);
* loads become fancy-indexed gathers (``MemRefStorage.load_block``),
  stores become scatter assignments (``store_block``; duplicate indices
  resolve last-writer-wins in lane order, matching sequential thread
  order);
* thread-local scalar/array ``memref.alloca`` cells become per-lane
  buffers of shape ``(num_lanes, *shape)``;
* ``scf.if`` under a varying condition becomes masked execution
  (full-width boolean masks, ``np.where`` merges for results);
* ``scf.for`` with lane-invariant bounds runs the loop sequentially with a
  vectorized body.

Phases containing unsupported ops (nested parallelism, ``scf.while``,
calls, deallocs, lane-varying loop bounds, ...) fall back *per phase* to
the compiled closures — correctness never depends on the analyzer being
complete.  Regions whose barriers sit under control flow fall back
wholesale to the compiled generator scheduling.

Cost accounting is computed analytically (per-op static cost × lane count,
the same ``memory_access_cost`` formulas × access count).  Because every
per-op charge on the supported machines is an exact binary fraction
(multiples of 2⁻⁸), float accumulation is associative in exact arithmetic
and the grouped analytic totals are **bit-identical** to the interpreter's
sequential per-thread accumulation; machines with non-dyadic access costs
(e.g. ``A64FX_CMG``'s HBM factor) disable vectorization entirely and fall
back to the compiled engine.  ``dynamic_ops``, phase counts and traffic
counters are replicated exactly; like the compiled engine, the
``max_dynamic_ops`` budget is checked per block of lanes rather than per
scalar op (the counter itself stays exact).

Known, documented divergences from the interpreter (shared with the spirit
of the compiled engine's): lockstep execution reorders memory operations
*across lanes* within a phase, which is unobservable for race-free programs
(the language model already declares intra-phase cross-thread dependencies
racy), and integer SSA values live in ``int64`` lanes instead of unbounded
Python ints.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..dialects import arith, math as math_d, memref as memref_d, scf
from ..ir import MemRefType
from .compiler import (
    CompiledEngine,
    _BARRIER_OPS,
    _FunctionCompiler,
    _Program,
    _build_runner,
    _iteration_space,
    _split_executed,
    bind_shared_allocas,
    build_launch_thread_regs,
    build_parallel_thread_regs,
)
from .costmodel import MachineModel, XEON_8375C, op_cost
from .errors import InterpreterError
from .memory import MemRefStorage, dtype_for
from .registry import register_engine

_U = "u"  # uniform: one Python scalar (or storage) shared by all lanes
_V = "v"  # varying: a full-width (num_lanes,) numpy array

#: maximum scf.if/scf.for nesting depth the vectorizer will analyze.  The
#: dry-run classification passes (branch kind joins, iter-arg fixpoints)
#: re-emit nested bodies, so emission work grows with ~2^depth; beyond this
#: depth the phase falls back to closures instead of compiling slowly.
_MAX_NESTING = 10


class _Unsupported(Exception):
    """A phase contains an op the vectorizer cannot (profitably) handle."""


def _exact_cycles(cost: float) -> bool:
    """True if ``cost`` is an exact multiple of 2^-8 (binary fraction).

    Sums of such values are exact in float64 (well below the 2^53 mantissa
    budget for any realistic simulated run), which is what makes the
    analytic ``cost * count`` accounting bit-identical to the interpreter's
    sequential accumulation regardless of grouping.
    """
    scaled = cost * 256.0
    return scaled == int(scaled)


def machine_vectorizable(machine: MachineModel) -> bool:
    """Whether the machine's per-access costs allow exact analytic charging."""
    return (_exact_cycles(machine.local_access_cost)
            and _exact_cycles(machine.global_access_cost * machine.hbm_bandwidth_factor))


# ---------------------------------------------------------------------------
# Runtime helpers captured by generated phase code
# ---------------------------------------------------------------------------
def _v_divf(a, b):
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(all="ignore"):
        return np.where(b != 0.0, np.asarray(a, dtype=np.float64) / b, np.inf)


def _v_divsi(a, b):
    af = np.asarray(a, dtype=np.float64)
    bf = np.asarray(b, dtype=np.float64)
    with np.errstate(all="ignore"):
        quotient = np.where(bf != 0.0, af / bf, 0.0)
        return np.trunc(quotient).astype(np.int64)


def _v_remsi(a, b):
    # the interpreter evaluates ``int(math.fmod(a, b))`` — both operands
    # round-trip through float64 (lossy above 2^53) before the C fmod, so
    # the lanes must take the same float path, not exact int64 fmod.
    b64 = np.asarray(b, dtype=np.int64)
    af = np.asarray(a, dtype=np.float64)
    bf = np.asarray(b, dtype=np.float64)
    with np.errstate(all="ignore"):
        return np.where(b64 != 0, np.fmod(af, bf), 0.0).astype(np.int64)


def _v_remf(a, b):
    b = np.asarray(b, dtype=np.float64)
    with np.errstate(all="ignore"):
        return np.where(b != 0.0, np.fmod(np.asarray(a, dtype=np.float64), b), np.nan)


def _v_fptosi(values, mask, n):
    """Float-to-int lanes with the interpreter's ``int(value)`` error
    semantics: NaN/inf on an *active* lane raises (inactive lanes may hold
    garbage by design and are excluded from the check)."""
    arr = np.asarray(values, dtype=np.float64)
    active = arr if mask is None else arr[mask]
    if bool(np.isnan(active).any()):
        raise ValueError("cannot convert float NaN to integer")
    if bool(np.isinf(active).any()):
        raise OverflowError("cannot convert float infinity to integer")
    with np.errstate(all="ignore"):
        return arr.astype(np.int64)


def _v_minf(a, b):
    """Python ``min`` semantics per lane: second argument wins only when
    strictly smaller — unlike ``np.minimum``, NaN does not propagate from
    the second position (``min(1.0, nan) == 1.0``)."""
    with np.errstate(all="ignore"):
        return np.where(np.asarray(b) < np.asarray(a), b, a)


def _v_maxf(a, b):
    """Python ``max`` semantics per lane (see :func:`_v_minf`)."""
    with np.errstate(all="ignore"):
        return np.where(np.asarray(b) > np.asarray(a), b, a)


def _v_map(fn, values, mask, n):
    """Elementwise Python-function map over active lanes (math.* parity).

    The interpreter evaluates ``math.<fn>`` through the exact Python
    callables in ``UNARY_FUNCTIONS``; numpy's SIMD transcendentals can
    differ in the last ulp, so parity requires the Python loop.  Only
    active lanes are evaluated (inactive lanes may hold garbage that the
    Python functions would reject).
    """
    values = np.broadcast_to(np.asarray(values, dtype=np.float64), (n,))
    out = np.zeros(n, dtype=np.float64)
    if mask is None:
        for i in range(n):
            out[i] = fn(float(values[i]))
    else:
        for i in np.flatnonzero(mask):
            out[i] = fn(float(values[i]))
    return out


def _v_map2(fn, lhs, rhs, mask, n):
    lhs = np.broadcast_to(np.asarray(lhs, dtype=np.float64), (n,))
    rhs = np.broadcast_to(np.asarray(rhs, dtype=np.float64), (n,))
    out = np.zeros(n, dtype=np.float64)
    if mask is None:
        for i in range(n):
            out[i] = fn(float(lhs[i]), float(rhs[i]))
    else:
        for i in np.flatnonzero(mask):
            out[i] = fn(float(lhs[i]), float(rhs[i]))
    return out


def _v_bcast(value, n, dtype):
    return np.broadcast_to(np.asarray(value, dtype=dtype), (n,))


def _lane_arrays(ranges: Sequence[range]) -> List[np.ndarray]:
    """Flattened row-major index grids, one per dimension, in lane order.

    Lane order equals ``itertools.product(*ranges)`` order, i.e. the
    sequential thread order of the interpreter — which is what makes
    last-writer-wins scatters match sequential stores.
    """
    axes = [np.arange(r.start, r.stop, r.step, dtype=np.int64) for r in ranges]
    grids = np.meshgrid(*axes, indexing="ij")
    return [g.reshape(-1) for g in grids]


class _LaneBuffer:
    """Compile-time record of a per-lane alloca: vector rep ``(N, *shape)``."""

    __slots__ = ("slot", "shape", "dtype", "space", "element_type")

    def __init__(self, slot: int, shape: Tuple[int, ...], dtype, space: str,
                 element_type) -> None:
        self.slot = slot
        self.shape = shape
        self.dtype = dtype
        self.space = space
        self.element_type = element_type


class _VectorPhase:
    """One compiled phase: ``run(state, regs, n, lanes)`` + its interface.

    ``reads``/``buf_reads``/``buf_writes``/``created``/``defs`` describe the
    phase's boundary traffic for the mixed-mode adapter (gather live-ins
    from per-thread register lists, scatter definitions back); ``source``
    keeps the generated code for debugging.
    """

    __slots__ = ("run", "source", "reads", "buf_reads", "buf_writes",
                 "created", "defs")

    def __init__(self, run, source, reads, buf_reads, buf_writes,
                 created, defs) -> None:
        self.run = run
        self.source = source
        self.reads = reads          # {slot: np.dtype} varying scalar live-ins
        self.buf_reads = buf_reads  # set of lane-buffer slots gathered
        self.buf_writes = buf_writes  # pre-existing lane buffers written
        self.created = created      # [(slot, shape, dtype, space, elem_type)]
        self.defs = defs            # [(slot, "u"|"v")] top-level scalar defs


class _Ctx:
    """Compile-time execution context: active mask + active-lane count expr."""

    __slots__ = ("mask", "count")

    def __init__(self, mask: Optional[str], count: str) -> None:
        self.mask = mask    # name of a full-width boolean mask, or None
        self.count = count  # expression for the active lane count


#: numpy expression templates for lane-varying binary arithmetic; must agree
#: elementwise with the ops' ``PY_FUNC`` on float64/int64 lanes.
_NP_BINARY = {
    arith.AddIOp: "({a} + {b})",
    arith.SubIOp: "({a} - {b})",
    arith.MulIOp: "({a} * {b})",
    arith.AndIOp: "({a} & {b})",
    arith.OrIOp: "({a} | {b})",
    arith.XOrIOp: "({a} ^ {b})",
    arith.ShLIOp: "({a} << {b})",
    arith.ShRSIOp: "({a} >> {b})",
    arith.MinSIOp: "np.minimum({a}, {b})",
    arith.MaxSIOp: "np.maximum({a}, {b})",
    arith.AddFOp: "({a} + {b})",
    arith.SubFOp: "({a} - {b})",
    arith.MulFOp: "({a} * {b})",
    arith.MinFOp: "_v_minf({a}, {b})",
    arith.MaxFOp: "_v_maxf({a}, {b})",
    arith.DivFOp: "_v_divf({a}, {b})",
    arith.DivSIOp: "_v_divsi({a}, {b})",
    arith.RemSIOp: "_v_remsi({a}, {b})",
    arith.RemFOp: "_v_remf({a}, {b})",
}

_BASE_NAMESPACE = {
    "np": np,
    "_IE": InterpreterError,
    "_v_divf": _v_divf,
    "_v_divsi": _v_divsi,
    "_v_remsi": _v_remsi,
    "_v_remf": _v_remf,
    "_v_minf": _v_minf,
    "_v_maxf": _v_maxf,
    "_v_fptosi": _v_fptosi,
    "_v_map": _v_map,
    "_v_map2": _v_map2,
    "_v_bcast": _v_bcast,
}


def _np_dtype_name(value) -> str:
    return "np.float64" if value.type.is_float else "np.int64"


def _np_dtype(value):
    return np.float64 if value.type.is_float else np.int64


# ---------------------------------------------------------------------------
# The region vectorizer: classification + source emission, one parallel region
# ---------------------------------------------------------------------------
class _RegionVectorizer:
    """Compiles the barrier-delimited phases of one parallel region.

    Value-kind classification (uniform vs. varying vs. per-lane buffer) is
    shared across the region's phases so a slot defined in phase *k* keeps
    its representation when phase *j > k* reads it — including across
    fallback phases, whose top-level definitions are registered
    conservatively as varying.
    """

    def __init__(self, fc: "_VectorFunctionCompiler") -> None:
        self.fc = fc
        self.program = fc.program
        self.local_cost = self.program.local_cost
        self.global_base = self.program.global_base
        self.kinds: Dict[int, str] = {}
        self.lane_bufs: Dict[int, _LaneBuffer] = {}
        # thread-index provenance ("taint"): slots / rank-0 cells holding a
        # value derived from a lane index, used by the single-lane-guard
        # profitability heuristic (``if (tid == c)`` selects O(1) lanes,
        # ``if (flag[tid] == c)`` may select many).
        self.lane_taint: Set[int] = set()
        self.taint_bufs: Set[int] = set()
        # per-phase emission state
        self.lines: List[str] = []
        self.ns: Dict[str, object] = {}
        self._indent = 0
        self._defined: Set[int] = set()
        self._reads: Dict[int, object] = {}
        self._assign_log: List[int] = []
        self._created: List[int] = []
        self._buf_writes: Set[int] = set()
        self._depth = 0

    # -- shared helpers --------------------------------------------------------
    def mark_varying(self, slot: int) -> None:
        self.kinds[slot] = _V

    def mark_lane_index(self, slot: int) -> None:
        self.kinds[slot] = _V
        self.lane_taint.add(slot)

    def is_lane_index(self, value) -> bool:
        return self.slot(value) in self.lane_taint

    def slot(self, value) -> int:
        return self.fc.slot(value)

    def kind_of(self, value) -> str:
        slot = self.slot(value)
        if slot in self.lane_bufs:
            return "buf"
        return self.kinds.get(slot, _U)

    def require_exact(self, cost: float) -> None:
        if not _exact_cycles(cost):
            raise _Unsupported(f"non-dyadic op cost {cost}")

    def register_fallback_defs(self, ops: Sequence) -> None:
        """Record the top-level definitions of a closure-executed phase.

        Scalar results become (conservatively) varying; statically shaped
        per-lane allocations become lane buffers the mixed-mode adapter can
        stack/unstack; everything else stays opaque, which makes any later
        vectorized phase reading it fall back too (its memref operand will
        be classified varying, an unsupported combination).
        """
        for op in ops:
            if isinstance(op, arith.ConstantOp):
                self.fc.template[self.slot(op.result)] = op.value
                continue
            if isinstance(op, memref_d.AllocOp):
                if id(op.result) in self.fc._prebound:
                    continue  # uniform per-block storage bound by the runner
                if not op.operands:
                    mtype = op.memref_type
                    slot = self.slot(op.result)
                    self.lane_bufs[slot] = _LaneBuffer(
                        slot, tuple(mtype.shape), dtype_for(mtype.element_type),
                        mtype.memory_space, mtype.element_type)
                    continue
                # dynamically sized: opaque — later vector phases reading it
                # will classify the operand varying and fall back themselves.
            for result in op.results:
                self.mark_varying(self.slot(result))

    # -- emission primitives ----------------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append("    " * self._indent + line)

    def charge(self, cost: float, ctx: _Ctx) -> None:
        self.require_exact(cost)
        if cost:
            self.emit(f"w[-1] += {cost!r} * {ctx.count}")

    def count_ops(self, nops: int, count: str) -> None:
        if not nops:
            return
        self.emit(f"report.dynamic_ops += {nops} * {count}")
        self.emit("if state.max_ops is not None and report.dynamic_ops > state.max_ops:")
        self.emit("    raise _IE('dynamic operation budget exceeded')")

    def ref(self, value) -> str:
        """R-value expression for an SSA value; records live-in reads."""
        slot = self.slot(value)
        if slot not in self._defined and (slot in self.lane_bufs
                                          or self.kinds.get(slot) == _V):
            self._reads.setdefault(slot, value)
        return f"regs[{slot}]"

    def define(self, value, kind: str) -> str:
        """L-value expression for an SSA result; records the definition."""
        slot = self.slot(value)
        self._defined.add(slot)
        self._assign_log.append(slot)
        self.lane_taint.discard(slot)
        if kind == _V:
            self.kinds[slot] = _V
        else:
            self.kinds.pop(slot, None)
        return f"regs[{slot}]"

    def _snapshot(self):
        return (len(self.lines), self._indent, dict(self.kinds),
                dict(self.lane_bufs), set(self._defined), dict(self._reads),
                list(self._assign_log), list(self._created), set(self._buf_writes),
                set(self.lane_taint), set(self.taint_bufs))

    def _restore(self, snap) -> None:
        (nlines, indent, kinds, bufs, defined, reads, log, created, writes,
         taint, taint_bufs) = snap
        del self.lines[nlines:]
        self._indent = indent
        self.kinds = kinds
        self.lane_bufs = bufs
        self._defined = defined
        self._reads = reads
        self._assign_log = log
        self._created = created
        self._buf_writes = writes
        self.lane_taint = taint
        self.taint_bufs = taint_bufs

    # -- phase compilation -------------------------------------------------------
    def vectorize_phase(self, ops: Sequence, nops: int) -> _VectorPhase:
        self.lines = []
        self.ns = dict(_BASE_NAMESPACE)
        self._indent = 2
        self._defined = set()
        self._reads = {}
        self._assign_log = []
        self._created = []
        self._buf_writes = set()
        self._depth = 0

        ctx = _Ctx(mask=None, count="_N")
        for op in ops:
            self.emit_op(op, ctx)

        name = self.fc._name("vphase")
        header = [
            f"def {name}(state, regs, _N, _lanes):",
            "    report = state.report",
            "    w = state.work",
        ]
        count_lines = []
        if nops:
            count_lines = [
                f"    report.dynamic_ops += {nops} * _N",
                "    if state.max_ops is not None and report.dynamic_ops > state.max_ops:",
                "        raise _IE('dynamic operation budget exceeded')",
            ]
        body = self.lines if self.lines else ["        pass"]
        source = "\n".join(header + count_lines
                           + ["    with np.errstate(all='ignore'):"] + body)
        exec(source, self.ns)  # noqa: S102 - compile-time codegen
        run = self.ns[name]

        created_slots = set(self._created)
        reads = {}
        buf_reads = set()
        for slot, value in self._reads.items():
            if slot in self.lane_bufs:
                if slot not in created_slots:
                    buf_reads.add(slot)
            else:
                reads[slot] = _np_dtype(value)
        buf_writes = {slot for slot in self._buf_writes if slot not in created_slots}
        top_result_slots = {self.slot(result) for op in ops for result in op.results}
        # only top-level allocas can be read by later phases (SSA dominance);
        # branch-local ones must not be materialized (their lanes may not
        # even have executed the allocation).
        created = [(slot, self.lane_bufs[slot].shape, self.lane_bufs[slot].dtype,
                    self.lane_bufs[slot].space, self.lane_bufs[slot].element_type)
                   for slot in self._created if slot in top_result_slots]
        defs = []
        for op in ops:
            if isinstance(op, arith.ConstantOp):
                continue  # template-initialized; already in every thread's regs
            for result in op.results:
                slot = self.slot(result)
                if slot in created_slots or slot in self.lane_bufs:
                    continue
                defs.append((slot, self.kinds.get(slot, _U)))
        return _VectorPhase(run, source, reads, buf_reads, buf_writes,
                            created, defs)

    # -- op emission -------------------------------------------------------------
    def emit_op(self, op, ctx: _Ctx) -> None:
        if isinstance(op, arith.ConstantOp):
            self.fc.template[self.slot(op.result)] = op.value
            self._defined.add(self.slot(op.result))
            return
        if isinstance(op, arith.BinaryOp):
            return self.emit_binary(op, ctx)
        if isinstance(op, arith._CmpOp):
            return self.emit_cmp(op, ctx)
        if isinstance(op, arith._CastOp):
            return self.emit_cast(op, ctx)
        if isinstance(op, arith.NegFOp):
            return self.emit_negf(op, ctx)
        if isinstance(op, arith.SelectOp):
            return self.emit_select(op, ctx)
        if isinstance(op, math_d.UnaryMathOp):
            return self.emit_math_unary(op, ctx)
        if isinstance(op, math_d.PowFOp):
            return self.emit_math_pow(op, ctx)
        if isinstance(op, memref_d.AllocOp):  # covers AllocaOp
            return self.emit_alloc(op, ctx)
        if isinstance(op, memref_d.LoadOp):
            return self.emit_load(op, ctx)
        if isinstance(op, memref_d.StoreOp):
            return self.emit_store(op, ctx)
        if isinstance(op, memref_d.DimOp):
            return self.emit_dim(op, ctx)
        if isinstance(op, scf.IfOp):
            return self.emit_if(op, ctx)
        if isinstance(op, scf.ForOp):
            return self.emit_for(op, ctx)
        raise _Unsupported(f"op {op.name} is not vectorizable")

    # -- scalar compute ----------------------------------------------------------
    def emit_binary(self, op, ctx: _Ctx) -> None:
        cost = op_cost(op.name)
        lhs_k, rhs_k = self.kind_of(op.lhs), self.kind_of(op.rhs)
        if "buf" in (lhs_k, rhs_k):
            raise _Unsupported("arithmetic on a memref value")
        varying = _V in (lhs_k, rhs_k)
        a, b = self.ref(op.lhs), self.ref(op.rhs)
        if varying:
            template = _NP_BINARY.get(type(op))
            if template is None:
                raise _Unsupported(f"no vector template for {op.name}")
            expr = template.format(a=a, b=b)
        else:
            template = _FunctionCompiler._BINARY_EXPR.get(type(op))
            if template is not None:
                expr = template.format(a=a, b=b)
            else:
                fn = self.fc._name("f")
                self.ns[fn] = op.PY_FUNC
                expr = f"{fn}({a}, {b})"
            if op.result.type.is_integer or op.result.type.is_index:
                expr = f"int({expr})"
        self.charge(cost, ctx)
        tainted = (isinstance(op, (arith.AddIOp, arith.SubIOp, arith.MulIOp))
                   and ((self.is_lane_index(op.lhs) and rhs_k == _U)
                        or (self.is_lane_index(op.rhs) and lhs_k == _U)))
        target = self.define(op.result, _V if varying else _U)
        if tainted:
            self.lane_taint.add(self.slot(op.result))
        self.emit(f"{target} = {expr}")

    def emit_cmp(self, op, ctx: _Ctx) -> None:
        cost = op_cost(op.name)
        varying = _V in (self.kind_of(op.lhs), self.kind_of(op.rhs))
        a, b = self.ref(op.lhs), self.ref(op.rhs)
        cmp = _FunctionCompiler._CMP_EXPR[op.predicate]
        self.charge(cost, ctx)
        target = self.define(op.result, _V if varying else _U)
        if varying:
            self.emit(f"{target} = ({a} {cmp} {b}).astype(np.int64)")
        else:
            self.emit(f"{target} = 1 if {a} {cmp} {b} else 0")

    def emit_cast(self, op, ctx: _Ctx) -> None:
        cost = op_cost(op.name)
        varying = self.kind_of(op.input) == _V
        tainted = self.is_lane_index(op.input)
        src = self.ref(op.input)
        self.charge(cost, ctx)
        target = self.define(op.result, _V if varying else _U)
        if tainted:
            self.lane_taint.add(self.slot(op.result))
        if varying:
            if op.result.type.is_float:
                self.emit(f"{target} = np.asarray({src}).astype(np.float64)")
            elif op.input.type.is_float:
                # int(value) raises on NaN/inf in the interpreter
                mask = ctx.mask or "None"
                self.emit(f"{target} = _v_fptosi({src}, {mask}, _N)")
            else:
                self.emit(f"{target} = np.asarray({src}).astype(np.int64)")
        else:
            convert = "float" if op.result.type.is_float else "int"
            self.emit(f"{target} = {convert}({src})")

    def emit_negf(self, op, ctx: _Ctx) -> None:
        varying = self.kind_of(op.operands[0]) == _V
        src = self.ref(op.operands[0])
        self.charge(op_cost(op.name), ctx)
        target = self.define(op.result, _V if varying else _U)
        self.emit(f"{target} = -{src}")

    def emit_select(self, op, ctx: _Ctx) -> None:
        kinds = [self.kind_of(op.condition), self.kind_of(op.true_value),
                 self.kind_of(op.false_value)]
        if "buf" in kinds or isinstance(op.result.type, MemRefType):
            raise _Unsupported("select over memref values")
        varying = _V in kinds
        c = self.ref(op.condition)
        t, f = self.ref(op.true_value), self.ref(op.false_value)
        self.charge(op_cost(op.name), ctx)
        target = self.define(op.result, _V if varying else _U)
        if varying:
            self.emit(f"{target} = np.where(np.asarray({c}) != 0, {t}, {f})")
        else:
            self.emit(f"{target} = {t} if {c} else {f}")

    def emit_math_unary(self, op, ctx: _Ctx) -> None:
        varying = self.kind_of(op.operands[0]) == _V
        src = self.ref(op.operands[0])
        fn = self.fc._name("f")
        self.ns[fn] = math_d.UNARY_FUNCTIONS[op.fn]
        self.charge(op_cost("math.unary"), ctx)
        target = self.define(op.result, _V if varying else _U)
        if varying:
            mask = ctx.mask or "None"
            self.emit(f"{target} = _v_map({fn}, {src}, {mask}, _N)")
        else:
            self.emit(f"{target} = {fn}(float({src}))")

    def emit_math_pow(self, op, ctx: _Ctx) -> None:
        varying = _V in (self.kind_of(op.lhs), self.kind_of(op.rhs))
        a, b = self.ref(op.lhs), self.ref(op.rhs)
        fn = self.fc._name("f")
        self.ns[fn] = math_d.PowFOp.evaluate
        self.charge(op_cost("math.powf"), ctx)
        target = self.define(op.result, _V if varying else _U)
        if varying:
            mask = ctx.mask or "None"
            self.emit(f"{target} = _v_map2({fn}, {a}, {b}, {mask}, _N)")
        else:
            self.emit(f"{target} = {fn}({a}, {b})")

    # -- memory ------------------------------------------------------------------
    def emit_alloc(self, op, ctx: _Ctx) -> None:
        if id(op.result) in self.fc._prebound:
            # launch-prebound shared buffer: bound uniformly by the region
            # runner; counted as a dynamic op but no action and no charge,
            # exactly like the interpreter's pre-bound early return.
            self._defined.add(self.slot(op.result))
            return
        if op.operands:
            raise _Unsupported("dynamically sized per-lane allocation")
        mtype = op.memref_type
        shape = tuple(int(extent) for extent in mtype.shape)
        dtype = dtype_for(mtype.element_type)
        slot = self.slot(op.result)
        self.charge(2.0, ctx)
        dt = self.fc._name("dt")
        self.ns[dt] = dtype
        self._defined.add(slot)
        self._assign_log.append(slot)
        self.lane_bufs[slot] = _LaneBuffer(slot, shape, dtype,
                                           mtype.memory_space, mtype.element_type)
        self._created.append(slot)
        self.emit(f"regs[{slot}] = np.zeros((_N,) + {shape!r}, dtype={dt})")

    def _lane_buf_charge(self, buf: _LaneBuffer, ctx: _Ctx) -> None:
        if buf.space in ("shared", "local"):
            self.charge(self.local_cost, ctx)
        else:
            itemsize = int(np.dtype(buf.dtype).itemsize)
            self.charge(self.global_base * max(1.0, itemsize / 4.0), ctx)
            if buf.space == "global":
                self.emit(f"report.global_bytes += {itemsize} * {ctx.count}")

    def _storage_charge_lines(self, svar: str, ctx: _Ctx) -> None:
        """Runtime-space charge for a uniform storage access (post-access)."""
        self.emit(f"if {svar}.memory_space == 'shared' or {svar}.memory_space == 'local':")
        self.emit(f"    w[-1] += {self.local_cost!r} * {ctx.count}")
        self.emit("else:")
        eb = self.fc._name("eb")
        self.emit(f"    {eb} = {svar}.array.itemsize")
        self.emit(f"    w[-1] += {self.global_base!r} * max(1.0, {eb} / 4.0) * {ctx.count}")
        self.emit(f"    if {svar}.memory_space == 'global':")
        self.emit(f"        report.global_bytes += {eb} * {ctx.count}")

    def _masked(self, expr: str, kind: str, ctx: _Ctx) -> str:
        """Compress a varying operand to active lanes (uniforms pass through)."""
        if kind == _V and ctx.mask is not None:
            return f"{expr}[{ctx.mask}]"
        return expr

    def emit_load(self, op, ctx: _Ctx) -> None:
        mem_kind = self.kind_of(op.memref)
        idx_kinds = [self.kind_of(index) for index in op.indices]
        if "buf" in idx_kinds:
            raise _Unsupported("memref-typed index")
        result_dt = _np_dtype_name(op.result)
        if mem_kind == "buf":
            slot = self.slot(op.memref)
            buf = self.lane_bufs[slot]
            self.ref(op.memref)
            target = self.define(op.result, _V)
            if not buf.shape and slot in self.taint_bufs:
                self.lane_taint.add(self.slot(op.result))
            if not buf.shape:
                self.emit(f"{target} = regs[{slot}].astype({result_dt})")
            else:
                sel = ["_lanes" if ctx.mask is None else f"_lanes[{ctx.mask}]"]
                for index, kind in zip(op.indices, idx_kinds):
                    sel.append(self._masked(self.ref(index), kind, ctx))
                gather = f"regs[{slot}][{', '.join(sel)}]"
                if ctx.mask is None:
                    self.emit(f"{target} = {gather}.astype({result_dt})")
                else:
                    tmp = self.fc._name("t")
                    self.emit(f"{tmp} = np.zeros(_N, dtype={result_dt})")
                    self.emit(f"{tmp}[{ctx.mask}] = {gather}")
                    self.emit(f"{target} = {tmp}")
            self._lane_buf_charge(buf, ctx)
            return
        if mem_kind != _U:
            raise _Unsupported("lane-varying memref operand")
        svar = self.fc._name("s")
        self.emit(f"{svar} = {self.ref(op.memref)}")
        if _V not in idx_kinds:
            # lane-invariant access: execute once, charge per lane
            index_tuple = ", ".join(f"int({self.ref(i)})" for i in op.indices)
            target = self.define(op.result, _U)
            self.emit(f"{target} = {svar}.load(({index_tuple}{',' if len(op.indices) == 1 else ''}))")
            self._storage_charge_lines(svar, ctx)
            return
        parts = []
        for index, kind in zip(op.indices, idx_kinds):
            expr = self.ref(index)
            if kind == _U:
                expr = f"int({expr})"
            parts.append(self._masked(expr, kind, ctx))
        gather_call = f"{svar}.load_block(({', '.join(parts)}{',' if len(parts) == 1 else ''}))"
        target = self.define(op.result, _V)
        if ctx.mask is None:
            self.emit(f"{target} = {gather_call}.astype({result_dt})")
        else:
            tmp = self.fc._name("t")
            self.emit(f"{tmp} = np.zeros(_N, dtype={result_dt})")
            self.emit(f"{tmp}[{ctx.mask}] = {gather_call}")
            self.emit(f"{target} = {tmp}")
        self._storage_charge_lines(svar, ctx)

    def emit_store(self, op, ctx: _Ctx) -> None:
        mem_kind = self.kind_of(op.memref)
        value_kind = self.kind_of(op.value)
        idx_kinds = [self.kind_of(index) for index in op.indices]
        if value_kind == "buf" or "buf" in idx_kinds:
            raise _Unsupported("memref-typed store operand")
        if mem_kind == "buf":
            slot = self.slot(op.memref)
            buf = self.lane_bufs[slot]
            self.ref(op.memref)
            if slot not in self._created:
                self._buf_writes.add(slot)
            if not buf.shape and self.is_lane_index(op.value):
                self.taint_bufs.add(slot)
            value = self._masked(self.ref(op.value), value_kind, ctx)
            if not buf.shape:
                if ctx.mask is None:
                    self.emit(f"regs[{slot}][:] = {value}")
                else:
                    self.emit(f"regs[{slot}][{ctx.mask}] = {value}")
            else:
                sel = ["_lanes" if ctx.mask is None else f"_lanes[{ctx.mask}]"]
                for index, kind in zip(op.indices, idx_kinds):
                    sel.append(self._masked(self.ref(index), kind, ctx))
                self.emit(f"regs[{slot}][{', '.join(sel)}] = {value}")
            self._lane_buf_charge(buf, ctx)
            return
        if mem_kind != _U:
            raise _Unsupported("lane-varying memref operand")
        if _V not in idx_kinds:
            if value_kind == _V:
                # lane-varying value racing into one lane-invariant location:
                # sequential order decides the winner — leave to the closures.
                raise _Unsupported("varying store to a lane-invariant location")
            svar = self.fc._name("s")
            self.emit(f"{svar} = {self.ref(op.memref)}")
            index_tuple = ", ".join(f"int({self.ref(i)})" for i in op.indices)
            self.emit(f"{svar}.store({self.ref(op.value)}, ({index_tuple}{',' if len(op.indices) == 1 else ''}))")
            self._storage_charge_lines(svar, ctx)
            return
        svar = self.fc._name("s")
        self.emit(f"{svar} = {self.ref(op.memref)}")
        parts = []
        for index, kind in zip(op.indices, idx_kinds):
            expr = self.ref(index)
            if kind == _U:
                expr = f"int({expr})"
            parts.append(self._masked(expr, kind, ctx))
        value = self._masked(self.ref(op.value), value_kind, ctx)
        self.emit(f"{svar}.store_block({value}, ({', '.join(parts)}{',' if len(parts) == 1 else ''}))")
        self._storage_charge_lines(svar, ctx)

    def emit_dim(self, op, ctx: _Ctx) -> None:
        mem_kind = self.kind_of(op.memref)
        target_kind = _U
        if mem_kind == "buf":
            buf = self.lane_bufs[self.slot(op.memref)]
            target = self.define(op.result, target_kind)
            self.emit(f"{target} = {int(buf.shape[op.dim])}")
            return
        if mem_kind != _U:
            raise _Unsupported("lane-varying memref operand")
        target = self.define(op.result, target_kind)
        self.emit(f"{target} = int({self.ref(op.memref)}.check_alive().shape[{op.dim}])")

    # -- control flow ------------------------------------------------------------
    def emit_if(self, op, ctx: _Ctx) -> None:
        then_ops, then_term = _split_executed(op.then_block)
        then_nops = len(then_ops) + (1 if then_term is not None else 0)
        else_block = op.else_block
        if else_block is not None:
            else_ops, else_term = _split_executed(else_block)
            else_nops = len(else_ops) + (1 if else_term is not None else 0)
        else:
            else_ops, else_term, else_nops = [], None, 0
        if op.results and else_block is None:
            raise _Unsupported("scf.if with results but no else branch")
        then_yield = list(then_term.operands) if isinstance(then_term, scf.YieldOp) else []
        else_yield = list(else_term.operands) if isinstance(else_term, scf.YieldOp) else []
        if any(isinstance(result.type, MemRefType) for result in op.results):
            raise _Unsupported("scf.if yielding a memref value")

        cond_kind = self.kind_of(op.condition)
        self.charge(op_cost("scf.if"), ctx)
        self._depth += 1
        if self._depth > _MAX_NESTING:
            raise _Unsupported("control-flow nesting too deep to vectorize")
        try:
            if cond_kind == _U:
                self._emit_uniform_if(op, ctx, then_ops, then_nops, then_yield,
                                      else_block, else_ops, else_nops, else_yield)
            else:
                self._emit_masked_if(op, ctx, then_ops, then_nops, then_yield,
                                     else_block, else_ops, else_nops, else_yield)
        finally:
            self._depth -= 1

    def _emit_uniform_if(self, op, ctx, then_ops, then_nops, then_yield,
                         else_block, else_ops, else_nops, else_yield) -> None:
        # pre-classify both branches to join result kinds consistently
        result_kinds = self._join_branch_kinds(op, ctx, then_ops, then_yield,
                                               else_ops, else_yield,
                                               bool(else_block))
        self.emit(f"if {self.ref(op.condition)}:")
        self._indent += 1
        self.count_ops(then_nops, ctx.count)
        for nested in then_ops:
            self.emit_op(nested, ctx)
        self._emit_branch_result_copies(op, then_yield, result_kinds)
        if not then_ops and not op.results and not then_nops:
            self.emit("pass")
        self._indent -= 1
        if else_block is not None:
            self.emit("else:")
            self._indent += 1
            self.count_ops(else_nops, ctx.count)
            for nested in else_ops:
                self.emit_op(nested, ctx)
            self._emit_branch_result_copies(op, else_yield, result_kinds)
            if not else_ops and not op.results and not else_nops:
                self.emit("pass")
            self._indent -= 1

    def _join_branch_kinds(self, op, ctx, then_ops, then_yield, else_ops,
                           else_yield, has_else) -> List[str]:
        """Result kinds joined over both branches (dry classification runs)."""
        if not op.results:
            return []
        snap = self._snapshot()
        try:
            for nested in then_ops:
                self.emit_op(nested, ctx)
            then_kinds = [self.kind_of(value) for value in then_yield]
        finally:
            self._restore(snap)
        if has_else:
            snap = self._snapshot()
            try:
                for nested in else_ops:
                    self.emit_op(nested, ctx)
                else_kinds = [self.kind_of(value) for value in else_yield]
            finally:
                self._restore(snap)
        else:
            else_kinds = then_kinds
        if "buf" in then_kinds or "buf" in else_kinds:
            raise _Unsupported("scf.if yielding a memref value")
        return [_V if _V in pair else _U
                for pair in zip(then_kinds, else_kinds)]

    def _emit_branch_result_copies(self, op, yielded, result_kinds) -> None:
        for result, value, kind in zip(op.results, yielded, result_kinds):
            source = self.ref(value)
            if kind == _V and self.kind_of(value) == _U:
                source = f"_v_bcast({source}, _N, {_np_dtype_name(result)})"
            target = self.define(result, kind)
            self.emit(f"{target} = {source}")

    def _emit_masked_if(self, op, ctx, then_ops, then_nops, then_yield,
                        else_block, else_ops, else_nops, else_yield) -> None:
        defining = op.condition.defining_op()
        if (isinstance(defining, arith._CmpOp) and defining.predicate == "eq"
                and ((self.is_lane_index(defining.lhs)
                      and self.kind_of(defining.rhs) == _U)
                     or (self.is_lane_index(defining.rhs)
                         and self.kind_of(defining.lhs) == _U))):
            # single-lane guard (``if (tid == c)`` with a lane-index-derived
            # operand against a uniform): masked full-width execution would
            # do O(N) work for O(1) lanes — leave the phase to the compiled
            # closures.  Broad data-dependent equality masks (e.g.
            # ``flag[tid] == 1``) are not lane-index-derived and vectorize.
            raise _Unsupported("single-lane equality guard")
        cond = self.ref(op.condition)
        mvar = self.fc._name("m")
        nvar = self.fc._name("n")
        if ctx.mask is None:
            self.emit(f"{mvar} = (np.asarray({cond}) != 0)")
        else:
            self.emit(f"{mvar} = {ctx.mask} & (np.asarray({cond}) != 0)")
        self.emit(f"{nvar} = int({mvar}.sum())")
        then_ctx = _Ctx(mask=mvar, count=nvar)

        then_tmps = [self.fc._name("t") for _ in op.results]
        self.count_ops(then_nops, nvar)
        self.emit(f"if {nvar}:")
        self._indent += 1
        log_start = len(self._assign_log)
        for nested in then_ops:
            self.emit_op(nested, then_ctx)
        for tmp, value in zip(then_tmps, then_yield):
            self.emit(f"{tmp} = {self.ref(value)}")
        if not then_ops and not then_tmps:
            self.emit("pass")
        self._indent -= 1
        assigned = list(dict.fromkeys(self._assign_log[log_start:]))
        if assigned or then_tmps:
            self.emit("else:")
            self._indent += 1
            for slot in assigned:
                self.emit(f"regs[{slot}] = 0")
            for tmp in then_tmps:
                self.emit(f"{tmp} = 0")
            self._indent -= 1

        else_tmps = [self.fc._name("t") for _ in op.results]
        if else_block is not None:
            m2var = self.fc._name("m")
            n2var = self.fc._name("n")
            if ctx.mask is None:
                self.emit(f"{m2var} = ~{mvar}")
            else:
                self.emit(f"{m2var} = {ctx.mask} & ~{mvar}")
            self.emit(f"{n2var} = int({m2var}.sum())")
            else_ctx = _Ctx(mask=m2var, count=n2var)
            self.count_ops(else_nops, n2var)
            self.emit(f"if {n2var}:")
            self._indent += 1
            log_start = len(self._assign_log)
            for nested in else_ops:
                self.emit_op(nested, else_ctx)
            for tmp, value in zip(else_tmps, else_yield):
                self.emit(f"{tmp} = {self.ref(value)}")
            if not else_ops and not else_tmps:
                self.emit("pass")
            self._indent -= 1
            assigned = list(dict.fromkeys(self._assign_log[log_start:]))
            if assigned or else_tmps:
                self.emit("else:")
                self._indent += 1
                for slot in assigned:
                    self.emit(f"regs[{slot}] = 0")
                for tmp in else_tmps:
                    self.emit(f"{tmp} = 0")
                self._indent -= 1

        for result, then_tmp, else_tmp in zip(op.results, then_tmps, else_tmps):
            target = self.define(result, _V)
            self.emit(f"{target} = np.where({mvar}, {then_tmp}, {else_tmp})")

    def emit_for(self, op, ctx: _Ctx) -> None:
        for bound in (op.lower_bound, op.upper_bound, op.step):
            if self.kind_of(bound) != _U:
                raise _Unsupported("lane-varying scf.for bounds")
        body_ops, term = _split_executed(op.body)
        body_nops = len(body_ops) + (1 if term is not None else 0)
        yield_vals = list(term.operands) if isinstance(term, scf.YieldOp) else []
        cost = op_cost("scf.for")
        self._depth += 1
        if self._depth > _MAX_NESTING:
            self._depth -= 1
            raise _Unsupported("control-flow nesting too deep to vectorize")

        # fixpoint classification of the loop-carried kinds
        iter_kinds = [self.kind_of(value) for value in op.iter_init]
        while True:
            snap = self._snapshot()
            try:
                self._bind_iter_kinds(op, iter_kinds)
                for nested in body_ops:
                    self.emit_op(nested, ctx)
                new_kinds = [_V if (old == _V or self.kind_of(value) == _V) else _U
                             for old, value in zip(iter_kinds, yield_vals)]
                if any(self.kind_of(value) == "buf" for value in yield_vals):
                    raise _Unsupported("scf.for carrying a memref value")
            finally:
                self._restore(snap)
            if new_kinds == iter_kinds:
                break
            iter_kinds = new_kinds

        self.charge(cost, ctx)
        lb = self.fc._name("lb")
        ub = self.fc._name("ub")
        st = self.fc._name("st")
        iv = self.fc._name("iv")
        self.emit(f"{lb} = int({self.ref(op.lower_bound)})")
        self.emit(f"{ub} = int({self.ref(op.upper_bound)})")
        self.emit(f"{st} = int({self.ref(op.step)})")
        # no zero-active-lane guard is needed: masked contexts only execute
        # inside the positive-count ``if <n>:`` branches _emit_masked_if
        # emits, so ctx.count > 0 whenever these lines run.
        self.emit(f"if {st} <= 0:")
        self.emit("    raise _IE('scf.for requires a positive step')")
        self._bind_iter_kinds(op, iter_kinds)
        for arg, init, kind in zip(op.iter_args, op.iter_init, iter_kinds):
            source = self.ref(init)
            if kind == _V and self.kind_of(init) == _U:
                source = f"_v_bcast({source}, _N, {_np_dtype_name(arg)})"
            self.emit(f"regs[{self.slot(arg)}] = {source}")
        self.emit(f"{iv} = {lb}")
        self.emit(f"while {iv} < {ub}:")
        self._indent += 1
        iv_target = self.define(op.induction_var, _U)
        self.emit(f"{iv_target} = {iv}")
        self.count_ops(body_nops, ctx.count)
        for nested in body_ops:
            self.emit_op(nested, ctx)
        for arg, value, kind in zip(op.iter_args, yield_vals, iter_kinds):
            source = self.ref(value)
            if kind == _V and self.kind_of(value) == _U:
                source = f"_v_bcast({source}, _N, {_np_dtype_name(arg)})"
            self.emit(f"regs[{self.slot(arg)}] = {source}")
        self.emit(f"{iv} += {st}")
        self.emit(f"w[-1] += {cost!r} * {ctx.count}")
        self._indent -= 1
        for result, arg, kind in zip(op.results, op.iter_args, iter_kinds):
            target = self.define(result, kind)
            self.emit(f"{target} = regs[{self.slot(arg)}]")
        self._depth -= 1

    def _bind_iter_kinds(self, op, iter_kinds: List[str]) -> None:
        self._defined.add(self.slot(op.induction_var))
        self.kinds.pop(self.slot(op.induction_var), None)
        for arg, kind in zip(op.iter_args, iter_kinds):
            slot = self.slot(arg)
            self._defined.add(slot)
            if kind == _V:
                self.kinds[slot] = _V
            else:
                self.kinds.pop(slot, None)


# ---------------------------------------------------------------------------
# Region splitting and the mixed-mode adapter
# ---------------------------------------------------------------------------
def _split_chunks(block) -> List[Tuple[List, int]]:
    """Split a straight-line barrier body into (ops, dynamic-op count) phases.

    Counting mirrors ``_FunctionCompiler.compile_chunks``: every op including
    the barrier itself belongs to the chunk it terminates, and the block
    terminator counts toward the last chunk.
    """
    ops, term = _split_executed(block)
    chunks: List[Tuple[List, int]] = []
    current: List = []
    count = 0
    for op in ops:
        count += 1
        if isinstance(op, _BARRIER_OPS):
            chunks.append((current, count))
            current, count = [], 0
            continue
        current.append(op)
    if term is not None:
        count += 1
    chunks.append((current, count))
    return chunks


def _make_mixed_chunk(phase: _VectorPhase):
    """Adapt a vectorized phase to run between closure phases.

    Gathers the phase's varying live-ins from the per-thread register lists
    into lane arrays, runs the vectorized phase, then scatters its
    definitions back (including materializing per-lane buffers it created as
    real :class:`MemRefStorage` objects for downstream closure phases).
    """
    scalar_reads = sorted(phase.reads.items())
    buf_gathers = sorted(phase.buf_reads | phase.buf_writes)
    buf_writebacks = sorted(phase.buf_writes)
    created = phase.created
    scalar_defs = phase.defs
    run = phase.run

    def adapter(state, thread_regs):
        n = len(thread_regs)
        vregs = thread_regs[0][:]
        lanes = np.arange(n)
        for slot, dtype in scalar_reads:
            vregs[slot] = np.fromiter((t[slot] for t in thread_regs), dtype, n)
        for slot in buf_gathers:
            vregs[slot] = np.stack([t[slot].check_alive() for t in thread_regs])
        run(state, vregs, n, lanes)
        for slot in buf_writebacks:
            arrays = vregs[slot]
            for i, tregs in enumerate(thread_regs):
                tregs[slot].check_alive()[...] = arrays[i]
        for slot, shape, dtype, space, element_type in created:
            arrays = vregs[slot]
            for i, tregs in enumerate(thread_regs):
                tregs[slot] = MemRefStorage(np.array(arrays[i], dtype=dtype),
                                            space, element_type)
        for slot, kind in scalar_defs:
            value = vregs[slot]
            if kind == _V and isinstance(value, np.ndarray):
                for tregs, scalar in zip(thread_regs, value.tolist()):
                    tregs[slot] = scalar
            else:
                for tregs in thread_regs:
                    tregs[slot] = value

    return adapter


# ---------------------------------------------------------------------------
# The vector-aware function compiler
# ---------------------------------------------------------------------------
class _VectorFunctionCompiler(_FunctionCompiler):
    """Extends the compiled-engine function compiler with vectorized regions.

    Each ``omp.wsloop`` / ``scf.parallel`` / ``gpu.launch`` is analyzed
    phase-by-phase; vectorizable phases run as whole-grid NumPy functions,
    the rest fall back to the inherited compiled closures — per phase when
    barriers are straight-line, per region otherwise.
    """

    def _vectorize_chunks(self, chunk_specs, varying_slots):
        rv = _RegionVectorizer(self)
        for slot in varying_slots:
            rv.mark_lane_index(slot)  # region lanes ARE the thread indices
        plans = []
        stats = self.program.vector_stats
        for ops, nops in chunk_specs:
            try:
                phase = rv.vectorize_phase(ops, nops)
            except _Unsupported:
                steps = []
                for op in ops:
                    item = self.compile_op(op, gen=False)
                    if item is not None:
                        steps.append(item)
                plans.append(("closure", _build_runner(steps, nops, gen=False)))
                rv.register_fallback_defs(ops)
                stats["closure_phases"] += 1
                continue
            plans.append(("vec", phase))
            stats["vectorized_phases"] += 1
        return plans

    @staticmethod
    def _chunk_steps(plans):
        return [(kind, plan if kind == "closure" else _make_mixed_chunk(plan))
                for kind, plan in plans]

    # -- OpenMP workshared loops -------------------------------------------------
    def _wsloop_span_plan(self, op):
        if not self.program.vector_enabled:
            return super()._wsloop_span_plan(op)
        ops, term = _split_executed(op.body)
        nops = len(ops) + (1 if term is not None else 0)
        iv_slots = self.slots(op.induction_vars)
        plans = self._vectorize_chunks([(ops, nops)], iv_slots)
        stats = self.program.vector_stats
        if plans[0][0] != "vec":
            # the closure steps built by _vectorize_chunks are discarded and
            # the body recompiled by super() — duplicate one-time translation
            # on the fallback path only, accepted to keep the inherited
            # region bookkeeping in one place.
            stats["fallback_regions"] += 1
            return super()._wsloop_span_plan(op)
        stats["vectorized_regions"] += 1
        return self._vector_span_runner(iv_slots, plans[0][1].run)

    @staticmethod
    def _vector_span_runner(iv_slots, phase):
        """A span runner executing ``[start, stop)`` lanes of one phase.

        Induction-variable grids are the row-major lane arrays sliced to
        the span, so a sub-span sees exactly the lanes the sequential
        engines would visit in that interval, in the same order.
        """

        def run_span(state, regs, ranges, start, stop):
            total = 1
            for axis in ranges:
                total *= len(axis)
            end = total if stop is None else stop
            count = end - start
            if count <= 0:
                return
            for dst, grid in zip(iv_slots, _lane_arrays(ranges)):
                regs[dst] = grid[start:end]
            phase(state, regs, count, np.arange(count))
        return run_span

    # -- scf.parallel -------------------------------------------------------------
    def _parallel_span_plan(self, op):
        if not self.program.vector_enabled:
            return super()._parallel_span_plan(op)
        stats = self.program.vector_stats
        iv_slots = self.slots(op.induction_vars)
        ops, term = _split_executed(op.body)
        nops = len(ops) + (1 if term is not None else 0)
        plans = self._vectorize_chunks([(ops, nops)], iv_slots)
        if plans[0][0] != "vec":
            stats["fallback_regions"] += 1
            return super()._parallel_span_plan(op)
        stats["vectorized_regions"] += 1
        return self._vector_span_runner(iv_slots, plans[0][1].run)

    def _c_scf_parallel_simt(self, op):
        if not self.program.vector_enabled:
            return super()._c_scf_parallel_simt(op)
        stats = self.program.vector_stats
        program = self.program
        machine = program.machine
        fork_cost = machine.fork_cost
        phase_cost = machine.simt_phase_cost
        lb_slots = self.slots(op.lower_bounds)
        ub_slots = self.slots(op.upper_bounds)
        st_slots = self.slots(op.steps)
        iv_slots = self.slots(op.induction_vars)

        ops, _ = _split_executed(op.body)
        straight = all(isinstance(o, _BARRIER_OPS) or not program.op_may_yield(o)
                       for o in ops)
        if not straight:
            stats["fallback_regions"] += 1
            return super()._c_scf_parallel_simt(op)
        plans = self._vectorize_chunks(_split_chunks(op.body), iv_slots)
        n_vec = sum(1 for kind, _ in plans if kind == "vec")
        num_phases = len(plans)
        if n_vec == 0:
            stats["fallback_regions"] += 1
            return super()._c_scf_parallel_simt(op)
        if n_vec == num_phases:
            stats["vectorized_regions"] += 1
            phases = [plan.run for _, plan in plans]

            def run(state, regs):
                ranges, total = _iteration_space(regs, lb_slots, ub_slots, st_slots)
                state.report.parallel_regions += 1
                work_stack = state.work
                work_stack.append(0.0)
                executed = 0
                if total:
                    for dst, grid in zip(iv_slots, _lane_arrays(ranges)):
                        regs[dst] = grid
                    lanes = np.arange(total)
                    for phase in phases:
                        phase(state, regs, total, lanes)
                    executed = num_phases
                state.report.simt_phases += executed
                work = work_stack.pop()
                threads = min(state.threads, max(1, total))
                work_stack[-1] += (fork_cost + work / state.program.speedup(threads)
                                   + executed * phase_cost)

            return run

        stats["mixed_regions"] += 1
        chunk_steps = self._chunk_steps(plans)

        def run(state, regs):
            ranges, total = _iteration_space(regs, lb_slots, ub_slots, st_slots)
            state.report.parallel_regions += 1
            work_stack = state.work
            work_stack.append(0.0)
            thread_regs = build_parallel_thread_regs(
                regs, iv_slots, product(*ranges))
            executed = 0
            if thread_regs:
                for kind, step in chunk_steps:
                    if kind == "closure":
                        for tregs in thread_regs:
                            step(state, tregs)
                    else:
                        step(state, thread_regs)
                executed = num_phases
            state.report.simt_phases += executed
            work = work_stack.pop()
            threads = min(state.threads, max(1, total))
            work_stack[-1] += (fork_cost + work / state.program.speedup(threads)
                               + executed * phase_cost)

        return run

    # -- gpu.launch ---------------------------------------------------------------
    def _launch_plan(self, op):
        if not self.program.vector_enabled:
            return super()._launch_plan(op)
        stats = self.program.vector_stats
        ops, _ = _split_executed(op.body)
        straight = all(isinstance(o, _BARRIER_OPS) or not self.program.op_may_yield(o)
                       for o in ops)
        if not straight:
            stats["fallback_regions"] += 1
            return super()._launch_plan(op)
        a = self.slots(op.body.arguments)
        shared_allocas = []
        saved_prebound = self._prebound
        self._prebound = set(saved_prebound)
        try:
            for nested in op.body.operations:
                if (isinstance(nested, memref_d.AllocaOp)
                        and memref_d.is_shared_memref(nested.result)):
                    shared_allocas.append((self.slot(nested.result), nested.memref_type))
                    self._prebound.add(id(nested.result))
            plans = self._vectorize_chunks(_split_chunks(op.body), a[3:6])
        finally:
            self._prebound = saved_prebound
        n_vec = sum(1 for kind, _ in plans if kind == "vec")
        num_phases = len(plans)
        if n_vec == 0:
            stats["fallback_regions"] += 1
            return super()._launch_plan(op)
        allocate = MemRefStorage.allocate
        if n_vec == num_phases:
            stats["vectorized_regions"] += 1
            phases = [plan.run for _, plan in plans]

            def run_blocks(state, regs, grid, block, start, stop):
                g0, g1, g2 = grid
                b0, b1, b2 = block
                report = state.report
                nthreads = b0 * b1 * b2
                if nthreads <= 0:
                    return
                tz_grid, ty_grid, tx_grid = _lane_arrays(
                    [range(b2), range(b1), range(b0)])
                lanes = np.arange(nthreads)
                for linear in range(start, stop):
                    bx = linear % g0
                    by = (linear // g0) % g1
                    bz = linear // (g0 * g1)
                    regs[a[0]] = bx
                    regs[a[1]] = by
                    regs[a[2]] = bz
                    regs[a[3]] = tx_grid
                    regs[a[4]] = ty_grid
                    regs[a[5]] = tz_grid
                    regs[a[6]] = g0
                    regs[a[7]] = g1
                    regs[a[8]] = g2
                    regs[a[9]] = b0
                    regs[a[10]] = b1
                    regs[a[11]] = b2
                    for dst, mtype in shared_allocas:
                        regs[dst] = allocate(mtype, [])
                    for phase in phases:
                        phase(state, regs, nthreads, lanes)
                    report.simt_phases += num_phases

            return run_blocks

        stats["mixed_regions"] += 1
        chunk_steps = self._chunk_steps(plans)

        def run_blocks(state, regs, grid, block, start, stop):
            g0, g1 = grid[0], grid[1]
            report = state.report
            for linear in range(start, stop):
                bx = linear % g0
                by = (linear // g0) % g1
                bz = linear // (g0 * g1)
                thread_regs = build_launch_thread_regs(
                    regs, a, bx, by, bz, grid, block)
                bind_shared_allocas(shared_allocas, thread_regs)
                if not thread_regs:
                    continue
                for kind, step in chunk_steps:
                    if kind == "closure":
                        for tregs in thread_regs:
                            step(state, tregs)
                    else:
                        step(state, thread_regs)
                report.simt_phases += num_phases

        return run_blocks


class _VectorProgram(_Program):
    """Program flavour whose function compiler vectorizes parallel regions."""

    def __init__(self, module, machine: MachineModel) -> None:
        super().__init__(module, machine)
        self.vector_enabled = machine_vectorizable(machine)
        #: compile-time counters, filled as functions are first compiled.
        self.vector_stats = {
            "vectorized_regions": 0,
            "mixed_regions": 0,
            "fallback_regions": 0,
            "vectorized_phases": 0,
            "closure_phases": 0,
        }


_VectorProgram.COMPILER = _VectorFunctionCompiler


# ---------------------------------------------------------------------------
# Engine front end
# ---------------------------------------------------------------------------
class VectorizedEngine(CompiledEngine):
    """Drop-in engine executing whole thread grids as NumPy array operations.

    Shares the compiled engine's API, caching and cost semantics; parallel
    regions whose barrier-delimited phases pass the vectorizer's analysis
    run as full-grid NumPy code, everything else falls back to the compiled
    closures (per phase where possible, per region otherwise).  Outputs and
    :class:`CostReport` fields stay bit-identical to the interpreter.
    """

    PROGRAM_CLS = _VectorProgram

    @property
    def vector_stats(self) -> Dict[str, int]:
        """Compile-time vectorization counters of the underlying program."""
        return self._program.vector_stats


def _make_vectorized(module, *, machine=XEON_8375C, threads=None,
                     collect_cost=True, max_dynamic_ops=None, workers=None):
    # ``workers`` is a multicore-engine knob; the vectorized engine ignores it.
    return VectorizedEngine(module, machine=machine, threads=threads,
                            collect_cost=collect_cost, max_dynamic_ops=max_dynamic_ops)


register_engine(
    "vectorized", _make_vectorized, order=1,
    description="whole-grid NumPy execution of barrier-delimited phases")
