"""repro.runtime — execution and the analytic performance model.

* :class:`~repro.runtime.interpreter.Interpreter` executes modules: un-lowered
  modules run with SIMT (GPU oracle) semantics, lowered modules run under the
  simulated-multicore cost model.
* :mod:`~repro.runtime.costmodel` defines the machine descriptions
  (``XEON_8375C`` for the Rodinia/MCUDA study, ``A64FX_CMG`` for MocCUDA)
  and the per-operation/memory cost tables.
* :class:`~repro.runtime.memory.MemRefStorage` is the numpy-backed buffer
  type shared by both execution modes.
"""

from .memory import MemRefStorage, dtype_for
from .costmodel import (
    A64FX_CMG,
    CostReport,
    MachineModel,
    OP_COSTS,
    XEON_8375C,
    memory_access_cost,
    op_cost,
)
from .interpreter import Interpreter, InterpreterError, execute

__all__ = [
    "MemRefStorage", "dtype_for",
    "A64FX_CMG", "CostReport", "MachineModel", "OP_COSTS", "XEON_8375C",
    "memory_access_cost", "op_cost",
    "Interpreter", "InterpreterError", "execute",
]
