"""repro.runtime — execution engines and the analytic performance model.

Five execution engines share one API (``run(name, args)`` + ``report``),
plus a sixth selection that picks among them per kernel:

* :class:`~repro.runtime.interpreter.Interpreter` — the tree-walking
  reference engine: un-lowered modules run with SIMT (GPU oracle) semantics,
  lowered modules run under the simulated-multicore cost model.  It is the
  correctness and cost-accounting oracle.
* :class:`~repro.runtime.compiler.CompiledEngine` — the default engine: a
  one-time translation of each function to specialized Python closures with
  SSA slot numbering, compiled barrier phases and lazy iteration spaces.
  Bit-identical outputs and cost reports, much faster wall clock.
* :class:`~repro.runtime.vectorizer.VectorizedEngine` — the compiled engine
  plus whole-grid NumPy execution of barrier-delimited phases: SSA registers
  become lane arrays, loads/stores become gathers/scatters; phases the
  analyzer cannot vectorize fall back to compiled closures per phase.
* :class:`~repro.runtime.multicore.MulticoreEngine` — ``gpu.launch`` block
  grids and outermost barrier-free parallel loops sharded across a
  persistent worker-process pool, with memrefs promoted to
  ``multiprocessing.shared_memory`` views (:mod:`repro.runtime.sharedmem`)
  so workers scatter/gather in place, and per-worker costs folded in thread
  order for bit-identical reports.
* :class:`~repro.runtime.native.NativeEngine` — parallel regions transpiled
  to C (:mod:`repro.runtime.codegen_c`), compiled once with the system
  toolchain (``cc -O3 -fopenmp``; ``REPRO_CC``) into content-addressed
  shared objects and dispatched zero-copy through ctypes — the paper's
  "GPU kernels as native OpenMP CPU code" artifact.  Degrades per region
  (and wholesale, without a toolchain) to the compiled engine.
* :class:`~repro.runtime.autotune.AutoEngine` (``engine="auto"``) — the
  measurement-driven autotuner: the first run of a given
  module/function/argument-shape measures every viable engine configuration
  on the real arguments (warmup + min-of-k, snapshot/restore of writable
  buffers) and caches the fastest config whose outputs and CostReports are
  bit-identical to the interpreter reference in the
  :class:`~repro.runtime.cache.TuningCache` tier; warm runs dispatch
  straight to the cached winner with zero measurements.

Select with :func:`~repro.runtime.engine.make_executor` /
:func:`~repro.runtime.engine.execute`
(``engine="compiled"|"vectorized"|"multicore"|"native"|"interp"|"auto"``,
or the ``REPRO_ENGINE`` environment variable; ``workers=`` /
``REPRO_WORKERS`` sizes the multicore pool).  Engines self-register in
:mod:`repro.runtime.registry`, and the registry resolves built-in engine
modules **lazily on lookup** — ``"native" in ENGINES`` holds before any
engine module is imported, so env-selected engines cannot race
registration.  This package mirrors that: engine classes and the selection
layer are exported lazily (PEP 562), only the leaf modules (errors, memory,
cost model, cache, registry) load eagerly.

* :mod:`~repro.runtime.costmodel` defines the machine descriptions
  (``XEON_8375C`` for the Rodinia/MCUDA study, ``A64FX_CMG`` for MocCUDA)
  and the per-operation/memory cost tables.
* :class:`~repro.runtime.memory.MemRefStorage` is the numpy-backed buffer
  type shared by all execution modes.
* :mod:`~repro.runtime.cache` is the content-addressed kernel compile
  cache behind :func:`repro.frontend.compile_cuda` (in-process LRU always;
  on-disk tier with ``REPRO_CACHE=1`` / ``REPRO_CACHE_DIR``) plus the
  native engine's ``.so`` artifact tier.
"""

from importlib import import_module

from .errors import (
    CacheCorruptionError,
    DispatchTimeoutError,
    InterpreterError,
    ResilienceError,
    ShmExhaustedError,
    StreamPoisonedError,
    ToolchainError,
    UseAfterFreeError,
    WorkerCrashError,
    is_transient,
)
from .memory import MemRefStorage, dtype_for
from . import resilience
from .resilience import (
    FALLBACK_CHAIN,
    FaultPlan,
    ResilienceEvent,
    ResilienceLog,
    ResilientExecutor,
    RetryPolicy,
    call_with_retry,
    fallback_engines,
    global_log as global_resilience_log,
    reset_faults,
)
from .costmodel import (
    A64FX_CMG,
    CostReport,
    MachineModel,
    OP_COSTS,
    XEON_8375C,
    memory_access_cost,
    op_cost,
)
from .cache import (
    KernelCache,
    NativeArtifactCache,
    TuningCache,
    TuningCacheStats,
    clear_global_cache,
    clear_global_tuning_cache,
    global_cache,
    global_native_cache,
    global_tuning_cache,
    kernel_key,
    pipeline_fingerprint,
    tuning_cache_enabled,
)
from .registry import ENGINES_VIEW as ENGINES, engine_names, register_engine

#: engine-name constants (kept importable without loading any engine module).
ENGINE_COMPILED = "compiled"
ENGINE_INTERP = "interp"
ENGINE_VECTORIZED = "vectorized"
ENGINE_MULTICORE = "multicore"
ENGINE_NATIVE = "native"
ENGINE_AUTO = "auto"
ENGINE_ENV_VAR = "REPRO_ENGINE"

#: lazily exported attribute -> defining submodule (PEP 562).  Touching one
#: of these imports its module (and, through registration side effects,
#: registers the engine); everything above stays a leaf import.
_LAZY_EXPORTS = {
    "Interpreter": "interpreter",
    "CompiledEngine": "compiler",
    "invalidate_compiled": "compiler",
    "VectorizedEngine": "vectorizer",
    "machine_vectorizable": "vectorizer",
    "MulticoreEngine": "multicore",
    "default_workers": "multicore",
    "multicore_available": "multicore",
    "shutdown_worker_pools": "multicore",
    "NativeEngine": "native",
    "native_available": "native",
    "AutoEngine": "autotune",
    "tune_module": "autotune",
    "sharedmem": "sharedmem",
    "default_engine": "engine",
    "execute": "engine",
    "make_executor": "engine",
    "resolve_engine": "engine",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = import_module(f".{module_name}", __name__)
    value = module if name == "sharedmem" else getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "MemRefStorage", "dtype_for", "sharedmem",
    "A64FX_CMG", "CostReport", "MachineModel", "OP_COSTS", "XEON_8375C",
    "memory_access_cost", "op_cost",
    "Interpreter", "InterpreterError", "UseAfterFreeError",
    "CacheCorruptionError", "DispatchTimeoutError", "ResilienceError",
    "ShmExhaustedError", "StreamPoisonedError", "ToolchainError",
    "WorkerCrashError", "is_transient",
    "FALLBACK_CHAIN", "FaultPlan", "ResilienceEvent", "ResilienceLog",
    "ResilientExecutor", "RetryPolicy", "call_with_retry",
    "fallback_engines", "global_resilience_log", "reset_faults",
    "resilience",
    "CompiledEngine", "invalidate_compiled",
    "VectorizedEngine", "machine_vectorizable",
    "MulticoreEngine", "default_workers", "multicore_available",
    "shutdown_worker_pools",
    "NativeEngine", "native_available",
    "AutoEngine", "tune_module",
    "KernelCache", "NativeArtifactCache", "TuningCache", "TuningCacheStats",
    "clear_global_cache", "clear_global_tuning_cache",
    "global_cache", "global_native_cache", "global_tuning_cache",
    "kernel_key", "pipeline_fingerprint", "tuning_cache_enabled",
    "engine_names", "register_engine",
    "ENGINE_AUTO", "ENGINE_COMPILED", "ENGINE_ENV_VAR", "ENGINE_INTERP",
    "ENGINE_MULTICORE", "ENGINE_NATIVE", "ENGINE_VECTORIZED", "ENGINES",
    "default_engine", "execute", "make_executor", "resolve_engine",
]
