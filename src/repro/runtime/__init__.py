"""repro.runtime — execution engines and the analytic performance model.

Four execution engines share one API (``run(name, args)`` + ``report``):

* :class:`~repro.runtime.interpreter.Interpreter` — the tree-walking
  reference engine: un-lowered modules run with SIMT (GPU oracle) semantics,
  lowered modules run under the simulated-multicore cost model.  It is the
  correctness and cost-accounting oracle.
* :class:`~repro.runtime.compiler.CompiledEngine` — the default engine: a
  one-time translation of each function to specialized Python closures with
  SSA slot numbering, compiled barrier phases and lazy iteration spaces.
  Bit-identical outputs and cost reports, much faster wall clock.
* :class:`~repro.runtime.vectorizer.VectorizedEngine` — the compiled engine
  plus whole-grid NumPy execution of barrier-delimited phases: SSA registers
  become lane arrays, loads/stores become gathers/scatters; phases the
  analyzer cannot vectorize fall back to compiled closures per phase.
* :class:`~repro.runtime.multicore.MulticoreEngine` — the only engine that
  uses more than one CPU core: ``gpu.launch`` block grids and outermost
  barrier-free parallel loops are sharded across a persistent worker-process
  pool, with memrefs promoted to ``multiprocessing.shared_memory`` views
  (:mod:`repro.runtime.sharedmem`) so workers scatter/gather in place, and
  per-worker costs folded in thread order for bit-identical reports.

Select with :func:`~repro.runtime.engine.make_executor` /
:func:`~repro.runtime.engine.execute`
(``engine="compiled"|"vectorized"|"multicore"|"interp"``, or the
``REPRO_ENGINE`` environment variable; ``workers=`` / ``REPRO_WORKERS``
sizes the multicore pool).  Engines self-register in
:mod:`repro.runtime.registry` — adding one is a single module with a
``register_engine`` call.

* :mod:`~repro.runtime.costmodel` defines the machine descriptions
  (``XEON_8375C`` for the Rodinia/MCUDA study, ``A64FX_CMG`` for MocCUDA)
  and the per-operation/memory cost tables.
* :class:`~repro.runtime.memory.MemRefStorage` is the numpy-backed buffer
  type shared by all execution modes.
* :mod:`~repro.runtime.cache` is the content-addressed kernel compile
  cache behind :func:`repro.frontend.compile_cuda` (in-process LRU always;
  on-disk tier with ``REPRO_CACHE=1`` / ``REPRO_CACHE_DIR``).
"""

from .errors import InterpreterError, UseAfterFreeError
from .memory import MemRefStorage, dtype_for
from .costmodel import (
    A64FX_CMG,
    CostReport,
    MachineModel,
    OP_COSTS,
    XEON_8375C,
    memory_access_cost,
    op_cost,
)
from .cache import (
    KernelCache,
    clear_global_cache,
    global_cache,
    kernel_key,
    pipeline_fingerprint,
)
from .registry import engine_names, register_engine
from .interpreter import Interpreter
from .compiler import CompiledEngine, invalidate_compiled
from .vectorizer import VectorizedEngine, machine_vectorizable
from .multicore import (
    MulticoreEngine,
    default_workers,
    multicore_available,
    shutdown_worker_pools,
)
from . import sharedmem
from .engine import (
    ENGINE_COMPILED,
    ENGINE_ENV_VAR,
    ENGINE_INTERP,
    ENGINE_MULTICORE,
    ENGINE_VECTORIZED,
    ENGINES,
    default_engine,
    execute,
    make_executor,
    resolve_engine,
)

__all__ = [
    "MemRefStorage", "dtype_for", "sharedmem",
    "A64FX_CMG", "CostReport", "MachineModel", "OP_COSTS", "XEON_8375C",
    "memory_access_cost", "op_cost",
    "Interpreter", "InterpreterError", "UseAfterFreeError",
    "CompiledEngine", "invalidate_compiled",
    "VectorizedEngine", "machine_vectorizable",
    "MulticoreEngine", "default_workers", "multicore_available",
    "shutdown_worker_pools",
    "KernelCache", "clear_global_cache", "global_cache", "kernel_key",
    "pipeline_fingerprint",
    "engine_names", "register_engine",
    "ENGINE_COMPILED", "ENGINE_ENV_VAR", "ENGINE_INTERP", "ENGINE_MULTICORE",
    "ENGINE_VECTORIZED", "ENGINES", "default_engine", "execute",
    "make_executor", "resolve_engine",
]
