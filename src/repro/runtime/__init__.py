"""repro.runtime — execution engines and the analytic performance model.

Three execution engines share one API (``run(name, args)`` + ``report``):

* :class:`~repro.runtime.interpreter.Interpreter` — the tree-walking
  reference engine: un-lowered modules run with SIMT (GPU oracle) semantics,
  lowered modules run under the simulated-multicore cost model.  It is the
  correctness and cost-accounting oracle.
* :class:`~repro.runtime.compiler.CompiledEngine` — the default engine: a
  one-time translation of each function to specialized Python closures with
  SSA slot numbering, compiled barrier phases and lazy iteration spaces.
  Bit-identical outputs and cost reports, much faster wall clock.
* :class:`~repro.runtime.vectorizer.VectorizedEngine` — the compiled engine
  plus whole-grid NumPy execution of barrier-delimited phases: SSA registers
  become lane arrays, loads/stores become gathers/scatters; phases the
  analyzer cannot vectorize fall back to compiled closures per phase.

Select with :func:`~repro.runtime.engine.make_executor` /
:func:`~repro.runtime.engine.execute`
(``engine="compiled"|"vectorized"|"interp"``, or the ``REPRO_ENGINE``
environment variable).

* :mod:`~repro.runtime.costmodel` defines the machine descriptions
  (``XEON_8375C`` for the Rodinia/MCUDA study, ``A64FX_CMG`` for MocCUDA)
  and the per-operation/memory cost tables.
* :class:`~repro.runtime.memory.MemRefStorage` is the numpy-backed buffer
  type shared by both execution modes.
"""

from .errors import InterpreterError, UseAfterFreeError
from .memory import MemRefStorage, dtype_for
from .costmodel import (
    A64FX_CMG,
    CostReport,
    MachineModel,
    OP_COSTS,
    XEON_8375C,
    memory_access_cost,
    op_cost,
)
from .interpreter import Interpreter
from .compiler import CompiledEngine, invalidate_compiled
from .vectorizer import VectorizedEngine, machine_vectorizable
from .engine import (
    ENGINE_COMPILED,
    ENGINE_ENV_VAR,
    ENGINE_INTERP,
    ENGINE_VECTORIZED,
    ENGINES,
    default_engine,
    execute,
    make_executor,
    resolve_engine,
)

__all__ = [
    "MemRefStorage", "dtype_for",
    "A64FX_CMG", "CostReport", "MachineModel", "OP_COSTS", "XEON_8375C",
    "memory_access_cost", "op_cost",
    "Interpreter", "InterpreterError", "UseAfterFreeError",
    "CompiledEngine", "invalidate_compiled",
    "VectorizedEngine", "machine_vectorizable",
    "ENGINE_COMPILED", "ENGINE_ENV_VAR", "ENGINE_INTERP", "ENGINE_VECTORIZED",
    "ENGINES", "default_engine", "execute", "make_executor", "resolve_engine",
]
