"""Execution-engine selection: interp, compiled, vectorized, multicore, native, auto.

Every runtime entry point (harnesses, the Rodinia suite, the MocCUDA shim,
benchmarks) goes through this layer and accepts an ``engine`` knob:

* ``"compiled"`` — the default: one-time translation of each function to
  specialized Python closures (:mod:`repro.runtime.compiler`).
* ``"vectorized"`` — the compiled engine plus whole-grid NumPy execution of
  barrier-delimited phases (:mod:`repro.runtime.vectorizer`).
* ``"multicore"`` — the compiled/vectorized span runners sharded across a
  worker-process pool with shared-memory buffers
  (:mod:`repro.runtime.multicore`).  ``workers=`` (or ``REPRO_WORKERS``)
  picks the pool width.
* ``"native"`` — parallel regions transpiled to C, compiled with the system
  toolchain (``cc -O3 -fopenmp``, ``REPRO_CC`` override) and executed as
  OpenMP shared objects through ctypes (:mod:`repro.runtime.native`);
  degrades to compiled execution without a working toolchain.
* ``"interp"`` — the reference tree-walking
  :class:`~repro.runtime.interpreter.Interpreter`, kept as the correctness
  and cost-accounting oracle.
* ``"auto"`` — measurement-driven per-kernel dispatch
  (:mod:`repro.runtime.autotune`): on the first run of a given
  module/function/argument-shape the tuner measures every viable engine
  configuration on the real arguments and caches the fastest bit-identical
  winner (the :class:`~repro.runtime.cache.TuningCache` tier); warm runs
  dispatch straight to it with zero measurements.

All engines produce bit-identical outputs and :class:`CostReport`s (pinned
by ``tests/runtime/test_engine_parity.py``); only wall-clock speed differs.
The process-wide default can be overridden with the ``REPRO_ENGINE``
environment variable.

Engines self-register in :mod:`repro.runtime.registry` at import time
(name → factory); this module imports the engine modules for their
registration side effect and derives the selection tables from the
registry, so adding a fifth engine means adding one module with one
``register_engine`` call — no tables to edit here.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from .costmodel import CostReport, MachineModel, XEON_8375C
from .registry import ENGINES_VIEW, engine_factory, engine_names
from .resilience import maybe_resilient

# imported for their register_engine() side effect (and re-exported names);
# the registry also resolves these lazily on lookup, so env-selected engines
# validate even before this module is imported.
from .compiler import CompiledEngine, invalidate_compiled  # noqa: F401
from .interpreter import Interpreter, InterpreterError  # noqa: F401
from .vectorizer import VectorizedEngine  # noqa: F401
from .multicore import MulticoreEngine  # noqa: F401
from .native import NativeEngine  # noqa: F401
from .autotune import AutoEngine  # noqa: F401

# engine-name constants (incl. ENGINE_ENV_VAR, the REPRO_ENGINE override)
# have one definition in the package __init__, importable without loading
# any engine module; re-exported here for the traditional import path.
from . import (  # noqa: F401
    ENGINE_AUTO,
    ENGINE_COMPILED,
    ENGINE_ENV_VAR,
    ENGINE_INTERP,
    ENGINE_MULTICORE,
    ENGINE_NATIVE,
    ENGINE_VECTORIZED,
)

Executor = object  # any registered engine: run(name, args) + .report


def _engines() -> tuple:
    return engine_names()


#: all registered engine names, registry-ordered.  A *live* sequence view
#: (:class:`repro.runtime.registry.EngineNamesView`), not a snapshot: it
#: re-reads the registry on every access, so engines registered after this
#: module is imported show up in existing references too.
ENGINES = ENGINES_VIEW


def default_engine() -> str:
    """The process-wide default engine name (``REPRO_ENGINE`` or compiled)."""
    return os.environ.get(ENGINE_ENV_VAR, ENGINE_COMPILED)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Normalize and validate an engine name (``None`` = process default)."""
    name = engine if engine is not None else default_engine()
    if name not in _engines():
        raise ValueError(f"unknown engine {name!r}; expected one of {_engines()}")
    return name


def make_executor(module, *, engine: Optional[str] = None,
                  machine: MachineModel = XEON_8375C,
                  threads: Optional[int] = None,
                  collect_cost: bool = True,
                  max_dynamic_ops: Optional[int] = None,
                  workers: Optional[int] = None) -> Executor:
    """Build an executor through the registered engine factory.

    All engines share the same API: ``run(function_name, arguments)`` plus a
    ``report`` attribute accumulating the simulated-cycle cost model.
    ``workers`` is forwarded to the factory (only the multicore engine uses
    it; the in-process engines ignore it).

    Unless ``REPRO_RESILIENCE=0``, the executor is wrapped in the
    resilience layer (:mod:`repro.runtime.resilience`): taxonomy failures
    that escape a run rebuild the executor on the next engine of the
    fallback chain (``native → multicore → vectorized → compiled →
    interp``) and re-run with bit-identical outputs and CostReports.
    """
    name = resolve_engine(engine)

    def build(engine_name: str):
        return engine_factory(engine_name)(
            module, machine=machine, threads=threads,
            collect_cost=collect_cost, max_dynamic_ops=max_dynamic_ops,
            workers=workers)

    return maybe_resilient(build(name), name, build)


def execute(module, function_name: str, arguments: Sequence = (), *,
            engine: Optional[str] = None, machine: MachineModel = XEON_8375C,
            threads: Optional[int] = None,
            workers: Optional[int] = None) -> CostReport:
    """Run a function on the selected engine and return its cost report."""
    executor = make_executor(module, engine=engine, machine=machine,
                             threads=threads, workers=workers)
    executor.run(function_name, arguments)
    return executor.report
