"""Execution-engine selection: interpreter, compiled closures, vectorized grids.

Every runtime entry point (harnesses, the Rodinia suite, the MocCUDA shim,
benchmarks) goes through this layer and accepts an ``engine`` knob:

* ``"compiled"`` — the default: one-time translation of each function to
  specialized Python closures (:mod:`repro.runtime.compiler`), the same
  transpile-don't-emulate move the paper applies to GPU constructs, applied
  to our own execution hot path.
* ``"vectorized"`` — the compiled engine plus whole-grid NumPy execution of
  barrier-delimited phases (:mod:`repro.runtime.vectorizer`): SSA registers
  become lane arrays, loads/stores become gathers/scatters, and phases the
  analyzer cannot prove vectorizable fall back to the compiled closures.
* ``"interp"`` — the reference tree-walking
  :class:`~repro.runtime.interpreter.Interpreter`, kept as the correctness
  and cost-accounting oracle.

All engines produce bit-identical outputs and :class:`CostReport`s (pinned
by ``tests/runtime/test_engine_parity.py``); only wall-clock speed differs.
The process-wide default can be overridden with the ``REPRO_ENGINE``
environment variable (``compiled``/``vectorized``/``interp``).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

from .costmodel import CostReport, MachineModel, XEON_8375C
from .compiler import CompiledEngine, invalidate_compiled
from .interpreter import Interpreter, InterpreterError
from .vectorizer import VectorizedEngine

ENGINE_COMPILED = "compiled"
ENGINE_INTERP = "interp"
ENGINE_VECTORIZED = "vectorized"
ENGINES = (ENGINE_COMPILED, ENGINE_VECTORIZED, ENGINE_INTERP)

#: environment variable overriding the process-wide default engine.
ENGINE_ENV_VAR = "REPRO_ENGINE"

Executor = Union[Interpreter, CompiledEngine, VectorizedEngine]

_ENGINE_CLASSES = {
    ENGINE_COMPILED: CompiledEngine,
    ENGINE_VECTORIZED: VectorizedEngine,
    ENGINE_INTERP: Interpreter,
}


def default_engine() -> str:
    """The process-wide default engine name (``REPRO_ENGINE`` or compiled)."""
    return os.environ.get(ENGINE_ENV_VAR, ENGINE_COMPILED)


def resolve_engine(engine: Optional[str] = None) -> str:
    """Normalize and validate an engine name (``None`` = process default)."""
    name = engine if engine is not None else default_engine()
    if name not in ENGINES:
        raise ValueError(f"unknown engine {name!r}; expected one of {ENGINES}")
    return name


def make_executor(module, *, engine: Optional[str] = None,
                  machine: MachineModel = XEON_8375C,
                  threads: Optional[int] = None,
                  collect_cost: bool = True,
                  max_dynamic_ops: Optional[int] = None) -> Executor:
    """Build an executor (Interpreter, CompiledEngine or VectorizedEngine).

    All classes share the same API: ``run(function_name, arguments)`` plus a
    ``report`` attribute accumulating the simulated-cycle cost model.
    """
    cls = _ENGINE_CLASSES[resolve_engine(engine)]
    return cls(module, machine=machine, threads=threads,
               collect_cost=collect_cost, max_dynamic_ops=max_dynamic_ops)


def execute(module, function_name: str, arguments: Sequence = (), *,
            engine: Optional[str] = None, machine: MachineModel = XEON_8375C,
            threads: Optional[int] = None) -> CostReport:
    """Run a function on the selected engine and return its cost report."""
    executor = make_executor(module, engine=engine, machine=machine, threads=threads)
    executor.run(function_name, arguments)
    return executor.report
