"""Runtime memory: numpy-backed memref storage.

Following the scientific-Python guidance the project's runtime is built on
(contiguous numpy buffers, no per-element Python objects in bulk operations),
every memref is a contiguous ``numpy.ndarray`` of the right dtype.  Memory
spaces are carried alongside the buffer so the cost model can charge global
vs. shared/local accesses differently.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..ir import FloatType, IndexType, IntegerType, MemorySpace, MemRefType, Type


def dtype_for(element_type: Type) -> np.dtype:
    """The numpy dtype backing an IR element type."""
    if isinstance(element_type, FloatType):
        return np.dtype(np.float32) if element_type.width == 32 else np.dtype(np.float64)
    if isinstance(element_type, IndexType):
        return np.dtype(np.int64)
    if isinstance(element_type, IntegerType):
        if element_type.width == 1:
            return np.dtype(np.int8)
        if element_type.width <= 8:
            return np.dtype(np.int8)
        if element_type.width <= 32:
            return np.dtype(np.int32)
        return np.dtype(np.int64)
    raise TypeError(f"no numpy dtype for element type {element_type}")


class MemRefStorage:
    """A runtime buffer: numpy array + memory space + element type."""

    __slots__ = ("array", "memory_space", "element_type", "freed")

    def __init__(self, array: np.ndarray, memory_space: str = MemorySpace.GLOBAL,
                 element_type: Optional[Type] = None) -> None:
        self.array = array
        self.memory_space = memory_space
        self.element_type = element_type
        self.freed = False

    # -- constructors --------------------------------------------------------
    @classmethod
    def allocate(cls, type: MemRefType, dynamic_sizes: Sequence[int] = ()) -> "MemRefStorage":
        shape = []
        dynamic = list(dynamic_sizes)
        for extent in type.shape:
            shape.append(int(dynamic.pop(0)) if extent < 0 else extent)
        array = np.zeros(tuple(shape), dtype=dtype_for(type.element_type))
        return cls(array, type.memory_space, type.element_type)

    @classmethod
    def from_numpy(cls, array: np.ndarray,
                   memory_space: str = MemorySpace.GLOBAL) -> "MemRefStorage":
        return cls(np.ascontiguousarray(array), memory_space)

    # -- element access --------------------------------------------------------
    def load(self, indices: Tuple[int, ...]):
        value = self.array[tuple(int(i) for i in indices)] if indices else self.array[()]
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.integer):
            return int(value)
        return value

    def store(self, value, indices: Tuple[int, ...]) -> None:
        if indices:
            self.array[tuple(int(i) for i in indices)] = value
        else:
            self.array[()] = value

    def copy_from(self, other: "MemRefStorage") -> None:
        np.copyto(self.array.reshape(-1), other.array.reshape(-1))

    # -- properties -------------------------------------------------------------
    @property
    def num_elements(self) -> int:
        return int(self.array.size)

    @property
    def element_bytes(self) -> int:
        return int(self.array.itemsize)

    @property
    def num_bytes(self) -> int:
        return int(self.array.nbytes)

    def __repr__(self) -> str:
        return (f"MemRefStorage(shape={self.array.shape}, dtype={self.array.dtype}, "
                f"space={self.memory_space})")
