"""Runtime memory: numpy-backed memref storage.

Following the scientific-Python guidance the project's runtime is built on
(contiguous numpy buffers, no per-element Python objects in bulk operations),
every memref is a contiguous ``numpy.ndarray`` of the right dtype.  Memory
spaces are carried alongside the buffer so the cost model can charge global
vs. shared/local accesses differently.

Memory safety is centralized here: every accessor (:meth:`MemRefStorage.load`,
:meth:`~MemRefStorage.store`, the bulk :meth:`~MemRefStorage.load_block` /
:meth:`~MemRefStorage.store_block` used by the vectorized engine,
:meth:`~MemRefStorage.free` and :meth:`~MemRefStorage.copy_from`) raises
:class:`~repro.runtime.errors.UseAfterFreeError` on a freed buffer, so the
engines no longer duplicate the guard in interpreter handlers or generated
prologues — they go through :meth:`~MemRefStorage.check_alive`.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..ir import FloatType, IndexType, IntegerType, MemorySpace, MemRefType, Type
from .errors import UseAfterFreeError


def dtype_for(element_type: Type) -> np.dtype:
    """The numpy dtype backing an IR element type."""
    if isinstance(element_type, FloatType):
        return np.dtype(np.float32) if element_type.width == 32 else np.dtype(np.float64)
    if isinstance(element_type, IndexType):
        return np.dtype(np.int64)
    if isinstance(element_type, IntegerType):
        if element_type.width == 1:
            return np.dtype(np.int8)
        if element_type.width <= 8:
            return np.dtype(np.int8)
        if element_type.width <= 32:
            return np.dtype(np.int32)
        return np.dtype(np.int64)
    raise TypeError(f"no numpy dtype for element type {element_type}")


class MemRefStorage:
    """A runtime buffer: numpy array + memory space + element type.

    A storage can be *promoted* to a ``multiprocessing.shared_memory``
    backing (:func:`repro.runtime.sharedmem.promote`): ``array`` is swapped
    in place for a view into the shared segment so every alias of the
    storage — and every worker process that attaches the segment by name —
    reads and writes the same bytes.  ``shm_name`` identifies the segment
    (``None`` for ordinary process-local buffers) and ``shm_flags`` is a
    one-byte view of the segment header used to propagate the freed flag
    across processes.
    """

    __slots__ = ("array", "memory_space", "element_type", "freed",
                 "shm_name", "shm_flags", "__weakref__")

    def __init__(self, array: np.ndarray, memory_space: str = MemorySpace.GLOBAL,
                 element_type: Optional[Type] = None) -> None:
        self.array = array
        self.memory_space = memory_space
        self.element_type = element_type
        self.freed = False
        self.shm_name = None
        self.shm_flags = None

    # -- constructors --------------------------------------------------------
    @classmethod
    def allocate(cls, type: MemRefType, dynamic_sizes: Sequence[int] = ()) -> "MemRefStorage":
        shape = []
        dynamic = list(dynamic_sizes)
        for extent in type.shape:
            shape.append(int(dynamic.pop(0)) if extent < 0 else extent)
        array = np.zeros(tuple(shape), dtype=dtype_for(type.element_type))
        return cls(array, type.memory_space, type.element_type)

    @classmethod
    def from_numpy(cls, array: np.ndarray,
                   memory_space: str = MemorySpace.GLOBAL) -> "MemRefStorage":
        return cls(np.ascontiguousarray(array), memory_space)

    # -- liveness --------------------------------------------------------------
    def check_alive(self) -> np.ndarray:
        """The backing array, raising :class:`UseAfterFreeError` when freed.

        This is the single source of truth for the use-after-free guard: the
        interpreter, the compiled engine's generated prologues and the
        vectorized engine's bulk accessors all route through it.
        """
        if self.freed:
            raise UseAfterFreeError("use after free of a memref buffer")
        return self.array

    def free(self) -> None:
        """Mark the buffer freed (double-free raises like any other access).

        For shared-memory-promoted buffers the freed flag is also written
        into the segment header, so a free in one process is observed by
        every other process the next time it decodes the buffer.
        """
        self.check_alive()
        self.freed = True
        if self.shm_flags is not None:
            self.shm_flags[0] = 1

    # -- element access --------------------------------------------------------
    def load(self, indices: Tuple[int, ...]):
        array = self.check_alive()
        value = array[tuple(int(i) for i in indices)] if indices else array[()]
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.integer):
            return int(value)
        return value

    def store(self, value, indices: Tuple[int, ...]) -> None:
        array = self.check_alive()
        if indices:
            array[tuple(int(i) for i in indices)] = value
        else:
            array[()] = value

    # -- bulk access ------------------------------------------------------------
    def load_block(self, indices: Sequence = ()) -> np.ndarray:
        """Bulk gather: elements at (arrays of) indices, without scalar boxing.

        ``indices`` is one index array (or scalar) per memref dimension; they
        broadcast against each other like numpy advanced indexing.  With no
        indices the whole buffer is returned (a rank-0 buffer gathers to a
        0-d array).  Unlike :meth:`load`, elements keep their numpy dtype —
        the vectorized engine widens them itself.
        """
        array = self.check_alive()
        if not len(indices):
            return array
        return array[tuple(indices)]

    def store_block(self, values, indices: Sequence = ()) -> None:
        """Bulk scatter: assign ``values`` at (arrays of) indices.

        Duplicate indices resolve **last-writer-wins in element order**
        (sequential thread order when lanes are laid out in thread order).
        NumPy leaves duplicate-index assignment order unspecified, so the
        tie-break is made explicit: duplicate targets are reduced to their
        last writer before a single duplicate-free assignment.
        """
        array = self.check_alive()
        if not len(indices):
            array[...] = values
            return
        index_arrays = [np.asarray(index) for index in indices]
        if not any(index.ndim for index in index_arrays):
            array[tuple(int(index) for index in index_arrays)] = values
            return
        normalized = []
        for index, extent in zip(index_arrays, array.shape):
            index = np.asarray(index, dtype=np.int64)
            if bool(((index < -extent) | (index >= extent)).any()):
                raise IndexError(
                    f"store_block index out of bounds for extent {extent}")
            normalized.append(np.where(index < 0, index + extent, index))
        flat = np.ravel_multi_index(tuple(normalized), array.shape).reshape(-1)
        spread = np.broadcast_to(np.asarray(values), flat.shape).reshape(-1)
        # last occurrence of each target = first occurrence in the reversal
        last_writers, positions = np.unique(flat[::-1], return_index=True)
        array.reshape(-1)[last_writers] = spread[::-1][positions]

    def copy_from(self, other: "MemRefStorage") -> None:
        np.copyto(self.check_alive().reshape(-1), other.check_alive().reshape(-1))

    # -- properties -------------------------------------------------------------
    @property
    def num_elements(self) -> int:
        return int(self.array.size)

    @property
    def element_bytes(self) -> int:
        return int(self.array.itemsize)

    @property
    def num_bytes(self) -> int:
        return int(self.array.nbytes)

    def __repr__(self) -> str:
        return (f"MemRefStorage(shape={self.array.shape}, dtype={self.array.dtype}, "
                f"space={self.memory_space})")
