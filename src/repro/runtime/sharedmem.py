"""Shared-memory backing for :class:`~repro.runtime.memory.MemRefStorage`.

The multicore engine (:mod:`repro.runtime.multicore`) shards parallel
regions across worker *processes*; for the workers' loads and stores to
land in the same buffers the parent observes, every memref that crosses a
shard boundary must live in memory both sides can map.  This module
provides that backing on top of :mod:`multiprocessing.shared_memory`:

* :func:`promote` rebacks an existing storage **in place**: the numpy
  array is copied into a fresh shared segment and ``storage.array`` is
  swapped for a view of it, so every alias of the storage object (engine
  register slots, interpreter environments, caller-held references)
  transparently starts operating on shared bytes.  The existing
  ``load``/``store``/``load_block``/``store_block`` accessors keep working
  unchanged — they only see a differently-backed ndarray.
* :func:`encode` / :func:`decode` turn a promoted storage into a small
  picklable descriptor (segment name + dtype/shape/space) and back.  A
  worker decoding a descriptor attaches the segment by name and maps the
  same bytes; attachments are cached per process so repeated shards reuse
  the mapping and buffer identity.
* every segment carries a small header whose first byte is the **freed
  flag**: :meth:`MemRefStorage.free` raises it, :func:`decode` and
  :func:`refresh_freed` observe it, so a use-after-free is detected across
  process boundaries (free in the parent → the worker's next decode raises
  on access; free in a worker → the parent re-syncs after the shard join).

Segments are created by the parent process, unlinked when the owning
storage is garbage collected (``weakref.finalize``) and swept once more at
interpreter exit.  Worker processes (forked children) only ever attach and
close — the pid guard keeps an inherited atexit hook from unlinking
segments the parent still uses.
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from typing import Dict, Optional, Tuple

import numpy as np

from .errors import ShmExhaustedError, UseAfterFreeError
from .memory import MemRefStorage
from . import resilience

try:  # pragma: no cover - import guarded for exotic platforms
    from multiprocessing import shared_memory as _shm_module
    from multiprocessing import resource_tracker as _resource_tracker
except ImportError:  # pragma: no cover
    _shm_module = None
    _resource_tracker = None

#: bytes reserved at the start of every segment (byte 0 = freed flag); kept
#: at 16 so the payload view stays aligned for any dtype we back.
HEADER_BYTES = 16

#: segments created by this process: name -> SharedMemory (owner handle).
_OWNED: Dict[str, object] = {}
#: segments attached by this process: name -> SharedMemory (borrower handle).
_ATTACHED: Dict[str, object] = {}
#: decoded storages of this process, so repeated shards keep buffer identity.
_DECODED: Dict[str, MemRefStorage] = {}
_OWNER_PID = os.getpid()
_AVAILABLE: Optional[bool] = None
#: where Linux backs shared segments; used for the free-space preflight.
_SHM_DIR = "/dev/shm"


def _check_shm_space(nbytes: int) -> None:
    """Raise ENOSPC up front when the tmpfs cannot hold ``nbytes``.

    ``SharedMemory(create=True)`` only ftruncates, and tmpfs extends the
    file sparsely — actual exhaustion would otherwise surface as a SIGBUS
    when the first copy touches unbackable pages, killing the process
    instead of reaching the engine's demote-to-in-process OSError path.
    Best-effort: platforms without a statvfs-able segment directory skip
    the check and rely on segment creation failing.
    """
    try:
        stats = os.statvfs(_SHM_DIR)
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return
    if stats.f_bavail * stats.f_frsize < nbytes:
        raise ShmExhaustedError(
            f"shared-memory segment of {nbytes} bytes exceeds the "
            f"free space in {_SHM_DIR}")


if _shm_module is not None:
    class _Segment(_shm_module.SharedMemory):
        """A shared segment whose close tolerates live numpy views.

        The payload views handed to :class:`MemRefStorage` keep the mmap's
        buffer exported; ``mmap.close`` refuses to tear that down and
        ``SharedMemory.__del__`` would print an "Exception ignored"
        traceback for it.  The mapping is reclaimed by the OS when the
        process exits (and the named segment by ``unlink``), so the
        failed eager close is safely ignored.
        """

        def close(self) -> None:
            try:
                super().close()
            except BufferError:
                pass
else:  # pragma: no cover
    _Segment = None


def _untracked_attach(name: str):
    """Attach an existing segment without resource-tracker bookkeeping.

    CPython < 3.13 registers *attaching* processes with the resource
    tracker too (gh-82300), which makes the tracker spuriously unlink or
    warn about segments the parent still owns when a worker exits.  The
    parent is the single owner here, so attachments bypass the tracker.
    """
    def _ignore_registration(*args, **kwargs):
        return None

    original = _resource_tracker.register
    _resource_tracker.register = _ignore_registration
    try:
        return _Segment(name=name, create=False)
    finally:
        _resource_tracker.register = original


def shared_memory_available() -> bool:
    """Whether shared-memory segments can actually be created here.

    Probes once per process by creating (and immediately unlinking) a tiny
    segment — containers without a usable ``/dev/shm`` fail the probe and
    the multicore engine degrades to in-process execution.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        if _shm_module is None:
            _AVAILABLE = False
        else:
            try:
                probe = _Segment(create=True, size=1)
                probe.close()
                probe.unlink()
                _AVAILABLE = True
            except (OSError, ValueError):
                _AVAILABLE = False
    return _AVAILABLE


def mark_worker_process() -> None:
    """Reset inherited ownership in a freshly forked worker.

    A forked child inherits ``_OWNED`` and the atexit hook; it must never
    unlink the parent's segments, so its inherited registry is dropped
    (handles stay open in the parent) and its pid guard re-resolves.
    """
    global _OWNER_PID
    _OWNER_PID = os.getpid()
    _OWNED.clear()
    _DECODED.clear()


def _release_segment(name: str) -> None:
    shm = _OWNED.pop(name, None)
    if shm is None or os.getpid() != _OWNER_PID:
        return
    try:
        shm.close()
        shm.unlink()
    except (OSError, ValueError):  # pragma: no cover - already gone
        pass


@atexit.register
def _cleanup_at_exit() -> None:  # pragma: no cover - exercised at shutdown
    for name in list(_OWNED):
        _release_segment(name)


def _segment_view(shm, dtype: np.dtype, shape: Tuple[int, ...]) -> np.ndarray:
    count = 1
    for extent in shape:
        count *= extent
    flat = np.frombuffer(shm.buf, dtype=dtype, count=count, offset=HEADER_BYTES)
    return flat.reshape(shape)


def _flags_view(shm) -> np.ndarray:
    return np.frombuffer(shm.buf, dtype=np.uint8, count=1, offset=0)


def promote(storage: MemRefStorage) -> MemRefStorage:
    """Reback ``storage`` with a shared-memory segment, in place.

    Idempotent: an already-promoted storage is returned unchanged.  The
    original array contents are copied into the segment; from then on the
    storage object (and all its aliases) reads and writes shared bytes.
    A freed storage promotes to a segment whose freed flag is already set,
    so decoding it elsewhere still raises on access.
    """
    if storage.shm_name is not None:
        return storage
    resilience.inject("sharedmem.promote")
    array = storage.array
    nbytes = max(1, int(array.nbytes))
    _check_shm_space(HEADER_BYTES + nbytes)
    name = f"repro-{os.getpid()}-{secrets.token_hex(4)}"
    shm = _Segment(name=name, create=True, size=HEADER_BYTES + nbytes)
    _OWNED[name] = shm
    view = _segment_view(shm, array.dtype, array.shape)
    np.copyto(view, array)
    # a read-only input stays read-only after promotion (and in every
    # worker that decodes it — see encode/decode), so a kernel storing
    # into it raises the same ValueError the in-process engines raise.
    view.flags.writeable = bool(array.flags.writeable)
    storage.array = view
    storage.shm_name = name
    storage.shm_flags = _flags_view(shm)
    if storage.freed:
        storage.shm_flags[0] = 1
    weakref.finalize(storage, _release_segment, name)
    return storage


def encode(storage: MemRefStorage) -> Tuple:
    """A picklable descriptor of a promoted storage (promotes if needed)."""
    promote(storage)
    return (storage.shm_name, storage.array.dtype.str, storage.array.shape,
            storage.memory_space, storage.element_type,
            bool(storage.freed or storage.shm_flags[0]),
            bool(storage.array.flags.writeable))


def decode(descriptor: Tuple) -> MemRefStorage:
    """Rebuild a storage from :func:`encode` output, attaching the segment.

    Attachments and decoded storages are cached per process and per
    segment name, so two shards (or two live-in slots) referring to the
    same buffer resolve to the same ``MemRefStorage`` object and array.
    The freed flag is re-read from the segment header on every decode.
    """
    (name, dtype_str, shape, memory_space, element_type, freed,
     writeable) = descriptor
    storage = _DECODED.get(name)
    if storage is None:
        shm = _ATTACHED.get(name)
        if shm is None:
            if name in _OWNED:  # decoding in the owning process
                shm = _OWNED[name]
            else:
                shm = _untracked_attach(name)
                _ATTACHED[name] = shm
        array = _segment_view(shm, np.dtype(dtype_str), tuple(shape))
        array.flags.writeable = writeable
        storage = MemRefStorage(array, memory_space, element_type)
        storage.shm_name = name
        storage.shm_flags = _flags_view(shm)
        _DECODED[name] = storage
    storage.freed = bool(freed or storage.shm_flags[0])
    return storage


def refresh_freed(storage: MemRefStorage) -> None:
    """Re-sync ``storage.freed`` from the segment header (post-shard join)."""
    if storage.shm_flags is not None and storage.shm_flags[0]:
        storage.freed = True


def retain_only(names) -> None:
    """Evict attachments/decoded storages for segments not in ``names``.

    Workers call this after every shard: each engine run promotes fresh
    segments, so without eviction a long-lived pool would pin every past
    run's (parent-side already unlinked) segments in worker memory.  The
    kept set is exactly the current task's live-ins, which preserves the
    within-run cache hits across a run's multiple dispatches.
    """
    keep = set(names)
    for name in list(_DECODED):
        if name not in keep:
            del _DECODED[name]
    for name in list(_ATTACHED):
        if name not in keep:
            shm = _ATTACHED.pop(name)
            shm.close()  # _Segment.close tolerates still-exported views


def assert_alive_everywhere(storage: MemRefStorage) -> np.ndarray:
    """Cross-process liveness check: local flag *or* segment header."""
    if storage.shm_flags is not None and storage.shm_flags[0]:
        storage.freed = True
    return storage.check_alive()


def owned_segment_count() -> int:
    """Number of segments this process currently owns (for tests/stats)."""
    return len(_OWNED)


__all__ = [
    "HEADER_BYTES",
    "assert_alive_everywhere",
    "decode",
    "encode",
    "mark_worker_process",
    "owned_segment_count",
    "promote",
    "refresh_freed",
    "retain_only",
    "shared_memory_available",
    "UseAfterFreeError",
]
