"""Fault-tolerant execution layer: retry policy, fault injection, fallback.

The paper's portability guarantee — every kernel has a semantically
identical lower-tier execution strategy — doubles as an *availability*
guarantee: when infrastructure fails mid-run (a ``cc`` invocation, a
worker process, ``/dev/shm``, a disk-cache entry), the runtime can retry
the transient failures and degrade the permanent ones through the engine
fallback chain without changing a single output bit.  This module is the
policy layer that makes that an enforced invariant instead of ad-hoc
``except`` clauses:

* :class:`RetryPolicy` — ``REPRO_RETRIES`` / ``REPRO_TIMEOUT_S`` /
  ``REPRO_BACKOFF_S`` with deterministic jittered exponential backoff.
* :class:`ResilienceLog` — a queryable in-process record of every
  injection, retry, fallback, degradation and recovery
  (:func:`global_log`).
* :class:`FaultPlan` — the deterministic fault-injection harness behind
  ``REPRO_FAULTS``.  Grammar (comma-separated)::

      REPRO_FAULTS="native.cc:2,cache.read:0.3@seed7,multicore.worker_exit:1"

  ``site:N`` fires the first ``N`` times the site is reached; ``site:P``
  with ``P`` in ``[0,1)`` fires with probability ``P`` from a seeded RNG
  (``@seedS`` picks the seed, default 0), so a given spec produces the
  same firing sequence on every run.  ``site:*`` always fires.  Sites:
  ``native.cc`` (compiler invocation), ``cache.read`` / ``cache.write``
  (disk-cache I/O), ``multicore.worker_exit`` / ``multicore.hang``
  (worker crash / hang, parent-side), ``sharedmem.promote`` (shm
  exhaustion), ``shim.launch`` (asynchronous stream batch failure).
* :func:`call_with_retry` — wrap one transient operation in the policy.
* :class:`ResilientExecutor` — wraps an engine executor and, when a
  taxonomy error escapes ``run()``, rebuilds on the next engine of
  :data:`FALLBACK_CHAIN` (``native → multicore → vectorized → compiled →
  interp``) and re-runs, preserving bit-identical outputs and
  CostReports.  Enabled by default via :func:`maybe_resilient` in
  ``make_executor``; opt out with ``REPRO_RESILIENCE=0``.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .errors import (
    CacheCorruptionError,
    ShmExhaustedError,
    ToolchainError,
    WorkerCrashError,
    is_transient,
)

#: environment knobs.
FAULTS_ENV_VAR = "REPRO_FAULTS"
RETRIES_ENV_VAR = "REPRO_RETRIES"
TIMEOUT_ENV_VAR = "REPRO_TIMEOUT_S"
BACKOFF_ENV_VAR = "REPRO_BACKOFF_S"
RESILIENCE_ENV_VAR = "REPRO_RESILIENCE"

DEFAULT_RETRIES = 2
DEFAULT_BACKOFF_S = 0.05

#: engine fallback order, strongest first; a permanent failure on one
#: engine degrades to the next.  Every transition preserves bit-identical
#: outputs and CostReports (pinned by tests/runtime/test_engine_parity.py).
FALLBACK_CHAIN = ("native", "multicore", "vectorized", "compiled", "interp")


def resilience_enabled() -> bool:
    """Whether ``make_executor`` wraps engines in the fallback layer."""
    return os.environ.get(RESILIENCE_ENV_VAR, "1").strip().lower() not in (
        "0", "false", "no", "off")


def faults_configured() -> bool:
    """Whether ``REPRO_FAULTS`` names any injection site."""
    return bool(os.environ.get(FAULTS_ENV_VAR, "").strip())


def fallback_engines(engine: str) -> Tuple[str, ...]:
    """The engines below ``engine`` in the fallback chain (may be empty)."""
    try:
        index = FALLBACK_CHAIN.index(engine)
    except ValueError:
        return ()
    return FALLBACK_CHAIN[index + 1:]


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently to retry a transient operation.

    ``timeout_s`` is the opt-in dispatch watchdog deadline: ``None``
    (the default, i.e. ``REPRO_TIMEOUT_S`` unset) disables it.  No fixed
    wall-clock cap is both safe for a legitimately long dispatch (large
    shards, loaded machine) and tight enough to matter for a hung
    worker, so hang detection is armed explicitly, not by default.
    """

    retries: int = DEFAULT_RETRIES
    timeout_s: Optional[float] = None
    backoff_s: float = DEFAULT_BACKOFF_S

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        def read(var, default, conv):
            raw = os.environ.get(var, "").strip()
            if not raw:
                return default
            try:
                return conv(raw)
            except ValueError:
                return default

        return cls(retries=max(0, read(RETRIES_ENV_VAR, DEFAULT_RETRIES, int)),
                   timeout_s=read(TIMEOUT_ENV_VAR, None, float),
                   backoff_s=read(BACKOFF_ENV_VAR, DEFAULT_BACKOFF_S, float))

    @property
    def watchdog_timeout(self) -> Optional[float]:
        """The dispatch watchdog deadline in seconds (``None`` = disabled)."""
        if self.timeout_s is None or self.timeout_s <= 0:
            return None
        return self.timeout_s

    def backoff_delay(self, op: str, attempt: int) -> float:
        """Jittered exponential backoff before retry ``attempt`` of ``op``.

        The jitter is drawn from an RNG seeded on ``(op, attempt)`` so the
        delay sequence is deterministic — reruns of a faulted test take the
        same wall-clock path.
        """
        if self.backoff_s <= 0:
            return 0.0
        base = self.backoff_s * (2 ** attempt)
        jitter = random.Random(f"{op}:{attempt}").random()  # in [0, 1)
        return base * (0.5 + 0.5 * jitter)

    def sleep(self, op: str, attempt: int) -> None:
        delay = self.backoff_delay(op, attempt)
        if delay > 0:
            time.sleep(delay)


def retry_policy() -> RetryPolicy:
    """The environment-configured policy (re-read on every call; cheap)."""
    return RetryPolicy.from_env()


# ---------------------------------------------------------------------------
# Resilience log
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ResilienceEvent:
    """One recorded resilience action.

    ``action`` is one of ``"inject"`` (a configured fault fired),
    ``"retry"`` (a transient failure is being retried), ``"fallback"``
    (an alternate same-tier path was taken, e.g. corrupt cache entry →
    recompile), ``"degrade"`` (capability lost for the rest of the
    run/process, e.g. pool demoted in-process, native unit failed, engine
    chain stepped down) or ``"recover"`` (a degraded resource was
    restored, e.g. poisoned stream cleared, pool re-forked).
    """

    op: str
    action: str
    error: str = ""
    detail: str = ""
    attempt: int = 0
    engine: str = ""


class ResilienceLog:
    """Bounded, thread-safe, queryable record of resilience events.

    The deque of events is bounded (oldest evicted past ``capacity``), but
    the per-action totals are **persistent counters** maintained in
    ``record()`` under the same lock — so ``counts()`` is an O(actions)
    snapshot that stays correct for a long-running process even after
    millions of events have rotated out of the window, and is cheap enough
    for per-stream worker threads and the service's stats endpoint to call
    concurrently with recording.
    """

    def __init__(self, capacity: int = 4096) -> None:
        self._events: "deque[ResilienceEvent]" = deque(maxlen=max(1, capacity))
        self._totals: Dict[str, int] = {}
        self._recorded = 0
        self._lock = threading.Lock()

    def record(self, op: str, action: str, error: str = "", detail: str = "",
               attempt: int = 0, engine: str = "") -> ResilienceEvent:
        event = ResilienceEvent(op=op, action=action, error=error,
                                detail=detail, attempt=attempt, engine=engine)
        with self._lock:
            self._events.append(event)
            self._totals[action] = self._totals.get(action, 0) + 1
            self._recorded += 1
        return event

    def events(self, *, op: Optional[str] = None, action: Optional[str] = None,
               error: Optional[str] = None) -> List[ResilienceEvent]:
        """Retained events in arrival order, filtered by any of
        op/action/error (at most ``capacity`` — the newest)."""
        with self._lock:
            snapshot = list(self._events)
        return [event for event in snapshot
                if (op is None or event.op == op)
                and (action is None or event.action == action)
                and (error is None or event.error == error)]

    def counts(self) -> Dict[str, int]:
        """Event count per action since construction (or the last
        ``clear``) — *not* bounded by the event window."""
        with self._lock:
            return dict(self._totals)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded (>= ``len(log)`` once the window rotates)."""
        with self._lock:
            return self._recorded

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._totals.clear()
            self._recorded = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


_GLOBAL_LOG = ResilienceLog()


def global_log() -> ResilienceLog:
    """The process-wide resilience log."""
    return _GLOBAL_LOG


def record_event(op: str, action: str, error: str = "", detail: str = "",
                 attempt: int = 0, engine: str = "") -> ResilienceEvent:
    """Record on the global log (convenience for the engine hook points)."""
    return _GLOBAL_LOG.record(op, action, error, detail, attempt, engine)


# ---------------------------------------------------------------------------
# Deterministic fault injection
# ---------------------------------------------------------------------------
class _FaultSpec:
    """One parsed ``site:spec`` entry with its firing state."""

    def __init__(self, site: str, *, remaining: Optional[int] = None,
                 probability: Optional[float] = None, seed: int = 0,
                 always: bool = False) -> None:
        self.site = site
        self.remaining = remaining
        self.probability = probability
        self.always = always
        self._rng = random.Random(seed) if probability is not None else None

    def fires(self) -> bool:
        if self.always:
            return True
        if self.remaining is not None:
            if self.remaining <= 0:
                return False
            self.remaining -= 1
            return True
        return self._rng.random() < self.probability


class FaultPlan:
    """The parsed ``REPRO_FAULTS`` plan; stateful (counters, seeded RNGs)."""

    def __init__(self, text: str) -> None:
        self.text = text
        self._specs: Dict[str, _FaultSpec] = {}
        self._lock = threading.Lock()
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            site, _, spec = entry.rpartition(":")
            if not site or not spec:
                raise ValueError(
                    f"malformed {FAULTS_ENV_VAR} entry {entry!r}; expected "
                    "'site:count', 'site:prob@seedN' or 'site:*'")
            self._specs[site] = self._parse_spec(site, spec)

    @staticmethod
    def _parse_spec(site: str, spec: str) -> _FaultSpec:
        if spec == "*":
            return _FaultSpec(site, always=True)
        seed = 0
        if "@" in spec:
            spec, _, seed_text = spec.partition("@")
            if not seed_text.startswith("seed"):
                raise ValueError(
                    f"malformed {FAULTS_ENV_VAR} seed {seed_text!r} for "
                    f"{site!r}; expected '@seedN'")
            seed = int(seed_text[4:])
        try:
            if "." in spec or "e" in spec.lower():
                probability = float(spec)
                if not 0.0 <= probability <= 1.0:
                    raise ValueError
                return _FaultSpec(site, probability=probability, seed=seed)
            count = int(spec)
            if count < 0:
                raise ValueError
            return _FaultSpec(site, remaining=count)
        except ValueError:
            raise ValueError(
                f"malformed {FAULTS_ENV_VAR} spec {spec!r} for {site!r}; "
                "expected a count, a probability in [0, 1] or '*'") from None

    def sites(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def fires(self, site: str) -> bool:
        spec = self._specs.get(site)
        if spec is None:
            return False
        with self._lock:
            return spec.fires()


_PLAN_LOCK = threading.Lock()
_PLAN: Optional[FaultPlan] = None


def _current_plan() -> Optional[FaultPlan]:
    """The plan for the *current* ``REPRO_FAULTS`` value.

    Keyed on the raw env text: monkeypatching the variable mid-process
    installs a fresh plan with fresh counters; clearing it drops the plan.
    """
    global _PLAN
    text = os.environ.get(FAULTS_ENV_VAR, "").strip()
    if not text:
        with _PLAN_LOCK:
            _PLAN = None
        return None
    with _PLAN_LOCK:
        if _PLAN is None or _PLAN.text != text:
            _PLAN = FaultPlan(text)
        return _PLAN


def reset_faults() -> None:
    """Drop the cached plan so the env spec re-arms with fresh counters."""
    global _PLAN
    with _PLAN_LOCK:
        _PLAN = None


def fault_fires(site: str) -> bool:
    """Whether the configured plan injects a fault at ``site`` right now.

    A firing is recorded on the global log as an ``"inject"`` event.  Used
    directly by hook points whose fault is an *action* (e.g. the multicore
    dispatcher crashing a worker) rather than an exception.
    """
    plan = _current_plan()
    if plan is None or not plan.fires(site):
        return False
    record_event(site, "inject", detail=f"fault injected at {site}")
    return True


def _fault_error(site: str) -> Exception:
    if site == "native.cc":
        return ToolchainError(
            f"injected fault at {site}: cc invocation failed ({FAULTS_ENV_VAR})",
            transient=True)
    if site == "cache.read":
        return CacheCorruptionError(
            f"injected fault at {site}: corrupt cache entry ({FAULTS_ENV_VAR})")
    if site == "cache.write":
        return OSError(errno.ENOSPC,
                       f"injected fault at {site}: cache write failed "
                       f"({FAULTS_ENV_VAR})")
    if site == "sharedmem.promote":
        return ShmExhaustedError(
            f"injected fault at {site}: /dev/shm exhausted ({FAULTS_ENV_VAR})")
    if site == "shim.launch":
        return WorkerCrashError(
            f"injected fault at {site}: asynchronous stream task failed "
            f"({FAULTS_ENV_VAR})")
    return RuntimeError(f"injected fault at {site} ({FAULTS_ENV_VAR})")


def inject(site: str) -> None:
    """Raise the site's taxonomy error if the configured plan fires."""
    if fault_fires(site):
        raise _fault_error(site)


# ---------------------------------------------------------------------------
# Retry wrapper
# ---------------------------------------------------------------------------
def call_with_retry(op: str, fn: Callable, *, policy: Optional[RetryPolicy] = None,
                    retryable: Optional[tuple] = None,
                    log: Optional[ResilienceLog] = None, engine: str = ""):
    """Run ``fn()`` under the retry policy.

    Retries up to ``policy.retries`` times when the failure is eligible:
    by default any taxonomy error tagged transient (:func:`is_transient`);
    ``retryable`` (an exception-class tuple) *replaces* that test — a
    matching instance retries even without a transient tag (widening to
    e.g. plain ``OSError``), a non-matching transient does not (narrowing).
    Every retry sleeps the deterministic jittered backoff and records a
    ``"retry"`` event.  The last failure propagates unchanged.
    """
    policy = policy or retry_policy()
    # explicit None check: an *empty* ResilienceLog is falsy (__len__)
    log = global_log() if log is None else log
    attempt = 0
    while True:
        try:
            return fn()
        except Exception as exc:
            if retryable is not None:
                eligible = isinstance(exc, retryable)
            else:
                eligible = is_transient(exc)
            if not eligible or attempt >= policy.retries:
                raise
            log.record(op, "retry", type(exc).__name__, str(exc),
                       attempt + 1, engine)
            policy.sleep(op, attempt)
            attempt += 1


# ---------------------------------------------------------------------------
# Engine fallback chain
# ---------------------------------------------------------------------------
class ResilientExecutor:
    """Engine executor wrapper implementing the fallback chain.

    Runs on the requested engine; when a :mod:`~repro.runtime.errors`
    taxonomy error escapes ``run()``, rebuilds the executor on the next
    engine in :data:`FALLBACK_CHAIN`, restores any writable ``ndarray``
    arguments from pre-run snapshots, and re-runs.  The wrapped engines
    run *strict* (``_resilience_strict``): instead of silently degrading
    they raise their taxonomy error so the wrapper owns — and logs —
    every degradation decision.

    Everything else (``report``, ``shutdown``, engine-specific stats)
    delegates to the innermost live executor.
    """

    def __init__(self, executor, engine: str, rebuild: Callable[[str], object],
                 *, policy: Optional[RetryPolicy] = None,
                 log: Optional[ResilienceLog] = None) -> None:
        self._inner = executor
        self._rebuild = rebuild
        self._policy = policy or retry_policy()
        self._log = global_log() if log is None else log
        self._engine_chain = (engine,) + fallback_engines(engine)
        self._engine_index = 0
        executor._resilience_strict = True

    @property
    def engine_name(self) -> str:
        """The engine currently executing (after any degradations)."""
        return self._engine_chain[self._engine_index]

    @property
    def inner(self):
        return self._inner

    @property
    def __class__(self):
        # Transparent-proxy idiom: ``isinstance(executor, MulticoreEngine)``
        # sees the live engine's class through the wrapper.  Use ``type()``
        # to detect the wrapper itself.
        return type(self._inner)

    def run(self, function_name: str, arguments=()):
        from .errors import ResilienceError

        snapshot = self._snapshot(arguments)
        while True:
            try:
                return self._inner.run(function_name, arguments)
            except ResilienceError as exc:
                next_index = self._engine_index + 1
                if next_index >= len(self._engine_chain):
                    raise
                current = self._engine_chain[self._engine_index]
                target = self._engine_chain[next_index]
                self._log.record(
                    "engine.run", "degrade", type(exc).__name__,
                    f"{current} -> {target}: {exc}", engine=target)
                self._restore(arguments, snapshot)
                self._replace_inner(target)
                self._engine_index = next_index

    def _replace_inner(self, engine: str) -> None:
        old = self._inner
        self._inner = self._rebuild(engine)
        self._inner._resilience_strict = True
        shutdown = getattr(old, "shutdown", None)
        if callable(shutdown):
            try:
                shutdown()
            except Exception:
                pass

    @staticmethod
    def _snapshot(arguments):
        """Pre-run copies of every writable ``ndarray`` argument.

        Always armed, not only under ``REPRO_FAULTS``: a *real* taxonomy
        failure can strike mid-run (e.g. the first native region's ``cc``
        compile failing after earlier regions already stored into
        writable buffers), and the fallback engine must re-run on
        pristine inputs to keep outputs bit-identical.  The clean-path
        cost is one copy per writable array per wrapped run.
        """
        return [(index, argument.copy())
                for index, argument in enumerate(arguments)
                if isinstance(argument, np.ndarray) and argument.flags.writeable]

    @staticmethod
    def _restore(arguments, snapshot) -> None:
        if not snapshot:
            return
        for index, saved in snapshot:
            np.copyto(arguments[index], saved)

    @property
    def report(self):
        return self._inner.report

    def __getattr__(self, name):
        return getattr(self._inner, name)


def maybe_resilient(executor, engine: str, rebuild: Callable[[str], object]):
    """Wrap ``executor`` in the fallback chain when enabled and useful.

    No wrapper when ``REPRO_RESILIENCE=0`` or when the engine has no
    fallback tier below it (the interpreter is the chain's floor).
    """
    if not resilience_enabled():
        return executor
    if not fallback_engines(engine):
        return executor
    return ResilientExecutor(executor, engine, rebuild)


__all__ = [
    "BACKOFF_ENV_VAR", "DEFAULT_BACKOFF_S", "DEFAULT_RETRIES",
    "FALLBACK_CHAIN", "FAULTS_ENV_VAR", "FaultPlan",
    "RESILIENCE_ENV_VAR", "RETRIES_ENV_VAR", "ResilienceEvent",
    "ResilienceLog", "ResilientExecutor", "RetryPolicy", "TIMEOUT_ENV_VAR",
    "call_with_retry", "fallback_engines", "fault_fires", "faults_configured",
    "global_log", "inject", "maybe_resilient", "record_event",
    "reset_faults", "resilience_enabled", "retry_policy",
]
