"""Multicore execution engine: shard parallel regions across worker processes.

The paper's deliverable is GPU kernels that *actually* run in parallel on
CPU cores; until now every engine executed in one Python process and the
``threads=`` knob only scaled the analytic cost model.  This engine makes
thread scaling a measured quantity: a persistent ``multiprocessing`` worker
pool (forked once per compiled program) receives contiguous sub-spans of
each ``gpu.launch`` block grid and each outermost barrier-free parallel
loop (``omp.wsloop`` / ``scf.parallel``), executes them with the same
compiled-or-vectorized span runners the sequential engines use, and writes
results in place through :mod:`repro.runtime.sharedmem`-backed
:class:`~repro.runtime.memory.MemRefStorage` buffers (the workers' loads
and stores go through the unchanged ``load``/``store_block`` API — only the
ndarray's backing differs).

Determinism and bit-identical parity with the interpreter rest on three
invariants:

* **write-write safety** — a compile-time store analysis (below) only
  permits sharding when every store to a shared buffer lands at an index
  *injective in the sharded dimensions* (e.g. ``C[bx*n + tx]`` with
  ``tx ∈ [0, n)``), so no two workers ever write the same location;
  anything unprovable falls back to in-process execution.  Cross-worker
  read-write interleavings within a region are unobservable for the same
  race-free programs the vectorized engine already reorders.
* **deterministic reductions** — each worker accumulates its own simulated
  work and cost counters; after the join the parent folds them in worker
  (= thread) order.  On machines whose per-access charges are exact binary
  fractions (the same dyadic gate the vectorized engine uses) float
  accumulation is exact, so regrouping per worker equals the interpreter's
  single sequential sum bit for bit.  Regions containing *nested* parallel
  regions would contribute non-dyadic wall terms (division by the
  ``effective_speedup``), so they are never sharded.
* **barrier scoping** — ``gpu.launch`` barriers synchronize threads of one
  block, and a block never straddles a shard boundary, so workers run
  their blocks' barrier phases internally and join at the region boundary;
  ``scf.parallel`` regions whose barriers span the whole grid run
  in-process.

Like the compiled engine's documented divergences, the ``max_dynamic_ops``
budget is enforced per shard (each worker receives the remaining budget;
the parent re-checks the exact summed counter after the join).

Knobs: ``workers=`` / ``REPRO_WORKERS`` selects the pool width (default:
the CPU affinity count), ``inner=`` / ``REPRO_MULTICORE_INNER`` selects the
in-worker executor flavour (``"compiled"`` — the default — or
``"vectorized"``).  With one worker, on machines without ``fork``/shared
memory, or for regions the analysis rejects, the engine degrades to plain
in-process execution and stays bit-identical.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
import weakref
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..dialects import arith, func as func_d, gpu as gpu_d
from ..dialects import memref as memref_d, omp as omp_d, scf
from .compiler import (
    CompiledEngine,
    _CONTEXT_OPS,
    _BARRIER_OPS,
    _BarrierEscape,
    _FunctionCompiler,
    _Program,
    _State,
    _iteration_space,
    _split_executed,
)
from .costmodel import CostReport, MachineModel, XEON_8375C
from .errors import (DispatchTimeoutError, InterpreterError, UseAfterFreeError,
                     WorkerCrashError)
from .memory import MemRefStorage
from . import resilience
from .vectorizer import (
    _VectorFunctionCompiler,
    _VectorProgram,
    machine_vectorizable,
)
from . import sharedmem
from .registry import register_engine

#: environment variable selecting the default worker count.
WORKERS_ENV_VAR = "REPRO_WORKERS"
#: environment variable selecting the in-worker executor flavour.
INNER_ENV_VAR = "REPRO_MULTICORE_INNER"

INNER_COMPILED = "compiled"
INNER_VECTORIZED = "vectorized"
INNERS = (INNER_COMPILED, INNER_VECTORIZED)

#: minimum work units (iterations / blocks) per worker for a dispatch to be
#: worth the IPC round trip; below this the region runs in-process.
MIN_UNITS_PER_WORKER = 2

_FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()


def available_cpus() -> int:
    """The CPUs actually available to this process (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def default_workers() -> int:
    """The default pool width: ``REPRO_WORKERS`` or the CPU affinity count."""
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        return max(1, int(env))
    return available_cpus()


def multicore_available() -> bool:
    """Whether worker-pool sharding can run here (fork + shared memory)."""
    return _FORK_AVAILABLE and sharedmem.shared_memory_available()


def resolve_inner(inner: Optional[str] = None) -> str:
    """Normalize/validate the in-worker engine flavour (None = env/default)."""
    name = inner if inner is not None else os.environ.get(INNER_ENV_VAR, INNER_COMPILED)
    if name not in INNERS:
        raise ValueError(f"unknown multicore inner engine {name!r}; "
                         f"expected one of {INNERS}")
    return name


# ---------------------------------------------------------------------------
# Write-write safety analysis
# ---------------------------------------------------------------------------
#
# Value descriptors classify every integer SSA value of a region body by how
# it depends on the sharded ("lane") dimensions:
#
#   ("u", bound)        uniform across lanes; if ``bound`` is an SSA value id
#                       the value is known to lie in [0, bound).
#   ("i", dims, bound)  injective over the lane dimensions in ``dims``: two
#                       iterations differing in any dim of ``dims`` (all
#                       other dims equal) produce different values.
#   ("s", dims, factor) an injective lane value scaled by the uniform SSA
#                       value ``factor`` — the intermediate of the
#                       ``bx*width + tx`` global-index pattern.  When the
#                       factor is a non-zero constant the scaled value is
#                       injective on its own.
#   ("d",)              lane-dependent with no injectivity guarantee.
#
# A store to a non-private buffer is shard-safe when the union of its
# indices' injective dims covers every lane dimension — any two iterations
# in different shards then hit different locations.  Dims left uncovered are
# recorded as *required-singleton*: the region may still shard at runtime if
# those dims have extent 1 (the common collapsed-loop case where only
# ``bx``/``tx`` really vary).

_UNSAFE_BODY_OPS = (memref_d.CopyOp, gpu_d.GPUMemcpyOp,
                    memref_d.DeallocOp, gpu_d.GPUDeallocOp,
                    gpu_d.GPUAllocOp)


class _Unsafe(Exception):
    """The region cannot be proven write-write safe across shards."""


def _const_int(value) -> Optional[int]:
    defining = value.defining_op()
    if isinstance(defining, arith.ConstantOp) and isinstance(defining.value, int):
        return defining.value
    return None


def _is_lane(desc) -> bool:
    return desc[0] in ("i", "s", "d")


_DIRTY = ("d",)
_UNIFORM = ("u", None)


class _StoreSafety:
    """One region's store analysis; raises :class:`_Unsafe` on rejection."""

    def __init__(self, program, num_dims: int) -> None:
        self.program = program
        self.num_dims = num_dims
        self.all_dims = frozenset(range(num_dims))
        self.desc: Dict[int, Tuple] = {}
        self.private: set = set()       # id(memref value) allocated in-region
        self.cell_stores: Dict[int, int] = {}  # rank-0 local cells: #stores
        self.cell_desc: Dict[int, Tuple] = {}
        self.required: set = set()      # dims that must be singleton at runtime
        self.depth = 0                  # nesting depth below the region body

    # -- seeding ---------------------------------------------------------------
    def seed_lane(self, value, dim: int, bound_id: Optional[int]) -> None:
        self.desc[id(value)] = ("i", frozenset((dim,)), bound_id)

    def seed_bounded_uniform(self, value, bound_id: Optional[int]) -> None:
        self.desc[id(value)] = ("u", bound_id)

    # -- walk ------------------------------------------------------------------
    def run(self, ops: Sequence) -> FrozenSet[int]:
        for op in ops:
            self._prescan(op)
        self._eval_block(ops)
        return frozenset(self.required)

    def _prescan(self, op) -> None:
        if isinstance(op, _CONTEXT_OPS):
            raise _Unsafe(f"nested parallel context {op.name}")
        if isinstance(op, memref_d.AllocOp):  # covers AllocaOp
            self.private.add(id(op.result))
            if not op.memref_type.shape and not op.operands:
                self.cell_stores.setdefault(id(op.result), 0)
        if isinstance(op, memref_d.StoreOp):
            key = id(op.memref)
            if key in self.cell_stores:
                self.cell_stores[key] += 1
        if isinstance(op, func_d.CallOp):
            callee = self.program.module.lookup(op.callee)
            if callee is None or callee.is_declaration:
                raise _Unsafe(f"call to unknown function {op.callee!r}")
            if not _callee_shard_safe(self.program, callee):
                raise _Unsafe(f"call to store-unsafe function {op.callee!r}")
        for region in op.regions:
            for block in region.blocks:
                for nested in block.operations:
                    self._prescan(nested)

    # -- descriptor transfer ---------------------------------------------------
    def _get(self, value) -> Tuple:
        return self.desc.get(id(value), _UNIFORM)

    def _set(self, value, desc: Tuple) -> None:
        self.desc[id(value)] = desc

    def _default(self, op) -> None:
        dirty = any(_is_lane(self._get(operand)) for operand in op.operands)
        for result in op.results:
            self._set(result, _DIRTY if dirty else _UNIFORM)

    @staticmethod
    def _join(a: Tuple, b: Tuple) -> Tuple:
        if a == b:
            return a
        if not _is_lane(a) and not _is_lane(b):
            return _UNIFORM
        return _DIRTY

    def _eval_block(self, ops: Sequence) -> None:
        for op in ops:
            self._eval_op(op)

    def _eval_nested_block(self, ops: Sequence) -> None:
        self.depth += 1
        try:
            self._eval_block(ops)
        finally:
            self.depth -= 1

    def _eval_op(self, op) -> None:
        if isinstance(op, _BARRIER_OPS) or isinstance(op, omp_d.OmpBarrierOp):
            return
        if isinstance(op, arith.ConstantOp):
            self._set(op.result, _UNIFORM)
            return
        if isinstance(op, arith._CastOp):
            self._set(op.result, self._get(op.input))
            return
        if isinstance(op, arith.AddIOp):
            self._set(op.result, self._add(op.lhs, op.rhs))
            return
        if isinstance(op, arith.SubIOp):
            self._set(op.result, self._sub(op.lhs, op.rhs))
            return
        if isinstance(op, arith.MulIOp):
            self._set(op.result, self._mul(op.lhs, op.rhs))
            return
        if isinstance(op, memref_d.AllocOp):
            return  # memref results carry no integer descriptor
        if isinstance(op, memref_d.LoadOp):
            self._eval_load(op)
            return
        if isinstance(op, memref_d.StoreOp):
            self._eval_store(op)
            return
        if isinstance(op, _UNSAFE_BODY_OPS):
            self._eval_unsafe_memory(op)
            return
        if isinstance(op, scf.ForOp):
            self._eval_for(op)
            return
        if isinstance(op, scf.IfOp):
            self._eval_if(op)
            return
        if isinstance(op, scf.WhileOp):
            self._eval_while(op)
            return
        self._default(op)

    @staticmethod
    def _inj_alone(desc: Tuple) -> Optional[Tuple]:
        """View ``desc`` as injective in isolation, if it provably is."""
        if desc[0] == "i":
            return desc
        if desc[0] == "s":
            constant = _const_int(desc[2])
            if constant is not None and constant != 0:
                return ("i", desc[1], None)
        return None

    def _add(self, lhs, rhs) -> Tuple:
        a, b = self._get(lhs), self._get(rhs)
        for x, y in ((a, b), (b, a)):
            if x[0] == "s":
                # bx*width + tx: the addend lies in [0, width), so distinct
                # (bx, tx) pairs produce distinct sums.
                if y[0] == "u" and y[1] == id(x[2]) and y[1] is not None:
                    return ("i", x[1], None)
                if y[0] == "i" and y[2] == id(x[2]) and y[2] is not None:
                    return ("i", x[1] | y[1], None)
            x_inj = self._inj_alone(x)
            if x_inj is not None and y[0] == "u":
                return ("i", x_inj[1], None)
        if not _is_lane(a) and not _is_lane(b):
            return _UNIFORM
        return _DIRTY

    def _sub(self, lhs, rhs) -> Tuple:
        a, b = self._get(lhs), self._get(rhs)
        a_inj, b_inj = self._inj_alone(a), self._inj_alone(b)
        if a_inj is not None and b[0] == "u":
            return ("i", a_inj[1], None)
        if a[0] == "u" and b_inj is not None:
            return ("i", b_inj[1], None)
        if not _is_lane(a) and not _is_lane(b):
            return _UNIFORM
        return _DIRTY

    def _mul(self, lhs, rhs) -> Tuple:
        a, b = self._get(lhs), self._get(rhs)
        for x, y, y_value in ((a, b, rhs), (b, a, lhs)):
            if x[0] == "i" and y[0] == "u":
                if _const_int(y_value) == 0:
                    return _UNIFORM
                # keep the factor *value*: a later addi can match it against
                # an addend bounded by the same SSA value, and a non-zero
                # constant factor makes the product injective on its own.
                return ("s", x[1], y_value)
        if not _is_lane(a) and not _is_lane(b):
            return _UNIFORM
        return _DIRTY

    def _eval_load(self, op) -> None:
        key = id(op.memref)
        if key in self.cell_stores:
            # a cell load is only as good as its unique dominating store
            # (recorded below); everything else — multiple static stores,
            # a control-dependent store, a load before the store — may
            # observe a different (e.g. zero-initialized) value in some
            # iterations, so it must not pretend to be uniform.
            self._set(op.result, self.cell_desc.get(key, _DIRTY))
            return
        if key in self.private:
            # private rank>0 scratch: contents may mix lane-dependent
            # values across program points, and _default would misread the
            # descriptor-less memref operand as uniform.
            self._set(op.result, _DIRTY)
            return
        self._default(op)

    def _eval_store(self, op) -> None:
        key = id(op.memref)
        if key in self.private:
            if (key in self.cell_stores and self.cell_stores[key] == 1
                    and self.depth == 0):
                # the cell's only static store, top-level in the region
                # body: it unconditionally dominates every later load, so
                # the loaded value is exactly this one.  Stores inside
                # scf.if/scf.for never qualify — a not-taken branch or
                # zero-trip loop would leave later loads reading the
                # zero-initialized cell instead.
                self.cell_desc[key] = self._get(op.value)
            return
        if _is_lane(self._get(op.memref)):
            raise _Unsafe("store through a lane-selected memref")
        covered = set()
        for index in op.indices:
            desc = self._inj_alone(self._get(index))
            if desc is not None:
                covered |= desc[1]
        self.required |= self.all_dims - covered

    def _eval_unsafe_memory(self, op) -> None:
        # bulk copies / deallocations of shared buffers inside the region
        # conflict across every iteration pair: only singleton spaces are
        # safe, which the required-singleton mechanism expresses exactly.
        for operand in op.operands:
            if id(operand) not in self.private:
                self.required |= self.all_dims
                return

    def _eval_for(self, op) -> None:
        bound_descs = [self._get(op.lower_bound), self._get(op.upper_bound),
                       self._get(op.step)]
        if any(_is_lane(desc) for desc in bound_descs):
            iv_desc = _DIRTY
        else:
            lower = _const_int(op.lower_bound)
            step = _const_int(op.step)
            if lower == 0 and step == 1:
                iv_desc = ("u", id(op.upper_bound))
            else:
                iv_desc = _UNIFORM
        self._set(op.induction_var, iv_desc)
        body_ops, term = _split_executed(op.body)
        yields = list(term.operands) if isinstance(term, scf.YieldOp) else []
        for arg, init in zip(op.iter_args, op.iter_init):
            self._set(arg, self._get(init))
        for _ in range(4):
            self._eval_nested_block(body_ops)
            changed = False
            for arg, yielded in zip(op.iter_args, yields):
                joined = self._join(self._get(arg), self._get(yielded))
                if joined != self._get(arg):
                    self._set(arg, joined)
                    changed = True
            if not changed:
                break
        else:
            for arg in op.iter_args:
                self._set(arg, _DIRTY)
            self._eval_nested_block(body_ops)
        for result, arg in zip(op.results, op.iter_args):
            self._set(result, self._get(arg))

    def _eval_if(self, op) -> None:
        then_ops, then_term = _split_executed(op.then_block)
        self._eval_nested_block(then_ops)
        then_yields = (list(then_term.operands)
                       if isinstance(then_term, scf.YieldOp) else [])
        else_yields: List = []
        if op.else_block is not None:
            else_ops, else_term = _split_executed(op.else_block)
            self._eval_nested_block(else_ops)
            else_yields = (list(else_term.operands)
                           if isinstance(else_term, scf.YieldOp) else [])
        for index, result in enumerate(op.results):
            then_desc = (self._get(then_yields[index])
                         if index < len(then_yields) else _DIRTY)
            else_desc = (self._get(else_yields[index])
                         if index < len(else_yields) else _DIRTY)
            self._set(result, self._join(then_desc, else_desc))

    def _eval_while(self, op) -> None:
        # loop-carried values across an unstructured condition: classified
        # dirty wholesale; body stores are still analyzed (with dirty args).
        for block in (op.before_block, op.after_block):
            for arg in block.arguments:
                self._set(arg, _DIRTY)
        before_ops, _ = _split_executed(op.before_block)
        after_ops, _ = _split_executed(op.after_block)
        self._eval_nested_block(before_ops)
        self._eval_nested_block(after_ops)
        for result in op.results:
            self._set(result, _DIRTY)


def _callee_shard_safe(program, fn, _stack: Optional[set] = None) -> bool:
    """Whether a called function only stores into its own local allocas.

    Such a callee cannot create cross-shard write conflicts no matter which
    lane calls it; anything else (stores through argument memrefs, nested
    parallelism, bulk copies) rejects the calling region.  Memoized on the
    program; recursion is conservatively unsafe.
    """
    cache = getattr(program, "_shard_callee_safe", None)
    if cache is None:
        cache = program._shard_callee_safe = {}
    key = id(fn)
    if key in cache:
        return cache[key]
    stack = _stack if _stack is not None else set()
    if key in stack:
        return False
    stack.add(key)

    local_allocs = set()

    def scan_allocs(op):
        if isinstance(op, memref_d.AllocOp):
            local_allocs.add(id(op.result))
        for region in op.regions:
            for block in region.blocks:
                for nested in block.operations:
                    scan_allocs(nested)

    def safe(op) -> bool:
        if isinstance(op, _CONTEXT_OPS) or isinstance(op, _UNSAFE_BODY_OPS):
            return False
        if isinstance(op, memref_d.StoreOp) and id(op.memref) not in local_allocs:
            return False
        if isinstance(op, func_d.CallOp):
            callee = program.module.lookup(op.callee)
            if callee is None or callee.is_declaration:
                return False
            if not _callee_shard_safe(program, callee, stack):
                return False
        for region in op.regions:
            for block in region.blocks:
                for nested in block.operations:
                    if not safe(nested):
                        return False
        return True

    for op in fn.body_block.operations:
        scan_allocs(op)
    result = all(safe(op) for op in fn.body_block.operations)
    stack.discard(key)
    cache[key] = result
    return result


# The seeding below is soundness-critical — it decides when real parallel
# execution (worker shards here, OpenMP teams in the native engine) is
# unobservable — so both engines share this single implementation.
def span_required_dims(program, op) -> Optional[FrozenSet[int]]:
    """Required-singleton dims of an iteration-space region, or ``None``
    when the store analysis cannot prove write-write safety at all."""
    analysis = _StoreSafety(program, len(op.induction_vars))
    for dim, induction_var in enumerate(op.induction_vars):
        lower = _const_int(op.lower_bounds[dim])
        step = _const_int(op.steps[dim])
        bound = (id(op.upper_bounds[dim])
                 if lower == 0 and step == 1 else None)
        analysis.seed_lane(induction_var, dim, bound)
    try:
        return analysis.run(_split_executed(op.body)[0])
    except _Unsafe:
        return None


def launch_required_axes(program, op) -> Optional[FrozenSet[int]]:
    """Required-singleton grid axes of a launch block grid, or ``None``."""
    arguments = op.body.arguments
    analysis = _StoreSafety(program, 3)
    for axis in range(3):
        analysis.seed_lane(arguments[axis], axis, id(op.grid_dims[axis]))
        # threadIdx lies in [0, blockDim) of its axis — the addend of
        # the canonical bx*blockDim + tx global-index pattern.
        analysis.seed_bounded_uniform(arguments[3 + axis],
                                      id(arguments[9 + axis]))
    for nested in op.body.operations:
        if (isinstance(nested, memref_d.AllocaOp)
                and memref_d.is_shared_memref(nested.result)):
            # block-shared buffers are block-private: a block never
            # straddles a shard boundary.
            analysis.private.add(id(nested.result))
    try:
        return analysis.run(_split_executed(op.body)[0])
    except _Unsafe:
        return None


# ---------------------------------------------------------------------------
# Worker pool
# ---------------------------------------------------------------------------
_LIVE_POOLS: "weakref.WeakSet" = weakref.WeakSet()
_ERROR_TYPES = {
    "InterpreterError": InterpreterError,
    "UseAfterFreeError": UseAfterFreeError,
    "WorkerCrashError": WorkerCrashError,
    "DispatchTimeoutError": DispatchTimeoutError,
    "IndexError": IndexError,
    "ValueError": ValueError,
    "OverflowError": OverflowError,
    "ZeroDivisionError": ZeroDivisionError,
}


def _worker_main(conn, program, index: int) -> None:  # pragma: no cover - child
    """Worker loop: decode → execute a shard → reply; exits on EOF/stop.

    Runs in a forked child that inherits the parent's compiled program, so
    region runners resolve by key without shipping any code; ``os._exit``
    skips inherited atexit hooks (pool shutdown, segment unlink) that only
    the parent may run.
    """
    sharedmem.mark_worker_process()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            if message[0] == "exit":
                # injected worker crash (REPRO_FAULTS multicore.worker_exit)
                os._exit(23)
            if message[0] == "hang":
                # injected worker hang (REPRO_FAULTS multicore.hang); the
                # parent's watchdog kills the pool long before this wakes.
                time.sleep(float(message[1]))
                continue
            try:
                result = _execute_shard(program, *message[1:])
                conn.send(("ok", result))
            except BaseException as exc:  # noqa: BLE001 - relayed to parent
                conn.send(("err", type(exc).__name__, str(exc)))
    finally:
        try:
            conn.close()
        except OSError:
            pass
        os._exit(0)


def _execute_shard(program, key, live_ins, start: int, stop: int,
                   threads: int, max_ops: Optional[int]) -> Dict:
    """Run one contiguous shard of a registered region in this process."""
    region = program.shard_regions.get(key)
    if region is None:
        fn = program.module.lookup(key[0])
        if fn is None:
            raise InterpreterError(f"worker cannot resolve function {key[0]!r}")
        program.function(fn, key[1])  # deterministic recompile fills the registry
        region = program.shard_regions.get(key)
        if region is None:
            raise InterpreterError(f"worker cannot resolve shard region {key!r}")
    regs = region["template"][:]
    segment_names = [payload[0] for tag, payload in live_ins.values() if tag == "m"]
    sharedmem.retain_only(segment_names)  # evict segments of finished runs
    for slot, (tag, payload) in live_ins.items():
        regs[slot] = sharedmem.decode(payload) if tag == "m" else payload
    report = CostReport(machine=program.machine, threads=threads)
    state = _State(report, threads, [0.0], max_ops, program)
    try:
        if region["kind"] == "span":
            ranges, _ = _iteration_space(regs, region["lb_slots"],
                                         region["ub_slots"], region["st_slots"])
            region["run"](state, regs, ranges, start, stop)
        else:
            grid = [int(regs[s]) for s in region["grid_slots"]]
            block = [int(regs[s]) for s in region["block_slots"]]
            region["run"](state, regs, grid, block, start, stop)
    except _BarrierEscape:
        raise InterpreterError(region["barrier_message"]) from None
    return {
        "work": state.work[0],
        "dynamic_ops": report.dynamic_ops,
        "parallel_regions": report.parallel_regions,
        "nested_regions": report.nested_regions,
        "workshared_loops": report.workshared_loops,
        "barriers": report.barriers,
        "simt_phases": report.simt_phases,
        "global_bytes": report.global_bytes,
    }


class _WorkerPool:
    """A fixed set of forked worker processes fed over pipes.

    Forked lazily at the first dispatch of a program (so children inherit
    the compiled region registry), reused for every later shard of that
    program, shut down when the program is garbage collected or at
    interpreter exit.
    """

    def __init__(self, program, num_workers: int) -> None:
        context = multiprocessing.get_context("fork")
        self.num_workers = num_workers
        self.workers = []
        self._closed = False
        for index in range(num_workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_worker_main, args=(child_conn, program, index),
                daemon=True, name=f"repro-shard-{index}")
            process.start()
            child_conn.close()
            self.workers.append((process, parent_conn))
        _LIVE_POOLS.add(self)

    def alive(self) -> bool:
        return not self._closed and all(p.is_alive() for p, _ in self.workers)

    def run(self, tasks: Sequence,
            timeout_s: Optional[float] = None) -> List[Dict]:
        """Dispatch one task per worker; returns results in worker order.

        All replies are drained before any error is raised, so a failing
        shard cannot leave stale messages in a sibling's pipe.  With
        ``timeout_s`` a watchdog bounds the whole dispatch: a worker that
        does not reply by the deadline raises :class:`DispatchTimeoutError`
        and the pool is killed (hung workers cannot be reused).  Worker
        death surfaces as :class:`WorkerCrashError`; deterministic program
        errors relayed from a worker take precedence over both, since
        retrying those is pointless.
        """
        pairs = list(zip(self.workers, tasks))
        sent = []
        for (process, conn), task in pairs:
            try:
                conn.send(task)
                sent.append(True)
            except (OSError, ValueError):
                sent.append(False)
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        replies = []
        hung = False
        for ((process, conn), task), was_sent in zip(pairs, sent):
            if not was_sent:
                replies.append(("err", "WorkerCrashError",
                                "multicore worker pipe closed before dispatch"))
                continue
            try:
                if deadline is not None:
                    budget = deadline - time.monotonic()
                    if budget <= 0 or not conn.poll(budget):
                        hung = True
                        replies.append((
                            "err", "DispatchTimeoutError",
                            f"multicore worker did not reply within "
                            f"{timeout_s:g}s"))
                        continue
                replies.append(conn.recv())
            except (EOFError, OSError):
                replies.append(("err", "WorkerCrashError",
                                "multicore worker died during a shard"))
        if hung:
            self.kill()
        results = []
        infrastructure_error = None
        for reply in replies:
            if reply[0] == "err":
                error_cls = _ERROR_TYPES.get(reply[1])
                if error_cls is None:
                    raise InterpreterError(f"{reply[1]}: {reply[2]}")
                if issubclass(error_cls, (WorkerCrashError,
                                          DispatchTimeoutError)):
                    if infrastructure_error is None:
                        infrastructure_error = error_cls(reply[2])
                    continue
                raise error_cls(reply[2])
            results.append(reply[1])
        if infrastructure_error is not None:
            raise infrastructure_error
        return results

    def kill(self) -> None:
        """Terminate the pool immediately (watchdog/crash path).

        Unlike :meth:`shutdown` this never talks to the workers — they may
        be hung or dead — it terminates, joins and closes.
        """
        if self._closed:
            return
        self._closed = True
        for process, conn in self.workers:
            if process.is_alive():
                process.terminate()
        for process, conn in self.workers:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - unkillable worker
                process.kill()
            try:
                conn.close()
            except OSError:
                pass

    def shutdown(self) -> None:
        if self._closed:
            return
        self._closed = True
        for process, conn in self.workers:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError, ValueError):
                pass
        for process, conn in self.workers:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
            try:
                conn.close()
            except OSError:
                pass


def _shutdown_pools(pools: Dict[int, _WorkerPool]) -> None:
    for pool in list(pools.values()):
        pool.shutdown()
    pools.clear()


@atexit.register
def _shutdown_all_pools() -> None:  # pragma: no cover - exercised at shutdown
    for pool in list(_LIVE_POOLS):
        pool.shutdown()


def shutdown_worker_pools() -> None:
    """Terminate every live worker pool (tests / explicit teardown)."""
    _shutdown_all_pools()


# ---------------------------------------------------------------------------
# Program flavours with a shard-region registry
# ---------------------------------------------------------------------------
class _ShardProgramMixin:
    """Shared shard bookkeeping for the multicore program flavours."""

    def _init_shard_state(self) -> None:
        #: (function name, gen flag, ordinal) -> worker-side region record.
        self.shard_regions: Dict[Tuple, Dict] = {}
        self.shard_stats = {
            "sharded_regions": 0,   # compile-time: regions proven shardable
            "rejected_regions": 0,  # compile-time: analysis said no
            "dispatches": 0,        # runtime: pool dispatches performed
            "inline_runs": 0,       # runtime: shardable regions run in-process
        }
        # exact worker-order cost folding needs dyadic per-access charges —
        # the same gate (and the same argument) as the vectorized engine.
        self.shard_enabled = machine_vectorizable(self.machine)
        self._pools: Dict[int, _WorkerPool] = {}
        self._pools_finalizer = weakref.finalize(self, _shutdown_pools, self._pools)
        self._pool_broken = False

    def ensure_pool(self, num_workers: int) -> Optional[_WorkerPool]:
        if self._pool_broken:
            return None
        pool = self._pools.get(num_workers)
        refork = False
        if pool is not None and not pool.alive():
            pool.shutdown()
            pool = None
            self._pools.pop(num_workers, None)
            refork = True
        if pool is None:
            try:
                pool = _WorkerPool(self, num_workers)
            except OSError:  # pragma: no cover - fork/pipe exhaustion
                self._pool_broken = True
                return None
            self._pools[num_workers] = pool
            if refork:
                resilience.record_event(
                    "multicore.pool", "recover",
                    detail=f"re-forked dead {num_workers}-worker pool",
                    engine="multicore")
        return pool


class _MulticoreProgram(_ShardProgramMixin, _Program):
    """Compiled-flavour program whose regions can dispatch to workers."""

    def __init__(self, module, machine: MachineModel) -> None:
        super().__init__(module, machine)
        self._init_shard_state()


class _MulticoreVectorProgram(_ShardProgramMixin, _VectorProgram):
    """Vectorized-flavour program whose regions can dispatch to workers."""

    def __init__(self, module, machine: MachineModel) -> None:
        super().__init__(module, machine)
        self._init_shard_state()


# ---------------------------------------------------------------------------
# Shard-aware function compilation
# ---------------------------------------------------------------------------
class _ShardContext:
    """Runtime dispatch context attached to the engine's execution state.

    ``pool()`` gates every dispatch on the run-level aliasing verdict: two
    *distinct* storage objects viewing overlapping memory (the caller
    passed the same/overlapping ndarray as two arguments) would promote
    into two independent shared segments, permanently severing the
    aliasing the in-process engines preserve — for every later region of
    the run, not just the one being dispatched.  Such runs therefore never
    shard at all.  The verdict is computed lazily on the first dispatch
    attempt (all arguments are wrapped by then) and cached for the run.
    """

    __slots__ = ("program", "workers", "engine", "_aliased")

    def __init__(self, program, workers: int, engine) -> None:
        self.program = program
        self.workers = workers
        self.engine = engine
        self._aliased: Optional[bool] = None

    def pool(self) -> Optional[_WorkerPool]:
        if self._aliased is None:
            self._aliased = self.engine._arguments_alias()
        if self._aliased:
            return None
        return self.program.ensure_pool(self.workers)


def _inject_pool_faults(pool: _WorkerPool) -> None:
    """Parent-side fault injection: crash or hang a worker pre-dispatch.

    ``REPRO_FAULTS`` counters live in (and decrement in) the parent, so a
    count-mode fault fires exactly once no matter how many times the pool
    is re-forked — the retry after the re-fork runs clean.  The poisoned
    worker processes the control message before its shard task: ``exit``
    kills it mid-dispatch (EOF → :class:`WorkerCrashError`), ``hang``
    stalls it into the watchdog (:class:`DispatchTimeoutError`).
    """
    if not resilience.faults_configured():
        return
    if resilience.fault_fires("multicore.worker_exit"):
        try:
            pool.workers[0][1].send(("exit",))
        except (OSError, ValueError):
            pass
    if resilience.fault_fires("multicore.hang"):
        try:
            pool.workers[0][1].send(("hang", 3600.0))
        except (OSError, ValueError):
            pass


def _split_spans(total: int, num_workers: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced spans of ``[0, total)`` in worker order."""
    base, remainder = divmod(total, num_workers)
    spans = []
    start = 0
    for index in range(num_workers):
        size = base + (1 if index < remainder else 0)
        spans.append((start, start + size))
        start += size
    return spans


class _ShardCompilerMixin:
    """Overrides the parallel-region entry points with shard dispatchers.

    Mixed into both the compiled and the vectorized function compiler: the
    span/block *plans* come from the underlying flavour (``super()``), so
    the code a worker runs is exactly the code the sequential fallback
    runs — only the dispatch differs.
    """

    def _next_region_key(self) -> Tuple:
        counter = getattr(self, "_shard_region_counter", 0)
        self._shard_region_counter = counter + 1
        return (self.fn.sym_name, self.gen_mode, counter)

    def _region_live_in_slots(self, op) -> List[int]:
        """Slots the region reads but does not define (shipped to workers)."""
        defined = set()

        def collect_defs(operation):
            for result in operation.results:
                defined.add(id(result))
            for region in operation.regions:
                for block in region.blocks:
                    for argument in block.arguments:
                        defined.add(id(argument))
                    for nested in block.operations:
                        collect_defs(nested)

        collect_defs(op)
        live = set()

        def collect_uses(operation):
            for operand in operation.operands:
                if id(operand) not in defined:
                    live.add(self.slot(operand))
            for region in operation.regions:
                for block in region.blocks:
                    for nested in block.operations:
                        collect_uses(nested)

        collect_uses(op)
        return sorted(live)

    # -- analysis entry points -------------------------------------------------
    def _analyze_span_region(self, op) -> Optional[FrozenSet[int]]:
        """Required-singleton dims for an iteration-space region, or None."""
        program = self.program
        if not program.shard_enabled:
            return None
        required = span_required_dims(program, op)
        key = "rejected_regions" if required is None else "sharded_regions"
        program.shard_stats[key] += 1
        return required

    def _analyze_launch_region(self, op) -> Optional[FrozenSet[int]]:
        """Required-singleton grid axes for a launch block grid, or None."""
        program = self.program
        if not program.shard_enabled:
            return None
        required = launch_required_axes(program, op)
        key = "rejected_regions" if required is None else "sharded_regions"
        program.shard_stats[key] += 1
        return required

    # -- dispatch helpers -------------------------------------------------------
    def _dispatch_shards(self, state, pool, key, regs, live_in_slots,
                         spans: Sequence[Tuple[int, int]]) -> Optional[List[Dict]]:
        """Ship the live-ins and run one span per worker; ``None`` = degrade.

        Shared-memory promotion can fail mid-run (``/dev/shm`` filling up
        under large buffers) long after the 1-byte availability probe
        passed; that must demote the run to in-process execution — which
        is always correct — rather than abort it, so a failed promotion
        marks the program's promotion machinery broken (no later region
        retries) and returns ``None`` for the caller to run its base plan.

        Worker crashes and watchdog timeouts are *transient*: sharded
        stores are injective, so killing the pool, re-forking and
        re-dispatching the same shards is idempotent.  The dispatch
        retries up to ``REPRO_RETRIES`` times before degrading
        in-process.  Setting ``REPRO_TIMEOUT_S`` arms a watchdog that
        bounds each dispatch; it is off by default so a legitimately
        long dispatch (large shards, loaded machine) is never killed —
        arm it explicitly when injecting ``multicore.hang``.
        """
        if pool is None:
            # the pool died between the width check and the dispatch and
            # could not be re-forked: degrade rather than crash.
            return None
        program = self.program
        remaining = None
        if state.max_ops is not None:
            remaining = max(0, state.max_ops - state.report.dynamic_ops)
        live_ins = {}
        shipped = []
        try:
            for slot in live_in_slots:
                value = regs[slot]
                if isinstance(value, MemRefStorage):
                    live_ins[slot] = ("m", sharedmem.encode(value))
                    shipped.append(value)
                else:
                    live_ins[slot] = ("v", value)
        except OSError as exc:
            program._pool_broken = True
            _shutdown_pools(program._pools)  # no dispatch will ever retry
            resilience.record_event("sharedmem.promote", "degrade",
                                    type(exc).__name__, str(exc),
                                    engine="multicore")
            return None
        tasks = [("shard", key, live_ins, start, stop, state.threads, remaining)
                 for start, stop in spans]
        policy = resilience.retry_policy()
        attempt = 0
        while True:
            _inject_pool_faults(pool)
            program.shard_stats["dispatches"] += 1
            try:
                results = pool.run(tasks, timeout_s=policy.watchdog_timeout)
                break
            except (WorkerCrashError, DispatchTimeoutError) as exc:
                pool.kill()
                if attempt >= policy.retries:
                    resilience.record_event(
                        "multicore.dispatch", "degrade", type(exc).__name__,
                        f"{exc}; running region in-process",
                        engine="multicore")
                    return None
                resilience.record_event("multicore.dispatch", "retry",
                                        type(exc).__name__, str(exc),
                                        attempt + 1, "multicore")
                policy.sleep("multicore.dispatch", attempt)
                attempt += 1
                pool = (state.shard.pool()
                        if state.shard is not None else None)
                if pool is None:
                    resilience.record_event(
                        "multicore.dispatch", "degrade", type(exc).__name__,
                        "pool re-fork unavailable; running region in-process",
                        engine="multicore")
                    return None
        for storage in shipped:
            sharedmem.refresh_freed(storage)
        return results

    @staticmethod
    def _fold_results(state, results: Sequence[Dict]) -> float:
        """Fold worker results in worker (= thread) order; returns the work."""
        report = state.report
        work = 0.0
        for result in results:
            work += result["work"]
            report.dynamic_ops += result["dynamic_ops"]
            report.parallel_regions += result["parallel_regions"]
            report.nested_regions += result["nested_regions"]
            report.workshared_loops += result["workshared_loops"]
            report.barriers += result["barriers"]
            report.simt_phases += result["simt_phases"]
            report.global_bytes += result["global_bytes"]
        if state.max_ops is not None and report.dynamic_ops > state.max_ops:
            raise InterpreterError("dynamic operation budget exceeded")
        return work

    def _shard_width(self, state, total: int) -> int:
        shard = state.shard
        if shard is None or total < 2:
            return 0
        width = min(shard.workers, max(1, total // MIN_UNITS_PER_WORKER))
        return width if width >= 2 else 0

    # -- region overrides -------------------------------------------------------
    def _c_omp_wsloop(self, op):
        run_span = self._wsloop_span_plan(op)
        base = self._wsloop_wrapper(op, run_span)
        required = self._analyze_span_region(op)
        if required is None:
            return base
        key = self._next_region_key()
        lb_slots = self.slots(op.lower_bounds)
        ub_slots = self.slots(op.upper_bounds)
        st_slots = self.slots(op.steps)
        self.program.shard_regions[key] = {
            "kind": "span",
            "run": run_span,
            "template": self.template,
            "lb_slots": lb_slots,
            "ub_slots": ub_slots,
            "st_slots": st_slots,
            "barrier_message": "GPU barrier inside a workshared loop",
        }
        live_in_slots = self._region_live_in_slots(op)
        finish = self._wsloop_accounting(op)
        required_dims = sorted(required)
        stats = self.program.shard_stats

        def run(state, regs):
            ranges, total = _iteration_space(regs, lb_slots, ub_slots, st_slots)
            width = self._runtime_width(state, ranges, total, required_dims)
            results = None
            if width:
                results = self._dispatch_shards(
                    state, state.shard.pool(), key, regs, live_in_slots,
                    _split_spans(total, width))
            if results is None:
                stats["inline_runs"] += 1
                return base(state, regs)
            state.report.workshared_loops += 1
            finish(state, total, self._fold_results(state, results))
        return run

    def _c_scf_parallel(self, op):
        from ..analysis import contains_barrier

        if contains_barrier(op, immediate_region_only=True):
            # grid-wide barrier phases run in-process: a cross-worker phase
            # join would be needed and blocks here are the whole space.
            return super()._c_scf_parallel(op)
        run_span = self._parallel_span_plan(op)
        base = self._parallel_wrapper(op, run_span)
        required = self._analyze_span_region(op)
        if required is None:
            return base
        key = self._next_region_key()
        lb_slots = self.slots(op.lower_bounds)
        ub_slots = self.slots(op.upper_bounds)
        st_slots = self.slots(op.steps)
        self.program.shard_regions[key] = {
            "kind": "span",
            "run": run_span,
            "template": self.template,
            "lb_slots": lb_slots,
            "ub_slots": ub_slots,
            "st_slots": st_slots,
            "barrier_message": "unexpected barrier in barrier-free parallel loop",
        }
        live_in_slots = self._region_live_in_slots(op)
        finish = self._parallel_accounting(op)
        required_dims = sorted(required)
        stats = self.program.shard_stats

        def run(state, regs):
            ranges, total = _iteration_space(regs, lb_slots, ub_slots, st_slots)
            width = self._runtime_width(state, ranges, total, required_dims)
            results = None
            if width:
                results = self._dispatch_shards(
                    state, state.shard.pool(), key, regs, live_in_slots,
                    _split_spans(total, width))
            if results is None:
                stats["inline_runs"] += 1
                return base(state, regs)
            state.report.parallel_regions += 1
            finish(state, total, self._fold_results(state, results))
        return run

    def _runtime_width(self, state, ranges, total, required_dims) -> int:
        width = self._shard_width(state, total)
        if width == 0:
            return 0
        for dim in required_dims:
            if len(ranges[dim]) != 1:
                return 0
        if state.shard.pool() is None:
            return 0
        return width

    def _c_gpu_launch(self, op):
        run_blocks = self._launch_plan(op)
        base = self._launch_wrapper(op, run_blocks)
        required = self._analyze_launch_region(op)
        if required is None:
            return base
        key = self._next_region_key()
        grid_slots = self.slots(op.grid_dims)
        block_slots = self.slots(op.block_dims)
        self.program.shard_regions[key] = {
            "kind": "launch",
            "run": run_blocks,
            "template": self.template,
            "grid_slots": grid_slots,
            "block_slots": block_slots,
            "barrier_message": "barrier executed outside a parallel context",
        }
        live_in_slots = self._region_live_in_slots(op)
        required_axes = sorted(required)
        stats = self.program.shard_stats

        def run(state, regs):
            grid = [int(regs[s]) for s in grid_slots]
            total_blocks = grid[0] * grid[1] * grid[2]
            width = self._shard_width(state, total_blocks)
            if width and all(grid[axis] == 1 for axis in required_axes):
                pool = state.shard.pool()
                if pool is not None:
                    results = self._dispatch_shards(
                        state, pool, key, regs, live_in_slots,
                        _split_spans(total_blocks, width))
                    if results is not None:
                        state.work[-1] += self._fold_results(state, results)
                        return
            stats["inline_runs"] += 1
            return base(state, regs)
        return run


class _McCompiledFunctionCompiler(_ShardCompilerMixin, _FunctionCompiler):
    """Compiled-flavour function compiler with shard dispatch."""


class _McVectorFunctionCompiler(_ShardCompilerMixin, _VectorFunctionCompiler):
    """Vectorized-flavour function compiler with shard dispatch."""


_MulticoreProgram.COMPILER = _McCompiledFunctionCompiler
_MulticoreVectorProgram.COMPILER = _McVectorFunctionCompiler


# ---------------------------------------------------------------------------
# Engine front end
# ---------------------------------------------------------------------------
class MulticoreEngine(CompiledEngine):
    """Drop-in engine executing sharded regions on a worker-process pool.

    Outputs and :class:`CostReport`s stay bit-identical to the interpreter
    (pinned by ``tests/runtime/test_engine_parity.py``); only wall-clock
    time changes with the worker count.  ``workers=1``, unavailable
    fork/shared memory, non-dyadic machines and regions the store analysis
    cannot prove safe all degrade to in-process execution of the inner
    flavour (``inner="compiled"`` or ``"vectorized"``).
    """

    PROGRAM_CLS = _MulticoreProgram

    def __init__(self, module, machine: MachineModel = XEON_8375C,
                 threads: Optional[int] = None, collect_cost: bool = True,
                 max_dynamic_ops: Optional[int] = None,
                 workers: Optional[int] = None,
                 inner: Optional[str] = None) -> None:
        self.inner = resolve_inner(inner)
        self.workers = workers if workers is not None else default_workers()
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        self._arg_sync: List[Tuple[np.ndarray, MemRefStorage]] = []
        self._run_storages: List[MemRefStorage] = []
        super().__init__(module, machine=machine, threads=threads,
                         collect_cost=collect_cost, max_dynamic_ops=max_dynamic_ops)

    def _program_cls(self) -> type:
        return (_MulticoreVectorProgram if self.inner == INNER_VECTORIZED
                else _MulticoreProgram)

    def _make_state(self) -> _State:
        state = super()._make_state()
        if self.workers >= 2 and multicore_available():
            state.shard = _ShardContext(self._program, self.workers, self)
        return state

    def _wrap_argument(self, argument):
        if isinstance(argument, np.ndarray):
            storage = MemRefStorage.from_numpy(argument)
            self._run_storages.append(storage)
            if np.shares_memory(argument, storage.array):
                # promotion to shared memory swaps the backing array out
                # from under the caller's ndarray; remember the pair so the
                # caller still observes every write after the run.
                self._arg_sync.append((argument, storage))
            return storage
        return argument

    def _arguments_alias(self) -> bool:
        """Whether any two of this run's wrapped arguments share memory.

        Checked once per run, over *all* arguments and before any
        promotion: promoting even one of two aliased storages severs the
        aliasing for the rest of the run, so a hit disables sharding for
        the whole run (see :class:`_ShardContext`), not just for regions
        that happen to ship both buffers.
        """
        storages = self._run_storages
        for index, first in enumerate(storages):
            for second in storages[index + 1:]:
                if np.shares_memory(first.array, second.array):
                    return True
        return False

    def run(self, function_name: str, arguments: Sequence = ()) -> List:
        self._arg_sync = []
        self._run_storages = []
        try:
            return super().run(function_name, arguments)
        finally:
            for original, storage in self._arg_sync:
                # a read-only input cannot have been mutated in a
                # parity-preserving run, and copying back into it raises.
                if storage.shm_name is not None and original.flags.writeable:
                    np.copyto(original, storage.array)
            self._arg_sync = []
            self._run_storages = []

    @property
    def shard_stats(self) -> Dict[str, int]:
        """Compile-time + dispatch counters of the underlying program."""
        return self._program.shard_stats

    def shutdown(self) -> None:
        """Tear down this program's worker pools (tests / explicit cleanup)."""
        _shutdown_pools(self._program._pools)


def _make_multicore(module, *, machine=XEON_8375C, threads=None,
                    collect_cost=True, max_dynamic_ops=None, workers=None):
    return MulticoreEngine(module, machine=machine, threads=threads,
                           collect_cost=collect_cost,
                           max_dynamic_ops=max_dynamic_ops, workers=workers)


register_engine(
    "multicore", _make_multicore, order=2,
    description="worker-process pool sharding block grids over shared memory")
