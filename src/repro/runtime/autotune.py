"""Measurement-driven autotuner: per-kernel engine dispatch (``engine="auto"``).

The paper's claim is that one IR can reach the best CPU execution strategy
per kernel — but *which* engine wins varies per kernel: NumPy vectorization
dominates barrier-free grids, compiled closures win tiny barrier-heavy SIMT
kernels, and the native OpenMP backend wins big parallel loops
(``BENCH_engine.json``).  A process-global ``REPRO_ENGINE`` therefore leaves
large speedups on the table for any mixed workload.  This module closes
that gap with a sixth first-class engine selection::

    executor = make_executor(module, engine="auto")   # or REPRO_ENGINE=auto
    executor.run("launch", args)

On the first (cold) run of a given (module, function, argument-signature)
the tuner searches the configuration space by **measurement on the real
arguments**:

* every registered engine (``engine ∈ registry``, minus ``auto`` itself),
* the multicore engine at ``workers ∈ {1, 2, 4, cpu_count}`` (clamped to
  the CPUs actually available; an explicit ``workers=`` pins it),
* the native engine only where the ``cc -fopenmp`` toolchain probe passes,
* the vectorized engine only where the machine model is vectorizable
  (elsewhere it falls back to compiled wholesale and would only duplicate
  a candidate).

Each candidate is built *bare* (no resilience wrapper — the tuner wants the
engine's true failure and true speed) and measured with the shared
warmup + min-of-k loop (:mod:`repro.runtime.measure`,
``REPRO_TUNE_WARMUP`` / ``REPRO_TUNE_REPEATS``), restoring every writable
``ndarray`` argument from pristine snapshots between runs — the same
mechanism :class:`~repro.runtime.resilience.ResilientExecutor` uses.  A
candidate only qualifies if its outputs **and** CostReport are bit-identical
to the tree-walking interpreter reference; a candidate that errors or
diverges is rejected (and logged), never selected.

The winner is persisted in the :class:`~repro.runtime.cache.TuningCache`
tier keyed by the module's content address (source x PipelineOptions x pass
fingerprint, attached by ``compile_cuda``) x the argument shape/dtype
signature x the execution parameters, with the **host fingerprint**
(cpu count, toolchain probe, python/numpy versions) stored in the record —
warm runs skip measurement entirely and dispatch straight to the cached
winner; a record from a different host re-tunes.  ``REPRO_TUNE_CACHE=0``
disables the memory of winners (always re-tune); with ``REPRO_CACHE=1``
records additionally persist on disk under ``<cache-dir>/tuning/``
(crash-safe tempfile + fsync + rename publishes, like the other tiers).

Dispatch composes with the resilience layer: the chosen winner runs under
``maybe_resilient`` exactly as a hand-picked engine would, so a taxonomy
failure mid-run degrades down :data:`~repro.runtime.resilience.FALLBACK_CHAIN`
with bit-identical outputs — and a tuned winner that *did* degrade
invalidates its tuning record, so the next cold run re-tunes against the
world as it now is.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cache import global_tuning_cache, tuning_cache_enabled
from .costmodel import CostReport, MachineModel, XEON_8375C
from .measure import measure_best
from .registry import engine_factory, engine_names, register_engine
from .resilience import ResilientExecutor, maybe_resilient, record_event

#: environment knobs.
TUNE_REPEATS_ENV_VAR = "REPRO_TUNE_REPEATS"
TUNE_WARMUP_ENV_VAR = "REPRO_TUNE_WARMUP"

DEFAULT_TUNE_REPEATS = 3
DEFAULT_TUNE_WARMUP = 1

#: multicore pool widths searched (intersected with the available CPUs).
WORKER_CANDIDATES = (1, 2, 4)


def tune_repeats() -> int:
    """Min-of-k repeats per candidate (``REPRO_TUNE_REPEATS``, default 3)."""
    try:
        return max(1, int(os.environ.get(TUNE_REPEATS_ENV_VAR, DEFAULT_TUNE_REPEATS)))
    except ValueError:
        return DEFAULT_TUNE_REPEATS


def tune_warmup() -> int:
    """Warmup runs per candidate (``REPRO_TUNE_WARMUP``, default 1)."""
    try:
        return max(0, int(os.environ.get(TUNE_WARMUP_ENV_VAR, DEFAULT_TUNE_WARMUP)))
    except ValueError:
        return DEFAULT_TUNE_WARMUP


# ---------------------------------------------------------------------------
# Configurations and keys
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TuningConfig:
    """One point of the search space: an engine plus its knobs.

    ``workers`` sizes the multicore pool; ``simd`` / ``phase_split`` are the
    native engine's codegen knobs (``None`` = the engine's own default, so
    non-native configs and old cache records stay unchanged).
    """

    engine: str
    workers: Optional[int] = None
    simd: Optional[bool] = None
    phase_split: Optional[bool] = None

    @property
    def label(self) -> str:
        knobs = []
        if self.workers is not None:
            knobs.append(f"w={self.workers}")
        if self.simd is not None:
            knobs.append(f"simd={int(self.simd)}")
        if self.phase_split is not None:
            knobs.append(f"split={int(self.phase_split)}")
        if knobs:
            return f"{self.engine}[{','.join(knobs)}]"
        return self.engine

    def to_dict(self) -> dict:
        data = {"engine": self.engine, "workers": self.workers}
        # omitted when defaulted: records written before the native knobs
        # existed parse identically to a default-knob config.
        if self.simd is not None:
            data["simd"] = self.simd
        if self.phase_split is not None:
            data["phase_split"] = self.phase_split
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TuningConfig":
        workers = data.get("workers")
        simd = data.get("simd")
        phase_split = data.get("phase_split")
        return cls(engine=str(data["engine"]),
                   workers=None if workers is None else int(workers),
                   simd=None if simd is None else bool(simd),
                   phase_split=None if phase_split is None else bool(phase_split))

    def engine_kwargs(self) -> dict:
        """Extra ``engine_factory`` kwargs this config pins (knobs left at
        ``None`` are omitted — other engines never see them)."""
        kwargs: dict = {}
        if self.simd is not None:
            kwargs["simd"] = self.simd
        if self.phase_split is not None:
            kwargs["phase_split"] = self.phase_split
        return kwargs


def module_content_key(module) -> str:
    """The module's content address.

    ``compile_cuda`` attaches the kernel-cache key (source x PipelineOptions
    x pass fingerprint x noalias) to every module it produces; hand-built
    modules fall back to a SHA-256 of the printed IR.  Either way the key is
    memoized on the module object, so warm dispatches never re-hash.
    """
    key = getattr(module, "_content_key", None)
    if key is None:
        from ..ir import print_op

        key = "ir:" + hashlib.sha256(print_op(module).encode("utf-8")).hexdigest()
        try:
            module._content_key = key
        except (AttributeError, TypeError):  # pragma: no cover - exotic module
            pass
    return key


def argument_signature(arguments: Sequence) -> str:
    """A stable rendering of the argument shapes/dtypes (plus scalar values).

    Arrays contribute shape, dtype and writability (the tuner's snapshot
    and parity sets); scalars contribute their value, because integer
    scalars typically size the iteration space and therefore shift the
    engine break-even points.
    """
    parts: List[str] = []
    for argument in arguments:
        if isinstance(argument, np.ndarray):
            shape = "x".join(str(dim) for dim in argument.shape)
            mode = "w" if argument.flags.writeable else "r"
            parts.append(f"nd[{argument.dtype.str}:{shape}:{mode}]")
        elif isinstance(argument, (bool, int, float, np.integer, np.floating)):
            parts.append(f"{type(argument).__name__}:{argument!r}")
        else:
            parts.append(type(argument).__name__)
    return ",".join(parts)


def host_fingerprint() -> dict:
    """What the tuned winner's validity depends on, host-side.

    A record tuned under a different fingerprint (CPU count changed, the
    toolchain appeared/disappeared, numpy or python upgraded) is stale: the
    measured ranking may no longer hold, so the autotuner re-tunes.
    """
    import platform

    from .multicore import available_cpus, multicore_available
    from .native import native_available

    return {
        "cpus": available_cpus(),
        "toolchain": bool(native_available()),
        "multicore": bool(multicore_available()),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def tuning_key(module, function_name: str, arguments: Sequence, *,
               machine: MachineModel = XEON_8375C,
               threads: Optional[int] = None,
               collect_cost: bool = True,
               max_dynamic_ops: Optional[int] = None,
               workers: Optional[int] = None) -> str:
    """The TuningCache key for one dispatch site.

    Content address x function x argument signature x the execution
    parameters that change either the measured ranking or the candidate
    set.  The host fingerprint is *not* hashed in — it is stored inside the
    record and compared on lookup, so a stale record is found (and
    invalidated in place) instead of lingering under a dead key.
    """
    text = "\n".join([
        f"module:{module_content_key(module)}",
        f"function:{function_name}",
        f"args:{argument_signature(arguments)}",
        f"machine:{machine.name}",
        f"threads:{threads}",
        f"collect_cost:{collect_cost}",
        f"max_dynamic_ops:{max_dynamic_ops}",
        f"workers:{workers}",
    ])
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def candidate_configs(*, machine: MachineModel = XEON_8375C,
                      workers: Optional[int] = None) -> List[TuningConfig]:
    """The configurations the tuner measures (gated by host capabilities).

    ``workers`` pins the multicore pool width when the caller passed one
    explicitly; otherwise the search covers ``{1, 2, 4, cpu_count}``
    clamped to the CPUs available.  The interpreter is not listed here —
    it is always measured as the (mandatory) reference run and competes
    with its reference timing.
    """
    from .multicore import available_cpus, multicore_available
    from .native import native_available
    from .vectorizer import machine_vectorizable

    configs: List[TuningConfig] = []
    for name in engine_names():
        if name in ("auto", "interp"):
            continue
        if name == "vectorized" and not machine_vectorizable(machine):
            continue  # would duplicate the compiled candidate wholesale
        if name == "native":
            if not native_available():
                continue  # toolchain probe failed: native would degrade anyway
            # codegen-knob axes: default (simd+min-cut), simd off, min-cut
            # off — regions where a knob changes nothing share artifacts
            # through the content-addressed cache, so the extra candidates
            # only cost measurement time where they differ.
            configs.append(TuningConfig("native"))
            configs.append(TuningConfig("native", simd=False))
            configs.append(TuningConfig("native", phase_split=False))
            continue
        if name == "multicore":
            if not multicore_available():
                continue
            if workers is not None:
                widths = [max(1, workers)]
            else:
                cpus = available_cpus()
                widths = sorted({min(width, cpus) for width in (*WORKER_CANDIDATES, cpus)})
            configs.extend(TuningConfig("multicore", workers=width)
                           for width in widths)
            continue
        configs.append(TuningConfig(name))
    return configs


# ---------------------------------------------------------------------------
# The measurement-driven search
# ---------------------------------------------------------------------------
def _report_fields(report: CostReport) -> Tuple:
    """The CostReport fields pinned bit-for-bit across engines."""
    return (report.cycles, report.dynamic_ops, report.parallel_regions,
            report.nested_regions, report.workshared_loops, report.barriers,
            report.simt_phases, report.global_bytes)


def _writable_arrays(arguments: Sequence) -> List[Tuple[int, np.ndarray]]:
    return [(index, argument) for index, argument in enumerate(arguments)
            if isinstance(argument, np.ndarray) and argument.flags.writeable]


@dataclass
class TuningResult:
    """The outcome of one cold tuning run."""

    config: TuningConfig
    seconds: float
    #: candidate label -> best measured seconds (includes ``interp``).
    measurements: Dict[str, float] = field(default_factory=dict)
    #: candidate label -> why it was discarded (error or parity divergence).
    rejected: Dict[str, str] = field(default_factory=dict)

    def to_record(self, *, function_name: str, signature: str) -> dict:
        return {
            "config": self.config.to_dict(),
            "host": host_fingerprint(),
            "function": function_name,
            "signature": signature,
            "seconds": self.seconds,
            "measurements": dict(self.measurements),
            "rejected": dict(self.rejected),
        }


def tune_module(module, function_name: str, arguments: Sequence, *,
                machine: MachineModel = XEON_8375C,
                threads: Optional[int] = None,
                collect_cost: bool = True,
                max_dynamic_ops: Optional[int] = None,
                workers: Optional[int] = None,
                repeats: Optional[int] = None,
                warmup: Optional[int] = None) -> TuningResult:
    """Measure every candidate on the real ``arguments``; return the winner.

    The interpreter runs first and is the dual reference: its outputs and
    CostReport are the bit-identity bar every candidate must clear, and its
    wall clock competes as the ``interp`` candidate.  Writable ``ndarray``
    arguments are snapshot before anything runs and restored before every
    candidate run (and once more before returning), so tuning is invisible
    to the caller's buffers.
    """
    repeats = tune_repeats() if repeats is None else max(1, repeats)
    warmup = tune_warmup() if warmup is None else max(0, warmup)

    def build(name: str, pool: Optional[int], **knobs):
        return engine_factory(name)(
            module, machine=machine, threads=threads,
            collect_cost=collect_cost, max_dynamic_ops=max_dynamic_ops,
            workers=pool, **knobs)

    pristine = ResilientExecutor._snapshot(arguments)

    def restore() -> None:
        ResilientExecutor._restore(arguments, pristine)

    # 1. interpreter reference: semantic + cost oracle, and a candidate.
    reference = build("interp", None)
    start = perf_counter()
    reference.run(function_name, arguments)
    reference_seconds = perf_counter() - start
    reference_outputs = [(index, array.copy())
                         for index, array in _writable_arrays(arguments)]
    reference_report = _report_fields(reference.report)

    measurements: Dict[str, float] = {"interp": reference_seconds}
    rejected: Dict[str, str] = {}
    best_label, best_seconds = "interp", reference_seconds
    best_config = TuningConfig("interp")

    for config in candidate_configs(machine=machine, workers=workers):
        label = config.label
        try:
            executor = build(config.engine, config.workers,
                             **config.engine_kwargs())
            # correctness probe (untimed, fresh single-run report): outputs
            # and CostReport must be bit-identical to the reference.
            restore()
            executor.run(function_name, arguments)
            probe_report = _report_fields(executor.report)
            divergence = None
            if probe_report != reference_report:
                divergence = (f"CostReport diverged: {probe_report} != "
                              f"{reference_report}")
            else:
                for index, expected in reference_outputs:
                    actual = arguments[index]
                    if (actual.dtype != expected.dtype
                            or actual.shape != expected.shape
                            or actual.tobytes() != expected.tobytes()):
                        divergence = f"output {index} diverged bit-wise"
                        break
            if divergence is not None:
                rejected[label] = divergence
                record_event("autotune.parity", "fallback", "ParityError",
                             f"{label}: {divergence}", engine=config.engine)
                continue
            seconds = measure_best(
                lambda: executor.run(function_name, arguments),
                repeats=repeats, warmup=warmup, setup=restore)
        except Exception as exc:
            rejected[label] = f"{type(exc).__name__}: {exc}"
            record_event("autotune.measure", "fallback", type(exc).__name__,
                         f"{label}: candidate discarded: {exc}",
                         engine=config.engine)
            continue
        measurements[label] = seconds
        if seconds < best_seconds:
            best_label, best_seconds, best_config = label, seconds, config

    restore()
    record_event("autotune.tune", "recover", "",
                 f"{function_name}: tuned winner {best_label} "
                 f"({best_seconds * 1e3:.3f} ms over {len(measurements)} "
                 f"candidates)", engine=best_config.engine)
    return TuningResult(config=best_config, seconds=best_seconds,
                        measurements=measurements, rejected=rejected)


# ---------------------------------------------------------------------------
# The auto engine
# ---------------------------------------------------------------------------
#: fully validated (record found, host fingerprint matched) configs, keyed
#: by tuning key and stamped with the TuningCache generation at validation
#: time.  This is the warm-dispatch fast path shared by all AutoEngine
#: instances: it skips the record copy + host-fingerprint comparison on
#: every run, and any cache mutation (insert, invalidate, clear) bumps the
#: generation and so busts every stale memo entry.
_RESOLVED_MEMO: Dict[str, Tuple[int, TuningConfig]] = {}


def _dispatch_signature(arguments: Sequence) -> Tuple:
    """A cheap, comparison-only rendering of the dispatch-relevant argument
    facts (no string building, no hashing) for the steady-state fast path.

    Two argument lists with equal dispatch signatures produce equal
    :func:`argument_signature` strings and therefore equal tuning keys, so
    the fast path can skip recomputing the full key entirely.
    """
    return tuple(
        (argument.shape, argument.dtype, argument.flags.writeable)
        if isinstance(argument, np.ndarray)
        else (type(argument), argument)
        if isinstance(argument, (bool, int, float, np.integer, np.floating))
        else (type(argument),)
        for argument in arguments)


class AutoEngine:
    """The ``engine="auto"`` executor: tune once, dispatch the cached winner.

    Each ``run`` resolves its :func:`tuning_key`; a TuningCache hit (same
    process or, with the disk tier, any prior process on this host)
    dispatches straight to the recorded winner with **zero measurement
    runs**.  A miss — cold kernel, corrupt/stale record, host-fingerprint
    mismatch, or a winner engine that is no longer registered — runs
    :func:`tune_module` once and publishes the new record.

    Dispatch always goes through :func:`~repro.runtime.resilience.maybe_resilient`,
    so the tuned winner degrades down the fallback chain on taxonomy
    failures exactly like a hand-picked engine — and when that happens the
    tuning record is invalidated (the measured ranking is evidently stale).

    The dispatch executor (winner engine + resilience wrapper) is built
    once and reused while the tuning key, chosen config and TuningCache
    generation stay unchanged — warm steady-state dispatch is one cache-key
    hash plus the inner engine's own run.  The cost report accumulates
    across ``run`` calls like every other engine: :attr:`report` combines
    the live inner executor's accumulating report with the folded totals of
    any retired inner executors, bit-identical to the same sequence of runs
    on any single engine (the cost model's sums are dyadic-exact).
    ``auto_stats`` describes the last run: winner, cache hit/miss,
    measurements, invalidation.
    """

    def __init__(self, module, *, machine: MachineModel = XEON_8375C,
                 threads: Optional[int] = None, collect_cost: bool = True,
                 max_dynamic_ops: Optional[int] = None,
                 workers: Optional[int] = None) -> None:
        self._module = module
        self._machine = machine
        self._threads = threads
        self._collect_cost = collect_cost
        self._max_dynamic_ops = max_dynamic_ops
        self._workers = workers
        #: totals of retired inner executors (config/key changes are rare).
        self._base_report = CostReport(
            machine=machine,
            threads=threads if threads is not None else machine.cores)
        self._inner = None
        self._inner_key: Optional[str] = None
        self._inner_fastsig: Optional[Tuple] = None
        self._inner_config: Optional[TuningConfig] = None
        self._inner_generation = -1
        self._key_suffix: Optional[str] = None
        self.auto_stats: dict = {"runs": 0, "tuned": 0, "cache_hits": 0,
                                 "invalidated": 0, "winner": None,
                                 "measurements": {}}

    # -- internals -------------------------------------------------------------
    def _build(self, engine: str, workers: Optional[int], **knobs):
        return engine_factory(engine)(
            self._module, machine=self._machine, threads=self._threads,
            collect_cost=self._collect_cost,
            max_dynamic_ops=self._max_dynamic_ops, workers=workers, **knobs)

    def _key(self, function_name: str, arguments: Sequence) -> str:
        # same text layout as :func:`tuning_key`, with the per-instance
        # constant lines prebuilt (warm dispatch is on the wall-clock path).
        suffix = self._key_suffix
        if suffix is None:
            suffix = self._key_suffix = "\n".join([
                f"machine:{self._machine.name}",
                f"threads:{self._threads}",
                f"collect_cost:{self._collect_cost}",
                f"max_dynamic_ops:{self._max_dynamic_ops}",
                f"workers:{self._workers}",
            ])
        text = (f"module:{module_content_key(self._module)}\n"
                f"function:{function_name}\n"
                f"args:{argument_signature(arguments)}\n{suffix}")
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _resolve_config(self, key: str, function_name: str,
                        arguments: Sequence) -> Tuple[TuningConfig, bool, Dict[str, float]]:
        """The config to dispatch: (config, tuned-this-run, measurements)."""
        cache = global_tuning_cache()
        record = cache.lookup(key)
        if record is not None:
            stale = None
            if record.get("host") != host_fingerprint():
                stale = "host fingerprint changed"
            else:
                try:
                    config = TuningConfig.from_dict(record["config"])
                except (KeyError, TypeError, ValueError):
                    config, stale = None, "malformed record"
                else:
                    if config.engine not in engine_names():
                        stale = f"winner engine {config.engine!r} unregistered"
            if stale is None:
                return config, False, {}
            cache.invalidate(key)
            record_event("autotune.lookup", "fallback", "StaleRecord",
                         f"{function_name}: {stale}; re-tuning")
        result = tune_module(
            self._module, function_name, arguments, machine=self._machine,
            threads=self._threads, collect_cost=self._collect_cost,
            max_dynamic_ops=self._max_dynamic_ops, workers=self._workers)
        cache.insert(key, result.to_record(
            function_name=function_name,
            signature=argument_signature(arguments)))
        return result.config, True, result.measurements

    # -- engine API ------------------------------------------------------------
    @property
    def report(self) -> CostReport:
        """Accumulated cost across all runs (retired + live inner executor)."""
        combined = CostReport(machine=self._base_report.machine,
                              threads=self._base_report.threads)
        combined.merge(self._base_report)
        if self._inner is not None:
            combined.merge(self._inner.report)
        return combined

    def run(self, function_name: str, arguments: Sequence = ()):
        cache = global_tuning_cache()
        fastsig = (function_name, _dispatch_signature(arguments))
        if (self._inner is not None and fastsig == self._inner_fastsig
                and self._inner_generation == cache.generation):
            # steady state: same kernel/shapes, no cache mutation since the
            # inner executor was built — dispatch straight into it.
            config, tuned, measurements = self._inner_config, False, {}
            executor = self._inner
            key = self._inner_key
        else:
            key = self._key(function_name, arguments)
            memo = _RESOLVED_MEMO.get(key) if tuning_cache_enabled() else None
            if memo is not None and memo[0] == cache.generation:
                config, tuned, measurements = memo[1], False, {}
            else:
                config, tuned, measurements = self._resolve_config(
                    key, function_name, arguments)
                if tuning_cache_enabled():
                    _RESOLVED_MEMO[key] = (cache.generation, config)
            pool = (config.workers if config.workers is not None
                    else self._workers)
            executor = maybe_resilient(
                self._build(config.engine, pool, **config.engine_kwargs()),
                config.engine,
                lambda name: self._build(name, pool))
            if self._inner is not None:
                self._base_report.merge(self._inner.report)
            self._inner = executor
            self._inner_key = key
            self._inner_fastsig = fastsig
            self._inner_config = config
            self._inner_generation = cache.generation

        result = executor.run(function_name, arguments)

        final_engine = getattr(executor, "engine_name", config.engine)
        invalidated = False
        if final_engine != config.engine:
            # the tuned winner degraded through the fallback chain: its
            # measured ranking no longer describes this host — re-tune next
            # time instead of re-dispatching into the same failure.  The
            # generation bump also retires this inner executor on the next
            # run.
            cache.invalidate(key)
            invalidated = True
            record_event("autotune.dispatch", "degrade", "DegradedWinner",
                         f"{function_name}: tuned winner {config.engine} "
                         f"degraded to {final_engine}; tuning record "
                         "invalidated", engine=final_engine)

        stats = self.auto_stats
        stats["runs"] += 1
        stats["tuned"] += 1 if tuned else 0
        stats["cache_hits"] += 0 if tuned else 1
        stats["invalidated"] += 1 if invalidated else 0
        stats["winner"] = config.label
        stats["measurements"] = measurements
        return result

    def shutdown(self) -> None:
        shutdown = getattr(self._inner, "shutdown", None)
        if callable(shutdown):
            shutdown()

    def __getattr__(self, name):
        # engine-specific surfaces (shard_stats, native_stats, ...) of the
        # current dispatch executor; AttributeError before any run.
        inner = object.__getattribute__(self, "_inner")
        if inner is None:
            raise AttributeError(f"{type(self).__name__!r} object has no "
                                 f"attribute {name!r} before the first run")
        return getattr(inner, name)


def _make_auto(module, *, machine=XEON_8375C, threads=None,
               collect_cost=True, max_dynamic_ops=None, workers=None):
    # ``workers`` pins the multicore candidates' pool width when given.
    return AutoEngine(module, machine=machine, threads=threads,
                      collect_cost=collect_cost,
                      max_dynamic_ops=max_dynamic_ops, workers=workers)


register_engine(
    "auto", _make_auto, order=4,
    description="measurement-driven per-kernel dispatch over the tuned engine matrix")


__all__ = [
    "AutoEngine", "DEFAULT_TUNE_REPEATS", "DEFAULT_TUNE_WARMUP",
    "TUNE_REPEATS_ENV_VAR", "TUNE_WARMUP_ENV_VAR", "TuningConfig",
    "TuningResult", "WORKER_CANDIDATES", "argument_signature",
    "candidate_configs", "host_fingerprint", "module_content_key",
    "tune_module", "tune_repeats", "tune_warmup", "tuning_key",
]
