"""Shared wall-clock measurement loop: warmup + min-of-k steady state.

Two consumers time engine executions against each other and must agree on
methodology or their numbers drift apart:

* the engine wall-clock benchmark / CI perf gate
  (``benchmarks/bench_engine_wallclock.py``), whose committed floors in
  ``BENCH_engine.json`` gate every push, and
* the autotuner (:mod:`repro.runtime.autotune`), whose per-kernel winner
  selection feeds the same floors through ``engine="auto"``.

Both call :func:`measure_best`: optional untimed per-iteration ``setup``
(fresh arguments, pristine buffer restore), ``warmup`` untimed-for-scoring
runs that trigger the one-time translations (compiled closures, worker-pool
forks, the native engine's ``cc`` invocation), then the minimum wall clock
over ``repeats`` timed runs.  Min-of-k is the standard steady-state
estimator for a deterministic workload: the minimum is the run least
disturbed by scheduler noise.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["measure_best"]


def measure_best(run: Callable[[], object], *, repeats: int,
                 warmup: int = 0,
                 setup: Optional[Callable[[], object]] = None) -> float:
    """Best (minimum) wall-clock seconds of ``run()`` over ``repeats`` runs.

    ``setup()`` is invoked before every run — warmup and timed alike — and
    is *never* included in the measurement; use it to rebuild arguments or
    restore buffers a run mutates.  ``warmup`` runs execute first and do
    not score, so one-time costs (code generation, pool forks, toolchain
    invocations) amortize out of the steady-state number.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(max(0, warmup)):
        if setup is not None:
            setup()
        run()
    best = float("inf")
    for _ in range(repeats):
        if setup is not None:
            setup()
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return best
