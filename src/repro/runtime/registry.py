"""Execution-engine registry: each engine module registers itself here.

Adding an engine used to require editing three hand-maintained tables in
:mod:`repro.runtime.engine`; now an engine module calls
:func:`register_engine` at import time with its name and a factory, and the
selection layer (``make_executor``, ``resolve_engine``, ``ENGINES``) derives
everything from this registry.  The registry lives in its own leaf module so
engine modules can import it without a cycle through the selection layer.

Engine-module imports are **lazy on lookup**: the registry knows the module
path of every built-in engine (:data:`_LAZY_MODULES`) and imports a module
the first time its name is looked up — through :func:`engine_factory`,
:func:`engine_names` or an ``in ENGINES`` membership test.  This closes the
registration race where an env-selected engine (``REPRO_ENGINE=native``)
was validated against the registry *before* anything had imported the
module that registers it: ``"native" in ENGINES`` is now true from the
first import of :mod:`repro.runtime.registry` onward, whichever module gets
imported first.

A factory is a callable ``factory(module, *, machine, threads, collect_cost,
max_dynamic_ops, workers) -> executor`` returning an object with the common
engine API (``run(function_name, arguments)`` + a ``report`` attribute).
Engines that have no notion of worker processes simply ignore ``workers``.
"""

from __future__ import annotations

import importlib
import threading
from typing import Callable, Dict, Tuple

_FACTORIES: Dict[str, Callable] = {}
_DESCRIPTIONS: Dict[str, str] = {}
_ORDERS: Dict[str, int] = {}

#: built-in engines resolved lazily: name -> module that registers it.
#: Importing one of these modules must call :func:`register_engine` for the
#: name (enforced by ``tests/runtime/test_native.py``); availability probing
#: (compilers, fork, shared memory) stays a *runtime* concern inside the
#: engine so the import itself never fails.
_LAZY_MODULES: Dict[str, str] = {
    "compiled": "repro.runtime.compiler",
    "interp": "repro.runtime.interpreter",
    "vectorized": "repro.runtime.vectorizer",
    "multicore": "repro.runtime.multicore",
    "native": "repro.runtime.native",
    "auto": "repro.runtime.autotune",
}

_IMPORT_LOCK = threading.RLock()


def register_engine(name: str, factory: Callable, *, description: str = "",
                    order: int = 100) -> None:
    """Register (or replace) an engine factory under ``name``.

    ``order`` fixes the position in :func:`engine_names` (and therefore in
    error messages and docs) independently of module import order.
    """
    _FACTORIES[name] = factory
    _DESCRIPTIONS[name] = description
    _ORDERS[name] = order


def register_lazy_engine(name: str, module: str) -> None:
    """Declare ``name`` as registered by importing ``module`` on lookup."""
    _LAZY_MODULES[name] = module


def _resolve_lazy(name: str) -> None:
    """Import the module that registers ``name``, if it is a known lazy one."""
    module = _LAZY_MODULES.get(name)
    if module is None or name in _FACTORIES:
        return
    with _IMPORT_LOCK:
        if name not in _FACTORIES:
            importlib.import_module(module)


def _resolve_all_lazy() -> None:
    for name in tuple(_LAZY_MODULES):
        _resolve_lazy(name)


def engine_names() -> Tuple[str, ...]:
    """All registered engine names, ordered by registration ``order``."""
    _resolve_all_lazy()
    return tuple(sorted(_FACTORIES, key=lambda name: (_ORDERS[name], name)))


class EngineNamesView:
    """A live, read-only sequence view over :func:`engine_names`.

    ``repro.runtime.ENGINES`` used to be a tuple snapshot taken at import
    time, which silently went stale when an engine registered late.  This
    view re-reads the registry on every access, so even references bound
    with ``from repro.runtime import ENGINES`` stay current.  Membership
    tests resolve lazy engines first (one targeted module import), so
    ``"native" in ENGINES`` holds before anything imported the engine
    module.
    """

    __slots__ = ()

    def __iter__(self):
        return iter(engine_names())

    def __len__(self) -> int:
        return len(engine_names())

    def __getitem__(self, index):
        return engine_names()[index]

    def __contains__(self, name) -> bool:
        if isinstance(name, str):
            _resolve_lazy(name)
        return name in _FACTORIES

    def __eq__(self, other) -> bool:
        if isinstance(other, EngineNamesView):
            return True
        return tuple(self) == tuple(other) if isinstance(other, (tuple, list)) else NotImplemented

    def __hash__(self):
        return hash(engine_names())

    def __repr__(self) -> str:
        return repr(engine_names())


#: the live view exported as ``repro.runtime.ENGINES``.
ENGINES_VIEW = EngineNamesView()


def engine_factory(name: str) -> Callable:
    """The factory registered under ``name`` (KeyError style: ValueError)."""
    _resolve_lazy(name)
    try:
        return _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {engine_names()}") from None


def engine_description(name: str) -> str:
    _resolve_lazy(name)
    return _DESCRIPTIONS.get(name, "")


__all__ = ["register_engine", "register_lazy_engine", "engine_names",
           "engine_factory", "engine_description", "EngineNamesView",
           "ENGINES_VIEW"]
