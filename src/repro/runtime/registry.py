"""Execution-engine registry: each engine module registers itself here.

Adding an engine used to require editing three hand-maintained tables in
:mod:`repro.runtime.engine`; now an engine module calls
:func:`register_engine` at import time with its name and a factory, and the
selection layer (``make_executor``, ``resolve_engine``, ``ENGINES``) derives
everything from this registry.  The registry lives in its own leaf module so
engine modules can import it without a cycle through the selection layer.

A factory is a callable ``factory(module, *, machine, threads, collect_cost,
max_dynamic_ops, workers) -> executor`` returning an object with the common
engine API (``run(function_name, arguments)`` + a ``report`` attribute).
Engines that have no notion of worker processes simply ignore ``workers``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

_FACTORIES: Dict[str, Callable] = {}
_DESCRIPTIONS: Dict[str, str] = {}
_ORDERS: Dict[str, int] = {}


def register_engine(name: str, factory: Callable, *, description: str = "",
                    order: int = 100) -> None:
    """Register (or replace) an engine factory under ``name``.

    ``order`` fixes the position in :func:`engine_names` (and therefore in
    error messages and docs) independently of module import order.
    """
    _FACTORIES[name] = factory
    _DESCRIPTIONS[name] = description
    _ORDERS[name] = order


def engine_names() -> Tuple[str, ...]:
    """All registered engine names, ordered by registration ``order``."""
    return tuple(sorted(_FACTORIES, key=lambda name: (_ORDERS[name], name)))


class EngineNamesView:
    """A live, read-only sequence view over :func:`engine_names`.

    ``repro.runtime.ENGINES`` used to be a tuple snapshot taken at import
    time, which silently went stale when an engine registered late.  This
    view re-reads the registry on every access, so even references bound
    with ``from repro.runtime import ENGINES`` stay current.
    """

    __slots__ = ()

    def __iter__(self):
        return iter(engine_names())

    def __len__(self) -> int:
        return len(engine_names())

    def __getitem__(self, index):
        return engine_names()[index]

    def __contains__(self, name) -> bool:
        return name in engine_names()

    def __eq__(self, other) -> bool:
        if isinstance(other, EngineNamesView):
            return True
        return tuple(self) == tuple(other) if isinstance(other, (tuple, list)) else NotImplemented

    def __hash__(self):
        return hash(engine_names())

    def __repr__(self) -> str:
        return repr(engine_names())


#: the live view exported as ``repro.runtime.ENGINES``.
ENGINES_VIEW = EngineNamesView()


def engine_factory(name: str) -> Callable:
    """The factory registered under ``name`` (KeyError style: ValueError)."""
    try:
        return _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; expected one of {engine_names()}") from None


def engine_description(name: str) -> str:
    return _DESCRIPTIONS.get(name, "")


__all__ = ["register_engine", "engine_names", "engine_factory",
           "engine_description", "EngineNamesView", "ENGINES_VIEW"]
