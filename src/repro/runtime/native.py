"""Native OpenMP C backend: ``engine="native"`` / ``REPRO_ENGINE=native``.

This is the reproduction's answer to the paper's headline artifact — the
transpiled CUDA kernel running as compiled OpenMP CPU code.  The engine is
the compiled engine with the parallel-region entry points replaced by
*native dispatchers*:

* at translation time each ``omp.wsloop`` / barrier-free ``scf.parallel`` /
  ``gpu.launch`` region is handed to :mod:`repro.runtime.codegen_c`; all
  regions of a function are assembled into one C translation unit;
* the unit is compiled once with the system C compiler (``cc -O3 -fopenmp``;
  override with ``REPRO_CC``) into a shared object keyed by the SHA-256 of
  the generated source in the content-addressed artifact cache
  (:class:`repro.runtime.cache.NativeArtifactCache`) — warm launches skip
  the C compiler entirely, and with ``REPRO_CACHE=1`` warm *processes* do
  too;
* at run time the dispatcher marshals the region's live-in scalars and
  ``MemRefStorage`` buffers zero-copy through ctypes (data pointers +
  shapes), calls the compiled function, and folds the counters it returns
  (work cycles, dynamic ops, global traffic, SIMT phases) through the same
  accounting epilogues the compiled engine uses — so outputs *and*
  :class:`~repro.runtime.costmodel.CostReport`\\ s stay bit-identical to the
  interpreter (pinned by the five-engine parity matrix and the differential
  fuzz suite);
* real parallelism (``#pragma omp parallel for`` across iterations/blocks)
  is enabled per region only when the multicore engine's write-write
  store-safety analysis proves shards independent (required-singleton dims
  are re-checked per dispatch, as is runtime buffer aliasing); unproven
  regions still run as *sequential* C.

Anything the emitter cannot translate — nested parallel constructs,
dynamic-extent private allocas, barriers under thread-varying control flow
or inside state-carrying loops, recursion — falls back **per region** to
the compiled closures; a missing or broken C
toolchain degrades the whole engine to compiled execution (same graceful
contract as the multicore engine on hosts without ``fork``).  An active
``max_dynamic_ops`` budget also routes regions to the compiled plans, whose
per-block budget checks are part of the documented engine semantics.
"""

from __future__ import annotations

import atexit
import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cache import global_native_cache
from .codegen_c import (
    ERR_BAD_STEP,
    ERR_OOM,
    RegionCodegen,
    UnsupportedRegion,
    assemble_unit,
)
from .compiler import (
    CompiledEngine,
    _FunctionCompiler,
    _Program,
    _iteration_space,
    program_for,
)
from .costmodel import MachineModel, XEON_8375C
from .errors import InterpreterError, ToolchainError
from .memory import MemRefStorage
from . import resilience
from .multicore import launch_required_axes, span_required_dims
from .registry import register_engine
from .vectorizer import machine_vectorizable

#: environment knobs.
CC_ENV_VAR = "REPRO_CC"
NATIVE_ENV_VAR = "REPRO_NATIVE"
SIMD_ENV_VAR = "REPRO_NATIVE_SIMD"
PHASE_SPLIT_ENV_VAR = "REPRO_NATIVE_PHASE_SPLIT"

#: bump when the generated-code contract (ABI, counters) changes; part of
#: the artifact cache key so stale shared objects can never be dlopened.
#: 3: span `par_ok` became a `mode` bitmask (bit 0 parallel, bit 1 simd);
#:    launch bodies compile structurally (barriers under uniform control
#:    flow, scf.while) with min-cut phase splitting.
NATIVE_FORMAT = 3

#: minimum iterations/blocks before a region is worth an OpenMP team.
_MIN_PARALLEL_UNITS = 64


def _env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "off", "no")


@dataclass(frozen=True)
class NativeOptions:
    """Codegen knobs for the native engine (autotuner search axes).

    ``simd``: emit ``#pragma omp simd`` variants on span inner loops
    (selected at dispatch when the store-safety/alias proof holds).
    ``phase_split``: choose launch phase-crossing lanes by the minimum
    value cut (off = cache every crossing value).
    """

    simd: bool = True
    phase_split: bool = True

    @classmethod
    def from_env(cls) -> "NativeOptions":
        return cls(simd=_env_flag(SIMD_ENV_VAR, True),
                   phase_split=_env_flag(PHASE_SPLIT_ENV_VAR, True))


def compiler_command() -> List[str]:
    """The C compiler argv prefix (``REPRO_CC`` may hold a full command)."""
    return os.environ.get(CC_ENV_VAR, "cc").split()


def compiler_flags() -> List[str]:
    """Flags for building region shared objects.

    ``-ffp-contract=off`` matters for bit-identical outputs: GCC contracts
    ``a*b+c`` into fused multiply-adds by default at ``-O3``, which rounds
    differently from the Python engines' separate multiply and add.
    """
    return ["-O3", "-fPIC", "-shared", "-fopenmp", "-ffp-contract=off"]


def native_enabled_env() -> bool:
    return os.environ.get(NATIVE_ENV_VAR, "").strip().lower() not in ("0", "false", "off")


_PROBE_LOCK = threading.Lock()
#: command -> (ok, failure detail).  The *negative* result is cached with
#: the probe's actual stderr, so every later ``engine="native"`` strict run
#: raises one clear :class:`ToolchainError` instead of re-probing.
_PROBE_RESULTS: Dict[Tuple[str, ...], Tuple[bool, str]] = {}

_PROBE_SOURCE = """
#include <omp.h>
int repro_probe(void) {
    int n = 0;
    #pragma omp parallel for reduction(+:n)
    for (int i = 0; i < 4; ++i) n += 1;
    return n;
}
"""


def native_available() -> bool:
    """Whether a working ``cc -fopenmp`` toolchain exists (probed once)."""
    return _probe_cached()[0]


def _probe_cached() -> Tuple[bool, str]:
    command = tuple(compiler_command())
    with _PROBE_LOCK:
        cached = _PROBE_RESULTS.get(command)
        if cached is None:
            cached = _probe_toolchain(list(command))
            _PROBE_RESULTS[command] = cached
        return cached


def probe_detail() -> str:
    """Why the toolchain probe failed (empty string when it passed)."""
    return _probe_cached()[1]


def toolchain_error() -> ToolchainError:
    """A :class:`ToolchainError` carrying the cached probe diagnostics."""
    command = " ".join(compiler_command())
    detail = probe_detail()
    message = f"native toolchain unavailable ({command!r})"
    if detail:
        message = f"{message}: {detail}"
    return ToolchainError(message, detail=detail)


def require_toolchain() -> None:
    """Raise the cached :class:`ToolchainError` when the probe failed."""
    if not native_available():
        raise toolchain_error()


def _probe_toolchain(command: List[str]) -> Tuple[bool, str]:
    if not command or shutil.which(command[0]) is None:
        name = command[0] if command else "<empty>"
        return False, f"C compiler {name!r} not found on PATH"
    with tempfile.TemporaryDirectory(prefix="repro-cc-probe-") as temp:
        source = os.path.join(temp, "probe.c")
        output = os.path.join(temp, "probe.so")
        with open(source, "w") as handle:
            handle.write(_PROBE_SOURCE)
        try:
            completed = subprocess.run(
                [*command, *compiler_flags(), source, "-o", output],
                capture_output=True, timeout=60)
        except (OSError, subprocess.SubprocessError) as exc:
            return False, f"probe invocation failed: {exc}"
        if completed.returncode != 0:
            stderr = completed.stderr.decode(errors="replace").strip()
            return False, (f"probe compile exited {completed.returncode}: "
                           f"{stderr[:2000]}")
        try:
            library = ctypes.CDLL(output)
        except OSError as exc:
            return False, f"probe dlopen failed: {exc}"
        if int(library.repro_probe()) != 4:
            return False, "probe ran but returned an unexpected result"
        return True, ""


_TEMP_ARTIFACT_LOCK = threading.Lock()
#: unpublished per-process ``.so`` files (cache-publish failure path);
#: nothing else references them, so they are unlinked at process exit.
_TEMP_ARTIFACTS: List[str] = []


def _register_temp_artifact(path: str) -> None:
    with _TEMP_ARTIFACT_LOCK:
        _TEMP_ARTIFACTS.append(path)


def _discard_temp_artifacts() -> None:
    with _TEMP_ARTIFACT_LOCK:
        paths, _TEMP_ARTIFACTS[:] = list(_TEMP_ARTIFACTS), []
    for path in paths:
        _unlink_quietly(path)


def _unlink_quietly(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


atexit.register(_discard_temp_artifacts)


def unit_key(source: str) -> str:
    """Content-addressed key of one translation unit (source x toolchain)."""
    hasher = hashlib.sha256()
    hasher.update(f"native-format:{NATIVE_FORMAT}\n".encode())
    hasher.update(" ".join(compiler_command() + compiler_flags()).encode())
    hasher.update(b"\x00")
    hasher.update(source.encode())
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# Translation units
# ---------------------------------------------------------------------------
class NativeUnit:
    """All native regions of one compiled function, built as one ``.so``.

    Regions are added during function translation; the first dispatch seals
    the unit: the C source is assembled, compiled (or fetched warm from the
    artifact cache) and dlopened.  A corrupt cached artifact fails the
    dlopen, is invalidated and recompiled once; a failed compile disables
    the unit (every region runs its compiled-engine base plan).
    """

    def __init__(self, program: "_NativeProgram") -> None:
        self.program = program
        self.sources: List[str] = []
        self.symbols: List[str] = []
        self.status = "open"          # open -> ready | failed
        self.library = None
        self.functions: Dict[str, object] = {}
        self.key: Optional[str] = None
        #: why the unit failed (strict resilience runs raise this instead
        #: of silently running the compiled base plans).
        self.failure: Optional[ToolchainError] = None
        self._lock = threading.Lock()

    def add(self, source: str, symbol: str) -> None:
        self.sources.append(source)
        self.symbols.append(symbol)

    def ready(self) -> bool:
        if self.status == "ready":
            return True
        if self.status == "failed":
            return False
        with self._lock:
            if self.status == "open":
                self._seal()
        return self.status == "ready"

    def function(self, symbol: str):
        return self.functions[symbol]

    # -- sealing ---------------------------------------------------------------
    def _seal(self) -> None:
        stats = self.program.native_stats
        if not self.sources:
            self.status = "failed"
            return
        if not native_available():
            self.status = "failed"
            self.failure = toolchain_error()
            resilience.record_event("native.cc", "degrade", "ToolchainError",
                                    str(self.failure)[:500], engine="native")
            return
        source = assemble_unit(self.sources)
        self.key = unit_key(source)
        cache = global_native_cache()
        path = cache.lookup(self.key)
        if path is None:
            path, failure = self._compile(cache, source)
            if path is None:
                self._fail(failure, stats, "compile_errors")
                return
        else:
            stats["artifact_hits"] += 1
        library = self._load(path)
        if library is None:
            # corrupt artifact: drop it and rebuild once before giving up.
            cache.invalidate(self.key)
            stats["corrupt_artifacts"] += 1
            resilience.record_event(
                "cache.read", "fallback", "CacheCorruptionError",
                f"corrupt native artifact {self.key[:12]}…; recompiling",
                engine="native")
            path, failure = self._compile(cache, source)
            library = self._load(path) if path is not None else None
            if library is None:
                self._fail(failure or ToolchainError(
                    "recompiled native artifact failed to load"), stats)
                return
        try:
            for symbol in self.symbols:
                function = getattr(library, symbol)
                function.restype = None
                self.functions[symbol] = function
        except AttributeError as exc:
            cache.invalidate(self.key)
            self._fail(ToolchainError(
                f"native artifact is missing symbol: {exc}"), stats)
            return
        cache.pin(self.key)
        self.library = library
        self.status = "ready"
        stats["units_ready"] += 1

    def _fail(self, failure: Optional[ToolchainError], stats,
              counter: Optional[str] = None) -> None:
        self.status = "failed"
        self.failure = failure or ToolchainError("native unit compile failed")
        if counter is not None:
            stats[counter] += 1
        resilience.record_event("native.cc", "degrade",
                                type(self.failure).__name__,
                                str(self.failure)[:500], engine="native")

    def _compile(self, cache, source: str):
        """``(path, None)`` on success, ``(None, ToolchainError)`` on failure.

        The ``cc`` invocation is a ``native.cc`` fault-injection site and
        runs under the retry policy: injected/spawn-level transient
        failures retry with backoff, a real non-zero compiler exit is
        permanent and carries the stderr.  When the artifact cache cannot
        publish (disk full, injected ``cache.write`` fault) the unit is
        built into an unpublished per-process temp ``.so`` instead — the
        engine still runs native, only warm starts lose the artifact.
        """
        def build(path):
            with tempfile.NamedTemporaryFile(
                    "w", suffix=".c", prefix="repro-native-",
                    delete=False) as handle:
                handle.write(source)
                source_path = handle.name
            try:
                def invoke():
                    resilience.inject("native.cc")
                    completed = subprocess.run(
                        [*compiler_command(), *compiler_flags(), source_path,
                         "-o", str(path)],
                        capture_output=True, timeout=300)
                    if completed.returncode != 0:
                        stderr = completed.stderr.decode(
                            errors="replace")[:2000]
                        raise ToolchainError(
                            f"native compile failed:\n{stderr}",
                            detail=stderr, transient=False)

                resilience.call_with_retry("native.cc", invoke,
                                           engine="native")
            finally:
                try:
                    os.unlink(source_path)
                except OSError:
                    pass

        try:
            return cache.store(self.key, build), None
        except ToolchainError as exc:
            return None, exc
        except subprocess.SubprocessError as exc:
            return None, ToolchainError(f"native compile failed: {exc}",
                                        detail=str(exc))
        except OSError as exc:
            resilience.record_event(
                "cache.write", "fallback", type(exc).__name__,
                "native artifact unpublished; building temp .so",
                engine="native")
            fd, temp_so = tempfile.mkstemp(prefix="repro-native-",
                                           suffix=".so")
            os.close(fd)
            try:
                build(temp_so)
            except ToolchainError as exc2:
                _unlink_quietly(temp_so)
                return None, exc2
            except (OSError, subprocess.SubprocessError) as exc2:
                _unlink_quietly(temp_so)
                return None, ToolchainError(
                    f"native compile failed: {exc2}", detail=str(exc2))
            _register_temp_artifact(temp_so)
            return temp_so, None

    @staticmethod
    def _load(path):
        try:
            return ctypes.CDLL(str(path))
        except OSError:
            return None


# ---------------------------------------------------------------------------
# Region dispatchers
# ---------------------------------------------------------------------------
_I64_3 = ctypes.c_int64 * 3
_F64_2 = ctypes.c_double * 2


def _region_error(code: int) -> InterpreterError:
    """The engine error for a nonzero native error code.

    Codes combine across OpenMP threads with a ``max`` reduction, so they
    stay semantic (mixed step/OOM errors surface the OOM classification).
    """
    if code == ERR_BAD_STEP:
        return InterpreterError("scf.for requires a positive step")
    if code == ERR_OOM:
        return InterpreterError("native region scratch allocation failed")
    return InterpreterError(f"native region failed (code {code})")


class _RegionHandle:
    """Marshals one region's live-ins and calls its compiled function."""

    def __init__(self, unit: NativeUnit, spec, required_dims) -> None:
        self.unit = unit
        self.spec = spec
        #: dims that must have extent 1 for parallel execution, or ``None``
        #: when the store analysis rejected parallelism outright.
        self.required_dims = required_dims

    def ready(self) -> bool:
        return self.unit.ready()

    def marshal(self, regs):
        """(li, lf, lp, ls, storages, par_precondition) or ``None``.

        ``None`` means a live-in violated the contract the C code was
        specialized against (dtype, rank, space, writability, liveness) —
        the caller runs its compiled base plan instead, which either
        executes correctly or raises the exact engine error.
        """
        spec = self.spec
        try:
            li = [int(regs[slot]) for slot in spec.int_slots]
            lf = [float(regs[slot]) for slot in spec.float_slots]
        except (TypeError, ValueError):
            return None
        pointers: List[int] = []
        shapes: List[int] = []
        arrays = []
        intervals: List[Tuple[int, int, bool]] = []
        for buf in spec.buffers:
            storage = regs[buf.slot]
            if not isinstance(storage, MemRefStorage) or storage.freed:
                return None
            array = storage.array
            if (array.dtype.name != buf.dtype or array.ndim != buf.rank
                    or not array.flags["C_CONTIGUOUS"]
                    or storage.memory_space != buf.space):
                return None
            if buf.stored and not array.flags["WRITEABLE"]:
                return None
            address = array.ctypes.data
            pointers.append(address)
            shapes.extend(int(extent) for extent in array.shape)
            arrays.append(array)
            intervals.append((address, address + array.nbytes, buf.stored))
        par_ok = not self._overlapping(intervals)
        return li, lf, pointers, shapes, arrays, par_ok

    @staticmethod
    def _overlapping(intervals) -> bool:
        """True if any written buffer overlaps another live-in buffer.

        The store-safety analysis proves injectivity per buffer; two
        *aliasing* live-ins would let a store through one race a load
        through the other across OpenMP threads, so aliasing runs force
        the sequential path (which is exact for any aliasing).
        """
        for index in range(len(intervals)):
            start, stop, stored = intervals[index]
            if start == stop:
                continue
            for other in range(index + 1, len(intervals)):
                other_start, other_stop, other_stored = intervals[other]
                if not stored and not other_stored:
                    continue
                if start < other_stop and other_start < stop:
                    return True
        return False

    @staticmethod
    def _pack(li, lf, pointers, shapes):
        pack_i = (ctypes.c_int64 * max(1, len(li)))(*li)
        pack_f = (ctypes.c_double * max(1, len(lf)))(*lf)
        pack_p = (ctypes.c_void_p * max(1, len(pointers)))(*pointers)
        pack_s = (ctypes.c_int64 * max(1, len(shapes)))(*shapes)
        return pack_i, pack_f, pack_p, pack_s

    def call_span(self, marshalled, ranges, total: int):
        li, lf, pointers, shapes, arrays, no_alias = marshalled
        # one store-safety/alias proof gates both execution modes: OpenMP
        # teams additionally need enough units to amortize, SIMD needs the
        # emitter to have proven the inner loop serializable-exact.
        proof = (no_alias and self.required_dims is not None
                 and all(len(ranges[dim]) == 1 for dim in self.required_dims))
        mode = ((1 if proof and total >= _MIN_PARALLEL_UNITS else 0)
                | (2 if proof and getattr(self.spec, "simd_ok", False) else 0))
        pack_i, pack_f, pack_p, pack_s = self._pack(li, lf, pointers, shapes)
        ndim = len(ranges)
        lbs = (ctypes.c_int64 * max(1, ndim))(*[r.start for r in ranges])
        steps = (ctypes.c_int64 * max(1, ndim))(*[r.step for r in ranges])
        lens = (ctypes.c_int64 * max(1, ndim))(*[len(r) for r in ranges])
        outf = _F64_2()
        outi = _I64_3()
        self.unit.function(self.spec.symbol)(
            pack_i, pack_f, pack_p, pack_s, lbs, steps, lens,
            ctypes.c_int64(total), ctypes.c_int64(mode),
            outf, outi)
        del arrays  # keep buffers alive across the call
        return outf[0], outf[1], outi[0], outi[1], outi[2]

    def call_launch(self, marshalled, grid, block):
        li, lf, pointers, shapes, arrays, no_alias = marshalled
        total_blocks = grid[0] * grid[1] * grid[2]
        par_ok = (no_alias and total_blocks >= 2
                  and total_blocks * block[0] * block[1] * block[2] >= _MIN_PARALLEL_UNITS
                  and self.required_dims is not None
                  and all(grid[axis] == 1 for axis in self.required_dims))
        pack_i, pack_f, pack_p, pack_s = self._pack(li, lf, pointers, shapes)
        grid_pack = (ctypes.c_int64 * 3)(*grid)
        block_pack = (ctypes.c_int64 * 3)(*block)
        outf = _F64_2()
        outi = _I64_3()
        self.unit.function(self.spec.symbol)(
            pack_i, pack_f, pack_p, pack_s, grid_pack, block_pack,
            ctypes.c_int64(1 if par_ok else 0), outf, outi)
        del arrays
        return outf[0], outf[1], outi[0], outi[1], outi[2]


# ---------------------------------------------------------------------------
# Program / compiler flavour
# ---------------------------------------------------------------------------
class _NativeProgram(_Program):
    """Compiled program flavour that owns the native translation units."""

    def __init__(self, module, machine: MachineModel,
                 options: Optional[NativeOptions] = None) -> None:
        super().__init__(module, machine)
        #: codegen knobs, read by :class:`RegionCodegen` at emit time.
        self.native_options = options if options is not None else NativeOptions.from_env()
        self.native_enabled = (native_enabled_env()
                               and machine_vectorizable(machine))
        self.native_stats: Dict[str, int] = {
            "native_regions": 0, "fallback_regions": 0, "native_dispatches": 0,
            "simd_regions": 0, "bailouts": 0, "units_ready": 0,
            "artifact_hits": 0, "compile_errors": 0, "corrupt_artifacts": 0,
        }


class _NativeFunctionCompiler(_FunctionCompiler):
    """Compiled-flavour function compiler with native region dispatchers."""

    def __init__(self, program, fn, gen: bool) -> None:
        super().__init__(program, fn, gen)
        self.unit = NativeUnit(program)
        self._region_counter = 0

    def _symbol(self) -> str:
        sanitized = "".join(ch if ch.isalnum() else "_" for ch in self.fn.sym_name)
        self._region_counter += 1
        mode = "g" if self.gen_mode else "p"
        return f"repro_{sanitized}_{mode}{self._region_counter}"

    # -- store-safety analysis (one implementation, shared with multicore) -----
    def _span_required_dims(self, op) -> Optional[Tuple[int, ...]]:
        required = span_required_dims(self.program, op)
        return None if required is None else tuple(sorted(required))

    def _launch_required_axes(self, op) -> Optional[Tuple[int, ...]]:
        required = launch_required_axes(self.program, op)
        return None if required is None else tuple(sorted(required))

    # -- region codegen --------------------------------------------------------
    def _emit_region(self, op, emit) -> Optional[Tuple[str, object]]:
        program = self.program
        if not program.native_enabled:
            return None
        symbol = self._symbol()
        try:
            codegen = RegionCodegen(program, op, symbol, self.slot)
            source, spec = emit(codegen)
        except UnsupportedRegion:
            program.native_stats["fallback_regions"] += 1
            return None
        program.native_stats["native_regions"] += 1
        if getattr(spec, "simd_ok", False):
            program.native_stats["simd_regions"] += 1
        self.unit.add(source, symbol)
        return source, spec

    def _span_runner(self, op, base, accounting_hook, finish):
        emitted = self._emit_region(op, lambda cg: cg.emit_span())
        if emitted is None:
            return base
        _, spec = emitted
        handle = _RegionHandle(self.unit, spec, self._span_required_dims(op))
        lb_slots = self.slots(op.lower_bounds)
        ub_slots = self.slots(op.upper_bounds)
        st_slots = self.slots(op.steps)
        stats = self.program.native_stats

        def run(state, regs):
            if state.max_ops is not None:
                stats["bailouts"] += 1
                return base(state, regs)
            if not handle.ready():
                failure = handle.unit.failure
                if failure is not None and state.strict:
                    raise failure
                stats["bailouts"] += 1
                return base(state, regs)
            ranges, total = _iteration_space(regs, lb_slots, ub_slots, st_slots)
            marshalled = handle.marshal(regs)
            if marshalled is None:
                stats["bailouts"] += 1
                return base(state, regs)
            accounting_hook(state)
            work, global_bytes, ops, _, error = handle.call_span(
                marshalled, ranges, total)
            if error:
                raise _region_error(error)
            stats["native_dispatches"] += 1
            state.report.dynamic_ops += int(ops)
            state.report.global_bytes += global_bytes
            finish(state, total, work)
        return run

    def _c_omp_wsloop(self, op):
        base = super()._c_omp_wsloop(op)

        def count(state):
            state.report.workshared_loops += 1
        return self._span_runner(op, base, count, self._wsloop_accounting(op))

    def _c_scf_parallel(self, op):
        from ..analysis import contains_barrier

        base = super()._c_scf_parallel(op)
        if contains_barrier(op, immediate_region_only=True):
            # grid-wide barrier phases stay on the compiled SIMT scheduler.
            return base

        def count(state):
            state.report.parallel_regions += 1
        return self._span_runner(op, base, count, self._parallel_accounting(op))

    def _c_gpu_launch(self, op):
        base = super()._c_gpu_launch(op)
        emitted = self._emit_region(op, lambda cg: cg.emit_launch())
        if emitted is None:
            return base
        _, spec = emitted
        handle = _RegionHandle(self.unit, spec, self._launch_required_axes(op))
        grid_slots = self.slots(op.grid_dims)
        block_slots = self.slots(op.block_dims)
        stats = self.program.native_stats

        def run(state, regs):
            if state.max_ops is not None:
                stats["bailouts"] += 1
                return base(state, regs)
            if not handle.ready():
                failure = handle.unit.failure
                if failure is not None and state.strict:
                    raise failure
                stats["bailouts"] += 1
                return base(state, regs)
            grid = [int(regs[slot]) for slot in grid_slots]
            block = [int(regs[slot]) for slot in block_slots]
            marshalled = handle.marshal(regs)
            if marshalled is None:
                stats["bailouts"] += 1
                return base(state, regs)
            work, global_bytes, ops, phases, error = handle.call_launch(
                marshalled, grid, block)
            if error:
                raise _region_error(error)
            stats["native_dispatches"] += 1
            report = state.report
            report.dynamic_ops += int(ops)
            report.global_bytes += global_bytes
            report.simt_phases += int(phases)
            state.work[-1] += work
        return run


_NativeProgram.COMPILER = _NativeFunctionCompiler


# ---------------------------------------------------------------------------
# Engine front end
# ---------------------------------------------------------------------------
class NativeEngine(CompiledEngine):
    """The compiled engine with parallel regions emitted as OpenMP C.

    Construction is cheap; the C compiler runs once per function at the
    first dispatch (warm runs come from the content-addressed artifact
    cache).  On hosts without a working ``cc -fopenmp`` — or under
    ``REPRO_NATIVE=0`` — every region transparently runs its compiled-engine
    base plan, so behaviour degrades but never breaks.
    """

    PROGRAM_CLS = _NativeProgram

    def __init__(self, module, machine: MachineModel = XEON_8375C,
                 threads=None, collect_cost: bool = True,
                 max_dynamic_ops=None, simd: Optional[bool] = None,
                 phase_split: Optional[bool] = None) -> None:
        env = NativeOptions.from_env()
        self._options = NativeOptions(
            simd=env.simd if simd is None else bool(simd),
            phase_split=env.phase_split if phase_split is None else bool(phase_split))
        super().__init__(module, machine=machine, threads=threads,
                         collect_cost=collect_cost,
                         max_dynamic_ops=max_dynamic_ops)

    def _build_program(self, module, machine: MachineModel) -> _Program:
        # the options change the generated C, so they key the program cache
        # (two engine instances with different knobs must not share units).
        options = self._options
        return program_for(
            module, machine, _NativeProgram,
            variant=(options.simd, options.phase_split),
            factory=lambda m, mm: _NativeProgram(m, mm, options=options))

    def run(self, function_name: str, arguments=()):
        # Strict (resilience-wrapped) runs surface the *cached* toolchain
        # failure as one clear ToolchainError up front — before any
        # argument is written — so the fallback chain can rebuild on the
        # next engine.  Direct construction keeps the historical graceful
        # degrade (every region runs its compiled base plan).  Explicitly
        # disabled native (REPRO_NATIVE=0 / non-dyadic machine) is a
        # configuration, not a failure, and never raises.
        if (getattr(self, "_resilience_strict", False)
                and self._program.native_enabled):
            require_toolchain()
        return super().run(function_name, arguments)

    @property
    def native_stats(self) -> Dict[str, int]:
        """Region-level telemetry: native vs. fallback regions, dispatches,
        artifact-cache hits, compile failures."""
        return dict(self._program.native_stats)


def _make_native(module, *, machine=XEON_8375C, threads=None,
                 collect_cost=True, max_dynamic_ops=None, workers=None,
                 simd=None, phase_split=None):
    # ``workers`` is a multicore-engine knob; OpenMP sizes the native teams.
    return NativeEngine(module, machine=machine, threads=threads,
                        collect_cost=collect_cost, max_dynamic_ops=max_dynamic_ops,
                        simd=simd, phase_split=phase_split)


register_engine(
    "native", _make_native, order=2,  # ties with multicore; name breaks the tie
    description="parallel regions transpiled to C and run as OpenMP shared objects")
