"""MocCUDA runtime shim: CUDART/cuDNN interception and transpiled kernels.

The real MocCUDA is an ``LD_PRELOAD`` library that intercepts PyTorch's CUDA
calls (§V-B): CUDART queries answer from a dumped GeForce RTX 2080 Ti device
descriptor, streams map onto a Grand-Central-Dispatch-style task queue, cuDNN
convolutions dispatch to the HBM-friendly OpenMP kernels, cuBLAS goes to the
CPU BLAS, and PyTorch's *custom* CUDA kernels (NLL loss — which uses
``__syncthreads`` — softmax, element-wise ops) are transpiled by Polygeist.

This module reproduces that structure: an interception table, an emulated
device, *asynchronous* stream queues, and the NLL-loss CUDA kernel compiled
through :func:`repro.frontend.compile_cuda` and executed on the simulated
CPU.

Streams are truly asynchronous (GCD-style): each :class:`Stream` owns a
single worker thread, so enqueued tasks and kernel launches run in FIFO
order *concurrently with the host thread* and with other streams.
:class:`CudaEvent` objects (``record`` / ``query`` / ``synchronize`` plus
``Stream.wait_event``) provide cross-stream ordering, exactly like
``cudaEventRecord`` / ``cudaStreamWaitEvent``.  Back-to-back launches of the
same compiled kernel on one stream are *coalesced*: while a dispatch is
still queued, further launches of the same :class:`CompiledKernel` append
to it and the whole batch executes as one executor dispatch.

Kernels compile once per session through the content-addressed kernel cache
(:mod:`repro.runtime.cache`, shared mode), so the warm launch path is a
cache lookup + dispatch rather than parse + pass pipeline + engine
construction.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Sequence

import numpy as np

from ..frontend import compile_cuda
from ..runtime import A64FX_CMG, MachineModel, make_executor, resolve_engine
from ..runtime import resilience
from ..runtime.errors import StreamPoisonedError
from ..transforms import PipelineOptions

#: environment knob: set to ``0`` to fall back to synchronous (drain-on-
#: synchronize) stream semantics.
ASYNC_ENV_VAR = "REPRO_ASYNC_STREAMS"

#: ceiling on any single blocking wait inside the shim; a cross-stream
#: dependency cycle then raises instead of deadlocking the test suite.
DEFAULT_WAIT_TIMEOUT = 60.0


def async_streams_default() -> bool:
    """Process default for stream asynchrony (``REPRO_ASYNC_STREAMS``)."""
    return os.environ.get(ASYNC_ENV_VAR, "1").strip().lower() not in (
        "0", "false", "no", "off")


# ---------------------------------------------------------------------------
# Emulated device (the "dumped" GPU properties MocCUDA replays)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DeviceProperties:
    """The subset of cudaDeviceProp PyTorch inspects."""

    name: str = "NVIDIA GeForce RTX 2080 Ti (MocCUDA emulation)"
    total_global_mem: int = 11 * 1024 ** 3
    multi_processor_count: int = 68
    warp_size: int = 32
    max_threads_per_block: int = 1024
    compute_capability: tuple = (7, 5)


# ---------------------------------------------------------------------------
# Events (cudaEvent_t analogue)
# ---------------------------------------------------------------------------
class CudaEvent:
    """A CUDA event: a completion marker recorded into a stream.

    Mirrors CUDART semantics: an event that has never been recorded counts
    as complete; ``record`` resets it until the recording stream's queue
    reaches the marker.  ``query`` never blocks; ``synchronize`` blocks the
    host; ``Stream.wait_event`` blocks a *stream* (not the host) until the
    event fires, giving cross-stream ordering.
    """

    def __init__(self, event_id: int = 0) -> None:
        self.event_id = event_id
        self._fired = threading.Event()
        self._fired.set()  # never recorded == complete (CUDART behavior)
        self._lock = threading.Lock()
        self._generation = 0

    def _reset(self) -> int:
        """Start a new recording; only the marker of the *latest* record may
        fire the event (CUDART: re-recording supersedes the old record)."""
        with self._lock:
            self._generation += 1
            self._fired.clear()
            return self._generation

    def _fire(self, generation: Optional[int] = None) -> None:
        with self._lock:
            if generation is not None and generation != self._generation:
                return  # a stale marker from a superseded record
            self._fired.set()

    def query(self) -> bool:
        """True when every task enqueued before the last ``record`` ran."""
        return self._fired.is_set()

    def synchronize(self, timeout: Optional[float] = DEFAULT_WAIT_TIMEOUT) -> None:
        """Block the host until the event fires."""
        if not self._fired.wait(timeout):
            raise RuntimeError(
                f"timed out after {timeout}s waiting for event {self.event_id}")

    def record(self, stream: "Stream") -> "CudaEvent":
        """Record this event into ``stream`` (convenience mirror of
        :meth:`Stream.record_event`)."""
        stream.record_event(self)
        return self


# ---------------------------------------------------------------------------
# Streams (GCD-style task queues with a real worker thread)
# ---------------------------------------------------------------------------
class _LaunchBatch:
    """A pending dispatch: one kernel, one or more coalesced launches."""

    __slots__ = ("kernel", "arg_lists", "started")

    def __init__(self, kernel: "CompiledKernel", args: Sequence) -> None:
        self.kernel = kernel
        self.arg_lists: List[Sequence] = [args]
        self.started = False


class Stream:
    """A CUDA stream emulated as an in-order asynchronous task queue.

    ``asynchronous=True`` (the default) backs the stream with a dedicated
    worker thread: tasks start executing as soon as they are enqueued, in
    FIFO order, overlapping with the host and with other streams —
    ``synchronize`` only *waits*.  ``asynchronous=False`` restores the
    legacy semantics where the queue drains inside ``synchronize``.

    ``synchronize`` returns the number of queue tasks completed since the
    previous synchronize (a coalesced launch batch counts as a single
    task); per-kind counters live in :attr:`stats`.

    **Poisoned-stream semantics**: when a queued *kernel launch batch*
    fails, the stream is *poisoned* — the failure fails the whole
    coalesced window with the original worker-thread traceback, and every
    later ``launch``/``enqueue`` raises :class:`StreamPoisonedError`
    chained (``from``) to the original failure — until ``synchronize()``
    re-raises the original error and clears the poison, exactly like a
    sticky CUDA error cleared at the next ``cudaStreamSynchronize``.
    Plain host tasks keep the legacy contract (their error surfaces at the
    next synchronize without rejecting queued work in between).
    """

    def __init__(self, stream_id: int, asynchronous: Optional[bool] = None) -> None:
        self.stream_id = stream_id
        self.asynchronous = (async_streams_default()
                             if asynchronous is None else asynchronous)
        self._lock = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pending: List[Future] = []
        self._sync_queue: Deque[Callable[[], None]] = deque()
        self._completed_since_sync = 0
        self._tail_batch: Optional[_LaunchBatch] = None
        self._poisoned: Optional[BaseException] = None
        self.stats: Dict[str, int] = {
            "tasks": 0, "launches": 0, "dispatches": 0, "coalesced": 0}

    @property
    def poisoned(self) -> Optional[BaseException]:
        """The failure currently poisoning the stream (``None`` = healthy)."""
        with self._lock:
            return self._poisoned

    def _check_poisoned(self) -> None:
        with self._lock:
            poison = self._poisoned
        if poison is not None:
            raise StreamPoisonedError(
                f"stream {self.stream_id} is poisoned by an earlier "
                f"asynchronous failure ({type(poison).__name__}); call "
                f"synchronize() to surface and clear it") from poison

    # -- submission machinery ---------------------------------------------------
    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"moccuda-stream{self.stream_id}")
        return self._executor

    def _poison(self, error: BaseException) -> None:
        """Mark the stream poisoned by ``error`` (first failure wins)."""
        with self._lock:
            fresh = self._poisoned is None
            if fresh:
                self._poisoned = error
        if fresh:
            resilience.record_event(
                "shim.launch", "degrade", type(error).__name__,
                f"stream {self.stream_id} poisoned: {error}")

    def _submit(self, work: Callable[[], None]) -> None:
        """Queue one unit of work, counted once on completion."""
        def run() -> None:
            try:
                work()
            finally:
                with self._lock:
                    self._completed_since_sync += 1

        if self.asynchronous:
            with self._lock:
                executor = self._ensure_executor()
                self._pending.append(executor.submit(run))
        else:
            self._sync_queue.append(run)

    # -- public queue API --------------------------------------------------------
    def enqueue(self, task: Callable[[], None]) -> None:
        """Enqueue an arbitrary host task (runs on the stream, FIFO)."""
        self._check_poisoned()
        with self._lock:
            self._tail_batch = None  # an interleaved task ends the coalescing window
            self.stats["tasks"] += 1
        self._submit(task)

    def launch(self, kernel: "CompiledKernel", args: Sequence) -> None:
        """Enqueue a kernel launch, coalescing with a still-queued dispatch
        of the same kernel."""
        self._check_poisoned()
        with self._lock:
            self.stats["launches"] += 1
            tail = self._tail_batch
            if tail is not None and tail.kernel is kernel and not tail.started:
                tail.arg_lists.append(args)
                self.stats["coalesced"] += 1
                return
            batch = _LaunchBatch(kernel, args)
            self._tail_batch = batch
            self.stats["dispatches"] += 1

        def run_batch() -> None:
            with self._lock:
                batch.started = True
                if self._tail_batch is batch:
                    self._tail_batch = None
                arg_lists = list(batch.arg_lists)
            # an injected (or real) failure here fails the whole coalesced
            # window before any launch of it runs, poisoning the stream:
            # later launch/enqueue calls are rejected until the next
            # synchronize() surfaces the original traceback and clears it.
            try:
                resilience.inject("shim.launch")
                kernel._dispatch(arg_lists)
            except BaseException as error:  # noqa: BLE001 - poisons the stream
                self._poison(error)
                raise

        self._submit(run_batch)

    def record_event(self, event: CudaEvent) -> CudaEvent:
        """Record ``event``: it fires when the queue reaches this point."""
        generation = event._reset()
        with self._lock:
            self._tail_batch = None
            self.stats["tasks"] += 1
        self._submit(lambda: event._fire(generation))
        return event

    def wait_event(self, event: CudaEvent,
                   timeout: Optional[float] = DEFAULT_WAIT_TIMEOUT) -> None:
        """Make all *subsequent* work on this stream wait for ``event``
        (blocks the stream's worker, never the host)."""
        with self._lock:
            self._tail_batch = None
            self.stats["tasks"] += 1

        def wait() -> None:
            if not self.asynchronous:
                # the drain runs on the host thread, so blocking here could
                # never be satisfied by another stream making progress:
                # fail fast instead of stalling out the timeout.
                if not event._fired.is_set():
                    raise RuntimeError(
                        f"stream {self.stream_id}: cross-stream wait_event on "
                        f"an unfired event requires asynchronous streams "
                        f"(REPRO_ASYNC_STREAMS=0 drains on the host thread)")
                return
            if not event._fired.wait(timeout):
                raise RuntimeError(
                    f"stream {self.stream_id} timed out after {timeout}s "
                    f"waiting for event {event.event_id}")

        self._submit(wait)

    def synchronize(self) -> int:
        """Wait until the queue is empty; returns tasks completed since the
        last synchronize.  The first exception raised by queued work
        re-raises here (like ``cudaStreamSynchronize`` surfacing async
        launch errors) — but only after the whole queue has drained, so a
        caught error leaves the stream idle, not still executing."""
        first_error: Optional[BaseException] = None
        if self.asynchronous:
            while True:
                with self._lock:
                    pending, self._pending = self._pending, []
                if not pending:
                    break
                for future in pending:
                    try:
                        # no timeout: sync means *wait* — long kernels and
                        # coalesced batches are legitimate.  Deadlock guards
                        # live inside event waits, which time out on the
                        # worker and surface here as task errors.
                        future.result()
                    except BaseException as error:  # noqa: BLE001
                        if first_error is None:
                            first_error = error
        else:
            while self._sync_queue:
                try:
                    self._sync_queue.popleft()()
                except BaseException as error:  # noqa: BLE001
                    if first_error is None:
                        first_error = error
        with self._lock:
            executed = self._completed_since_sync
            self._completed_since_sync = 0
            poison, self._poisoned = self._poisoned, None
        if poison is not None:
            resilience.record_event(
                "shim.launch", "recover", type(poison).__name__,
                f"stream {self.stream_id} poison cleared at synchronize")
            if first_error is None:
                first_error = poison
        if first_error is not None:
            # the original task exception, worker-thread traceback intact.
            raise first_error
        return executed

    def close(self) -> None:
        """Drain the queue and release the worker thread."""
        self.synchronize()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


# ---------------------------------------------------------------------------
# Compiled kernel handles
# ---------------------------------------------------------------------------
class CompiledKernel:
    """A kernel compiled once (through the kernel cache) and replayed.

    Holds the canonical *shared* cached module, so repeated dispatches reuse
    the per-module compiled-program caches of the execution engines; the
    module is never mutated.  A batch of coalesced launches runs through one
    executor, back to back.
    """

    def __init__(self, source: str, entry: str, *,
                 filename: str = "<moccuda-kernel>",
                 options: Optional[PipelineOptions] = None,
                 engine: Optional[str] = None,
                 machine: MachineModel = A64FX_CMG,
                 workers: Optional[int] = None) -> None:
        self.entry = entry
        self.engine = engine
        self.machine = machine
        self.workers = workers
        self.module = compile_cuda(source, filename=filename, cuda_lower=True,
                                   options=options or PipelineOptions.all_optimizations(),
                                   cache="shared")

    def _dispatch(self, arg_lists: Sequence[Sequence]) -> None:
        """Run one coalesced batch of launches through a single executor."""
        executor = make_executor(self.module, engine=self.engine,
                                 machine=self.machine, workers=self.workers)
        for args in arg_lists:
            executor.run(self.entry, args)


# ---------------------------------------------------------------------------
# The transpiled NLL-loss kernel (ClassNLLCriterion_updateOutput analogue)
# ---------------------------------------------------------------------------
NLL_LOSS_CUDA = """
__global__ void nll_loss_kernel(float* log_probs, int* targets, float* losses,
                                float* total, int batch, int classes) {
    __shared__ float partial[32];
    int tid = threadIdx.x;
    if (tid < batch) {
        int target = targets[tid];
        losses[tid] = 0.0f - log_probs[tid * classes + target];
        partial[tid] = losses[tid];
    } else {
        partial[tid] = 0.0f;
    }
    __syncthreads();
    for (int s = 16; s > 0; s = s / 2) {
        if (tid < s) {
            partial[tid] += partial[tid + s];
        }
        __syncthreads();
    }
    if (tid == 0) {
        total[0] = partial[0] / (1.0f * batch);
    }
}

void nll_loss(float* log_probs, int* targets, float* losses, float* total,
              int batch, int classes) {
    nll_loss_kernel<<<1, 32>>>(log_probs, targets, losses, total, batch, classes);
}
"""


class MocCUDASession:
    """The interception layer: call registry + device + streams + kernels.

    ``engine`` selects the execution engine for transpiled kernels (any
    name in :func:`repro.runtime.engine_names`, including ``"auto"`` for
    per-kernel autotuned dispatch; ``None`` = process default) and
    ``workers`` sizes the multicore engine's pool when that engine is
    selected (and pins the autotuner's worker-count search; ignored by the
    other engines) — on the multicore engine the transpiled NLL-loss
    launch is sharded across real CPU cores, and on the native engine it
    runs as compiled OpenMP C, which is the closest this reproduction gets
    to MocCUDA's actual many-core A64FX execution.

    ``async_streams`` turns the thread-backed stream executors on or off
    (``None`` = the ``REPRO_ASYNC_STREAMS`` process default, which is on).
    """

    def __init__(self, options: Optional[PipelineOptions] = None,
                 engine: Optional[str] = None,
                 workers: Optional[int] = None,
                 async_streams: Optional[bool] = None,
                 machine: MachineModel = A64FX_CMG) -> None:
        self.device = DeviceProperties()
        self.async_streams = (async_streams_default()
                              if async_streams is None else async_streams)
        self.streams: Dict[int, Stream] = {0: Stream(0, self.async_streams)}
        self.events: List[CudaEvent] = []
        self.call_log: List[str] = []
        self.options = options or PipelineOptions.all_optimizations()
        if engine is not None:
            resolve_engine(engine)  # fail fast on a bad engine name
        self.engine = engine
        self.workers = workers
        self.machine = machine
        self._kernels: Dict[tuple, CompiledKernel] = {}

    # -- CUDART surface -------------------------------------------------------
    def cuda_get_device_properties(self) -> DeviceProperties:
        self.call_log.append("cudaGetDeviceProperties")
        return self.device

    def cuda_stream_create(self) -> Stream:
        stream = Stream(len(self.streams), self.async_streams)
        self.streams[stream.stream_id] = stream
        self.call_log.append("cudaStreamCreate")
        return stream

    def cuda_stream_synchronize(self, stream_id: int = 0) -> int:
        self.call_log.append("cudaStreamSynchronize")
        return self.streams[stream_id].synchronize()

    def cuda_device_synchronize(self) -> int:
        """Synchronize every stream; returns total tasks drained."""
        self.call_log.append("cudaDeviceSynchronize")
        return sum(stream.synchronize() for stream in self.streams.values())

    def cuda_event_create(self) -> CudaEvent:
        event = CudaEvent(len(self.events))
        self.events.append(event)
        self.call_log.append("cudaEventCreate")
        return event

    def cuda_event_record(self, event: CudaEvent, stream_id: int = 0) -> CudaEvent:
        self.call_log.append("cudaEventRecord")
        return self.streams[stream_id].record_event(event)

    def cuda_event_query(self, event: CudaEvent) -> bool:
        self.call_log.append("cudaEventQuery")
        return event.query()

    def cuda_event_synchronize(self, event: CudaEvent) -> None:
        self.call_log.append("cudaEventSynchronize")
        event.synchronize()

    def cuda_stream_wait_event(self, stream_id: int, event: CudaEvent) -> None:
        self.call_log.append("cudaStreamWaitEvent")
        self.streams[stream_id].wait_event(event)

    def cuda_malloc(self, num_bytes: int) -> np.ndarray:
        self.call_log.append("cudaMalloc")
        return np.zeros(num_bytes // 4, dtype=np.float32)

    def cuda_memcpy(self, destination: np.ndarray, source: np.ndarray) -> None:
        self.call_log.append("cudaMemcpy")
        np.copyto(destination.reshape(-1), np.asarray(source, dtype=destination.dtype).reshape(-1))

    # -- cuBLAS → CPU BLAS -------------------------------------------------------
    def cublas_sgemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Intercepted cuBLAS GEMM dispatched to the CPU BLAS (numpy/SSL2 stand-in)."""
        self.call_log.append("cublasSgemm")
        return a @ b

    # -- transpiled custom kernels --------------------------------------------------
    def compile_kernel(self, source: str, entry: str, *,
                       filename: str = "<moccuda-kernel>") -> CompiledKernel:
        """Compile (or fetch from the kernel cache) a custom CUDA kernel.

        Handles are memoized per session by (source, entry) — two kernels
        sharing an entry-point name stay distinct — and the underlying
        module is content-addressed process-wide, so repeated sessions pay
        the pass pipeline once.
        """
        memo_key = (entry, source)
        handle = self._kernels.get(memo_key)
        if handle is None:
            handle = CompiledKernel(source, entry, filename=filename,
                                    options=self.options, engine=self.engine,
                                    machine=self.machine, workers=self.workers)
            self._kernels[memo_key] = handle
        return handle

    def launch_kernel(self, kernel: CompiledKernel, args: Sequence, *,
                      stream_id: int = 0) -> None:
        """Asynchronously launch a compiled kernel on a stream (coalesces
        with a still-queued launch of the same kernel)."""
        self.call_log.append("cudaLaunchKernel")
        self.streams[stream_id].launch(kernel, args)

    def _nll_loss_kernel(self) -> CompiledKernel:
        return self.compile_kernel(NLL_LOSS_CUDA, "nll_loss",
                                   filename="nll_loss.cu")

    def nll_loss(self, log_probs: np.ndarray, targets: np.ndarray) -> float:
        """Run the Polygeist-transpiled ClassNLLCriterion kernel on the CPU.

        The launch goes through the default stream's asynchronous queue and
        is synchronized before the scalar loss is read back — the same
        launch / sync shape PyTorch produces through CUDART.
        """
        self.call_log.append("ClassNLLCriterion_updateOutput")
        batch, classes = log_probs.shape
        if batch > 32:
            raise ValueError("the transpiled kernel handles one warp (<=32 samples) per launch")
        losses = np.zeros(32, dtype=np.float32)
        total = np.zeros(1, dtype=np.float32)
        self.launch_kernel(self._nll_loss_kernel(),
                           [np.ascontiguousarray(log_probs.reshape(-1)),
                            targets.astype(np.int64), losses, total, batch, classes])
        self.cuda_stream_synchronize(0)
        return float(total[0])

    # -- lifecycle ------------------------------------------------------------
    def close(self) -> None:
        """Drain and release every stream's worker thread."""
        for stream in self.streams.values():
            stream.close()

    def __enter__(self) -> "MocCUDASession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
