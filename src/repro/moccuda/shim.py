"""MocCUDA runtime shim: CUDART/cuDNN interception and transpiled kernels.

The real MocCUDA is an ``LD_PRELOAD`` library that intercepts PyTorch's CUDA
calls (§V-B): CUDART queries answer from a dumped GeForce RTX 2080 Ti device
descriptor, streams map onto a Grand-Central-Dispatch-style task queue, cuDNN
convolutions dispatch to the HBM-friendly OpenMP kernels, cuBLAS goes to the
CPU BLAS, and PyTorch's *custom* CUDA kernels (NLL loss — which uses
``__syncthreads`` — softmax, element-wise ops) are transpiled by Polygeist.

This module reproduces that structure: an interception table, an emulated
device, an asynchronous stream queue, and the NLL-loss CUDA kernel compiled
through :func:`repro.frontend.compile_cuda` and executed on the simulated
CPU.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from ..frontend import compile_cuda
from ..runtime import A64FX_CMG, make_executor, resolve_engine
from ..transforms import PipelineOptions


# ---------------------------------------------------------------------------
# Emulated device (the "dumped" GPU properties MocCUDA replays)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DeviceProperties:
    """The subset of cudaDeviceProp PyTorch inspects."""

    name: str = "NVIDIA GeForce RTX 2080 Ti (MocCUDA emulation)"
    total_global_mem: int = 11 * 1024 ** 3
    multi_processor_count: int = 68
    warp_size: int = 32
    max_threads_per_block: int = 1024
    compute_capability: tuple = (7, 5)


class Stream:
    """A CUDA stream emulated as an in-order task queue (GCD-style)."""

    def __init__(self, stream_id: int) -> None:
        self.stream_id = stream_id
        self._queue: Deque[Callable[[], None]] = deque()

    def enqueue(self, task: Callable[[], None]) -> None:
        self._queue.append(task)

    def synchronize(self) -> int:
        """Drain the queue; returns the number of tasks executed."""
        executed = 0
        while self._queue:
            self._queue.popleft()()
            executed += 1
        return executed


# ---------------------------------------------------------------------------
# The transpiled NLL-loss kernel (ClassNLLCriterion_updateOutput analogue)
# ---------------------------------------------------------------------------
NLL_LOSS_CUDA = """
__global__ void nll_loss_kernel(float* log_probs, int* targets, float* losses,
                                float* total, int batch, int classes) {
    __shared__ float partial[32];
    int tid = threadIdx.x;
    if (tid < batch) {
        int target = targets[tid];
        losses[tid] = 0.0f - log_probs[tid * classes + target];
        partial[tid] = losses[tid];
    } else {
        partial[tid] = 0.0f;
    }
    __syncthreads();
    for (int s = 16; s > 0; s = s / 2) {
        if (tid < s) {
            partial[tid] += partial[tid + s];
        }
        __syncthreads();
    }
    if (tid == 0) {
        total[0] = partial[0] / (1.0f * batch);
    }
}

void nll_loss(float* log_probs, int* targets, float* losses, float* total,
              int batch, int classes) {
    nll_loss_kernel<<<1, 32>>>(log_probs, targets, losses, total, batch, classes);
}
"""


class MocCUDASession:
    """The interception layer: call registry + device + streams + kernels.

    ``engine`` selects the execution engine for transpiled kernels
    (``"compiled"``/``"vectorized"``/``"multicore"``/``"interp"``; ``None``
    = process default) and ``workers`` sizes the multicore engine's pool
    when that engine is selected (ignored by the in-process engines) — on
    the multicore engine the transpiled NLL-loss launch is sharded across
    real CPU cores, which is the closest this reproduction gets to
    MocCUDA's actual many-core A64FX execution.
    """

    def __init__(self, options: Optional[PipelineOptions] = None,
                 engine: Optional[str] = None,
                 workers: Optional[int] = None) -> None:
        self.device = DeviceProperties()
        self.streams: Dict[int, Stream] = {0: Stream(0)}
        self.call_log: List[str] = []
        self.options = options or PipelineOptions.all_optimizations()
        if engine is not None:
            resolve_engine(engine)  # fail fast on a bad engine name
        self.engine = engine
        self.workers = workers
        self._nll_module = None

    # -- CUDART surface -------------------------------------------------------
    def cuda_get_device_properties(self) -> DeviceProperties:
        self.call_log.append("cudaGetDeviceProperties")
        return self.device

    def cuda_stream_create(self) -> Stream:
        stream = Stream(len(self.streams))
        self.streams[stream.stream_id] = stream
        self.call_log.append("cudaStreamCreate")
        return stream

    def cuda_stream_synchronize(self, stream_id: int = 0) -> int:
        self.call_log.append("cudaStreamSynchronize")
        return self.streams[stream_id].synchronize()

    def cuda_malloc(self, num_bytes: int) -> np.ndarray:
        self.call_log.append("cudaMalloc")
        return np.zeros(num_bytes // 4, dtype=np.float32)

    def cuda_memcpy(self, destination: np.ndarray, source: np.ndarray) -> None:
        self.call_log.append("cudaMemcpy")
        np.copyto(destination.reshape(-1), np.asarray(source, dtype=destination.dtype).reshape(-1))

    # -- cuBLAS → CPU BLAS -------------------------------------------------------
    def cublas_sgemm(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Intercepted cuBLAS GEMM dispatched to the CPU BLAS (numpy/SSL2 stand-in)."""
        self.call_log.append("cublasSgemm")
        return a @ b

    # -- transpiled custom kernels --------------------------------------------------
    def _nll_loss_module(self):
        if self._nll_module is None:
            self._nll_module = compile_cuda(NLL_LOSS_CUDA, filename="nll_loss.cu",
                                            cuda_lower=True, options=self.options)
        return self._nll_module

    def nll_loss(self, log_probs: np.ndarray, targets: np.ndarray) -> float:
        """Run the Polygeist-transpiled ClassNLLCriterion kernel on the CPU."""
        self.call_log.append("ClassNLLCriterion_updateOutput")
        batch, classes = log_probs.shape
        if batch > 32:
            raise ValueError("the transpiled kernel handles one warp (<=32 samples) per launch")
        losses = np.zeros(32, dtype=np.float32)
        total = np.zeros(1, dtype=np.float32)
        executor = make_executor(self._nll_loss_module(), engine=self.engine,
                                 machine=A64FX_CMG, workers=self.workers)
        executor.run("nll_loss", [np.ascontiguousarray(log_probs.reshape(-1)),
                                  targets.astype(np.int64), losses, total, batch, classes])
        return float(total[0])
