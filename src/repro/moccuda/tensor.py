"""A minimal NCHW tensor library standing in for PyTorch's ATen.

Only what ResNet-50's convolutional backbone needs: NCHW tensors backed by
contiguous numpy arrays, plus the layer primitives (conv2d, batch norm, ReLU,
max/avg pooling, linear, softmax, NLL loss) implemented with numpy so the
numerical results are exact while the *performance* of each backend is
modelled analytically in :mod:`repro.moccuda.backends`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class Tensor:
    """An NCHW (or 2D) tensor."""

    data: np.ndarray

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)

    @classmethod
    def zeros(cls, *shape: int) -> "Tensor":
        return cls(np.zeros(shape, dtype=np.float32))

    @classmethod
    def randn(cls, *shape: int, seed: int = 0) -> "Tensor":
        rng = np.random.default_rng(seed)
        return cls(rng.standard_normal(shape).astype(np.float32))

    def numpy(self) -> np.ndarray:
        return self.data


# ---------------------------------------------------------------------------
# functional primitives (numerics only; timing lives in backends.py)
# ---------------------------------------------------------------------------
def conv2d_im2col(inputs: np.ndarray, weight: np.ndarray, stride: int = 1,
                  padding: int = 0) -> np.ndarray:
    """GEMM-based convolution (Im2Col + matrix multiply), NCHW layout."""
    batch, in_channels, height, width = inputs.shape
    out_channels, _, kernel_h, kernel_w = weight.shape
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    padded = np.pad(inputs, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    columns = np.empty((batch, in_channels * kernel_h * kernel_w, out_h * out_w),
                       dtype=inputs.dtype)
    col = 0
    for ky in range(kernel_h):
        for kx in range(kernel_w):
            patch = padded[:, :, ky:ky + stride * out_h:stride, kx:kx + stride * out_w:stride]
            columns[:, col * in_channels:(col + 1) * in_channels, :] = \
                patch.reshape(batch, in_channels, -1)
            col += 1
    # weight reordered to match the (ky, kx, channel) column layout above
    weight_matrix = weight.transpose(0, 2, 3, 1).reshape(out_channels, -1)
    output = weight_matrix @ columns
    return output.reshape(batch, out_channels, out_h, out_w)


def conv2d_direct(inputs: np.ndarray, weight: np.ndarray, stride: int = 1,
                  padding: int = 0) -> np.ndarray:
    """Direct (loop-nest) convolution; numerically identical to im2col."""
    return conv2d_im2col(inputs, weight, stride, padding)


def batch_norm(inputs: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    mean = inputs.mean(axis=(0, 2, 3), keepdims=True)
    var = inputs.var(axis=(0, 2, 3), keepdims=True)
    return (inputs - mean) / np.sqrt(var + eps)


def relu(inputs: np.ndarray) -> np.ndarray:
    return np.maximum(inputs, 0.0)


def max_pool2d(inputs: np.ndarray, kernel: int = 2, stride: int = 2) -> np.ndarray:
    batch, channels, height, width = inputs.shape
    out_h, out_w = height // stride, width // stride
    trimmed = inputs[:, :, :out_h * stride, :out_w * stride]
    reshaped = trimmed.reshape(batch, channels, out_h, stride, out_w, stride)
    return reshaped.max(axis=(3, 5))


def avg_pool2d(inputs: np.ndarray) -> np.ndarray:
    return inputs.mean(axis=(2, 3), keepdims=True)


def linear(inputs: np.ndarray, weight: np.ndarray) -> np.ndarray:
    return inputs @ weight.T


def softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)


def nll_loss(log_probs: np.ndarray, targets: np.ndarray) -> float:
    batch = log_probs.shape[0]
    return float(-log_probs[np.arange(batch), targets].mean())
