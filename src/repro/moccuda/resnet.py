"""ResNet-50 layer table and the throughput (images/s) model.

The Fig. 15 experiment trains ResNet-50 on 224×224 ImageNet-sized inputs with
Horovod's synthetic benchmark and reports images/s across batch sizes (1–12)
and thread counts (1–64, 12 cores per A64FX core-memory group).  The layer
table below is the standard ResNet-50 convolution inventory (conv1 + the
3/4/6/3 bottleneck stages); forward+backward cost is modelled as the usual
3× forward FLOPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..runtime.costmodel import A64FX_CMG, MachineModel
from .backends import ConvShape, conv_layer_cycles


@dataclass(frozen=True)
class LayerSpec:
    """A convolution layer type and how many times it appears in ResNet-50."""

    name: str
    in_channels: int
    out_channels: int
    resolution: int
    kernel: int
    stride: int
    count: int


#: ResNet-50 convolution inventory (bottleneck blocks expanded by type).
RESNET50_LAYERS: List[LayerSpec] = [
    LayerSpec("conv1", 3, 64, 224, 7, 2, 1),
    # stage 1 (56x56)
    LayerSpec("res2.reduce", 64, 64, 56, 1, 1, 3),
    LayerSpec("res2.conv3x3", 64, 64, 56, 3, 1, 3),
    LayerSpec("res2.expand", 64, 256, 56, 1, 1, 3),
    LayerSpec("res2.proj", 64, 256, 56, 1, 1, 1),
    # stage 2 (28x28)
    LayerSpec("res3.reduce", 256, 128, 28, 1, 1, 4),
    LayerSpec("res3.conv3x3", 128, 128, 28, 3, 1, 4),
    LayerSpec("res3.expand", 128, 512, 28, 1, 1, 4),
    LayerSpec("res3.proj", 256, 512, 28, 1, 2, 1),
    # stage 3 (14x14)
    LayerSpec("res4.reduce", 512, 256, 14, 1, 1, 6),
    LayerSpec("res4.conv3x3", 256, 256, 14, 3, 1, 6),
    LayerSpec("res4.expand", 256, 1024, 14, 1, 1, 6),
    LayerSpec("res4.proj", 512, 1024, 14, 1, 2, 1),
    # stage 4 (7x7)
    LayerSpec("res5.reduce", 1024, 512, 7, 1, 1, 3),
    LayerSpec("res5.conv3x3", 512, 512, 7, 3, 1, 3),
    LayerSpec("res5.expand", 512, 2048, 7, 1, 1, 3),
    LayerSpec("res5.proj", 1024, 2048, 7, 1, 2, 1),
]

#: ratio of (forward + backward) work to forward-only work.
TRAINING_FACTOR = 3.0

#: fraction of non-convolution work (batch norm, ReLU, softmax, NLL loss,
#: element-wise ops) relative to convolution work, per backend family.  The
#: custom CUDA kernels in this category are exactly the ones MocCUDA obtains
#: by Polygeist transpilation; the expert variant hand-writes them.
AUX_WORK_FRACTION = {
    "native": 0.35,
    "onednn": 0.22,
    "dnnl": 0.22,
    "moccuda+polygeist": 0.12,
    "moccuda+expert": 0.10,
}


def conv2d_shape_for(layer: LayerSpec, batch: int) -> ConvShape:
    return ConvShape(batch=batch, in_channels=layer.in_channels,
                     height=layer.resolution, width=layer.resolution,
                     out_channels=layer.out_channels, kernel=layer.kernel,
                     stride=layer.stride, padding=layer.kernel // 2)


def training_step_cycles(backend: str, batch: int, threads: int,
                         machine: MachineModel = A64FX_CMG) -> float:
    """Simulated cycles for one forward+backward pass over one mini-batch."""
    conv_cycles = 0.0
    for layer in RESNET50_LAYERS:
        shape = conv2d_shape_for(layer, batch)
        conv_cycles += layer.count * conv_layer_cycles(shape, backend, threads=threads,
                                                       machine=machine)
    total = conv_cycles * TRAINING_FACTOR
    total *= 1.0 + AUX_WORK_FRACTION[backend]
    return total


def throughput_images_per_second(backend: str, batch: int, threads: int,
                                 machine: MachineModel = A64FX_CMG,
                                 clock_ghz: float = 1.8) -> float:
    """images/s for one training step at the given batch size and threads."""
    cycles = training_step_cycles(backend, batch, threads, machine)
    seconds = cycles / (clock_ghz * 1e9)
    return batch / seconds


def relative_throughput(batch: int, threads: int, *, over: str = "dnnl",
                        backend: str = "moccuda+polygeist",
                        machine: MachineModel = A64FX_CMG) -> float:
    """Fig. 15(left) heatmap cell: backend throughput / reference throughput."""
    return (throughput_images_per_second(backend, batch, threads, machine)
            / throughput_images_per_second(over, batch, threads, machine))
