"""repro.moccuda — the MocCUDA PyTorch compatibility layer (§V).

* :mod:`~repro.moccuda.tensor`   — a minimal NCHW tensor library (ATen stand-in),
* :mod:`~repro.moccuda.backends` — native / oneDNN / MocCUDA convolution
  backends with the analytic A64FX performance model,
* :mod:`~repro.moccuda.resnet`   — the ResNet-50 layer table and images/s model,
* :mod:`~repro.moccuda.shim`     — the CUDART/cuDNN interception layer and the
  Polygeist-transpiled NLL-loss kernel.
"""

from .tensor import (
    Tensor,
    avg_pool2d,
    batch_norm,
    conv2d_direct,
    conv2d_im2col,
    linear,
    max_pool2d,
    nll_loss,
    relu,
    softmax,
)
from .backends import BACKENDS, BackendProfile, ConvShape, conv2d, conv_layer_cycles
from .resnet import (
    RESNET50_LAYERS,
    LayerSpec,
    relative_throughput,
    throughput_images_per_second,
    training_step_cycles,
)
from .shim import (
    CompiledKernel,
    CudaEvent,
    DeviceProperties,
    MocCUDASession,
    NLL_LOSS_CUDA,
    Stream,
    async_streams_default,
)

__all__ = [
    "Tensor", "avg_pool2d", "batch_norm", "conv2d_direct", "conv2d_im2col",
    "linear", "max_pool2d", "nll_loss", "relu", "softmax",
    "BACKENDS", "BackendProfile", "ConvShape", "conv2d", "conv_layer_cycles",
    "RESNET50_LAYERS", "LayerSpec", "relative_throughput",
    "throughput_images_per_second", "training_step_cycles",
    "CompiledKernel", "CudaEvent", "DeviceProperties", "MocCUDASession",
    "NLL_LOSS_CUDA", "Stream", "async_streams_default",
]
