"""Convolution backends and their analytic performance model.

The paper compares three ways of running ResNet-50's convolutions on an
A64FX node (§V, §VI-C):

* the PyTorch **native** CPU backend — a six-deep loop nest with no memory
  optimization,
* **oneDNN** (Intel, and Fujitsu's tuned fork "DNNL") — cache-blocked direct
  convolutions designed for commodity CPUs *without* high-bandwidth memory,
* **MocCUDA** — the paper's compatibility layer, which reuses the GPU-style
  organization: HBM-friendly Im2Col followed by a large GEMM, with the
  remaining custom CUDA kernels (softmax, NLL loss, element-wise ops)
  transpiled by Polygeist.

All backends compute the same numbers (so correctness is testable); what
differs is the analytic time estimate, driven by each backend's arithmetic
efficiency and by how its memory traffic interacts with the machine's memory
system (cache-friendly blocking vs. HBM streaming).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..runtime.costmodel import A64FX_CMG, MachineModel
from . import tensor as T


@dataclass(frozen=True)
class ConvShape:
    """One convolutional layer instance (NCHW)."""

    batch: int
    in_channels: int
    height: int
    width: int
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0

    @property
    def out_height(self) -> int:
        return (self.height + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.width + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def flops(self) -> float:
        """Multiply-accumulate count ×2."""
        return (2.0 * self.batch * self.out_channels * self.out_height * self.out_width
                * self.in_channels * self.kernel * self.kernel)

    @property
    def input_bytes(self) -> float:
        return 4.0 * self.batch * self.in_channels * self.height * self.width

    @property
    def weight_bytes(self) -> float:
        return 4.0 * self.out_channels * self.in_channels * self.kernel * self.kernel

    @property
    def output_bytes(self) -> float:
        return 4.0 * self.batch * self.out_channels * self.out_height * self.out_width

    @property
    def im2col_bytes(self) -> float:
        """Size of the Im2Col matrix streamed through memory."""
        return (4.0 * self.batch * self.in_channels * self.kernel * self.kernel
                * self.out_height * self.out_width)


@dataclass(frozen=True)
class BackendProfile:
    """Analytic characteristics of one convolution backend."""

    name: str
    #: sustained FLOPs per cycle per core on the compute-bound portion.
    flops_per_cycle_per_core: float
    #: bytes per cycle the backend can stream when its access pattern matches
    #: the machine (HBM streaming for GEMM/Im2Col, cache blocking for direct).
    bytes_per_cycle: float
    #: multiplier on memory traffic caused by the backend's data layout
    #: (padding, re-reads, layout conversions).
    traffic_factor: float
    #: serial fraction per layer (framework overhead, synchronous kernel
    #: launches, layout conversions that do not parallelize).
    serial_overhead_cycles: float
    #: whether the backend's streaming pattern can exploit HBM bandwidth.
    uses_hbm: bool

    def conv_cycles(self, shape: ConvShape, machine: MachineModel, threads: int) -> float:
        threads = max(1, min(threads, machine.cores))
        compute = shape.flops / (self.flops_per_cycle_per_core
                                 * machine.effective_speedup(threads))
        traffic = (shape.input_bytes + shape.weight_bytes + shape.output_bytes
                   + shape.im2col_bytes * (1.0 if self.name == "moccuda" else 0.0))
        traffic *= self.traffic_factor
        bandwidth = self.bytes_per_cycle
        if self.uses_hbm:
            bandwidth = bandwidth / max(machine.hbm_bandwidth_factor, 1e-6)
        memory = traffic / bandwidth
        return max(compute, memory) + self.serial_overhead_cycles


#: the four series of Fig. 15.
NATIVE = BackendProfile(
    name="native", flops_per_cycle_per_core=0.6, bytes_per_cycle=4.0,
    traffic_factor=3.0, serial_overhead_cycles=2.0e6, uses_hbm=False)

ONEDNN_INTEL = BackendProfile(
    name="onednn", flops_per_cycle_per_core=7.0, bytes_per_cycle=8.0,
    traffic_factor=1.6, serial_overhead_cycles=9.0e5, uses_hbm=False)

ONEDNN_FUJITSU = BackendProfile(
    name="dnnl-fujitsu", flops_per_cycle_per_core=7.4, bytes_per_cycle=8.5,
    traffic_factor=1.5, serial_overhead_cycles=8.5e5, uses_hbm=False)

MOCCUDA_POLYGEIST = BackendProfile(
    name="moccuda", flops_per_cycle_per_core=14.0, bytes_per_cycle=16.0,
    traffic_factor=1.15, serial_overhead_cycles=3.0e5, uses_hbm=True)

MOCCUDA_EXPERT = BackendProfile(
    name="moccuda-expert", flops_per_cycle_per_core=14.0, bytes_per_cycle=16.0,
    traffic_factor=1.12, serial_overhead_cycles=2.9e5, uses_hbm=True)

BACKENDS: Dict[str, BackendProfile] = {
    "native": NATIVE,
    "onednn": ONEDNN_INTEL,
    "dnnl": ONEDNN_FUJITSU,
    "moccuda+polygeist": MOCCUDA_POLYGEIST,
    "moccuda+expert": MOCCUDA_EXPERT,
}


def conv2d(inputs: np.ndarray, weight: np.ndarray, backend: str = "moccuda+polygeist",
           stride: int = 1, padding: int = 0) -> np.ndarray:
    """Numerically execute a convolution with the chosen backend's algorithm."""
    profile = BACKENDS[backend]
    if profile.name == "native" or profile.name.startswith("onednn") or profile.name.startswith("dnnl"):
        return T.conv2d_direct(inputs, weight, stride, padding)
    return T.conv2d_im2col(inputs, weight, stride, padding)


def conv_layer_cycles(shape: ConvShape, backend: str, *, threads: int,
                      machine: MachineModel = A64FX_CMG) -> float:
    """Analytic cycle estimate for one convolution layer on one backend."""
    return BACKENDS[backend].conv_cycles(shape, machine, threads)
