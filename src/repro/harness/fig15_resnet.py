"""Experiments E5/E6 — Fig. 15: ResNet-50 training throughput with MocCUDA.

* Left panel: heatmap of MocCUDA+Polygeist throughput relative to the
  Fujitsu-tuned oneDNN (DNNL) backend, over batch sizes 1–12 and thread
  counts 1–64 (12 physical cores per A64FX core-memory group; larger thread
  counts oversubscribe and stop helping).
* Right panel: geomean images/s across batch sizes for the four series
  OneDNN (Intel), DNNL (Fujitsu), MocCUDA+Polygeist and MocCUDA+Expert.

Paper headline: MocCUDA beats tuned oneDNN by a 2.7× geomean (min 1.2×, max
4.5×) and the Polygeist-generated kernels are comparable to expert-written
ones.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..moccuda import relative_throughput, throughput_images_per_second
from ..runtime import A64FX_CMG
from .tables import format_table, geomean

DEFAULT_BATCHES = (1, 2, 4, 6, 8, 12)
DEFAULT_THREADS = (1, 2, 4, 8, 12, 24, 48, 64)
SERIES = ("onednn", "dnnl", "moccuda+polygeist", "moccuda+expert")


def _effective_threads(threads: int) -> int:
    """Threads beyond one CMG's 12 cores oversubscribe and do not help."""
    return min(threads, A64FX_CMG.cores)


def run_heatmap(batches: Sequence[int] = DEFAULT_BATCHES,
                threads: Sequence[int] = DEFAULT_THREADS) -> Dict[tuple, float]:
    """{(batch, threads): relative throughput of MocCUDA+Polygeist over DNNL}."""
    heatmap: Dict[tuple, float] = {}
    for batch in batches:
        for thread_count in threads:
            heatmap[(batch, thread_count)] = relative_throughput(
                batch, _effective_threads(thread_count))
    return heatmap


def run_throughput(batches: Sequence[int] = DEFAULT_BATCHES,
                   threads: Sequence[int] = DEFAULT_THREADS) -> Dict[str, Dict[int, float]]:
    """{series: {threads: geomean images/s across batch sizes}}."""
    results: Dict[str, Dict[int, float]] = {series: {} for series in SERIES}
    for series in SERIES:
        for thread_count in threads:
            values = [throughput_images_per_second(series, batch, _effective_threads(thread_count))
                      for batch in batches]
            results[series][thread_count] = geomean(values)
    return results


def summarize(heatmap: Dict[tuple, float], throughput: Dict[str, Dict[int, float]]) -> str:
    batches = sorted({key[0] for key in heatmap})
    threads = sorted({key[1] for key in heatmap})
    lines = ["Fig. 15 (left): MocCUDA+Polygeist throughput relative to Fujitsu-tuned oneDNN"]
    rows = [[thread_count] + [heatmap[(batch, thread_count)] for batch in batches]
            for thread_count in threads]
    lines.append(format_table(["threads \\ batch", *[str(b) for b in batches]], rows,
                              float_format="{:.2f}"))
    ratios = list(heatmap.values())
    lines.append("")
    lines.append(f"relative throughput: geomean {geomean(ratios):.2f}x, "
                 f"min {min(ratios):.2f}x, max {max(ratios):.2f}x "
                 "(paper: geomean 2.7x, min 1.2x, max 4.5x)")

    lines.append("")
    lines.append("Fig. 15 (right): geomean images/s across batch sizes")
    rows = [[thread_count] + [throughput[series][thread_count] for series in SERIES]
            for thread_count in sorted(next(iter(throughput.values())))]
    lines.append(format_table(["threads", *SERIES], rows, float_format="{:.2f}"))
    return "\n".join(lines)


def main() -> str:
    output = summarize(run_heatmap(), run_throughput())
    print(output)
    return output


if __name__ == "__main__":
    main()
