"""repro.harness — drivers that regenerate the paper's figures.

Each module prints the corresponding table(s) and the headline summary
statistic next to the value the paper reports:

* :mod:`~repro.harness.fig12_mcuda`   — E1, MCUDA comparison,
* :mod:`~repro.harness.fig13_rodinia` — E2/E3, Rodinia speedups + ablation,
* :mod:`~repro.harness.fig14_scaling` — E4, thread scaling,
* :mod:`~repro.harness.fig15_resnet`  — E5/E6, ResNet-50 / MocCUDA throughput.
"""

from . import fig12_mcuda, fig13_rodinia, fig14_scaling, fig15_resnet
from .tables import format_table, geomean

__all__ = ["fig12_mcuda", "fig13_rodinia", "fig14_scaling", "fig15_resnet",
           "format_table", "geomean"]
