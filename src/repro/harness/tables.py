"""Table formatting and summary statistics shared by the experiment drivers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np


def geomean(values: Iterable[float]) -> float:
    """Geometric mean (the summary statistic the paper reports)."""
    values = [float(v) for v in values]
    if not values:
        return float("nan")
    return float(np.exp(np.mean(np.log(values))))


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *,
                 float_format: str = "{:.3f}") -> str:
    """Render an aligned plain-text table."""
    def render(cell) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered
              else len(headers[i]) for i in range(len(headers))]
    lines = ["  ".join(header.ljust(width) for header, width in zip(headers, widths)),
             "  ".join("-" * width for width in widths)]
    for row in rendered:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def speedup_table(results: Dict[str, Dict[str, float]], baseline_key: str) -> List[List]:
    """Rows of (name, *speedups-over-baseline) from nested result dicts."""
    rows = []
    for name, series in results.items():
        baseline = series[baseline_key]
        rows.append([name] + [baseline / value for key, value in series.items()
                              if key != baseline_key])
    return rows
