"""Experiment E4 — Fig. 14: thread-scaling of transpiled CUDA vs. native OpenMP.

For each benchmark and thread count T the driver records simulated cycles and
reports the speedup T1/Tn.  The paper's headline numbers: on 32 threads the
transpiled CUDA codes reach a 16.1× geomean (14.9× with inner serialization)
while the native OpenMP versions reach 7.1×.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..rodinia import BENCHMARKS, FIGURE13_SET, run_module
from ..runtime import XEON_8375C
from ..transforms import PipelineOptions
from .tables import format_table, geomean

DEFAULT_THREADS = (1, 2, 4, 8, 16, 32)


def run(benchmarks: Optional[Sequence[str]] = None, *,
        threads: Sequence[int] = DEFAULT_THREADS, scale: int = 1,
        inner_serialize: bool = False,
        machine=XEON_8375C,
        engine: Optional[str] = None) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Returns {benchmark: {"CUDA-OpenMP"/"OpenMP": {threads: cycles}}}."""
    names = list(benchmarks or FIGURE13_SET)
    options = PipelineOptions.all_optimizations(inner_serialize=inner_serialize)
    results: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name in names:
        bench = BENCHMARKS[name]
        results[name] = {"CUDA-OpenMP": {}}
        cuda_module = bench.compile_cuda(options)
        for thread_count in threads:
            report = run_module(cuda_module, bench.entry, bench.make_inputs(scale),
                                machine=machine, threads=thread_count, engine=engine)
            results[name]["CUDA-OpenMP"][thread_count] = report.cycles
        if bench.omp_source is not None:
            results[name]["OpenMP"] = {}
            omp_module = bench.compile_openmp()
            for thread_count in threads:
                report = run_module(omp_module, bench.entry, bench.make_inputs(scale),
                                    machine=machine, threads=thread_count, engine=engine)
                results[name]["OpenMP"][thread_count] = report.cycles
    return results


def speedups(results: Dict[str, Dict[str, Dict[int, float]]]) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Convert cycles to T1/Tn speedups."""
    converted: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name, variants in results.items():
        converted[name] = {}
        for variant, per_thread in variants.items():
            base = per_thread[min(per_thread)]
            converted[name][variant] = {threads: base / cycles
                                        for threads, cycles in per_thread.items()}
    return converted


def summarize(results: Dict[str, Dict[str, Dict[int, float]]]) -> str:
    scaled = speedups(results)
    threads = sorted(next(iter(scaled.values()))["CUDA-OpenMP"])
    lines = ["Fig. 14: scaling (T1/Tn speedup) of transpiled CUDA and native OpenMP"]
    rows = []
    for name, variants in scaled.items():
        for variant, per_thread in variants.items():
            rows.append([name, variant] + [per_thread[t] for t in threads])
    lines.append(format_table(["benchmark", "variant", *[str(t) for t in threads]], rows,
                              float_format="{:.2f}"))
    max_threads = max(threads)
    cuda_speedups = [variants["CUDA-OpenMP"][max_threads] for variants in scaled.values()]
    omp_speedups = [variants["OpenMP"][max_threads] for variants in scaled.values()
                    if "OpenMP" in variants]
    lines.append("")
    lines.append(f"geomean speedup at {max_threads} threads — CUDA-OpenMP: "
                 f"{geomean(cuda_speedups):.2f}x, OpenMP: {geomean(omp_speedups):.2f}x "
                 "(paper: 16.1x / 14.9x vs 7.1x)")
    return "\n".join(lines)


def main() -> str:
    output = summarize(run())
    print(output)
    return output


if __name__ == "__main__":
    main()
