"""Experiment E4 — Fig. 14: thread-scaling of transpiled CUDA vs. native OpenMP.

For each benchmark and thread count T the driver records simulated cycles and
reports the speedup T1/Tn.  The paper's headline numbers: on 32 threads the
transpiled CUDA codes reach a 16.1× geomean (14.9× with inner serialization)
while the native OpenMP versions reach 7.1×.

Two modes:

* **simulated** (default) — the analytic cost model's cycles per thread
  count, engine-independent by construction.
* **--wallclock** — *measured* seconds per worker count on the multicore
  engine (real processes, shared-memory buffers), reported as T1/Tn
  speedups next to the simulated table.  This is the first path where
  Fig. 14 is a measurement rather than a model; on a machine with fewer
  cores than workers the speedups simply saturate.  ``--wallclock
  --engine native`` (or any other registered engine) measures that engine
  instead — on the native engine the OpenMP runtime, not the worker pool,
  provides the parallelism, so the worker column only varies the label.

CLI::

    python -m repro.harness.fig14_scaling [--engine ENGINE] [--wallclock]
        [--threads 1,2,4,...] [--scale N] [--benchmarks a,b,...]
        [--repeats R]
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, Optional, Sequence

from ..rodinia import BENCHMARKS, FIGURE13_SET, run_module
from ..runtime import XEON_8375C, engine_names, make_executor
from ..transforms import PipelineOptions
from .tables import format_table, geomean

DEFAULT_THREADS = (1, 2, 4, 8, 16, 32)
#: worker counts for the measured (wall-clock) mode; kept small because
#: every count above the machine's core count only measures overhead.
DEFAULT_WALLCLOCK_WORKERS = (1, 2, 4)
#: wall-clock mode defaults to the kernels with enough parallel work for a
#: dispatch to be measurable at small scales.
DEFAULT_WALLCLOCK_SET = ("matmul", "hotspot", "pathfinder", "srad_v1")


def run(benchmarks: Optional[Sequence[str]] = None, *,
        threads: Sequence[int] = DEFAULT_THREADS, scale: int = 1,
        inner_serialize: bool = False,
        machine=XEON_8375C,
        engine: Optional[str] = None) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Returns {benchmark: {"CUDA-OpenMP"/"OpenMP": {threads: cycles}}}."""
    names = list(benchmarks or FIGURE13_SET)
    options = PipelineOptions.all_optimizations(inner_serialize=inner_serialize)
    results: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name in names:
        bench = BENCHMARKS[name]
        results[name] = {"CUDA-OpenMP": {}}
        cuda_module = bench.compile_cuda(options, cache="shared")
        for thread_count in threads:
            report = run_module(cuda_module, bench.entry, bench.make_inputs(scale),
                                machine=machine, threads=thread_count, engine=engine)
            results[name]["CUDA-OpenMP"][thread_count] = report.cycles
        if bench.omp_source is not None:
            results[name]["OpenMP"] = {}
            omp_module = bench.compile_openmp()
            for thread_count in threads:
                report = run_module(omp_module, bench.entry, bench.make_inputs(scale),
                                    machine=machine, threads=thread_count, engine=engine)
                results[name]["OpenMP"][thread_count] = report.cycles
    return results


def speedups(results: Dict[str, Dict[str, Dict[int, float]]]) -> Dict[str, Dict[str, Dict[int, float]]]:
    """Convert cycles to T1/Tn speedups."""
    converted: Dict[str, Dict[str, Dict[int, float]]] = {}
    for name, variants in results.items():
        converted[name] = {}
        for variant, per_thread in variants.items():
            base = per_thread[min(per_thread)]
            converted[name][variant] = {threads: base / cycles
                                        for threads, cycles in per_thread.items()}
    return converted


def summarize(results: Dict[str, Dict[str, Dict[int, float]]]) -> str:
    scaled = speedups(results)
    threads = sorted(next(iter(scaled.values()))["CUDA-OpenMP"])
    lines = ["Fig. 14: scaling (T1/Tn speedup) of transpiled CUDA and native OpenMP"]
    rows = []
    for name, variants in scaled.items():
        for variant, per_thread in variants.items():
            rows.append([name, variant] + [per_thread[t] for t in threads])
    lines.append(format_table(["benchmark", "variant", *[str(t) for t in threads]], rows,
                              float_format="{:.2f}"))
    max_threads = max(threads)
    cuda_speedups = [variants["CUDA-OpenMP"][max_threads] for variants in scaled.values()]
    omp_speedups = [variants["OpenMP"][max_threads] for variants in scaled.values()
                    if "OpenMP" in variants]
    lines.append("")
    lines.append(f"geomean speedup at {max_threads} threads — CUDA-OpenMP: "
                 f"{geomean(cuda_speedups):.2f}x, OpenMP: {geomean(omp_speedups):.2f}x "
                 "(paper: 16.1x / 14.9x vs 7.1x)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Measured wall-clock scaling (multicore engine)
# ---------------------------------------------------------------------------
def run_wallclock(benchmarks: Optional[Sequence[str]] = None, *,
                  workers: Sequence[int] = DEFAULT_WALLCLOCK_WORKERS,
                  scale: int = 4, repeats: int = 3,
                  engine: str = "multicore") -> Dict[str, Dict[int, float]]:
    """Measured seconds per worker count: {benchmark: {workers: seconds}}.

    Each (benchmark, worker-count) cell is the best of ``repeats`` runs of
    the cuda-lowered kernel on the selected engine (the multicore engine;
    any other registered engine is accepted for baselines and simply
    ignores the worker count).  The first run per module warms the one-time
    IR translation and the worker pool so the steady state is measured.
    """
    names = list(benchmarks or DEFAULT_WALLCLOCK_SET)
    options = PipelineOptions.all_optimizations()
    results: Dict[str, Dict[int, float]] = {}
    for name in names:
        bench = BENCHMARKS[name]
        module = bench.compile_cuda(options, cache="shared")
        results[name] = {}
        for worker_count in workers:
            executor = make_executor(module, engine=engine, workers=worker_count)
            executor.run(bench.entry, bench.make_inputs(scale))  # warm-up
            best = float("inf")
            for _ in range(repeats):
                arguments = bench.make_inputs(scale)
                executor = make_executor(module, engine=engine, workers=worker_count)
                start = time.perf_counter()
                executor.run(bench.entry, arguments)
                best = min(best, time.perf_counter() - start)
            results[name][worker_count] = best
    return results


def summarize_wallclock(results: Dict[str, Dict[int, float]]) -> str:
    workers = sorted(next(iter(results.values())))
    lines = ["Fig. 14 (measured): wall-clock seconds and T1/Tn speedup on the "
             "multicore engine"]
    rows = []
    for name, per_worker in results.items():
        base = per_worker[min(per_worker)]
        rows.append([name, "seconds"] + [per_worker[w] for w in workers])
        rows.append([name, "T1/Tn"] + [base / per_worker[w] for w in workers])
    lines.append(format_table(["benchmark", "metric", *[str(w) for w in workers]],
                              rows, float_format="{:.4f}"))
    from ..runtime.multicore import available_cpus
    cpus = available_cpus()
    lines.append("")
    lines.append(f"({cpus} CPU(s) available — speedups saturate at the core count; "
                 "worker counts above it measure dispatch overhead)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> str:
    parser = argparse.ArgumentParser(
        description="Fig. 14 thread-scaling experiment")
    parser.add_argument("--engine", default=None,
                        help="execution engine (any registered name: "
                             f"{'/'.join(engine_names())}; "
                             "default: process default)")
    parser.add_argument("--wallclock", action="store_true",
                        help="additionally measure real seconds per worker "
                             "count on the multicore engine")
    parser.add_argument("--threads", default=None,
                        help="comma-separated thread (simulated) / worker "
                             "(wall-clock) counts")
    parser.add_argument("--scale", type=int, default=1,
                        help="input scale for the simulated table (wall-clock "
                             "mode uses max(scale, 4) for measurable runs)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repetitions per cell (best-of)")
    parser.add_argument("--inner-serialize", action="store_true",
                        help="enable inner serialization in the pipeline")
    args = parser.parse_args(argv)

    thread_counts = (tuple(int(t) for t in args.threads.split(","))
                     if args.threads else None)
    names = args.benchmarks.split(",") if args.benchmarks else None

    sections = [summarize(run(
        names, threads=thread_counts or DEFAULT_THREADS, scale=args.scale,
        inner_serialize=args.inner_serialize, engine=args.engine))]
    if args.wallclock:
        sections.append("")
        sections.append(summarize_wallclock(run_wallclock(
            names, workers=thread_counts or DEFAULT_WALLCLOCK_WORKERS,
            scale=max(args.scale, 4), repeats=args.repeats,
            engine=args.engine or "multicore")))
    output = "\n".join(sections)
    print(output)
    return output


if __name__ == "__main__":
    main()
