"""Experiment E1 — Fig. 12: comparison against MCUDA on matrix multiplication.

Three series, as in the paper:

* ``MCUDA``              — the AST-level baseline (outer loop parallelized,
  no barrier-aware optimization),
* ``PolygeistInnerPar``  — our pipeline with all optimizations except inner
  serialization (nested OpenMP regions stay parallel),
* ``PolygeistInnerSer``  — our pipeline with inner serialization (the default).

The left panel sweeps thread counts at a fixed size, the right panel sweeps
matrix sizes at a fixed thread count.  Sizes are scaled down from the paper's
128–2048 so the Python interpreter finishes in seconds; the relationships
(InnerPar ≈ MCUDA, InnerSer fastest) are what the experiment checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines import mcuda_options
from ..rodinia import BENCHMARKS, run_module
from ..runtime import XEON_8375C
from ..transforms import PipelineOptions
from .tables import format_table, geomean

CONFIGURATIONS: Dict[str, PipelineOptions] = {
    "MCUDA": mcuda_options(),
    # "InnerPar" keeps both levels parallel as *nested* OpenMP regions, which
    # is what the paper measures (and what makes it pay nested-region overhead).
    "PolygeistInnerPar": PipelineOptions.all_optimizations(
        inner_serialize=False).with_options(collapse=False),
    "PolygeistInnerSer": PipelineOptions.all_optimizations(inner_serialize=True),
}

DEFAULT_THREADS = (1, 2, 4, 8, 16, 32)
DEFAULT_SCALES = (1, 2, 4)


def run(threads: Sequence[int] = DEFAULT_THREADS,
        scales: Sequence[int] = DEFAULT_SCALES,
        machine=XEON_8375C, engine: Optional[str] = None) -> Dict[str, Dict[tuple, float]]:
    """Returns {series: {(threads, matrix_size): cycles}}.

    The repeated sweeps over one compiled module are exactly the shape the
    compiled engine's per-module cache accelerates.
    """
    bench = BENCHMARKS["matmul"]
    results: Dict[str, Dict[tuple, float]] = {name: {} for name in CONFIGURATIONS}
    for name, options in CONFIGURATIONS.items():
        # shared cache mode: re-running the harness in one process (or with
        # REPRO_CACHE=1 across processes) skips the compile entirely.
        module = bench.compile_cuda(options, cache="shared")
        for scale in scales:
            size = 16 * scale
            for thread_count in threads:
                arguments = bench.make_inputs(scale)
                report = run_module(module, bench.entry, arguments,
                                    machine=machine, threads=thread_count,
                                    engine=engine)
                results[name][(thread_count, size)] = report.cycles
    return results


def summarize(results: Dict[str, Dict[tuple, float]]) -> str:
    """Render the two panels of Fig. 12 as tables plus the headline ratios."""
    threads = sorted({key[0] for series in results.values() for key in series})
    sizes = sorted({key[1] for series in results.values() for key in series})

    lines: List[str] = []
    lines.append("Fig. 12 (left): mean cycles vs. thread count (averaged over sizes)")
    rows = []
    for thread_count in threads:
        row = [thread_count]
        for name in CONFIGURATIONS:
            row.append(geomean([results[name][(thread_count, size)] for size in sizes]))
        rows.append(row)
    lines.append(format_table(["threads", *CONFIGURATIONS], rows, float_format="{:.0f}"))

    lines.append("")
    lines.append("Fig. 12 (right): mean cycles vs. matrix size (averaged over threads)")
    rows = []
    for size in sizes:
        row = [size]
        for name in CONFIGURATIONS:
            row.append(geomean([results[name][(thread_count, size)] for thread_count in threads]))
        rows.append(row)
    lines.append(format_table(["size", *CONFIGURATIONS], rows, float_format="{:.0f}"))

    inner_ser_speedup = geomean(
        [results["MCUDA"][key] / results["PolygeistInnerSer"][key] for key in results["MCUDA"]])
    inner_par_ratio = geomean(
        [results["MCUDA"][key] / results["PolygeistInnerPar"][key] for key in results["MCUDA"]])
    lines.append("")
    lines.append(f"geomean speedup of PolygeistInnerSer over MCUDA: {inner_ser_speedup:.3f}x "
                 "(paper: 1.149x)")
    lines.append(f"geomean ratio  of PolygeistInnerPar vs MCUDA:   {inner_par_ratio:.3f}x "
                 "(paper: ~1.0x)")
    return "\n".join(lines)


def main() -> str:
    output = summarize(run())
    print(output)
    return output


if __name__ == "__main__":
    main()
