"""Experiments E2/E3 — Fig. 13: Rodinia speedups and the optimization ablation.

* Fig. 13 (right): transpiled CUDA (CUDA-OpenMP) vs. the hand-written OpenMP
  reference of each benchmark, at full thread count; the paper reports a 76%
  geomean improvement with inner serialization and 43.7% without.
* Fig. 13 (left): ablation — speedup over the "Opt Disabled" configuration as
  optimizations are enabled cumulatively: ``mincut``, ``openmpopt``,
  ``affine``, ``innerser``.
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from ..rodinia import BENCHMARKS, FIGURE13_SET, run_module
from ..runtime import ENGINES, XEON_8375C
from ..transforms import PipelineOptions
from .tables import format_table, geomean

#: cumulative ablation series, matching the Fig. 13(left) legend.
ABLATION_SERIES: Dict[str, PipelineOptions] = {
    "Opt Disabled": PipelineOptions.opt_disabled(),
    "mincut": PipelineOptions.from_flags("mincut"),
    "openmpopt": PipelineOptions.from_flags("mincut,openmpopt"),
    "affine": PipelineOptions.from_flags("mincut,openmpopt,affine"),
    "innerser": PipelineOptions.from_flags("mincut,openmpopt,affine,innerser"),
}


def _run_variant(bench, options: Optional[PipelineOptions], variant: str,
                 scale: int, threads: int, machine,
                 engine: Optional[str] = None) -> float:
    arguments = bench.make_inputs(scale)
    if variant == "cuda":
        module = bench.compile_cuda(options)
    else:
        module = bench.compile_openmp()
    report = run_module(module, bench.entry, arguments, machine=machine,
                        threads=threads, engine=engine)
    return report.cycles


def run_speedup_over_openmp(benchmarks: Optional[Sequence[str]] = None, *,
                            threads: int = 32, scale: int = 1,
                            inner_serialize: bool = True,
                            machine=XEON_8375C,
                            engine: Optional[str] = None) -> Dict[str, Dict[str, float]]:
    """Fig. 13 (right): {benchmark: {"OpenMP": cycles, "CUDA-OpenMP": cycles}}."""
    names = list(benchmarks or FIGURE13_SET)
    options = PipelineOptions.all_optimizations(inner_serialize=inner_serialize)
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        bench = BENCHMARKS[name]
        if bench.omp_source is None:
            continue
        results[name] = {
            "OpenMP": _run_variant(bench, None, "omp", scale, threads, machine, engine),
            "CUDA-OpenMP": _run_variant(bench, options, "cuda", scale, threads, machine, engine),
        }
    return results


def run_ablation(benchmarks: Optional[Sequence[str]] = None, *,
                 threads: int = 32, scale: int = 1,
                 machine=XEON_8375C,
                 engine: Optional[str] = None) -> Dict[str, Dict[str, float]]:
    """Fig. 13 (left): {benchmark: {series: cycles}}."""
    names = list(benchmarks or FIGURE13_SET)
    results: Dict[str, Dict[str, float]] = {}
    for name in names:
        bench = BENCHMARKS[name]
        results[name] = {}
        for series, options in ABLATION_SERIES.items():
            results[name][series] = _run_variant(bench, options, "cuda", scale,
                                                 threads, machine, engine)
    return results


def summarize_speedup(results: Dict[str, Dict[str, float]]) -> str:
    rows: List[List] = []
    speedups = []
    for name, series in results.items():
        speedup = series["OpenMP"] / series["CUDA-OpenMP"]
        speedups.append(speedup)
        rows.append([name, series["OpenMP"], series["CUDA-OpenMP"], speedup])
    lines = ["Fig. 13 (right): transpiled CUDA vs. hand-written OpenMP (cycles; higher speedup = better)"]
    lines.append(format_table(["benchmark", "OpenMP", "CUDA-OpenMP", "speedup"], rows,
                              float_format="{:.2f}"))
    lines.append("")
    lines.append(f"geomean speedup of CUDA-OpenMP over OpenMP: {geomean(speedups):.3f}x "
                 "(paper: 1.76x with inner serialization, 1.437x without)")
    return "\n".join(lines)


def summarize_ablation(results: Dict[str, Dict[str, float]]) -> str:
    series_names = list(ABLATION_SERIES)
    rows: List[List] = []
    per_series_speedups: Dict[str, List[float]] = {name: [] for name in series_names[1:]}
    for name, series in results.items():
        baseline = series["Opt Disabled"]
        row = [name]
        for series_name in series_names[1:]:
            speedup = baseline / series[series_name]
            per_series_speedups[series_name].append(speedup)
            row.append(speedup)
        rows.append(row)
    lines = ["Fig. 13 (left): speedup over the unoptimized configuration (cumulative series)"]
    lines.append(format_table(["benchmark", *series_names[1:]], rows))
    lines.append("")
    for series_name, speedups in per_series_speedups.items():
        lines.append(f"geomean speedup with '{series_name}': {geomean(speedups):.3f}x")
    lines.append("(paper: mincut +4.1%, openmpopt +8.9%, affine +4.6%, "
                 "2.6x on backprop layerforward)")
    return "\n".join(lines)


def run_pass_stats(benchmarks: Optional[Sequence[str]] = None,
                   options: Optional[PipelineOptions] = None,
                   verbose: bool = True) -> str:
    """Per-benchmark pass statistics: wall-clock + changed/unchanged table.

    Compiles each benchmark's CUDA source to the un-lowered module, then
    runs the full cpuify pipeline through a verbose :class:`PassManager`
    (live per-pass timing lines) and reports the aggregate table.
    """
    from ..frontend import compile_cuda
    from ..transforms.cpuify import build_pipeline

    names = list(benchmarks or FIGURE13_SET)
    options = options or PipelineOptions.all_optimizations()
    sections: List[str] = []
    for name in names:
        bench = BENCHMARKS[name]
        # bypass the kernel cache: this path exists to *time* the pipeline,
        # and it mutates the un-lowered module in place.
        module = compile_cuda(bench.cuda_source, filename=f"{bench.name}.cu",
                              cuda_lower=False, cache=False)
        if verbose:
            print(f"{name}:")
        pipeline = build_pipeline(options, verbose=verbose)
        pipeline.run(module)
        sections.append(f"{name}:")
        sections.append(pipeline.statistics_summary())
        sections.append("")
    return "\n".join(sections)


def main(argv: Optional[Sequence[str]] = None) -> str:
    parser = argparse.ArgumentParser(
        description="Fig. 13: Rodinia speedups and the optimization ablation")
    parser.add_argument("--pass-stats", action="store_true",
                        help="print per-pass wall-clock timing and "
                             "changed/unchanged statistics of the cpuify "
                             "pipeline instead of the figure tables")
    parser.add_argument("--engine", default=None, choices=ENGINES,
                        help="execution engine for the figure runs "
                             "(default: process default / REPRO_ENGINE)")
    args = parser.parse_args(argv)
    if args.pass_stats:
        text = run_pass_stats()
        print(text)
        return text
    output = []
    output.append(summarize_speedup(run_speedup_over_openmp(engine=args.engine)))
    output.append("")
    output.append(summarize_ablation(run_ablation(engine=args.engine)))
    text = "\n".join(output)
    print(text)
    return text


if __name__ == "__main__":
    main()
