"""Minimum vertex cut on the SSA value graph (§III-B1).

When a parallel loop is split around a barrier, SSA values defined before the
barrier and used after it must either be *cached* in a per-iteration buffer
or *recomputed* in the second loop.  Following the paper (and the Enzyme
min-cut cache heuristic it cites), the minimal set of values to cache is a
minimum vertex cut of the dataflow graph where:

* values that cannot be recomputed (results of loads, calls, region ops) are
  attached to the source,
* values used after the barrier are attached to the sink,
* every value-node has unit capacity (cutting it = caching it), and
* def-use edges have infinite capacity.

The graph is tiny (tens of nodes), so a plain Edmonds–Karp max-flow with
node-splitting is more than fast enough and keeps the implementation
dependency-free and easy to property-test.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

INFINITY = float("inf")


class FlowNetwork:
    """A directed graph with edge capacities supporting max-flow / min-cut."""

    def __init__(self) -> None:
        self._capacity: Dict[Hashable, Dict[Hashable, float]] = {}

    def add_node(self, node: Hashable) -> None:
        self._capacity.setdefault(node, {})

    def add_edge(self, src: Hashable, dst: Hashable, capacity: float) -> None:
        self.add_node(src)
        self.add_node(dst)
        self._capacity[src][dst] = self._capacity[src].get(dst, 0.0) + capacity
        self._capacity[dst].setdefault(src, 0.0)

    @property
    def nodes(self) -> List[Hashable]:
        return list(self._capacity)

    def _bfs_augmenting_path(self, residual, source, sink) -> Optional[List[Hashable]]:
        parents: Dict[Hashable, Hashable] = {source: source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, capacity in residual[node].items():
                if capacity > 1e-12 and neighbor not in parents:
                    parents[neighbor] = node
                    if neighbor == sink:
                        path = [sink]
                        while path[-1] != source:
                            path.append(parents[path[-1]])
                        path.reverse()
                        return path
                    queue.append(neighbor)
        return None

    def max_flow(self, source: Hashable, sink: Hashable) -> Tuple[float, Dict[Hashable, Dict[Hashable, float]]]:
        """Edmonds–Karp max flow; returns (flow value, residual capacities)."""
        residual = {node: dict(edges) for node, edges in self._capacity.items()}
        total = 0.0
        while True:
            path = self._bfs_augmenting_path(residual, source, sink)
            if path is None:
                break
            bottleneck = min(residual[u][v] for u, v in zip(path, path[1:]))
            for u, v in zip(path, path[1:]):
                residual[u][v] -= bottleneck
                residual[v][u] = residual.get(v, {}).get(u, 0.0) + bottleneck
            total += bottleneck
        return total, residual

    def min_cut_reachable(self, source: Hashable, sink: Hashable) -> Set[Hashable]:
        """Nodes reachable from the source in the residual graph of a max flow."""
        _, residual = self.max_flow(source, sink)
        reachable: Set[Hashable] = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, capacity in residual[node].items():
                if capacity > 1e-12 and neighbor not in reachable:
                    reachable.add(neighbor)
                    queue.append(neighbor)
        return reachable


SOURCE = "__source__"
SINK = "__sink__"


def minimum_value_cut(
    values: Sequence[Hashable],
    def_use_edges: Sequence[Tuple[Hashable, Hashable]],
    non_recomputable: Sequence[Hashable],
    required: Sequence[Hashable],
    weights: Optional[Dict[Hashable, float]] = None,
) -> Set[Hashable]:
    """Choose the cheapest set of values to cache across a split point.

    Parameters
    ----------
    values:
        candidate values (hashable keys, e.g. ``id(ssa_value)``).
    def_use_edges:
        ``(producer, consumer)`` pairs, meaning recomputing ``consumer``
        requires ``producer`` to be available.
    non_recomputable:
        values whose definition cannot be re-executed (loads, calls...).
    required:
        values that must be available after the split point.
    weights:
        optional per-value cache cost (default 1.0 each).

    Returns the set of values to cache.  Every required value is then either
    cached or recomputable from cached/free values.
    """
    values = list(values)
    value_set = set(values)
    weights = weights or {}
    network = FlowNetwork()

    def node_in(value):
        return ("in", value)

    def node_out(value):
        return ("out", value)

    for value in values:
        network.add_edge(node_in(value), node_out(value), float(weights.get(value, 1.0)))
    for producer, consumer in def_use_edges:
        if producer in value_set and consumer in value_set:
            network.add_edge(node_out(producer), node_in(consumer), INFINITY)
    for value in non_recomputable:
        if value in value_set:
            network.add_edge(SOURCE, node_in(value), INFINITY)
    for value in required:
        if value in value_set:
            network.add_edge(node_out(value), SINK, INFINITY)

    if SOURCE not in network.nodes or SINK not in network.nodes:
        return set()

    reachable = network.min_cut_reachable(SOURCE, SINK)
    cut: Set[Hashable] = set()
    for value in values:
        if node_in(value) in reachable and node_out(value) not in reachable:
            cut.add(value)
    return cut


def validate_cut(
    cut: Set[Hashable],
    def_use_edges: Sequence[Tuple[Hashable, Hashable]],
    non_recomputable: Sequence[Hashable],
    required: Sequence[Hashable],
) -> bool:
    """Check that every required value is available given the cut.

    A value is available if it is cached (in the cut), or recomputable: not in
    ``non_recomputable`` and all of its producers are available.  Used by
    tests (including property-based tests) to validate the min-cut output.
    """
    producers: Dict[Hashable, List[Hashable]] = {}
    for producer, consumer in def_use_edges:
        producers.setdefault(consumer, []).append(producer)

    memo: Dict[Hashable, bool] = {}

    def available(value, stack: Tuple = ()) -> bool:
        if value in memo:
            return memo[value]
        if value in stack:
            return False
        if value in cut:
            memo[value] = True
            return True
        if value in non_recomputable:
            memo[value] = False
            return False
        result = all(available(producer, stack + (value,)) for producer in producers.get(value, []))
        memo[value] = result
        return result

    return all(available(value) for value in required)
