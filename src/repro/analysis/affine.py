"""Affine access analysis.

The barrier semantics of §III-A can be refined when memory accesses can be
*raised into linear (affine) forms* over the thread identifiers: an access
whose address is an injective function of the thread id always happens in
program order within one thread, so the barrier does not need to capture it
("the hole" that keeps mem2reg and store-to-load forwarding working across
barriers, Fig. 5).

:class:`AffineExpr` represents ``sum(coeff_i * symbol_i) + constant`` where
symbols are SSA values (thread induction variables, serial loop induction
variables, kernel arguments...).  :func:`extract_affine` walks defining
operations (constants, add, sub, mul-by-constant, index casts) to build the
expression; anything it cannot handle yields ``None`` (non-affine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import Value
from ..dialects import arith


@dataclass
class AffineExpr:
    """A linear expression over SSA-value symbols plus an integer constant."""

    coefficients: Dict[int, int] = field(default_factory=dict)  # id(value) -> coeff
    symbols: Dict[int, Value] = field(default_factory=dict)     # id(value) -> value
    constant: int = 0

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_constant(cls, value: int) -> "AffineExpr":
        return cls(constant=int(value))

    @classmethod
    def from_symbol(cls, value: Value) -> "AffineExpr":
        return cls(coefficients={id(value): 1}, symbols={id(value): value})

    # -- algebra ---------------------------------------------------------------
    def _merged_symbols(self, other: "AffineExpr") -> Dict[int, Value]:
        merged = dict(self.symbols)
        merged.update(other.symbols)
        return merged

    def add(self, other: "AffineExpr") -> "AffineExpr":
        coeffs = dict(self.coefficients)
        for key, coeff in other.coefficients.items():
            coeffs[key] = coeffs.get(key, 0) + coeff
        coeffs = {key: coeff for key, coeff in coeffs.items() if coeff != 0}
        symbols = {key: value for key, value in self._merged_symbols(other).items() if key in coeffs}
        return AffineExpr(coeffs, symbols, self.constant + other.constant)

    def negate(self) -> "AffineExpr":
        return AffineExpr({key: -coeff for key, coeff in self.coefficients.items()},
                          dict(self.symbols), -self.constant)

    def sub(self, other: "AffineExpr") -> "AffineExpr":
        return self.add(other.negate())

    def scale(self, factor: int) -> "AffineExpr":
        if factor == 0:
            return AffineExpr.from_constant(0)
        return AffineExpr({key: coeff * factor for key, coeff in self.coefficients.items()},
                          dict(self.symbols), self.constant * factor)

    # -- queries ------------------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return not self.coefficients

    def coefficient_of(self, value: Value) -> int:
        return self.coefficients.get(id(value), 0)

    def symbol_values(self) -> List[Value]:
        return list(self.symbols.values())

    def involves(self, value: Value) -> bool:
        return self.coefficient_of(value) != 0

    def equivalent(self, other: "AffineExpr") -> bool:
        """Structural equality: same symbols, coefficients and constant."""
        if self.constant != other.constant:
            return False
        return self.coefficients == other.coefficients

    def __repr__(self) -> str:
        terms = [f"{coeff}*{self.symbols[key].name}" for key, coeff in self.coefficients.items()]
        terms.append(str(self.constant))
        return " + ".join(terms)


def extract_affine(value: Value, max_depth: int = 32) -> Optional[AffineExpr]:
    """Try to express ``value`` as an affine function of SSA symbols.

    Returns ``None`` when the value is built from operations the analysis
    does not model (loads, divisions, calls, ...) — in that case the value
    itself becomes an opaque symbol only if it is a "leaf" (no defining op we
    understand); a partially-affine expression is never returned.
    """
    if max_depth <= 0:
        return None

    op = value.defining_op()
    if op is None:
        return AffineExpr.from_symbol(value)
    if isinstance(op, arith.ConstantOp):
        if isinstance(op.value, float):
            return None
        return AffineExpr.from_constant(op.value)
    if isinstance(op, (arith.IndexCastOp, arith.IntCastOp)):
        return extract_affine(op.input, max_depth - 1)
    if isinstance(op, arith.AddIOp):
        lhs = extract_affine(op.lhs, max_depth - 1)
        rhs = extract_affine(op.rhs, max_depth - 1)
        return lhs.add(rhs) if lhs is not None and rhs is not None else None
    if isinstance(op, arith.SubIOp):
        lhs = extract_affine(op.lhs, max_depth - 1)
        rhs = extract_affine(op.rhs, max_depth - 1)
        return lhs.sub(rhs) if lhs is not None and rhs is not None else None
    if isinstance(op, arith.MulIOp):
        lhs = extract_affine(op.lhs, max_depth - 1)
        rhs = extract_affine(op.rhs, max_depth - 1)
        if lhs is None or rhs is None:
            return None
        if rhs.is_constant:
            return lhs.scale(rhs.constant)
        if lhs.is_constant:
            return rhs.scale(lhs.constant)
        return None
    # Unknown defining op: treat the value itself as an opaque symbol.  This
    # is sound because the symbol identity still distinguishes "same value"
    # from "different value".
    return AffineExpr.from_symbol(value)


def extract_access(indices: Sequence[Value]) -> Optional[Tuple[AffineExpr, ...]]:
    """Affine access function for a load/store's index operands (or None)."""
    exprs: List[AffineExpr] = []
    for index in indices:
        expr = extract_affine(index)
        if expr is None:
            return None
        exprs.append(expr)
    return tuple(exprs)


def access_equivalent(a: Sequence[AffineExpr], b: Sequence[AffineExpr]) -> bool:
    """True if two access functions are index-by-index identical."""
    if len(a) != len(b):
        return False
    return all(x.equivalent(y) for x, y in zip(a, b))


def access_is_injective_in(access: Sequence[AffineExpr], thread_ivs: Sequence[Value],
                           uniform_symbols: Optional[Sequence[Value]] = None) -> bool:
    """Is the access address an injective function of the thread ids?

    Sufficient condition used here (and adequate for the kernels in the
    suite): every thread induction variable that the access *uses* appears
    with a non-zero coefficient in some index expression, at least one of
    them does, and every other symbol appearing in the expression is
    "uniform" across threads — i.e. it is one of ``uniform_symbols`` (values
    defined outside the thread-parallel loop) or a serial-loop induction
    variable shared by all threads.  Under these conditions two distinct
    thread ids can never produce the same address for accesses with the same
    expression.
    """
    if not thread_ivs:
        return False
    uniform_ids = {id(value) for value in (uniform_symbols or [])}
    thread_ids = {id(iv) for iv in thread_ivs}

    uses_thread_iv = False
    for expr in access:
        for key in expr.coefficients:
            if key in thread_ids:
                uses_thread_iv = True
            elif key not in uniform_ids:
                # symbol that may differ per thread in a way we cannot model.
                return False
    return uses_thread_iv
