"""Memory-access collection and conflict detection.

The transformations of §IV are all phrased in terms of "the memory effects of
the code before/after X conflict (or not)".  This module provides:

* :class:`MemoryAccess` — one read/write/alloc/free of a base memref with an
  optional affine access function,
* :func:`collect_accesses` — gather the accesses of an op (recursively
  through regions, and through direct calls when the module is supplied),
* :func:`accesses_conflict` — the pairwise conflict test, including the
  cross-thread refinement of §III-A used by barrier-related analyses, and
* :func:`function_is_read_only` / :func:`function_effects` — interprocedural
  summaries that let parallel LICM hoist calls such as ``sum`` in Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ir import EffectKind, Operation, Value
from ..dialects import func as func_d, memref as memref_d, polygeist
from .affine import AffineExpr, access_equivalent, access_is_injective_in, extract_access
from .alias import may_alias


@dataclass
class MemoryAccess:
    """A single memory access performed by ``op``.

    ``base`` is the accessed memref SSA value (None for unknown locations);
    ``access`` is the affine index expression tuple when it could be raised.
    """

    op: Operation
    kind: EffectKind
    base: Optional[Value]
    access: Optional[Tuple[AffineExpr, ...]] = None

    @property
    def is_read(self) -> bool:
        return self.kind is EffectKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is EffectKind.WRITE

    def __repr__(self) -> str:
        base = self.base.name if self.base is not None else "<unknown>"
        return f"MemoryAccess({self.kind.value}, {base}, affine={self.access is not None})"


def _call_accesses(call: func_d.CallOp, module: Optional[func_d.ModuleOp],
                   visited: Set[str]) -> List[MemoryAccess]:
    """Summarize a call by the callee's accesses, remapped to caller operands."""
    unknown = [MemoryAccess(call, EffectKind.READ, None), MemoryAccess(call, EffectKind.WRITE, None)]
    if module is None:
        return unknown
    callee = module.lookup(call.callee)
    if callee is None or callee.is_declaration or call.callee in visited:
        return unknown
    visited = visited | {call.callee}
    arg_map: Dict[int, Value] = {
        id(arg): actual for arg, actual in zip(callee.arguments, call.operands)
    }
    summarized: List[MemoryAccess] = []
    for access in collect_accesses(callee, module=module, _visited=visited):
        base = access.base
        if base is not None and id(base) in arg_map:
            # effect on a pointer argument: becomes an effect on the actual.
            summarized.append(MemoryAccess(call, access.kind, arg_map[id(base)], None))
        elif base is not None and _is_local_to(base, callee):
            # effect confined to callee-local allocations: invisible outside.
            continue
        else:
            summarized.append(MemoryAccess(call, access.kind, None, None))
    return summarized


def _is_local_to(base: Value, callee: func_d.FuncOp) -> bool:
    op = base.defining_op()
    return op is not None and callee.is_ancestor_of(op)


def collect_accesses(op: Operation, module: Optional[func_d.ModuleOp] = None,
                     _visited: Optional[Set[str]] = None) -> List[MemoryAccess]:
    """All memory accesses of ``op`` including nested regions and direct calls.

    ``polygeist.barrier`` contributes *no* accesses here: its effects are
    context-dependent and handled by :mod:`repro.analysis.barriers`.
    """
    visited = _visited or set()
    accesses: List[MemoryAccess] = []

    def record(current: Operation) -> None:
        if isinstance(current, polygeist.PolygeistBarrierOp):
            return
        if isinstance(current, memref_d.LoadOp):
            accesses.append(MemoryAccess(current, EffectKind.READ, current.memref,
                                         extract_access(current.indices)))
            return
        if isinstance(current, memref_d.StoreOp):
            accesses.append(MemoryAccess(current, EffectKind.WRITE, current.memref,
                                         extract_access(current.indices)))
            return
        if isinstance(current, func_d.CallOp):
            accesses.extend(_call_accesses(current, module, visited))
            return
        if current.HAS_RECURSIVE_EFFECTS or current is op:
            for region in current.regions:
                for block in region.blocks:
                    for nested in block.operations:
                        record(nested)
            return
        for effect in current.memory_effects():
            accesses.append(MemoryAccess(current, effect.kind, effect.value, None))

    record(op)
    return accesses


def accesses_conflict(a: MemoryAccess, b: MemoryAccess, *,
                      cross_thread_only: bool = False,
                      thread_ivs: Sequence[Value] = (),
                      uniform_symbols: Sequence[Value] = ()) -> bool:
    """Do two accesses conflict (one must come before the other)?

    Read-after-read never conflicts.  With ``cross_thread_only`` the §III-A
    refinement applies: identical affine accesses that are injective in the
    thread ids are ordered by program order *within* each thread, so they do
    not conflict across a barrier.
    """
    if a.is_read and b.is_read:
        return False
    if a.kind in (EffectKind.ALLOC, EffectKind.FREE) or b.kind in (EffectKind.ALLOC, EffectKind.FREE):
        # allocation/free of a fresh buffer does not conflict with accesses to
        # other buffers; conservatively conflict when bases may alias.
        if a.base is None or b.base is None:
            return True
        return may_alias(a.base, b.base)
    if a.base is None or b.base is None:
        return True
    if not may_alias(a.base, b.base):
        return False
    if cross_thread_only and a.access is not None and b.access is not None:
        if (access_equivalent(a.access, b.access)
                and access_is_injective_in(a.access, thread_ivs, uniform_symbols)):
            return False
    return True


def any_conflict(group_a: Sequence[MemoryAccess], group_b: Sequence[MemoryAccess], **kwargs) -> bool:
    """True if any access pair across the two groups conflicts."""
    for a in group_a:
        for b in group_b:
            if accesses_conflict(a, b, **kwargs):
                return True
    return False


# ---------------------------------------------------------------------------
# Interprocedural summaries
# ---------------------------------------------------------------------------
def function_effects(fn: func_d.FuncOp, module: Optional[func_d.ModuleOp] = None) -> List[MemoryAccess]:
    """The externally visible accesses of a function body."""
    if fn.is_declaration:
        return [MemoryAccess(fn, EffectKind.READ, None), MemoryAccess(fn, EffectKind.WRITE, None)]
    external: List[MemoryAccess] = []
    for access in collect_accesses(fn, module=module):
        if access.base is not None and _is_local_to(access.base, fn):
            continue
        external.append(access)
    return external


def function_is_read_only(fn: func_d.FuncOp, module: Optional[func_d.ModuleOp] = None) -> bool:
    """True if the function never writes externally visible memory."""
    return all(access.is_read for access in function_effects(fn, module))


def op_is_speculatable(op: Operation, module: Optional[func_d.ModuleOp] = None) -> bool:
    """True if executing ``op`` more or fewer times is unobservable.

    Pure ops are speculatable; calls are speculatable when the callee is
    read-only (it may be re-executed or hoisted freely as long as its
    operands are available).
    """
    if isinstance(op, func_d.CallOp):
        if module is None:
            return False
        callee = module.lookup(op.callee)
        return callee is not None and function_is_read_only(callee, module)
    if isinstance(op, memref_d.LoadOp):
        return False  # may fault / value may change if memory written
    return op.is_pure()
