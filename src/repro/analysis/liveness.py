"""Liveness across a split point inside a block.

Parallel loop splitting (§III-B1) needs to know which SSA values defined
before the split point are still needed after it.  Because the IR keeps
structured single-block regions, "crossing values" are simply the results of
top-level ops before the split (plus the block arguments) that have at least
one use at or after the split point, where nested uses count for the
top-level op containing them.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from ..ir import Block, Operation, Value


def _top_level_user_index(block: Block, user: Operation) -> int:
    """Index of the top-level op of ``block`` containing ``user`` (or -1)."""
    node = user
    while node is not None and node.parent_block is not block:
        node = node.parent_op
    if node is None:
        return -1
    return block.index_of(node)


def values_defined_before(block: Block, split_index: int) -> List[Value]:
    """Block arguments and results of ops before ``split_index``."""
    values: List[Value] = list(block.arguments)
    for op in block.operations[:split_index]:
        values.extend(op.results)
    return values


def crossing_values(block: Block, split_index: int) -> List[Value]:
    """Values defined before the split point and used at/after it."""
    crossing: List[Value] = []
    for value in values_defined_before(block, split_index):
        for use in value.uses:
            user_index = _top_level_user_index(block, use.owner)
            if user_index >= split_index:
                crossing.append(value)
                break
    return crossing


def uses_after(block: Block, split_index: int, value: Value) -> List[Operation]:
    """The user ops of ``value`` that sit at/after the split point."""
    users: List[Operation] = []
    for use in value.uses:
        if _top_level_user_index(block, use.owner) >= split_index:
            users.append(use.owner)
    return users


def def_use_edges_among(values: Sequence[Value]) -> List[Tuple[int, int]]:
    """``(id(producer), id(consumer))`` pairs restricted to ``values``.

    An edge producer→consumer means the op defining ``consumer`` uses
    ``producer`` as an operand, i.e. recomputing ``consumer`` requires
    ``producer``.
    """
    ids: Set[int] = {id(value) for value in values}
    edges: List[Tuple[int, int]] = []
    for value in values:
        op = value.defining_op()
        if op is None:
            continue
        for operand in op.operands:
            if id(operand) in ids:
                edges.append((id(operand), id(value)))
    return edges
