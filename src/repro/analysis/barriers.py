"""Barrier memory semantics (§III-A) and the elimination condition (§IV-A).

A ``polygeist.barrier`` orders, across the threads of its enclosing
``scf.parallel``, the memory accesses performed before it against those
performed after it.  Its *memory effects* are therefore defined as the union
of the read and write effects of the surrounding code — minus the accesses
whose address is an injective function of the thread id, which are already
ordered by program order within each thread (the "hole" of Fig. 5).

Two collection modes exist, matching the paper's M and M† sets:

* ``stop_at_barrier=True``  (M†): walk only until the nearest enclosing-block
  barrier in the given direction,
* ``stop_at_barrier=False`` (M): walk all the way to the start/end of the
  parallel region.

The elimination rule then is: barrier B is redundant iff
``conflicts(M†_before, M_after) == ∅`` (subsumed by a previous barrier /
region start) or ``conflicts(M_before, M†_after) == ∅`` (subsumed by a
following barrier / region end), where read-after-read pairs and same-thread
injective accesses never count as conflicts.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..ir import Operation, Value
from ..dialects import func as func_d, polygeist, scf
from .alias import is_allocation
from .effects import MemoryAccess, any_conflict, collect_accesses
from .structure import enclosing_parallel, is_defined_inside, uniform_symbols_for


def _is_barrier(op: Operation) -> bool:
    return isinstance(op, polygeist.PolygeistBarrierOp)


def _truncate_at_barrier(ops: Sequence[Operation], *, keep_tail: bool) -> List[Operation]:
    """Drop everything beyond the nearest barrier.

    With ``keep_tail`` the *suffix* after the last barrier is kept (used for
    the "before" side); otherwise the *prefix* before the first barrier is
    kept (used for the "after" side).
    """
    barrier_indices = [i for i, op in enumerate(ops) if _is_barrier(op)]
    if not barrier_indices:
        return list(ops)
    if keep_tail:
        return list(ops[barrier_indices[-1] + 1:])
    return list(ops[: barrier_indices[0]])


def is_thread_private(base: Optional[Value], parallel: scf.ParallelOp) -> bool:
    """A buffer allocated *inside* the parallel body is private to one
    iteration (thread); barriers never order accesses to it."""
    if base is None or not is_allocation(base):
        return False
    return is_defined_inside(base, parallel)


def _collect(ops: Sequence[Operation], module: Optional[func_d.ModuleOp],
             parallel: Optional[scf.ParallelOp] = None) -> List[MemoryAccess]:
    accesses: List[MemoryAccess] = []
    for op in ops:
        for access in collect_accesses(op, module=module):
            if parallel is not None and is_thread_private(access.base, parallel):
                continue
            accesses.append(access)
    return accesses


def accesses_on_side(barrier: polygeist.PolygeistBarrierOp, side: str, *,
                     stop_at_barrier: bool = True,
                     module: Optional[func_d.ModuleOp] = None) -> List[MemoryAccess]:
    """Memory accesses that may execute before/after ``barrier``.

    Walks outward from the barrier to its enclosing ``scf.parallel``: at each
    nesting level the ops on the requested side of the current ancestor are
    collected.  When the barrier is nested inside a *serial* loop
    (``scf.for``/``scf.while``) the opposite side of that loop body is also
    included, because across iterations those ops execute on the other side
    of the barrier as well (wrap-around).
    """
    if side not in ("before", "after"):
        raise ValueError("side must be 'before' or 'after'")
    parallel = enclosing_parallel(barrier)
    if parallel is None:
        return []

    accesses: List[MemoryAccess] = []
    node: Operation = barrier
    while True:
        block = node.parent_block
        if block is None:
            break
        if side == "before":
            side_ops = block.ops_before(node)
            if stop_at_barrier:
                side_ops = _truncate_at_barrier(side_ops, keep_tail=True)
        else:
            side_ops = block.ops_after(node)
            if stop_at_barrier:
                side_ops = _truncate_at_barrier(side_ops, keep_tail=False)
        accesses.extend(_collect(side_ops, module, parallel))

        parent = block.parent_op
        if parent is None or parent is parallel:
            break
        if isinstance(parent, (scf.ForOp, scf.WhileOp)):
            # wrap-around: the other side of the loop body runs on this side
            # of the barrier in the adjacent iteration.
            if side == "before":
                wrap_ops = block.ops_after(node)
                if stop_at_barrier:
                    wrap_ops = _truncate_at_barrier(wrap_ops, keep_tail=False)
            else:
                wrap_ops = block.ops_before(node)
                if stop_at_barrier:
                    wrap_ops = _truncate_at_barrier(wrap_ops, keep_tail=True)
            accesses.extend(_collect(wrap_ops, module, parallel))
        node = parent
    return accesses


def barrier_thread_ivs(barrier: polygeist.PolygeistBarrierOp) -> Sequence[Value]:
    """The parallel induction variables this barrier synchronizes over."""
    if barrier.thread_ivs:
        return barrier.thread_ivs
    parallel = enclosing_parallel(barrier)
    return parallel.induction_vars if parallel is not None else ()


def barrier_memory_effects(barrier: polygeist.PolygeistBarrierOp, *,
                           module: Optional[func_d.ModuleOp] = None) -> List[MemoryAccess]:
    """The refined memory effects of a barrier (union of both sides).

    Accesses whose address is an injective function of the thread ids are
    *not* excluded from the returned list; instead each access carries its
    affine form so that consumers (mem2reg, conflict checks) can apply the
    same-thread exclusion pairwise, which is strictly more precise.
    """
    before = accesses_on_side(barrier, "before", stop_at_barrier=True, module=module)
    after = accesses_on_side(barrier, "after", stop_at_barrier=True, module=module)
    return before + after


def barrier_is_redundant(barrier: polygeist.PolygeistBarrierOp, *,
                         module: Optional[func_d.ModuleOp] = None) -> bool:
    """§IV-A elimination test for one barrier."""
    parallel = enclosing_parallel(barrier)
    if parallel is None:
        return True  # a barrier outside any parallel region orders nothing
    thread_ivs = list(barrier_thread_ivs(barrier))
    uniform = uniform_symbols_for(parallel)

    kwargs = dict(cross_thread_only=True, thread_ivs=thread_ivs, uniform_symbols=uniform)

    before_dagger = accesses_on_side(barrier, "before", stop_at_barrier=True, module=module)
    after_full = accesses_on_side(barrier, "after", stop_at_barrier=False, module=module)
    if not any_conflict(before_dagger, after_full, **kwargs):
        return True

    before_full = accesses_on_side(barrier, "before", stop_at_barrier=False, module=module)
    after_dagger = accesses_on_side(barrier, "after", stop_at_barrier=True, module=module)
    if not any_conflict(before_full, after_dagger, **kwargs):
        return True
    return False


def barrier_can_move_to(barrier: polygeist.PolygeistBarrierOp, anchor: Operation, *,
                        before_anchor: bool,
                        module: Optional[func_d.ModuleOp] = None) -> bool:
    """Barrier motion legality (§IV-A).

    Placing a fictitious barrier at the intended location and checking that
    the *current* barrier becomes redundant with it present is exactly the
    paper's formulation; we implement it literally by temporarily inserting a
    barrier next to ``anchor`` and evaluating :func:`barrier_is_redundant`.
    """
    block = anchor.parent_block
    if block is None:
        return False
    probe = polygeist.PolygeistBarrierOp(list(barrier.thread_ivs))
    if before_anchor:
        block.insert_before(anchor, probe)
    else:
        block.insert_after(anchor, probe)
    try:
        return barrier_is_redundant(barrier, module=module)
    finally:
        probe.drop_ref()
        block.remove(probe)
