"""repro.analysis — the analyses behind the paper's parallel optimizations.

* :mod:`~repro.analysis.alias`      — memref alias analysis,
* :mod:`~repro.analysis.affine`     — affine access extraction and
  thread-injectivity (the §III-A refinement),
* :mod:`~repro.analysis.effects`    — memory-access collection, conflict
  tests and interprocedural read-only summaries,
* :mod:`~repro.analysis.barriers`   — barrier memory semantics and the
  elimination/motion legality conditions,
* :mod:`~repro.analysis.mincut`     — the min-cut choice of values to cache
  across a parallel loop split,
* :mod:`~repro.analysis.liveness`   — crossing values at a split point,
* :mod:`~repro.analysis.structure`  — parallel-nest structural helpers.
"""

from .alias import AliasResult, alias, is_allocation, may_alias, must_alias
from .affine import (
    AffineExpr,
    access_equivalent,
    access_is_injective_in,
    extract_access,
    extract_affine,
)
from .effects import (
    MemoryAccess,
    accesses_conflict,
    any_conflict,
    collect_accesses,
    function_effects,
    function_is_read_only,
    op_is_speculatable,
)
from .barriers import (
    accesses_on_side,
    barrier_can_move_to,
    barrier_is_redundant,
    barrier_memory_effects,
    barrier_thread_ivs,
)
from .mincut import FlowNetwork, minimum_value_cut, validate_cut
from .liveness import crossing_values, def_use_edges_among, uses_after, values_defined_before
from .structure import (
    barriers_in,
    contains_barrier,
    enclosing_function,
    enclosing_op_of_type,
    enclosing_parallel,
    free_values_in,
    is_defined_inside,
    iterate_parallel_nest,
    top_level_index_of,
    uniform_symbols_for,
)

__all__ = [
    "AliasResult", "alias", "is_allocation", "may_alias", "must_alias",
    "AffineExpr", "access_equivalent", "access_is_injective_in", "extract_access", "extract_affine",
    "MemoryAccess", "accesses_conflict", "any_conflict", "collect_accesses",
    "function_effects", "function_is_read_only", "op_is_speculatable",
    "accesses_on_side", "barrier_can_move_to", "barrier_is_redundant",
    "barrier_memory_effects", "barrier_thread_ivs",
    "FlowNetwork", "minimum_value_cut", "validate_cut",
    "crossing_values", "def_use_edges_among", "uses_after", "values_defined_before",
    "barriers_in", "contains_barrier", "enclosing_function", "enclosing_op_of_type",
    "enclosing_parallel", "free_values_in", "is_defined_inside", "iterate_parallel_nest",
    "top_level_index_of", "uniform_symbols_for",
]
