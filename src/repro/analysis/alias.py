"""Alias analysis for memref SSA values.

The analysis is deliberately simple but sufficient for the paper's use cases
(§IV-A: "None of these conflict if, given the calling context, the pointers
are known not to alias"):

* a value trivially aliases itself (``must`` alias);
* the results of two *distinct* allocation operations (``memref.alloc``,
  ``memref.alloca``, ``gpu.alloc``) never alias — each allocation returns
  fresh memory;
* an allocation result never aliases a function argument or any value that
  existed before the allocation;
* two distinct function/kernel arguments do not alias when the enclosing
  function carries the ``arg_noalias`` attribute (set by the frontend for
  CUDA kernel pointer parameters, matching the calling contexts in the
  Rodinia benchmarks), otherwise they conservatively may alias;
* anything else conservatively may alias.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from ..ir import BlockArgument, MemRefType, Value
from ..dialects import func as func_d, gpu as gpu_d, memref as memref_d


class AliasResult(Enum):
    NO = "no"
    MAY = "may"
    MUST = "must"


_ALLOC_OPS = (memref_d.AllocOp, memref_d.AllocaOp, gpu_d.GPUAllocOp)


def is_allocation(value: Value) -> bool:
    """True if ``value`` is the result of a fresh allocation."""
    op = value.defining_op()
    return op is not None and isinstance(op, _ALLOC_OPS)


def _enclosing_function(value: Value) -> Optional[func_d.FuncOp]:
    block = value.owner_block()
    if block is None:
        return None
    op = block.parent_op
    while op is not None and not isinstance(op, func_d.FuncOp):
        op = op.parent_op
    return op


def _is_function_argument(value: Value) -> bool:
    if not isinstance(value, BlockArgument):
        return False
    parent = value.block.parent_op
    return isinstance(parent, func_d.FuncOp)


def alias(a: Value, b: Value) -> AliasResult:
    """Classify the aliasing relation between two memref values."""
    if a is b:
        return AliasResult.MUST
    if not isinstance(a.type, MemRefType) or not isinstance(b.type, MemRefType):
        # non-memref values do not denote memory.
        return AliasResult.NO

    a_alloc = is_allocation(a)
    b_alloc = is_allocation(b)
    if a_alloc and b_alloc:
        return AliasResult.NO  # distinct fresh allocations
    if a_alloc or b_alloc:
        # fresh allocation vs. anything that is not (a view of) it.
        return AliasResult.NO

    if _is_function_argument(a) and _is_function_argument(b):
        fn_a = _enclosing_function(a)
        fn_b = _enclosing_function(b)
        if fn_a is fn_b and fn_a is not None and fn_a.get_attr("arg_noalias", False):
            return AliasResult.NO
    return AliasResult.MAY


def may_alias(a: Value, b: Value) -> bool:
    """True unless the analysis proves the two memrefs are disjoint."""
    return alias(a, b) is not AliasResult.NO


def must_alias(a: Value, b: Value) -> bool:
    return alias(a, b) is AliasResult.MUST
